"""Shared helpers for the benchmark harness.

Every figure benchmark runs its experiment exactly once
(``rounds=1, iterations=1``: these are simulations, not micro-kernels),
prints the rendered tables/series, and archives them under
``results/`` so the regenerated paper data survives the pytest run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def archive():
    """Write (and echo) one experiment's rendered output."""

    def _archive(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[archived to {path}]")

    return _archive


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
