"""Micro-benchmark: the batched verification kernel vs the sequential walk.

Two workloads, both dominated by chain verification and nothing else:

* **cold** — a batch of wire-rebuilt chains nobody has verified yet
  (object memos fresh, prefix-trust cache cleared).  This prices the
  flat-buffer MAC kernel itself against per-descriptor
  ``verify_descriptor`` calls over the same chains.

* **fanout** — the network-wide dedup scenario the plan exists for:
  ``receivers`` nodes each receive their own wire-rebuilt copy of the
  same message within one cycle.  Sequential verification re-walks
  every copy per receiver; the shared plan MAC-checks each distinct
  chain once and answers the rest from the cycle digest memo.

Used three ways: standalone (``PYTHONPATH=src python
benchmarks/bench_batch_verify.py``), imported by
``benchmarks/baseline.py`` to record ``BENCH_core.json`` entries, and
re-timed by ``scripts/check.sh`` against the recorded numbers under
the perf-regression budget.
"""

from __future__ import annotations

import argparse
import random
import time

from repro.core.descriptor import (
    OwnershipHop,
    SecureDescriptor,
    mint,
    verify_descriptor,
)
from repro.crypto.batch import VerificationPlan
from repro.crypto.registry import KeyRegistry
from repro.crypto.signing import Signature
from repro.sim.network import NetworkAddress

_ADDRESS = NetworkAddress(host=1, port=1)


def _rebuild(descriptor: SecureDescriptor) -> SecureDescriptor:
    """Wire-fidelity copy: same content, fresh objects and memos."""
    hops = tuple(
        OwnershipHop(
            owner=hop.owner,
            kind=hop.kind,
            signature=Signature(
                signer=hop.signature.signer, mac=hop.signature.mac
            ),
        )
        for hop in descriptor.hops
    )
    return SecureDescriptor(
        creator=descriptor.creator,
        address=descriptor.address,
        timestamp=descriptor.timestamp,
        hops=hops,
    )


def _build_chains(registry: KeyRegistry, count: int, hops: int) -> list:
    rng = random.Random(0)
    keypairs = [registry.new_keypair(rng) for _ in range(max(hops + 1, 8))]
    chains = []
    for index in range(count):
        descriptor = mint(
            keypairs[index % len(keypairs)], _ADDRESS, float(index * 10)
        )
        holder = keypairs[index % len(keypairs)]
        for step in range(hops):
            nxt = keypairs[(index + step + 1) % len(keypairs)]
            descriptor = descriptor.transfer(holder, nxt.public)
            holder = nxt
        chains.append(descriptor)
    return chains


def bench_cold(
    batch_size: int = 64, hops: int = 6, rounds: int = 40
) -> dict:
    """Cold verification: per-chain µs, sequential vs batched kernel."""
    registry = KeyRegistry()
    chains = _build_chains(registry, batch_size, hops)
    # Pre-rebuild every round's copies so object construction is not
    # part of the timed region on either side.
    seq_rounds = [[_rebuild(c) for c in chains] for _ in range(rounds)]
    bat_rounds = [[_rebuild(c) for c in chains] for _ in range(rounds)]

    start = time.perf_counter()
    for batch in seq_rounds:
        registry.trusted_chain_digests.clear()
        for descriptor in batch:
            if not verify_descriptor(descriptor, registry):
                raise AssertionError("honest chain failed")
    sequential_s = time.perf_counter() - start

    plan = VerificationPlan(registry)
    start = time.perf_counter()
    for cycle, batch in enumerate(bat_rounds):
        registry.trusted_chain_digests.clear()
        plan.begin_cycle(cycle)  # cold: no cross-cycle memo help
        if not all(plan.verify_batch(batch)):
            raise AssertionError("honest chain failed")
    batched_s = time.perf_counter() - start

    per_chain = rounds * batch_size
    return {
        "batch_size": batch_size,
        "hops": hops,
        "sequential_us_per_chain": round(sequential_s / per_chain * 1e6, 3),
        "batched_us_per_chain": round(batched_s / per_chain * 1e6, 3),
        "speedup": round(sequential_s / batched_s, 2),
    }


def bench_fanout(
    receivers: int = 25, batch_size: int = 25, hops: int = 6, rounds: int = 20
) -> dict:
    """One cycle's message fan-out: every receiver re-verifies the same
    chains sequentially; the shared plan checks each chain once."""
    registry = KeyRegistry()
    chains = _build_chains(registry, batch_size, hops)
    seq_rounds = [
        [[_rebuild(c) for c in chains] for _ in range(receivers)]
        for _ in range(rounds)
    ]
    bat_rounds = [
        [[_rebuild(c) for c in chains] for _ in range(receivers)]
        for _ in range(rounds)
    ]

    start = time.perf_counter()
    for deliveries in seq_rounds:
        registry.trusted_chain_digests.clear()
        for batch in deliveries:
            for descriptor in batch:
                verify_descriptor(descriptor, registry)
    sequential_s = time.perf_counter() - start

    plan = VerificationPlan(registry)
    start = time.perf_counter()
    for cycle, deliveries in enumerate(bat_rounds):
        registry.trusted_chain_digests.clear()
        plan.begin_cycle(cycle)
        for batch in deliveries:
            plan.verify_batch(batch)
    batched_s = time.perf_counter() - start

    per_sighting = rounds * receivers * batch_size
    return {
        "receivers": receivers,
        "batch_size": batch_size,
        "hops": hops,
        "sequential_us_per_sighting": round(
            sequential_s / per_sighting * 1e6, 3
        ),
        "batched_us_per_sighting": round(batched_s / per_sighting * 1e6, 3),
        "speedup": round(sequential_s / batched_s, 2),
    }


def run_all() -> dict:
    return {"cold": bench_cold(), "fanout": bench_fanout()}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=40)
    args = parser.parse_args()
    cold = bench_cold(rounds=args.rounds)
    fanout = bench_fanout(rounds=max(args.rounds // 2, 5))
    print(
        "cold   : sequential {sequential_us_per_chain:7.2f} us/chain | "
        "batched {batched_us_per_chain:7.2f} us/chain | x{speedup}".format(
            **cold
        )
    )
    print(
        "fanout : sequential {sequential_us_per_sighting:7.2f} us/sighting | "
        "batched {batched_us_per_sighting:7.2f} us/sighting | x{speedup}".format(
            **fanout
        )
    )


if __name__ == "__main__":
    main()
