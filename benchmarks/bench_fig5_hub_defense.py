"""Bench: regenerate paper Fig 5 (SecureCyclon defeats the hub attack).

Expected shape: a brief spike after the attack starts, then a rapid
collapse of malicious links as violators are proven and blacklisted —
including the extreme 40 %-malicious scenario.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig5_hub_defense


def test_fig5_hub_defense(benchmark, archive):
    panels = run_once(benchmark, fig5_hub_defense.run_fig5)
    archive("fig5_hub_defense", fig5_hub_defense.render(panels))
    for panel in panels:
        for series in panel.series:
            # The attack never wins: by the end of the run the
            # malicious-link share has collapsed to (near) zero.
            assert series.final_y() < 0.35
        # Low swap lengths fully purge (paper: s=3 is the safe choice).
        low_s = panel.series[0]
        assert low_s.final_y() < 0.05
