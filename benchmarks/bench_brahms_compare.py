"""Bench: SecureCyclon vs a Brahms-style sampler under the hub attack.

The paper's related-work claim (§VII): Brahms *bounds* malicious
over-representation while SecureCyclon *eliminates* it.  This bench
runs equivalent attacks against both and reports the residual
malicious-link share.
"""

from benchmarks.conftest import run_once
from repro.adversary.coordinator import MaliciousCoordinator
from repro.brahms.config import BrahmsConfig
from repro.brahms.node import BrahmsHubAttacker, BrahmsNode
from repro.core.config import SecureCyclonConfig
from repro.experiments.report import format_table
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.links import malicious_link_fraction
from repro.sim.engine import Engine, SimConfig


def _run_brahms(n=200, malicious=20, cycles=60, attack_start=15, seed=41):
    engine = Engine(SimConfig(seed=seed))
    config = BrahmsConfig(view_size=12, sampler_size=12)
    coordinator = MaliciousCoordinator(
        attack_start_cycle=attack_start, rng=engine.rng_hub.stream("adv")
    )
    nodes = []
    ids = [f"n{i}" for i in range(n)]
    for i, node_id in enumerate(ids):
        if i < malicious:
            node = BrahmsHubAttacker(
                node_id,
                config,
                engine.rng_hub.stream(node_id),
                coordinator=coordinator,
            )
            coordinator._keypairs[node_id] = None
            coordinator._addresses[node_id] = None
        else:
            node = BrahmsNode(node_id, config, engine.rng_hub.stream(node_id))
        engine.add_node(node)
        nodes.append(node)
    coordinator.note_legit_population(ids[malicious:])
    rng = engine.rng_hub.stream("boot")
    for node in nodes:
        node.seed_view(rng.sample(ids, 14))
    engine.run(cycles)

    legit = [node for node in nodes if not node.is_malicious]
    malicious_ids = set(ids[:malicious])
    view_share = sum(
        sum(1 for v in node.view if v in malicious_ids) / max(1, len(node.view))
        for node in legit
    ) / len(legit)
    sampler_share = sum(
        sum(1 for s in node.samplers.samples() if s in malicious_ids)
        / max(1, len(node.samplers.samples()))
        for node in legit
    ) / len(legit)
    return view_share, sampler_share


def _run_secure(n=200, malicious=20, cycles=60, attack_start=15, seed=41):
    overlay = build_secure_overlay(
        n=n,
        config=SecureCyclonConfig(view_length=12, swap_length=3),
        malicious=malicious,
        attack_start=attack_start,
        seed=seed,
    )
    overlay.run(cycles)
    return malicious_link_fraction(overlay.engine)


def test_brahms_vs_securecyclon(benchmark, archive):
    def run():
        brahms_view, brahms_sampler = _run_brahms()
        secure = _run_secure()
        return brahms_view, brahms_sampler, secure

    brahms_view, brahms_sampler, secure = run_once(benchmark, run)
    archive(
        "brahms_compare",
        "Hub attack (10% malicious): residual malicious representation\n"
        + format_table(
            ["mechanism", "malicious share"],
            [
                ("Brahms gossip view", brahms_view),
                ("Brahms sampler", brahms_sampler),
                ("SecureCyclon view", secure),
            ],
            precision=4,
        ),
    )
    # Brahms bounds the bias; SecureCyclon eliminates it.
    assert brahms_sampler < 0.5
    assert secure < 0.02
    assert secure < brahms_sampler
