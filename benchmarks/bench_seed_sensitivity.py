"""Bench: seed sensitivity of the headline results.

The paper's plots are single runs; this bench repeats the core
hub-attack defence across independent seeds and archives mean ± std of
the outcomes that matter, demonstrating they are properties of the
protocol rather than of one lucky seed.
"""

from benchmarks.conftest import run_once
from repro.core.config import SecureCyclonConfig
from repro.experiments.multirun import sweep_scalars
from repro.experiments.report import format_table
from repro.experiments.runner import run_with_probes
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.graphstats import eclipsed_fraction
from repro.metrics.links import (
    blacklisted_malicious_fraction,
    malicious_link_fraction,
)

SEEDS = (11, 22, 33, 44, 55)
ATTACK_START = 15


def _one_run(seed: int):
    overlay = build_secure_overlay(
        n=250,
        config=SecureCyclonConfig(view_length=15, swap_length=3),
        malicious=25,
        attack_start=ATTACK_START,
        seed=seed,
    )
    series = run_with_probes(
        overlay, 60, {"malicious": malicious_link_fraction}, every=1
    )["malicious"]
    recovery = float("inf")
    for cycle, value in series.points:
        if cycle > ATTACK_START and value < 0.01:
            recovery = float(cycle - ATTACK_START)
            break
    return {
        "peak malicious links": series.max_y(),
        "final malicious links": series.final_y(),
        "recovery cycles (to <1%)": recovery,
        "attackers blacklisted": blacklisted_malicious_fraction(
            overlay.engine
        ),
        "eclipsed nodes": eclipsed_fraction(overlay.engine),
    }


def test_seed_sensitivity(benchmark, archive):
    sweeps = run_once(benchmark, sweep_scalars, _one_run, SEEDS)
    archive(
        "seed_sensitivity",
        f"Seed sensitivity — hub-attack defence across {len(SEEDS)} seeds\n"
        + format_table(
            ["outcome", "mean", "std", "min", "max"],
            [sweep.row() for sweep in sweeps],
        ),
    )
    by_name = {sweep.name: sweep for sweep in sweeps}
    # Every seed recovers completely and blacklists the whole party.
    assert by_name["final malicious links"].max < 0.01
    assert by_name["attackers blacklisted"].min > 0.99
    assert by_name["recovery cycles (to <1%)"].max < 40
    assert by_name["eclipsed nodes"].max == 0.0