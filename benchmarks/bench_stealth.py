"""Bench: the stealth-bias residue vs the violating hub attack.

Extension experiment (DESIGN.md §5a): SecureCyclon purges violators to
~0 % links, while a never-violating stealth party keeps only a small
multiple of its population share — over-representation is eliminated,
not merely bounded.
"""

from benchmarks.conftest import run_once
from repro.experiments import stealth_experiment


def test_stealth_residue(benchmark, archive):
    results = run_once(benchmark, stealth_experiment.run_stealth)
    archive("stealth_residue", stealth_experiment.render(results))
    for result in results:
        share = result.malicious / result.nodes
        # The violating party is purged...
        assert result.hub_settled < 0.05
        # ...the rule-abiding party is not, but its bias stays within a
        # small multiple of its legitimate token supply.
        assert result.stealth_settled < min(1.0, 3.0 * share)
        assert result.stealth_peak < min(1.0, 4.0 * share)
