"""Micro-benchmark: the batch-codec fast path vs the reference codec.

Two workloads, both dominated by message framing and nothing else:

* **frame** — distinct messages, cold tables: per-frame encode/decode
  µs for the reference codec against :class:`BatchEncoder` /
  :class:`FastDecoder` with nothing memoised.  This prices the
  precompiled-struct writer and the zero-copy offset walk themselves,
  with every memo missing.

* **fanout** — the regime one simulated cycle actually produces: many
  frames whose embedded descriptor records repeat heavily (views
  overlap, so the same record crosses the wire once per sighting).
  The reference codec re-parses every copy; the fast path shares one
  :class:`InternTable` across all receivers — exactly how
  ``WireTransport`` wires it — and answers repeats from the table.
  The intern hit rate is reported alongside the timings because it is
  the number that explains them.

Used three ways: standalone (``PYTHONPATH=src python
benchmarks/bench_codec.py``), imported by ``benchmarks/baseline.py``
to record ``BENCH_core.json`` entries, and re-timed by
``scripts/check.sh`` against the recorded numbers under the
perf-regression budget.
"""

from __future__ import annotations

import argparse
import random
import time

from repro.core.codec import decode_message, encode_message
from repro.core.codec_batch import BatchEncoder, FastDecoder, InternTable
from repro.core.descriptor import mint
from repro.core.exchange import GossipAccept
from repro.crypto.registry import KeyRegistry
from repro.sim.network import NetworkAddress

_ADDRESS = NetworkAddress(host=1, port=1)


def _build_pool(count: int, hops: int) -> list:
    """A pool of distinct verified-shape descriptors, ``hops`` deep."""
    registry = KeyRegistry()
    rng = random.Random(0)
    keypairs = [registry.new_keypair(rng) for _ in range(max(hops + 1, 8))]
    pool = []
    for index in range(count):
        descriptor = mint(
            keypairs[index % len(keypairs)], _ADDRESS, float(index * 10)
        )
        holder = keypairs[index % len(keypairs)]
        for step in range(hops):
            nxt = keypairs[(index + step + 1) % len(keypairs)]
            descriptor = descriptor.transfer(holder, nxt.public)
            holder = nxt
        pool.append(descriptor)
    return pool


def _build_messages(
    pool: list, frames: int, samples: int, overlap: bool
) -> list:
    """``frames`` GossipAccept messages drawing ``samples`` descriptors.

    With ``overlap`` the draws come from the shared pool with repeats
    (the fan-out regime); without it every frame gets its own distinct
    descriptors (the cold regime, ``frames * samples <= len(pool)``).
    """
    rng = random.Random(1)
    messages = []
    for index in range(frames):
        if overlap:
            chosen = tuple(rng.sample(pool, samples))
        else:
            start = index * samples
            chosen = tuple(pool[start : start + samples])
        messages.append(GossipAccept(samples=chosen, proofs=()))
    return messages


def bench_frame(frames: int = 40, samples: int = 5, hops: int = 6) -> dict:
    """Cold per-frame µs: distinct payloads, nothing memoised."""
    pool = _build_pool(frames * samples, hops)
    messages = _build_messages(pool, frames, samples, overlap=False)

    start = time.perf_counter()
    reference_frames = [encode_message(m) for m in messages]
    reference_encode_s = time.perf_counter() - start

    encoder = BatchEncoder(InternTable())
    start = time.perf_counter()
    fast_frames = [encoder.encode(m) for m in messages]
    fast_encode_s = time.perf_counter() - start
    if fast_frames != reference_frames:
        raise AssertionError("batch encoder diverged from reference bytes")

    start = time.perf_counter()
    for frame in reference_frames:
        decode_message(frame)
    reference_decode_s = time.perf_counter() - start

    decoder = FastDecoder(InternTable())
    start = time.perf_counter()
    for frame in reference_frames:
        decoder.decode(frame)
    fast_decode_s = time.perf_counter() - start

    return {
        "frames": frames,
        "samples_per_frame": samples,
        "hops": hops,
        "reference_encode_us_per_frame": round(
            reference_encode_s / frames * 1e6, 3
        ),
        "batch_encode_us_per_frame": round(fast_encode_s / frames * 1e6, 3),
        "reference_decode_us_per_frame": round(
            reference_decode_s / frames * 1e6, 3
        ),
        "fast_decode_us_per_frame": round(fast_decode_s / frames * 1e6, 3),
        "encode_speedup": round(reference_encode_s / fast_encode_s, 2),
        "decode_speedup": round(reference_decode_s / fast_decode_s, 2),
    }


def bench_fanout(
    pool_size: int = 200,
    frames: int = 100,
    samples: int = 8,
    hops: int = 6,
    rounds: int = 20,
) -> dict:
    """Fan-out µs per frame: overlapping records, shared intern table."""
    pool = _build_pool(pool_size, hops)
    messages = _build_messages(pool, frames, samples, overlap=True)

    start = time.perf_counter()
    for _ in range(rounds):
        reference_frames = [encode_message(m) for m in messages]
    reference_encode_s = time.perf_counter() - start

    intern = InternTable()
    encoder = BatchEncoder(intern)
    start = time.perf_counter()
    for cycle in range(rounds):
        encoder.begin_cycle(cycle)
        fast_frames = [encoder.encode(m) for m in messages]
    fast_encode_s = time.perf_counter() - start
    if fast_frames != reference_frames:
        raise AssertionError("batch encoder diverged from reference bytes")

    start = time.perf_counter()
    for _ in range(rounds):
        for frame in reference_frames:
            decode_message(frame)
    reference_decode_s = time.perf_counter() - start

    decoder = FastDecoder(intern)
    start = time.perf_counter()
    for cycle in range(rounds):
        intern.begin_cycle(cycle)
        for frame in reference_frames:
            decoder.decode(frame)
    fast_decode_s = time.perf_counter() - start

    per_frame = rounds * frames
    return {
        "pool_size": pool_size,
        "frames": frames,
        "samples_per_frame": samples,
        "hops": hops,
        "reference_encode_us_per_frame": round(
            reference_encode_s / per_frame * 1e6, 3
        ),
        "batch_encode_us_per_frame": round(
            fast_encode_s / per_frame * 1e6, 3
        ),
        "reference_decode_us_per_frame": round(
            reference_decode_s / per_frame * 1e6, 3
        ),
        "fast_decode_us_per_frame": round(
            fast_decode_s / per_frame * 1e6, 3
        ),
        "encode_speedup": round(reference_encode_s / fast_encode_s, 2),
        "decode_speedup": round(reference_decode_s / fast_decode_s, 2),
        "intern_hit_rate": round(intern.hit_rate, 4),
    }


def run_all() -> dict:
    return {"frame": bench_frame(), "fanout": bench_fanout()}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=20)
    args = parser.parse_args()
    frame = bench_frame()
    fanout = bench_fanout(rounds=args.rounds)
    print(
        "frame  : encode {reference_encode_us_per_frame:8.2f} -> "
        "{batch_encode_us_per_frame:8.2f} us (x{encode_speedup}) | "
        "decode {reference_decode_us_per_frame:8.2f} -> "
        "{fast_decode_us_per_frame:8.2f} us (x{decode_speedup})".format(
            **frame
        )
    )
    print(
        "fanout : encode {reference_encode_us_per_frame:8.2f} -> "
        "{batch_encode_us_per_frame:8.2f} us (x{encode_speedup}) | "
        "decode {reference_decode_us_per_frame:8.2f} -> "
        "{fast_decode_us_per_frame:8.2f} us (x{decode_speedup}) | "
        "intern hit rate {intern_hit_rate:.1%}".format(**fanout)
    )


if __name__ == "__main__":
    main()
