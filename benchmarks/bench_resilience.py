"""Benches: churn recovery and the message-loss sweep.

Extension experiments (DESIGN.md §5a): the §I robustness claims and
the §V-A/§V-B repair machinery under non-adversarial failures.
"""

from benchmarks.conftest import run_once
from repro.experiments import churn_recovery, loss_sweep


def test_churn_recovery(benchmark, archive):
    result = run_once(benchmark, churn_recovery.run_churn_recovery)
    archive("churn_recovery", churn_recovery.render(result))
    for panel in result.crash_panels:
        assert panel.min_component > 0.9
        assert panel.recovery_cycles < 40
    for panel in result.churn_panels:
        assert panel.final_fill > 0.9
        assert panel.final_component > 0.95


def test_loss_sweep(benchmark, archive):
    rows = run_once(benchmark, loss_sweep.run_loss_sweep)
    archive("loss_sweep", loss_sweep.render(rows))
    for row in rows:
        assert row.final_component > 0.95
        if row.loss_rate == 0.0:
            assert row.final_fill > 0.99
