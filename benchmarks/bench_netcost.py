"""Bench: regenerate the §VI-A network-cost table.

Expected values: 430-byte descriptors under the paper's pessimistic
6-transfer assumption and ~10.5 KB per direction per gossip; the live
measurement should come in at or below the budget.
"""

from benchmarks.conftest import run_once
from repro.experiments import netcost_table


def test_netcost(benchmark, archive):
    result = run_once(benchmark, netcost_table.run_netcost)
    archive("netcost_table", netcost_table.render(result))
    analytic = dict(result.analytic_rows)
    assert analytic["descriptor size (bytes)"] == 430.0
    assert abs(analytic["per direction per gossip (KB)"] - 10.5) < 0.02
    measured = dict(result.measured_rows)
    # Live traffic stays within ~2x of the paper's pessimistic budget.
    assert measured["measured initiator->partner per gossip (KB)"] < 21.0
    assert measured["mean transfers per live descriptor"] < 8.0
