"""Bench: regenerate paper Fig 6 (link-depletion vs tit-for-tat).

Expected shape: with tit-for-tat disabled, non-swappable links grow
with the swap length (near-total at 50 % malicious); enabling
tit-for-tat caps the damage to a bounded fraction.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig6_depletion


def test_fig6_depletion(benchmark, archive):
    panels = run_once(benchmark, fig6_depletion.run_fig6)
    archive("fig6_depletion", fig6_depletion.render(panels))
    by_key = {(p.malicious, p.tit_for_tat): p for p in panels}
    for (malicious, tit_for_tat), panel in by_key.items():
        partner = by_key.get((malicious, not tit_for_tat))
        if partner is None or tit_for_tat:
            continue
        # tit-for-tat strictly reduces peak depletion at equal attack.
        for drained, protected in zip(panel.series, partner.series):
            assert protected.max_y() <= drained.max_y() + 0.05
    heavy = [p for p in by_key.values() if p.malicious > p.nodes * 0.3]
    for panel in heavy:
        if not panel.tit_for_tat:
            assert max(s.max_y() for s in panel.series) > 0.6
