"""Bench: regenerate paper Fig 3 (hub attack on legacy Cyclon).

Expected shape: malicious links stay near the population share until
the attack starts, then race away from it.  In our victim-merge model
(DESIGN.md decision 5) capture completes to ~100 % for the paper's
practical swap lengths (s <= 5); for very high swap lengths the faster
honest link turnover holds the attacker at a plateau far above the
baseline but below 100 % — the documented deviation in EXPERIMENTS.md.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig3_cyclon_takeover


def test_fig3_takeover(benchmark, archive):
    panels = run_once(benchmark, fig3_cyclon_takeover.run_fig3)
    archive("fig3_cyclon_takeover", fig3_cyclon_takeover.render(panels))
    for panel in panels:
        baseline = panel.malicious / panel.nodes
        for series in panel.series:
            pre_attack = series.y_at(panel.attack_start - 10)
            assert pre_attack < baseline + 0.15
            swap_length = int(series.label.rsplit(" ", 1)[-1])
            if swap_length <= 5:
                assert series.final_y() > 0.9  # complete takeover
            else:
                # High swap lengths: massive amplification even where
                # capture stays partial in our merge model.
                assert series.final_y() > 10 * baseline
