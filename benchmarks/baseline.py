"""Record the core-ops benchmark timings to ``BENCH_core.json``.

This is the perf-trajectory writer the ROADMAP asks for: it measures
the same kernels as ``bench_core_ops.py`` — descriptor transfer, cold
chain verification, sample-cache observation, and the 200-node full
simulated cycle — without requiring pytest, and merges the results
into ``BENCH_core.json`` under a label.  Committing a ``seed`` entry
and an entry per optimisation PR turns the file into the repository's
recorded performance history, and ``scripts/check.sh`` uses the most
recent entry as the regression budget.

Usage::

    PYTHONPATH=src python benchmarks/baseline.py --label optimized
    PYTHONPATH=src python benchmarks/baseline.py --label seed --rounds 9

Both mean and min are recorded.  On shared CI hardware the min is the
robust statistic (noise only ever adds time); the mean is what the
pytest benchmark reports historically tracked.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import statistics
import time

from repro.core.config import SecureCyclonConfig
from repro.core.descriptor import mint, verify_descriptor
from repro.core.samples import SampleCache
from repro.crypto.registry import KeyRegistry
from repro.experiments.scenarios import build_secure_overlay
from repro.sim.network import NetworkAddress

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_core.json"
SCHEMA = "repro-bench-core/1"


def _time_many(fn, number: int) -> float:
    """Mean seconds per call over ``number`` calls (one timing block)."""
    start = time.perf_counter()
    for _ in range(number):
        fn()
    return (time.perf_counter() - start) / number


def bench_micro() -> dict:
    """The three per-message micro kernels, mean microseconds."""
    registry = KeyRegistry()
    rng = random.Random(0)
    keypairs = [registry.new_keypair(rng) for _ in range(6)]
    address = NetworkAddress(host=1, port=1)

    base = mint(keypairs[0], address, 0.0)
    transfer_us = (
        _time_many(lambda: base.transfer(keypairs[0], keypairs[1].public), 20000)
        * 1e6
    )

    descriptor = mint(keypairs[0], address, 0.0)
    current = 0
    for nxt in (1, 2, 3, 4, 5, 1):
        descriptor = descriptor.transfer(keypairs[current], keypairs[nxt].public)
        current = nxt

    def verify_fresh():
        # Clear both memo layers (per-object and registry prefix-trust)
        # so the kernel times a genuinely cold verification, comparable
        # across revisions with and without the trust cache.
        object.__setattr__(descriptor, "_verified_by", None)
        trusted = getattr(registry, "trusted_chain_digests", None)
        if trusted:
            trusted.clear()
        return verify_descriptor(descriptor, registry)

    verify_us = _time_many(verify_fresh, 20000) * 1e6

    cache = SampleCache(horizon_cycles=40, period_seconds=10.0)
    descriptors = [
        mint(keypairs[i % 3], address, float(i // 3) * 10.0).transfer(
            keypairs[i % 3], keypairs[3].public
        )
        for i in range(120)
    ]
    counter = {"i": 0}

    def observe_one():
        d = descriptors[counter["i"] % len(descriptors)]
        counter["i"] += 1
        return cache.observe(d, cycle=counter["i"] // 10)

    observe_us = _time_many(observe_one, 50000) * 1e6

    return {
        "descriptor_transfer_us": round(transfer_us, 3),
        "chain_verification_six_hops_us": round(verify_us, 3),
        "sample_cache_observe_us": round(observe_us, 3),
    }


def bench_full_cycle(
    rounds: int,
    verification: str = "sequential",
    transport: str = "object",
) -> dict:
    """The 200-node full-cycle benchmark (same shape as pytest's).

    Run once per (verification, transport) combination that matters:
    the ``batched`` entry prices the batched kernel end-to-end on the
    simulation's own traffic (where the per-object memo already carries
    most repeats), and the ``wire`` entries price the same workload
    with every message re-framed through the codec — the regime where
    receivers rebuild descriptors from bytes and the batched kernel's
    network-wide digest memo is the only thing standing between the
    overlay and per-sighting re-verification.
    """
    overlay = build_secure_overlay(
        n=200,
        config=SecureCyclonConfig(
            view_length=20, swap_length=3, verification=verification,
            transport=transport,
        ),
        seed=1,
    )
    overlay.run(3)  # warm up
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        overlay.run(1)
        times.append(time.perf_counter() - start)
    suffix = "" if verification == "sequential" else f"_{verification}"
    if transport != "object":
        suffix = f"_{transport}{suffix}"
    return {
        f"full_cycle_200_nodes{suffix}_ms": {
            "mean": round(statistics.mean(times) * 1e3, 3),
            "min": round(min(times) * 1e3, 3),
            "max": round(max(times) * 1e3, 3),
            "rounds": rounds,
        }
    }


def bench_batch_verification() -> dict:
    """The batched-verification micro-kernels (see bench_batch_verify)."""
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from bench_batch_verify import bench_cold, bench_fanout

    return {
        "batch_verify_cold": bench_cold(),
        "batch_verify_fanout": bench_fanout(),
    }


def bench_codec_fastpath() -> dict:
    """The batch-codec micro-kernels (see bench_codec)."""
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from bench_codec import bench_fanout, bench_frame

    return {
        "codec_frame": bench_frame(),
        "codec_fanout": bench_fanout(),
    }


def bench_paper_scale(include_10k: bool) -> dict:
    """The 1K×50 (and optionally 10K full-cycle) wall-time runs.

    Each measurement runs in a fresh subprocess: a single process that
    builds and runs four paper-scale overlays back to back accumulates
    allocator/GC state that skews the later measurements by double-digit
    percentages (and the container's thermal throttling adds more — see
    the calibration note in PERFORMANCE.md).  Fresh processes remove
    the first effect; the recorded numbers still carry the second, so
    cross-mode deltas within ~±15% are machine noise, not signal.
    """
    import json as json_module
    import subprocess
    import sys

    shapes = [(1000, 50)]
    if include_10k:
        shapes.append((10000, 5))
    metrics = {}
    for nodes, cycles in shapes:
        for transport in ("object", "wire"):
            for mode in ("sequential", "batched"):
                script = (
                    "import dataclasses, json\n"
                    "from repro.experiments.scale import measure_paper_scale\n"
                    f"row = measure_paper_scale({nodes}, {cycles}, seed=42, "
                    f"verification={mode!r}, transport={transport!r})\n"
                    "print(json.dumps(dataclasses.asdict(row)))\n"
                )
                output = subprocess.check_output(
                    [sys.executable, "-c", script], text=True
                )
                row = json_module.loads(output.strip().splitlines()[-1])
                key = f"scale_{nodes}x{cycles}"
                if transport != "object":
                    key += f"_{transport}"
                metrics[f"{key}_{mode}"] = {
                    "build_s": row["build_seconds"],
                    "run_s": row["run_seconds"],
                    "per_cycle_ms": row["per_cycle_ms"],
                    "mean_view_fill": row["mean_view_fill"],
                }
    return metrics


def bench_scale_sharded(include_10k: bool) -> dict:
    """The sharded-engine wall-time runs (free-running + determinism).

    Each measurement runs in a fresh subprocess for the same allocator
    hygiene as :func:`bench_paper_scale` — doubly important here, since
    each run forks worker processes off the measuring interpreter.  The
    free-running rows are directly comparable to the ``scale_1000x50``
    rows above (same shape, same seed); the deterministic row records
    the bit-exactness check's verdict alongside its cost.
    """
    import json as json_module
    import subprocess
    import sys

    shapes = [(1000, 50, 2, "free"), (1000, 50, 4, "free")]
    if include_10k:
        shapes.append((10000, 3, 2, "free"))
    shapes.append((200, 10, 2, "deterministic"))
    metrics = {}
    for nodes, cycles, shards, mode in shapes:
        script = (
            "import dataclasses, json\n"
            "from repro.experiments.scale_sharded import measure_sharded\n"
            f"row = measure_sharded({nodes}, {cycles}, {shards}, "
            f"mode={mode!r}, seed=42, "
            f"check_determinism={mode == 'deterministic'})\n"
            "print(json.dumps(dataclasses.asdict(row)))\n"
        )
        output = subprocess.check_output(
            [sys.executable, "-c", script], text=True
        )
        row = json_module.loads(output.strip().splitlines()[-1])
        key = f"scale_sharded_{nodes}x{cycles}_{mode}_{shards}shards"
        entry = {
            "build_s": row["build_seconds"],
            "run_s": row["run_seconds"],
            "per_cycle_ms": row["per_cycle_ms"],
            "mean_view_fill": row["mean_view_fill"],
        }
        if row["deterministic_match"] is not None:
            entry["bit_exact"] = row["deterministic_match"]
        metrics[key] = entry
    return metrics


def bench_event_cycle(rounds: int) -> dict:
    """The same 200-node workload under the event-driven runtime.

    Latency, jitter, and timeouts are all active so the number prices
    the full event-queue machinery (heap churn, leg sampling, timer
    rescheduling), not just a degenerate zero-latency walk.  Tracking
    it next to ``full_cycle_200_nodes_ms`` keeps the event runtime's
    overhead over the cycle loop honest across revisions.
    """
    from repro.sim.latency import LognormalLatency
    from repro.sim.scheduler import EventScheduler, PeriodJitter

    overlay = build_secure_overlay(
        n=200,
        config=SecureCyclonConfig(view_length=20, swap_length=3),
        seed=1,
        runtime=EventScheduler(
            latency=LognormalLatency(median_s=0.5, sigma=0.5),
            jitter=PeriodJitter(mode="uniform", spread=0.1),
            timeout_s=5.0,
        ),
    )
    overlay.run(3)  # warm up
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        overlay.run(1)
        times.append(time.perf_counter() - start)
    return {
        "event_cycle_200_nodes_ms": {
            "mean": round(statistics.mean(times) * 1e3, 3),
            "min": round(min(times) * 1e3, 3),
            "max": round(max(times) * 1e3, 3),
            "rounds": rounds,
        }
    }


def record(
    label: str,
    rounds: int,
    output: pathlib.Path,
    paper_scale: bool = False,
    include_10k: bool = False,
    sharded: bool = False,
) -> dict:
    metrics = bench_micro()
    metrics.update(bench_full_cycle(rounds))
    metrics.update(bench_full_cycle(rounds, verification="batched"))
    metrics.update(bench_full_cycle(rounds, transport="wire"))
    metrics.update(
        bench_full_cycle(rounds, verification="batched", transport="wire")
    )
    metrics.update(bench_event_cycle(rounds))
    metrics.update(bench_batch_verification())
    metrics.update(bench_codec_fastpath())
    if paper_scale:
        metrics.update(bench_paper_scale(include_10k=include_10k))
    if sharded:
        metrics.update(bench_scale_sharded(include_10k=include_10k))
    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "metrics": metrics,
    }

    data = {"schema": SCHEMA, "entries": {}}
    if output.exists():
        loaded = json.loads(output.read_text(encoding="utf-8"))
        if loaded.get("schema") == SCHEMA:
            data = loaded
    data["entries"][label] = entry

    seed = data["entries"].get("seed")
    if seed is not None and label != "seed":
        seed_mean = seed["metrics"]["full_cycle_200_nodes_ms"]["mean"]
        this_mean = metrics["full_cycle_200_nodes_ms"]["mean"]
        entry["full_cycle_speedup_vs_seed"] = round(seed_mean / this_mean, 2)

    output.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return entry


def validate_history(data: object) -> list:
    """Check a loaded BENCH_core.json against the schema.

    Returns the entry labels in file order; raises ``ValueError`` with
    a precise message on the first violation.  This is what
    ``--list`` (and through it ``scripts/check.sh``) runs, so a
    hand-edited or merge-mangled history fails fast instead of
    silently feeding the perf guard a malformed budget.
    """
    if not isinstance(data, dict):
        raise ValueError("top level must be a JSON object")
    if data.get("schema") != SCHEMA:
        raise ValueError(
            f"schema must be {SCHEMA!r}, got {data.get('schema')!r}"
        )
    entries = data.get("entries")
    if not isinstance(entries, dict) or not entries:
        raise ValueError("'entries' must be a non-empty object")
    for label, entry in entries.items():
        if not isinstance(entry, dict):
            raise ValueError(f"entry {label!r} must be an object")
        recorded_at = entry.get("recorded_at")
        if not isinstance(recorded_at, str) or not recorded_at:
            raise ValueError(f"entry {label!r} missing 'recorded_at'")
        metrics = entry.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            raise ValueError(f"entry {label!r} needs a non-empty 'metrics'")
        for name, value in metrics.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                continue
            if isinstance(value, dict) and value and all(
                isinstance(v, (int, float, bool)) for v in value.values()
            ):
                continue
            raise ValueError(
                f"entry {label!r} metric {name!r} must be a number or a "
                "flat object of numbers"
            )
    return list(entries)


def list_entries(output: pathlib.Path) -> int:
    """Validate the recorded history and print a one-line-per-entry view."""
    try:
        data = json.loads(output.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"error: {output} does not exist", file=__import__("sys").stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: {output} is not JSON: {exc}",
              file=__import__("sys").stderr)
        return 1
    try:
        labels = validate_history(data)
    except ValueError as exc:
        print(f"error: {output} fails {SCHEMA}: {exc}",
              file=__import__("sys").stderr)
        return 1
    print(f"{output} [{SCHEMA}] - {len(labels)} entries")
    for label in labels:
        entry = data["entries"][label]
        speedup = entry.get("full_cycle_speedup_vs_seed")
        extra = f"  speedup_vs_seed={speedup}" if speedup is not None else ""
        print(
            f"  {label:<24} {entry['recorded_at']}  "
            f"{len(entry['metrics'])} metrics{extra}"
        )
    return 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default=None, help="entry name, e.g. seed")
    parser.add_argument(
        "--list",
        action="store_true",
        help="validate the recorded history against the schema and list "
        "its entries instead of running benchmarks",
    )
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="also record the 1Kx50 wall-time runs (minutes)",
    )
    parser.add_argument(
        "--include-10k",
        action="store_true",
        help="with --paper-scale: also record the 10K-node full-cycle run",
    )
    parser.add_argument(
        "--sharded",
        action="store_true",
        help="also record the sharded-engine wall-time runs "
        "(honours --include-10k for the 10K free-running row)",
    )
    args = parser.parse_args()
    if args.list:
        raise SystemExit(list_entries(args.output))
    if args.label is None:
        parser.error("--label is required unless --list is given")
    entry = record(
        args.label,
        args.rounds,
        args.output,
        paper_scale=args.paper_scale,
        include_10k=args.include_10k,
        sharded=args.sharded,
    )
    print(f"[{args.label}] -> {args.output}")
    print(json.dumps(entry, indent=2))


if __name__ == "__main__":
    main()
