"""Bench: the §III violation matrix.

Every avenue of over-representation is either provable (frequency,
cloning — the party ends up 100 % blacklisted) or deterministically
rejected (partner selection, replay — zero yield).
"""

from benchmarks.conftest import run_once
from repro.experiments import violations_matrix


def test_violation_matrix(benchmark, archive):
    outcomes = run_once(benchmark, violations_matrix.run_violations)
    archive("violations_matrix", violations_matrix.render(outcomes))
    for outcome in outcomes:
        assert outcome.punished or outcome.rejected, outcome.violation
