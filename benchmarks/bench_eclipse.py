"""Bench: the extension eclipse-campaign experiment (§III-B/C).

Expected shape: targeted pressure never approaches a full eclipse —
the clone-hungry campaign exposes the party within a few cycles, and
the victim's view recovers.
"""

from benchmarks.conftest import run_once
from repro.experiments import eclipse_experiment


def test_eclipse_campaign(benchmark, archive):
    results = run_once(benchmark, eclipse_experiment.run_eclipse)
    archive("eclipse_campaign", eclipse_experiment.render(results))
    for result in results:
        assert not result.ever_fully_eclipsed
        assert result.final_pressure < 0.2
        assert result.blacklist_progress > 0.8
