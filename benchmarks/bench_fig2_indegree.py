"""Bench: regenerate paper Fig 2 (Cyclon indegree distribution).

Expected shape: every node's indegree clusters tightly around the
configured view length, for both network sizes.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig2_indegree


def test_fig2_indegree(benchmark, archive):
    panels = run_once(benchmark, fig2_indegree.run_fig2)
    archive("fig2_indegree", fig2_indegree.render(panels))
    for panel in panels:
        assert abs(panel.statistics["mean"] - panel.view_length) < 1.0
        assert panel.statistics["stddev"] < 0.25 * panel.view_length
        assert panel.statistics["min"] > 0
