"""Bench: regenerate paper Fig 7 (clone detection vs age at duplication).

Expected shape: detection is near-certain for young clones and decays
with age; a larger redemption cache lifts the overall ratio.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig7_redemption


def test_fig7_redemption(benchmark, archive):
    panels = run_once(benchmark, fig7_redemption.run_fig7)
    archive("fig7_redemption", fig7_redemption.render(panels))
    for panel in panels:
        overall = {c.cache_cycles: c.overall for c in panel.curves}
        caches = sorted(overall)
        # Bigger caches never hurt detection (allow sampling noise).
        assert overall[caches[-1]] >= overall[caches[0]] - 0.05
        # Detection exists at all.
        assert overall[caches[-1]] > 0.1
