"""Bench: analytic models vs simulation.

Archives one results file with three comparisons:

* the §VI-A cost budget (:class:`NetworkCostModel`) swept over the
  paper's configurations;
* the Fig 2 indegree moments, model vs a converged live overlay;
* the Fig 7 clone-detection estimate vs measured detection on a live
  cloning attack.

The models are first-principles approximations; the assertions pin
*agreement in kind* (same means, same ordering, same monotonicity),
not exact values.
"""

from benchmarks.conftest import run_once
from repro.adversary.cloning import CloningAttacker
from repro.analysis.detection import clone_detection_probability
from repro.analysis.indegree import empirical_moments, indegree_moments
from repro.analysis.netcost import NetworkCostModel
from repro.core.config import SecureCyclonConfig
from repro.cyclon.config import CyclonConfig
from repro.experiments.report import format_table
from repro.experiments.scenarios import (
    build_cyclon_overlay,
    build_secure_overlay,
)
from repro.metrics.degree import indegree_counts
from repro.metrics.detection import detected_identities, overall_detection_ratio


def _netcost_sweep():
    rows = []
    for view_length, swap_length in ((20, 3), (20, 5), (50, 3), (50, 5)):
        model = NetworkCostModel(
            view_length=view_length, swap_length=swap_length
        )
        rows.append(
            (
                f"l={view_length} s={swap_length}",
                model.pessimistic_descriptor_bytes,
                model.kilobytes_per_direction,
                model.bandwidth_bytes_per_second / 1024,
            )
        )
    return rows


def _indegree_comparison():
    view_length = 12
    nodes = 200
    overlay = build_cyclon_overlay(
        n=nodes,
        config=CyclonConfig(view_length=view_length, swap_length=3),
        seed=21,
    )
    overlay.run(50)
    measured_mean, measured_std = empirical_moments(
        indegree_counts(overlay.engine)
    )
    model_mean, model_std = indegree_moments(nodes, view_length)
    return [
        ("mean indegree", model_mean, measured_mean),
        ("std dev (model = envelope)", model_std, measured_std),
    ]


def _detection_comparison():
    nodes, view_length, malicious = 150, 12, 15
    overlay = build_secure_overlay(
        n=nodes,
        config=SecureCyclonConfig(
            view_length=view_length,
            swap_length=3,
            redemption_cache_cycles=5,
            blacklist_enabled=False,
        ),
        malicious=malicious,
        attack_start=8,
        seed=33,
        attacker_cls=CloningAttacker,
        attacker_kwargs={"age_range": (2, 10)},
    )
    overlay.run(60)
    events = [
        event for node in overlay.malicious_nodes for event in node.clone_events
    ]
    measured = overall_detection_ratio(
        events, detected_identities(overlay.engine.trace)
    )
    mean_age = 6  # midpoint of the attacked age range
    predicted = clone_detection_probability(
        nodes,
        view_length,
        age_at_cloning=mean_age,
        redemption_cache_cycles=5,
        malicious_fraction=malicious / nodes,
    )
    return [("clone-detection ratio", predicted, measured)]


def test_analysis_models(benchmark, archive):
    def run():
        return (
            _netcost_sweep(),
            _indegree_comparison(),
            _detection_comparison(),
        )

    netcost, indegree, detection = run_once(benchmark, run)

    blocks = [
        "Analytic models vs simulation",
        format_table(
            ["config", "descriptor (B)", "KB/direction", "KB/s per node"],
            netcost,
        ),
        format_table(["indegree metric", "model", "measured"], indegree),
        format_table(["detection metric", "model", "measured"], detection),
    ]
    archive("analysis_models", "\n\n".join(blocks))

    # §VI-A pinned numbers for the paper's configuration.
    assert netcost[0][1] == 430.0
    assert abs(netcost[0][2] - 10.5) < 0.02
    # Fig 2: measured mean indegree is exactly the view length; spread
    # stays below the random-graph envelope (with slack for noise).
    (_, model_mean, measured_mean), (_, envelope, measured_std) = indegree
    assert measured_mean == model_mean
    assert measured_std < 2.0 * envelope
    # Fig 7: model and measurement agree that young-age cloning is
    # caught more often than not.
    (_, predicted, measured), = detection
    assert predicted > 0.5
    assert measured > 0.5
