"""Micro-benchmarks of the protocol's hot operations.

These are true pytest-benchmark kernels (many rounds) covering the
per-message costs that dominate a SecureCyclon deployment: descriptor
transfer (one signature), chain verification, the sample-cache checks,
and a full simulated cycle.
"""

import random

import pytest

from repro.core.config import SecureCyclonConfig
from repro.core.descriptor import mint, verify_descriptor
from repro.core.samples import SampleCache
from repro.crypto.registry import KeyRegistry
from repro.experiments.scenarios import build_secure_overlay
from repro.sim.network import NetworkAddress


@pytest.fixture(scope="module")
def actors():
    registry = KeyRegistry()
    rng = random.Random(0)
    keypairs = [registry.new_keypair(rng) for _ in range(6)]
    address = NetworkAddress(host=1, port=1)
    return registry, keypairs, address


def test_descriptor_transfer(benchmark, actors):
    registry, keypairs, address = actors
    base = mint(keypairs[0], address, 0.0)

    def transfer():
        return base.transfer(keypairs[0], keypairs[1].public)

    descriptor = benchmark(transfer)
    assert descriptor.current_owner == keypairs[1].public


def test_chain_verification_six_hops(benchmark, actors):
    registry, keypairs, address = actors
    descriptor = mint(keypairs[0], address, 0.0)
    current = 0
    for nxt in (1, 2, 3, 4, 5, 1):
        descriptor = descriptor.transfer(
            keypairs[current], keypairs[nxt].public
        )
        current = nxt

    def verify_fresh():
        # Defeat both memo layers — the per-object memo and the
        # registry-level prefix-trust cache — so every round measures a
        # true first-sight verification of all six hop signatures.
        object.__setattr__(descriptor, "_verified_by", None)
        registry.trusted_chain_digests.clear()
        return verify_descriptor(descriptor, registry)

    assert benchmark(verify_fresh)


def test_sample_cache_observe(benchmark, actors):
    registry, keypairs, address = actors
    cache = SampleCache(horizon_cycles=40, period_seconds=10.0)
    descriptors = [
        mint(keypairs[i % 3], address, float(i // 3) * 10.0).transfer(
            keypairs[i % 3], keypairs[3].public
        )
        for i in range(120)
    ]

    counter = {"i": 0}

    def observe_one():
        descriptor = descriptors[counter["i"] % len(descriptors)]
        counter["i"] += 1
        return cache.observe(descriptor, cycle=counter["i"] // 10)

    benchmark(observe_one)


def test_full_cycle_200_nodes(benchmark):
    overlay = build_secure_overlay(
        n=200,
        config=SecureCyclonConfig(view_length=20, swap_length=3),
        seed=1,
    )
    overlay.run(3)  # warm up

    def one_cycle():
        overlay.run(1)

    benchmark.pedantic(one_cycle, rounds=5, iterations=1)
