"""Ablation benches for the design choices DESIGN.md calls out.

* chain-through-blacklisted dropping (on/off) — does also purging
  descriptors whose chains merely *pass through* a violator speed up
  recovery?
* sample-cache horizon sweep — how much detection power does a shorter
  cache retain?
* non-swappable swap limit (§V-A third restriction).
"""

from benchmarks.conftest import run_once
from repro.adversary.cloning import CloningAttacker
from repro.core.config import SecureCyclonConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_with_probes
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.detection import detected_identities, overall_detection_ratio
from repro.metrics.links import malicious_link_fraction


def _hub_recovery(drop_chains: bool) -> float:
    overlay = build_secure_overlay(
        n=200,
        config=SecureCyclonConfig(
            view_length=15,
            swap_length=3,
            drop_chains_through_blacklisted=drop_chains,
        ),
        malicious=30,
        attack_start=15,
        seed=31,
    )
    series = run_with_probes(
        overlay, 60, {"mal": malicious_link_fraction}, every=1
    )["mal"]
    # Cycles from attack start until malicious links fall below 1 %.
    for cycle, value in series.points:
        if cycle > 15 and value < 0.01:
            return float(cycle - 15)
    return float("inf")


def test_ablation_chain_policy(benchmark, archive):
    def run():
        return {
            "creator-only (paper)": _hub_recovery(False),
            "chains-through-blacklisted": _hub_recovery(True),
        }

    results = run_once(benchmark, run)
    archive(
        "ablation_chain_policy",
        "Ablation — purge policy vs hub-attack recovery time (cycles to "
        "<1% malicious links)\n"
        + format_table(["policy", "recovery cycles"], results.items()),
    )
    assert all(value < 60 for value in results.values())


def _clone_detection(horizon: int) -> float:
    overlay = build_secure_overlay(
        n=150,
        config=SecureCyclonConfig(
            view_length=12,
            swap_length=3,
            sample_horizon_cycles=horizon,
            blacklist_enabled=False,
        ),
        malicious=15,
        attack_start=8,
        seed=32,
        attacker_cls=CloningAttacker,
        attacker_kwargs={"age_range": (2, 14)},
    )
    overlay.run(60)
    events = [
        e for node in overlay.malicious_nodes for e in node.clone_events
    ]
    return overall_detection_ratio(
        events, detected_identities(overlay.engine.trace)
    )


def test_ablation_sample_horizon(benchmark, archive):
    def run():
        return {h: _clone_detection(h) for h in (6, 12, 24, 48)}

    results = run_once(benchmark, run)
    archive(
        "ablation_sample_horizon",
        "Ablation — sample-cache horizon (cycles) vs clone-detection ratio\n"
        + format_table(
            ["horizon", "detection ratio"],
            [(h, r) for h, r in results.items()],
        ),
    )
    horizons = sorted(results)
    # More memory never hurts detection (modulo noise).
    assert results[horizons[-1]] >= results[horizons[0]] - 0.05


def test_ablation_nonswap_swap_limit(benchmark, archive):
    def run():
        rows = []
        for limit in (None, 1, 0):
            overlay = build_secure_overlay(
                n=150,
                config=SecureCyclonConfig(
                    view_length=12,
                    swap_length=3,
                    non_swappable_swap_limit=limit,
                ),
                seed=33,
            )
            overlay.run(40)
            from repro.metrics.links import view_fill_fraction

            rows.append(
                (
                    "unlimited" if limit is None else str(limit),
                    view_fill_fraction(overlay.engine),
                )
            )
        return rows

    rows = run_once(benchmark, run)
    archive(
        "ablation_nonswap_limit",
        "Ablation — non-swappable swap limit vs honest view fill\n"
        + format_table(["limit", "view fill"], rows),
    )
    for _, fill in rows:
        assert fill > 0.85  # honest overlays stay healthy either way
