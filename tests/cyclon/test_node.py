"""Unit and small-integration tests for the Cyclon protocol node."""

import random

import pytest

from repro.cyclon.config import CyclonConfig
from repro.cyclon.node import CyclonNode, CyclonReply, CyclonRequest
from repro.errors import ConfigError
from repro.sim.channel import DropPolicy
from repro.sim.engine import Engine, SimConfig
from repro.bootstrap import bootstrap_cyclon


def build_pair(config=None):
    """Two directly wired Cyclon nodes inside a tiny engine."""
    engine = Engine(SimConfig(seed=3))
    config = config or CyclonConfig(view_length=5, swap_length=3)
    nodes = []
    for name in ("a", "b", "c", "d", "e", "f"):
        address = engine.network.reserve_address(name)
        node = CyclonNode(
            name, address, config, engine.rng_hub.stream(f"n-{name}")
        )
        engine.add_node(node)
        nodes.append(node)
    return engine, nodes


def test_config_validation():
    with pytest.raises(ConfigError):
        CyclonConfig(view_length=0)
    with pytest.raises(ConfigError):
        CyclonConfig(view_length=5, swap_length=6)
    with pytest.raises(ConfigError):
        CyclonConfig(swap_length=0)


def test_gossip_reverses_the_redeemed_link():
    engine, nodes = build_pair()
    a, b = nodes[0], nodes[1]
    a.view.insert(b.self_descriptor().aged(4))
    a.begin_cycle(0)
    b.begin_cycle(0)
    a.run_cycle(engine.network)
    # a redeemed its link to b; b now holds a fresh link to a.
    assert not a.view.contains_id("b")
    assert b.view.contains_id("a")
    assert b.view.entry_for("a").age == 0


def test_swap_conserves_views_between_honest_nodes():
    engine, nodes = build_pair()
    bootstrap_cyclon(engine.nodes, 5, random.Random(0))
    total_before = sum(len(node.view) for node in nodes)
    engine.run(5)
    total_after = sum(len(node.view) for node in nodes)
    # Honest gossip conserves link counts up to rare duplicate drops.
    assert total_after >= total_before - 3


def test_unreachable_partner_drops_descriptor():
    engine, nodes = build_pair()
    a = nodes[0]
    a.view.insert(nodes[1].self_descriptor().aged(9))
    engine.remove_node("b")
    a.begin_cycle(0)
    a.run_cycle(engine.network)
    assert not a.view.contains_id("b")
    assert len(a.view) == 0


def test_dropped_exchange_retains_sent_descriptors():
    engine = Engine(
        SimConfig(seed=3, drop_policy=DropPolicy(request_loss=1.0))
    )
    config = CyclonConfig(view_length=5, swap_length=3)
    a = CyclonNode(
        "a", engine.network.reserve_address("a"), config,
        engine.rng_hub.stream("a"),
    )
    b = CyclonNode(
        "b", engine.network.reserve_address("b"), config,
        engine.rng_hub.stream("b"),
    )
    engine.add_node(a)
    engine.add_node(b)
    a.view.insert(b.self_descriptor().aged(5))
    for name in ("x", "y"):
        address = engine.network.reserve_address(name)
        a.view.insert(
            CyclonNode(name, address, config, random.Random(0))
            .self_descriptor()
            .aged(1)
        )
    a.begin_cycle(0)
    a.run_cycle(engine.network)
    # The request was lost: a dropped b's link (it redeemed it) but kept
    # the rest of its view.
    assert not a.view.contains_id("b")
    assert a.view.contains_id("x") and a.view.contains_id("y")


def test_partner_reply_has_at_most_swap_length():
    engine, nodes = build_pair()
    b = nodes[1]
    bootstrap_cyclon(engine.nodes, 5, random.Random(0))
    b.begin_cycle(0)
    request = CyclonRequest(descriptors=(nodes[0].self_descriptor(),))
    reply = b.receive("a", request)
    assert isinstance(reply, CyclonReply)
    assert len(reply.descriptors) <= b.config.swap_length


def test_unknown_payload_rejected():
    engine, nodes = build_pair()
    with pytest.raises(TypeError):
        nodes[0].receive("b", object())


def test_small_overlay_stays_connected():
    engine = Engine(SimConfig(seed=11))
    config = CyclonConfig(view_length=6, swap_length=3)
    for i in range(30):
        name = f"n{i}"
        node = CyclonNode(
            name,
            engine.network.reserve_address(name),
            config,
            engine.rng_hub.stream(name),
        )
        engine.add_node(node)
    bootstrap_cyclon(engine.nodes, 6, engine.rng_hub.stream("boot"))
    engine.run(30)
    from repro.metrics.graphstats import largest_component_fraction

    assert largest_component_fraction(engine, legit_only=False) == 1.0
