"""Unit tests for legacy Cyclon descriptors."""

import pytest

from repro.cyclon.descriptor import CyclonDescriptor
from repro.sim.network import NetworkAddress


def test_aged_produces_new_instance():
    d = CyclonDescriptor(
        node_id="a", address=NetworkAddress(host=1, port=1), age=3
    )
    older = d.aged(2)
    assert older.age == 5
    assert d.age == 3  # immutability


def test_fresh_copy_resets_age():
    d = CyclonDescriptor(
        node_id="a", address=NetworkAddress(host=1, port=1), age=7
    )
    assert d.fresh_copy().age == 0


def test_negative_age_rejected():
    with pytest.raises(ValueError):
        CyclonDescriptor(
            node_id="a", address=NetworkAddress(host=1, port=1), age=-1
        )
