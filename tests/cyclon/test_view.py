"""Unit tests for the legacy Cyclon view."""

import random

import pytest

from repro.cyclon.descriptor import CyclonDescriptor
from repro.cyclon.view import CyclonView
from repro.sim.network import NetworkAddress


def desc(node_id, age=0):
    return CyclonDescriptor(
        node_id=node_id, address=NetworkAddress(host=1, port=1), age=age
    )


@pytest.fixture
def view():
    return CyclonView(owner_id="me", capacity=4)


def test_insert_and_capacity(view):
    for i in range(6):
        view.insert(desc(f"n{i}"))
    assert len(view) == 4
    assert view.free_slots == 0


def test_self_links_rejected(view):
    assert not view.insert(desc("me"))
    assert len(view) == 0


def test_duplicate_keeps_younger(view):
    view.insert(desc("a", age=5))
    assert view.insert(desc("a", age=2))
    assert view.entry_for("a").age == 2
    assert not view.insert(desc("a", age=9))
    assert view.entry_for("a").age == 2
    assert len(view) == 1


def test_oldest_selection(view):
    view.insert(desc("a", age=3))
    view.insert(desc("b", age=7))
    view.insert(desc("c", age=1))
    assert view.oldest().node_id == "b"


def test_increment_ages(view):
    view.insert(desc("a", age=0))
    view.increment_ages()
    view.increment_ages()
    assert view.entry_for("a").age == 2


def test_pop_random_removes(view):
    for i in range(4):
        view.insert(desc(f"n{i}"))
    popped = view.pop_random(2, random.Random(0))
    assert len(popped) == 2
    assert len(view) == 2
    for entry in popped:
        assert not view.contains_id(entry.node_id)


def test_pop_random_bounded_by_size(view):
    view.insert(desc("a"))
    assert len(view.pop_random(10, random.Random(0))) == 1


def test_remove(view):
    view.insert(desc("a"))
    assert view.remove(desc("a", age=9))  # removal is by node id
    assert not view.remove(desc("a"))


def test_replace_oldest_if_younger(view):
    for i, age in enumerate((5, 9, 2, 1)):
        view.insert(desc(f"n{i}", age=age))
    assert view.replace_oldest_if_younger(desc("fresh", age=0))
    assert not view.contains_id("n1")  # age 9 displaced
    assert view.contains_id("fresh")
    # An older descriptor cannot displace anything.
    assert not view.replace_oldest_if_younger(desc("stale", age=50))
    # Nor can a duplicate or a self-link.
    assert not view.replace_oldest_if_younger(desc("fresh", age=0))
    assert not view.replace_oldest_if_younger(desc("me", age=0))


def test_fill_from_respects_capacity(view):
    view.insert(desc("a"))
    filled = view.fill_from([desc("b"), desc("c"), desc("d"), desc("e")])
    assert filled == 3
    assert len(view) == 4


def test_invalid_capacity():
    with pytest.raises(ValueError):
        CyclonView(owner_id="me", capacity=0)
