"""End-to-end attack scenarios: the paper's headline claims in miniature.

Each test runs a full multi-node simulation and asserts the *shape* of
the corresponding paper figure: Cyclon succumbs (Fig 3), SecureCyclon
detects and purges (Fig 5), tit-for-tat bounds depletion (Fig 6), the
redemption cache raises clone detection (Fig 7).
"""

import pytest

from repro.core.config import SecureCyclonConfig
from repro.cyclon.config import CyclonConfig
from repro.experiments.runner import run_with_probes
from repro.experiments.scenarios import build_cyclon_overlay, build_secure_overlay
from repro.metrics.graphstats import largest_component_fraction
from repro.metrics.links import (
    blacklisted_malicious_fraction,
    malicious_link_fraction,
    view_fill_fraction,
)


def test_fig3_shape_cyclon_succumbs():
    overlay = build_cyclon_overlay(
        n=100,
        config=CyclonConfig(view_length=10, swap_length=3),
        malicious=10,
        attack_start=15,
        seed=11,
    )
    series = run_with_probes(
        overlay, 80, {"mal": malicious_link_fraction}, every=5
    )["mal"]
    assert series.y_at(10) < 0.3  # pre-attack: near population share
    assert series.final_y() > 0.95  # total takeover


def test_fig5_shape_securecyclon_recovers():
    overlay = build_secure_overlay(
        n=100,
        config=SecureCyclonConfig(view_length=10, swap_length=3),
        malicious=10,
        attack_start=15,
        seed=11,
    )
    series = run_with_probes(
        overlay, 60, {"mal": malicious_link_fraction}, every=1
    )["mal"]
    # A transient spike may appear after cycle 15, then collapse.
    assert series.final_y() < 0.02
    assert blacklisted_malicious_fraction(overlay.engine) > 0.9
    # The legitimate overlay survives in one piece.
    assert largest_component_fraction(overlay.engine) == 1.0
    assert view_fill_fraction(overlay.engine) > 0.85


def test_fig5_extreme_40_percent_malicious():
    overlay = build_secure_overlay(
        n=100,
        config=SecureCyclonConfig(view_length=10, swap_length=3),
        malicious=40,
        attack_start=15,
        seed=11,
    )
    series = run_with_probes(
        overlay, 70, {"mal": malicious_link_fraction}, every=1
    )["mal"]
    # Before the attack, malicious representation sits near its 40 %
    # population share; after the attack it is purged to ~0.
    assert series.y_at(10) > 0.3
    assert series.final_y() < 0.05
    assert blacklisted_malicious_fraction(overlay.engine) > 0.9


def test_proofs_propagate_to_every_legit_node():
    overlay = build_secure_overlay(
        n=80,
        config=SecureCyclonConfig(view_length=10, swap_length=3),
        malicious=10,
        attack_start=10,
        seed=13,
    )
    overlay.run(50)
    legit = overlay.engine.legit_nodes()
    fractions = [
        sum(
            1
            for mid in overlay.engine.malicious_ids
            if node.blacklist.is_blacklisted(mid)
        )
        / 10
        for node in legit
    ]
    # Nearly every legitimate node learned of (nearly) every violator.
    assert sum(fractions) / len(fractions) > 0.9


def test_self_healing_after_purge():
    """After the purge, the overlay keeps behaving like honest Cyclon."""
    overlay = build_secure_overlay(
        n=100,
        config=SecureCyclonConfig(view_length=10, swap_length=3),
        malicious=10,
        attack_start=10,
        seed=17,
    )
    overlay.run(70)
    from repro.metrics.degree import indegree_statistics

    stats = indegree_statistics(overlay.engine)
    # Only legit nodes remain relevant; their indegrees re-balance.
    assert stats["mean"] > 7.0
    assert view_fill_fraction(overlay.engine) > 0.85
