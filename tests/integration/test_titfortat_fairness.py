"""The §V-B fairness invariant under message loss.

Tit-for-tat places the risk of a non-atomic exchange entirely on the
initiator: the partner only ever counter-transfers after receiving, so
whatever gets dropped, the *partner* never ends a cycle with fewer
descriptors than it started with (it repairs with what it received).
"""

import pytest

from repro.core.config import SecureCyclonConfig
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.links import view_fill_fraction
from repro.sim.channel import DropPolicy
from repro.sim.engine import SimConfig


@pytest.mark.parametrize("loss", [0.02, 0.10])
def test_partner_never_loses_under_reply_loss(loss):
    overlay = build_secure_overlay(
        n=50,
        config=SecureCyclonConfig(view_length=8, swap_length=3),
        seed=61,
        sim_config=SimConfig(
            seed=61, drop_policy=DropPolicy(reply_loss=loss)
        ),
    )
    engine = overlay.engine

    class FairnessCheck:
        """Record per-node view size before/after every cycle."""

        def on_start(self, engine):
            pass

        def on_cycle_end(self, engine, cycle):
            pass

        def on_finish(self, engine):
            pass

    overlay.run(30)
    # Dropped replies strand descriptors at the partner side; the
    # overall view occupancy must nevertheless stay high because the
    # §V-A repair backfills the initiator's deficit.
    assert view_fill_fraction(engine) > 0.75


def test_total_owned_descriptors_bounded_by_mint_rate():
    """Token conservation: views can never hold more descriptors than
    were ever minted (1 per node per cycle plus the bootstrap)."""
    overlay = build_secure_overlay(
        n=40,
        config=SecureCyclonConfig(view_length=6, swap_length=3),
        seed=62,
    )
    cycles = 25
    overlay.run(cycles)
    total_links = sum(
        len(node.view) for node in overlay.engine.nodes.values()
    )
    bootstrap_links = 40 * 6
    minted_since = 40 * cycles
    assert total_links <= bootstrap_links + minted_since


def test_request_loss_costs_at_most_the_redeemed_token():
    """With 100 % request loss every exchange dies at the open: each
    initiator loses exactly its redeemed descriptor per cycle and
    nothing else."""
    overlay = build_secure_overlay(
        n=30,
        config=SecureCyclonConfig(view_length=6, swap_length=3),
        seed=63,
        sim_config=SimConfig(
            seed=63, drop_policy=DropPolicy(request_loss=1.0)
        ),
    )
    before = {
        node.node_id: len(node.view)
        for node in overlay.engine.nodes.values()
    }
    overlay.engine.run(1)
    for node in overlay.engine.nodes.values():
        assert before[node.node_id] - len(node.view) <= 1
