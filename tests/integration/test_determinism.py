"""Determinism and token-conservation invariants over whole runs.

The simulator promises bit-for-bit reproducibility per seed — every
experiment in EXPERIMENTS.md leans on that — and SecureCyclon's
equilibrium arithmetic (§II-B) leans on descriptors being conserved
tokens.  These tests check both over full end-to-end runs, including
adversarial ones.
"""

import pytest

from repro.core.config import SecureCyclonConfig
from repro.cyclon.config import CyclonConfig
from repro.experiments.scenarios import (
    build_cyclon_overlay,
    build_secure_overlay,
)
from repro.metrics.degree import indegree_counts
from repro.metrics.links import malicious_link_fraction, view_targets


def _secure_fingerprint(overlay):
    """A structural digest: per-node sorted neighbor lists + flags."""
    digest = []
    for node_id in sorted(overlay.engine.nodes, key=repr):
        node = overlay.engine.nodes[node_id]
        entries = sorted(
            (repr(entry.creator), entry.timestamp, entry.non_swappable)
            for entry in node.view
        )
        digest.append((repr(node_id), tuple(entries)))
    return tuple(digest)


def test_same_seed_same_secure_overlay():
    fingerprints = []
    for _ in range(2):
        overlay = build_secure_overlay(
            n=60,
            config=SecureCyclonConfig(view_length=8, swap_length=3),
            seed=71,
        )
        overlay.run(25)
        fingerprints.append(_secure_fingerprint(overlay))
    assert fingerprints[0] == fingerprints[1]


def test_same_seed_same_attack_trajectory():
    series = []
    for _ in range(2):
        overlay = build_secure_overlay(
            n=60,
            config=SecureCyclonConfig(view_length=8, swap_length=3),
            malicious=8,
            attack_start=10,
            seed=72,
        )
        trajectory = []
        for _cycle in range(30):
            overlay.run(1)
            trajectory.append(malicious_link_fraction(overlay.engine))
        series.append(tuple(trajectory))
    assert series[0] == series[1]


def test_different_seeds_differ():
    fingerprints = []
    for seed in (73, 74):
        overlay = build_secure_overlay(
            n=60,
            config=SecureCyclonConfig(view_length=8, swap_length=3),
            seed=seed,
        )
        overlay.run(10)
        fingerprints.append(_secure_fingerprint(overlay))
    assert fingerprints[0] != fingerprints[1]


def test_cyclon_runs_are_deterministic_too():
    digests = []
    for _ in range(2):
        overlay = build_cyclon_overlay(
            n=60,
            config=CyclonConfig(view_length=8, swap_length=3),
            seed=75,
        )
        overlay.run(25)
        digest = tuple(
            (repr(nid), tuple(sorted(map(repr, view_targets(node)))))
            for nid, node in sorted(
                overlay.engine.nodes.items(), key=lambda kv: repr(kv[0])
            )
        )
        digests.append(digest)
    assert digests[0] == digests[1]


def test_cyclon_total_links_conserved():
    """Fail-free legacy Cyclon conserves the total link count exactly:
    redeem + replace keeps n·ℓ directed edges forever (§II-B)."""
    overlay = build_cyclon_overlay(
        n=80, config=CyclonConfig(view_length=10, swap_length=4), seed=76
    )
    expected = 80 * 10
    for _ in range(5):
        overlay.run(5)
        total = sum(
            len(list(node.view)) for node in overlay.engine.nodes.values()
        )
        assert total == expected


def test_cyclon_indegree_sum_equals_link_count():
    overlay = build_cyclon_overlay(
        n=80, config=CyclonConfig(view_length=10, swap_length=3), seed=77
    )
    overlay.run(20)
    counts = indegree_counts(overlay.engine)
    assert sum(counts.values()) == 80 * 10


def test_secure_descriptor_population_is_stable():
    """SecureCyclon tokens are minted once per node per cycle and die on
    redemption; in the steady state the standing population per node
    hovers around ℓ (the §II-B equilibrium), so the overlay-wide view
    occupancy stays within a few percent of n·ℓ."""
    n, view_length = 80, 10
    overlay = build_secure_overlay(
        n=n,
        config=SecureCyclonConfig(view_length=view_length, swap_length=3),
        seed=78,
    )
    overlay.run(30)
    total = sum(len(node.view) for node in overlay.engine.nodes.values())
    assert total == pytest.approx(n * view_length, rel=0.05)


def test_no_honest_node_ever_blacklisted_under_every_attacker():
    """The zero-false-positives guarantee, end to end: whatever the
    adversary does, proofs only ever name actual violators."""
    from repro.adversary.cloning import CloningAttacker
    from repro.adversary.frequency import FrequencyAttacker
    from repro.adversary.replay import ReplayAttacker
    from repro.adversary.stealth import StealthBiasAttacker

    for attacker_cls, kwargs in (
        (None, {}),  # scenario default: SecureHubAttacker
        (CloningAttacker, {"age_range": (2, 8)}),
        (FrequencyAttacker, {"burst": 3}),
        (ReplayAttacker, {}),
        (StealthBiasAttacker, {}),
    ):
        build_kwargs = dict(
            n=60,
            config=SecureCyclonConfig(view_length=8, swap_length=3),
            malicious=8,
            attack_start=8,
            seed=79,
        )
        if attacker_cls is not None:
            build_kwargs["attacker_cls"] = attacker_cls
            build_kwargs["attacker_kwargs"] = kwargs
        overlay = build_secure_overlay(**build_kwargs)
        overlay.run(35)
        honest_ids = {
            node.node_id for node in overlay.engine.legit_nodes()
        }
        for node in overlay.engine.legit_nodes():
            blamed = set(node.blacklist.members())
            assert not (blamed & honest_ids), (
                f"honest node blacklisted under "
                f"{attacker_cls.__name__ if attacker_cls else 'hub'}"
            )
