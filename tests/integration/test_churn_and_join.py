"""Churn, joins, bootstrap and failure-injection scenarios (§V-A)."""

import pytest

from repro.bootstrap import bootstrap_joiner
from repro.core.config import SecureCyclonConfig
from repro.core.node import SecureCyclonNode
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.graphstats import largest_component_fraction
from repro.metrics.links import view_fill_fraction
from repro.sim.channel import DropPolicy
from repro.sim.engine import SimConfig


def test_overlay_survives_crashes():
    overlay = build_secure_overlay(
        n=80, config=SecureCyclonConfig(view_length=10, swap_length=3), seed=21
    )
    overlay.run(15)
    # Crash a quarter of the population abruptly.
    victims = list(overlay.engine.alive_ids())[:20]
    for victim in victims:
        overlay.engine.remove_node(victim)
    overlay.run(25)
    assert largest_component_fraction(overlay.engine) == 1.0
    assert view_fill_fraction(overlay.engine) > 0.7


def test_joiner_bootstraps_and_integrates():
    overlay = build_secure_overlay(
        n=60, config=SecureCyclonConfig(view_length=8, swap_length=3), seed=22
    )
    overlay.run(10)
    engine = overlay.engine

    keypair = engine.registry.new_keypair(engine.rng_hub.stream("joiner"))
    address = engine.network.reserve_address(keypair.public)
    joiner = SecureCyclonNode(
        keypair=keypair,
        address=address,
        config=SecureCyclonConfig(view_length=8, swap_length=3),
        clock=engine.clock,
        registry=engine.registry,
        rng=engine.rng_hub.stream("joiner-rng"),
        trace=engine.trace,
    )
    joiner.bind_network(engine.network)
    donors = engine.legit_nodes()
    acquired = bootstrap_joiner(
        joiner, donors, links=4, rng=engine.rng_hub.stream("boot-join")
    )
    assert acquired == 4
    engine.add_node(joiner)
    overlay.run(25)
    # The joiner's view fills and other nodes learn of it.
    assert len(joiner.view) >= 6
    from repro.metrics.degree import indegree_counts

    assert indegree_counts(engine)[joiner.node_id] > 0


def test_donors_keep_non_swappable_copies():
    overlay = build_secure_overlay(
        n=30, config=SecureCyclonConfig(view_length=6, swap_length=3), seed=23
    )
    overlay.run(5)
    engine = overlay.engine
    keypair = engine.registry.new_keypair(engine.rng_hub.stream("j2"))
    joiner = SecureCyclonNode(
        keypair=keypair,
        address=engine.network.reserve_address(keypair.public),
        config=SecureCyclonConfig(view_length=6, swap_length=3),
        clock=engine.clock,
        registry=engine.registry,
        rng=engine.rng_hub.stream("j2-rng"),
    )
    donors = engine.legit_nodes()[:3]
    before = sum(node.view.non_swappable_count() for node in donors)
    acquired = bootstrap_joiner(
        joiner, donors, links=3, rng=engine.rng_hub.stream("j2-boot")
    )
    after = sum(node.view.non_swappable_count() for node in donors)
    assert after - before == acquired


def test_lossy_network_keeps_overlay_healthy():
    """10 % message loss: exchanges abort, §V-A repair keeps views full."""
    overlay = build_secure_overlay(
        n=60,
        config=SecureCyclonConfig(view_length=8, swap_length=3),
        seed=24,
        sim_config=SimConfig(
            seed=24, drop_policy=DropPolicy(request_loss=0.05, reply_loss=0.05)
        ),
    )
    overlay.run(40)
    assert largest_component_fraction(overlay.engine) == 1.0
    assert view_fill_fraction(overlay.engine) > 0.6
    # No honest node was ever accused of anything despite the chaos.
    assert overlay.engine.trace.count("secure.violation_found") == 0


def test_no_false_positives_over_long_honest_run():
    overlay = build_secure_overlay(
        n=50, config=SecureCyclonConfig(view_length=8, swap_length=3), seed=25
    )
    overlay.run(60)
    assert overlay.engine.trace.count("secure.violation_found") == 0
    assert overlay.engine.trace.count("secure.blacklisted") == 0
