"""The exception hierarchy contract."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            if obj is errors.ReproError:
                continue
            assert issubclass(obj, errors.ReproError), name


def test_hierarchy_relationships():
    assert issubclass(errors.SignatureError, errors.CryptoError)
    assert issubclass(errors.UnknownKeyError, errors.CryptoError)
    assert issubclass(errors.DescriptorError, errors.ProtocolError)
    assert issubclass(errors.RedemptionError, errors.ProtocolError)
    assert issubclass(errors.ExchangeAborted, errors.ProtocolError)
    assert issubclass(errors.ChannelDropped, errors.ChannelError)
    assert issubclass(errors.PeerUnreachable, errors.ChannelError)


def test_catching_the_base_catches_everything():
    with pytest.raises(errors.ReproError):
        raise errors.PeerUnreachable("gone")
    with pytest.raises(errors.ReproError):
        raise errors.ConfigError("bad")
