"""The examples are part of the public surface — keep them honest.

Every example must compile, carry a run-documented docstring, expose a
``main()`` and the ``__main__`` guard; the quickstart (the one a new
user runs first) is additionally executed end to end.
"""

import ast
import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable minimum; we ship more


@pytest.mark.parametrize(
    "path", EXAMPLES, ids=lambda path: path.name
)
def test_example_compiles(path, tmp_path):
    py_compile.compile(
        str(path), cfile=str(tmp_path / "out.pyc"), doraise=True
    )


@pytest.mark.parametrize(
    "path", EXAMPLES, ids=lambda path: path.name
)
def test_example_structure(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    docstring = ast.get_docstring(tree)
    assert docstring, f"{path.name} lacks a docstring"
    assert "Run:" in docstring, f"{path.name} docstring lacks a Run: line"
    function_names = {
        node.name for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    assert "main" in function_names, f"{path.name} lacks a main()"
    source = path.read_text(encoding="utf-8")
    assert '__name__ == "__main__"' in source or (
        "__name__ == '__main__'" in source
    ), f"{path.name} lacks the __main__ guard"


def test_quickstart_runs_end_to_end():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    assert "samples these peers" in completed.stdout
