"""Equivalence of the indexed views against the original list scans.

The dict-indexed ``CyclonView``/``SecureView`` (with O(1) ageing and a
maintained oldest pointer) must be *observably identical* to the plain
list implementations they replaced: same return values, same entry
order, same RNG consumption, same tie-breaking.  These tests drive
both implementations with the same randomised operation sequences and
compare them step by step — plus the documented invariants: at most
``capacity`` entries, one entry per target/identity, no self-links.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.descriptor import mint
from repro.core.view import SecureView
from repro.crypto.registry import KeyRegistry
from repro.cyclon.descriptor import CyclonDescriptor
from repro.cyclon.view import CyclonView
from repro.sim.network import NetworkAddress

_ADDRESS = NetworkAddress(host=1, port=1)
_OWNER_ID = "owner"


class ListCyclonView:
    """Reference: the original list-scan CyclonView, verbatim semantics."""

    def __init__(self, owner_id, capacity):
        self.owner_id = owner_id
        self.capacity = capacity
        self._entries = []

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def contains_id(self, node_id):
        return any(e.node_id == node_id for e in self._entries)

    def entry_for(self, node_id):
        for e in self._entries:
            if e.node_id == node_id:
                return e
        return None

    def neighbor_ids(self):
        return [e.node_id for e in self._entries]

    def oldest(self):
        if not self._entries:
            return None
        return max(self._entries, key=lambda e: e.age)

    def increment_ages(self):
        self._entries = [e.aged() for e in self._entries]

    def remove(self, descriptor):
        for i, e in enumerate(self._entries):
            if e.node_id == descriptor.node_id:
                del self._entries[i]
                return True
        return False

    def pop_random(self, count, rng):
        count = min(count, len(self._entries))
        if count == 0:
            return []
        chosen_indices = rng.sample(range(len(self._entries)), count)
        chosen = [self._entries[i] for i in chosen_indices]
        for i in sorted(chosen_indices, reverse=True):
            del self._entries[i]
        return chosen

    def insert(self, descriptor):
        if descriptor.node_id == self.owner_id:
            return False
        for i, e in enumerate(self._entries):
            if e.node_id == descriptor.node_id:
                if descriptor.age < e.age:
                    self._entries[i] = descriptor
                    return True
                return False
        if len(self._entries) >= self.capacity:
            return False
        self._entries.append(descriptor)
        return True

    def replace_oldest_if_younger(self, descriptor):
        if descriptor.node_id == self.owner_id:
            return False
        if self.contains_id(descriptor.node_id):
            return False
        oldest = self.oldest()
        if oldest is None or descriptor.age >= oldest.age:
            return False
        self.remove(oldest)
        self._entries.append(descriptor)
        return True


cyclon_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=6),
        ),
        st.tuples(
            st.just("replace_oldest"),
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=6),
        ),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=9)),
        st.tuples(st.just("pop"), st.integers(min_value=0, max_value=4)),
        st.tuples(st.just("age")),
        st.tuples(st.just("oldest")),
    ),
    min_size=1,
    max_size=60,
)


def _snapshot(view):
    return [(d.node_id, d.age) for d in view]


@settings(max_examples=120, deadline=None)
@given(ops=cyclon_ops, rng_seed=st.integers(min_value=0, max_value=2**16))
def test_cyclon_view_matches_list_reference(ops, rng_seed):
    indexed = CyclonView(_OWNER_ID, capacity=5)
    reference = ListCyclonView(_OWNER_ID, capacity=5)
    rng_a = random.Random(rng_seed)
    rng_b = random.Random(rng_seed)

    for op in ops:
        kind = op[0]
        if kind == "insert":
            d = CyclonDescriptor(node_id=op[1], address=_ADDRESS, age=op[2])
            assert indexed.insert(d) == reference.insert(d)
        elif kind == "replace_oldest":
            d = CyclonDescriptor(node_id=op[1], address=_ADDRESS, age=op[2])
            assert indexed.replace_oldest_if_younger(
                d
            ) == reference.replace_oldest_if_younger(d)
        elif kind == "remove":
            d = CyclonDescriptor(node_id=op[1], address=_ADDRESS, age=0)
            assert indexed.remove(d) == reference.remove(d)
        elif kind == "pop":
            got = indexed.pop_random(op[1], rng_a)
            want = reference.pop_random(op[1], rng_b)
            assert [(d.node_id, d.age) for d in got] == [
                (d.node_id, d.age) for d in want
            ]
        elif kind == "age":
            indexed.increment_ages()
            reference.increment_ages()
        elif kind == "oldest":
            got = indexed.oldest()
            want = reference.oldest()
            assert (got is None) == (want is None)
            if got is not None:
                assert (got.node_id, got.age) == (want.node_id, want.age)

        # Same observable state after every operation.
        assert _snapshot(indexed) == _snapshot(reference)
        # Documented invariants.
        assert len(indexed) <= indexed.capacity
        ids = indexed.neighbor_ids()
        assert len(ids) == len(set(ids))
        assert _OWNER_ID not in ids
        # RNG streams consumed identically.
        assert rng_a.getstate() == rng_b.getstate()


def test_cyclon_oldest_tie_break_is_first_position():
    """Pinned rule: among equal ages the earliest view position wins."""
    view = CyclonView(_OWNER_ID, capacity=4)
    view.insert(CyclonDescriptor(node_id="a", address=_ADDRESS, age=3))
    view.insert(CyclonDescriptor(node_id="b", address=_ADDRESS, age=3))
    view.insert(CyclonDescriptor(node_id="c", address=_ADDRESS, age=1))
    assert view.oldest().node_id == "a"
    # Removing the winner promotes the next earliest among the tied.
    view.remove(CyclonDescriptor(node_id="a", address=_ADDRESS, age=3))
    assert view.oldest().node_id == "b"
    # Ageing preserves the rule (all ages move together).
    view.increment_ages()
    assert view.oldest().node_id == "b"


class ListSecureView:
    """Reference: the original list-scan SecureView, verbatim semantics."""

    def __init__(self, owner_id, capacity):
        self.owner_id = owner_id
        self.capacity = capacity
        self._entries = []

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def descriptors(self):
        return [e.descriptor for e in self._entries]

    def contains_creator(self, creator):
        return any(e.creator == creator for e in self._entries)

    def non_swappable_count(self):
        return sum(1 for e in self._entries if e.non_swappable)

    def oldest(self):
        if not self._entries:
            return None
        return min(self._entries, key=lambda e: e.timestamp)

    def insert(self, descriptor, non_swappable=False):
        from repro.core.view import ViewEntry

        if descriptor.creator == self.owner_id:
            return False
        candidate = ViewEntry(descriptor=descriptor, non_swappable=non_swappable)
        identity = descriptor.identity
        for i, e in enumerate(self._entries):
            if e.descriptor.identity != identity:
                continue
            if e.non_swappable and not candidate.non_swappable:
                self._entries[i] = candidate
                return True
            return False
        if len(self._entries) >= self.capacity:
            return False
        self._entries.append(candidate)
        return True

    def remove_identity(self, identity):
        for i, e in enumerate(self._entries):
            if e.descriptor.identity == identity:
                return self._entries.pop(i)
        return None

    def pop_random_swappable(self, count, rng, exclude_creator=None):
        swappable = [
            i
            for i, e in enumerate(self._entries)
            if not e.non_swappable
            and (exclude_creator is None or e.creator != exclude_creator)
        ]
        count = min(count, len(swappable))
        if count == 0:
            return []
        chosen = rng.sample(swappable, count)
        picked = [self._entries[i] for i in chosen]
        for i in sorted(chosen, reverse=True):
            del self._entries[i]
        return picked

    def purge_creator(self, creator):
        before = len(self._entries)
        self._entries = [e for e in self._entries if e.creator != creator]
        return before - len(self._entries)


_REGISTRY = KeyRegistry()
_SEED_RNG = random.Random(13)
_KEYPAIRS = [_REGISTRY.new_keypair(_SEED_RNG) for _ in range(5)]
_VIEW_OWNER = _REGISTRY.new_keypair(_SEED_RNG)
# A pool of descriptors owned by the view's owner (as SecureView holds).
_POOL = [
    mint(_KEYPAIRS[i % 5], _ADDRESS, float(i) * 10.0).transfer(
        _KEYPAIRS[i % 5], _VIEW_OWNER.public
    )
    for i in range(12)
]

secure_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.integers(min_value=0, max_value=11),
            st.booleans(),
        ),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=11)),
        st.tuples(
            st.just("pop"),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=5),
        ),
        st.tuples(st.just("purge"), st.integers(min_value=0, max_value=4)),
        st.tuples(st.just("oldest")),
    ),
    min_size=1,
    max_size=50,
)


def _secure_snapshot(view):
    return [
        (e.descriptor.identity, e.non_swappable) for e in view
    ]


@settings(max_examples=120, deadline=None)
@given(ops=secure_ops, rng_seed=st.integers(min_value=0, max_value=2**16))
def test_secure_view_matches_list_reference(ops, rng_seed):
    indexed = SecureView(_VIEW_OWNER.public, capacity=5)
    reference = ListSecureView(_VIEW_OWNER.public, capacity=5)
    rng_a = random.Random(rng_seed)
    rng_b = random.Random(rng_seed)

    for op in ops:
        kind = op[0]
        if kind == "insert":
            d = _POOL[op[1]]
            assert indexed.insert(d, non_swappable=op[2]) == reference.insert(
                d, non_swappable=op[2]
            )
        elif kind == "remove":
            identity = _POOL[op[1]].identity
            got = indexed.remove_identity(identity)
            want = reference.remove_identity(identity)
            assert (got is None) == (want is None)
        elif kind == "pop":
            exclude = (
                _KEYPAIRS[op[2]].public if op[2] < len(_KEYPAIRS) else None
            )
            got = indexed.pop_random_swappable(
                op[1], rng_a, exclude_creator=exclude
            )
            want = reference.pop_random_swappable(
                op[1], rng_b, exclude_creator=exclude
            )
            assert [
                (e.descriptor.identity, e.non_swappable) for e in got
            ] == [(e.descriptor.identity, e.non_swappable) for e in want]
        elif kind == "purge":
            creator = _KEYPAIRS[op[1]].public
            assert indexed.purge_creator(creator) == reference.purge_creator(
                creator
            )
        elif kind == "oldest":
            got = indexed.oldest()
            want = reference.oldest()
            assert (got is None) == (want is None)
            if got is not None:
                assert got.descriptor.identity == want.descriptor.identity

        assert _secure_snapshot(indexed) == _secure_snapshot(reference)
        assert len(indexed) <= indexed.capacity
        identities = [e.descriptor.identity for e in indexed]
        assert len(identities) == len(set(identities))
        assert all(e.creator != _VIEW_OWNER.public for e in indexed)
        assert indexed.non_swappable_count() == reference.non_swappable_count()
        assert rng_a.getstate() == rng_b.getstate()
