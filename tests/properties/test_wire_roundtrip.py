"""Property-based round-trip tests for the wire codec."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.descriptor import TransferKind, mint, verify_descriptor
from repro.core.proofs import build_cloning_proof
from repro.core.wire import (
    decode_descriptor,
    decode_proof,
    descriptor_bits,
    encode_descriptor,
    encode_proof,
    encoded_descriptor_size,
)
from repro.crypto.registry import KeyRegistry
from repro.sim.network import NetworkAddress

_REGISTRY = KeyRegistry()
_RNG = random.Random(99)
_KEYPAIRS = [_REGISTRY.new_keypair(_RNG) for _ in range(6)]


@st.composite
def descriptors(draw):
    creator = draw(st.integers(0, 5))
    host = draw(st.integers(0, 2**32 - 1))
    port = draw(st.integers(0, 2**16 - 1))
    timestamp = draw(
        st.floats(
            min_value=-1e6,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        )
    )
    descriptor = mint(
        _KEYPAIRS[creator], NetworkAddress(host=host, port=port), timestamp
    )
    hops = draw(st.lists(st.integers(0, 5), max_size=5))
    current = creator
    for nxt in hops:
        descriptor = descriptor.transfer(
            _KEYPAIRS[current], _KEYPAIRS[nxt].public
        )
        current = nxt
    if draw(st.booleans()) and descriptor.hops:
        descriptor = descriptor.redeem(
            _KEYPAIRS[current], non_swappable=draw(st.booleans())
        )
    return descriptor


@given(descriptor=descriptors())
@settings(max_examples=80, deadline=None)
def test_descriptor_roundtrip(descriptor):
    decoded = decode_descriptor(encode_descriptor(descriptor))
    assert decoded == descriptor
    assert decoded.identity == descriptor.identity
    assert decoded.current_owner == descriptor.current_owner
    # Signatures survive, so verification still passes.
    assert verify_descriptor(decoded, _REGISTRY) == verify_descriptor(
        descriptor, _REGISTRY
    )


@given(descriptor=descriptors())
@settings(max_examples=40, deadline=None)
def test_encoded_size_tracks_budget(descriptor):
    budget_bytes = descriptor_bits(descriptor) // 8
    measured = encoded_descriptor_size(descriptor)
    # One kind byte per hop plus fixed framing (~16 bytes).
    overhead = measured - budget_bytes
    assert 0 <= overhead <= 16 + len(descriptor.hops)


@given(spender=st.integers(0, 3), a=st.integers(0, 5), b=st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_proof_roundtrip(spender, a, b):
    if a == b:
        b = (b + 1) % 6
    base = mint(
        _KEYPAIRS[4], NetworkAddress(host=1, port=1), 0.0
    ).transfer(_KEYPAIRS[4], _KEYPAIRS[spender].public)
    proof = build_cloning_proof(
        base.transfer(_KEYPAIRS[spender], _KEYPAIRS[a].public),
        base.transfer(_KEYPAIRS[spender], _KEYPAIRS[b].public),
    )
    decoded = decode_proof(encode_proof(proof))
    assert decoded.culprit == proof.culprit
    assert decoded.validate(_REGISTRY, 10.0)
