"""Property tests for the text-rendering helpers."""

from hypothesis import given, strategies as st

from repro.experiments.plotting import ascii_chart
from repro.experiments.report import format_table, series_table
from repro.metrics.series import Series

cell = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
        max_size=12,
    ),
)


@given(
    headers=st.lists(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Lu")),
            min_size=1,
            max_size=10,
        ),
        min_size=1,
        max_size=5,
    ),
    row_count=st.integers(min_value=0, max_value=8),
    data=st.data(),
)
def test_format_table_lines_are_aligned(headers, row_count, data):
    rows = [
        [data.draw(cell) for _ in headers] for _ in range(row_count)
    ]
    table = format_table(headers, rows)
    lines = table.splitlines()
    assert len(lines) == 2 + row_count  # header + rule + rows
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # perfectly rectangular


@given(
    points=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=500),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_series_table_contains_every_x(points):
    series = Series(label="s")
    for x, y in points:
        series.append(float(x), y)
    table = series_table("t", [series])
    for x, _ in points:
        assert str(x) in table


@given(
    series_count=st.integers(min_value=1, max_value=6),
    length=st.integers(min_value=1, max_value=40),
    width=st.integers(min_value=10, max_value=120),
    height=st.integers(min_value=4, max_value=40),
    data=st.data(),
)
def test_ascii_chart_never_crashes_and_respects_width(
    series_count, length, width, height, data
):
    series_list = []
    for index in range(series_count):
        series = Series(label=f"s{index}")
        for x in range(length):
            series.append(
                float(x),
                data.draw(
                    st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)
                ),
            )
        series_list.append(series)
    chart = ascii_chart(
        series_list, width=width, height=height, y_min=-1000.0, y_max=1000.0
    )
    plot_lines = [line for line in chart.splitlines() if "|" in line]
    assert len(plot_lines) == height
    for line in plot_lines:
        assert len(line.split("|", 1)[1]) == width
    for index in range(series_count):
        assert f"s{index}" in chart
