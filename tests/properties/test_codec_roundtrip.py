"""Property-based round-trip tests for the whole-message codec.

Covers every dialogue message type the wire transport can carry — the
eight SecureCyclon messages (``GossipOpen`` … ``ProofFlood``) plus the
registered legacy-Cyclon shuffle messages — including empty sequences
and max-hop ownership chains, and fuzzes the error paths: truncations,
random byte prefixes, unknown type bytes, *mutations* of valid frames
(bit flips and cross-frame splices — what the wire-plane attackers
actually produce), and the frame-size ceiling must raise the typed
:class:`~repro.errors.CodecError`, never leak ``struct.error``.
"""

import random
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codec import (
    MAX_FRAME_BYTES,
    decode_message,
    encode_message,
    encoded_message_size,
    register_message_codec,
)
from repro.core.codec_batch import (
    BatchEncoder,
    FastDecoder,
    InternTable,
    split_frames,
)
from repro.core.descriptor import mint, verify_descriptor
from repro.core.exchange import (
    BulkSwapMessage,
    BulkSwapReply,
    GossipAccept,
    GossipOpen,
    GossipReject,
    ProofFlood,
    TransferMessage,
    TransferReply,
)
from repro.core.proofs import build_cloning_proof
from repro.crypto.registry import KeyRegistry
from repro.cyclon import CyclonDescriptor, CyclonReply, CyclonRequest
from repro.errors import CodecError, DescriptorError, FrameOversizeError
from repro.sim.network import NetworkAddress

_REGISTRY = KeyRegistry()
_RNG = random.Random(7)
_KEYPAIRS = [_REGISTRY.new_keypair(_RNG) for _ in range(5)]


@st.composite
def descriptors(draw):
    creator = draw(st.integers(0, 4))
    timestamp = draw(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
    )
    descriptor = mint(
        _KEYPAIRS[creator],
        NetworkAddress(
            host=draw(st.integers(0, 2**32 - 1)),
            port=draw(st.integers(0, 2**16 - 1)),
        ),
        timestamp,
    )
    current = creator
    for nxt in draw(st.lists(st.integers(0, 4), max_size=4)):
        descriptor = descriptor.transfer(
            _KEYPAIRS[current], _KEYPAIRS[nxt].public
        )
        current = nxt
    return descriptor


@st.composite
def proofs(draw):
    base = draw(descriptors())
    owner_index = next(
        index
        for index, keypair in enumerate(_KEYPAIRS)
        if keypair.public == base.current_owner
    )
    owner = _KEYPAIRS[owner_index]
    branch_a = base.transfer(owner, _KEYPAIRS[(owner_index + 1) % 5].public)
    branch_b = base.transfer(owner, _KEYPAIRS[(owner_index + 2) % 5].public)
    proof = build_cloning_proof(branch_a, branch_b)
    assert proof is not None
    return proof


@st.composite
def cyclon_node_ids(draw):
    """Node IDs across all three encodable tags (key/int/str)."""
    tag = draw(st.integers(0, 2))
    if tag == 0:
        return _KEYPAIRS[draw(st.integers(0, 4))].public
    if tag == 1:
        return draw(st.integers(-(2**63), 2**63 - 1))
    return draw(st.text(max_size=20))


@st.composite
def cyclon_descriptors(draw):
    return CyclonDescriptor(
        node_id=draw(cyclon_node_ids()),
        address=NetworkAddress(
            host=draw(st.integers(0, 2**32 - 1)),
            port=draw(st.integers(0, 2**16 - 1)),
        ),
        age=draw(st.integers(0, 2**32 - 1)),
    )


@st.composite
def messages(draw):
    kind = draw(st.integers(1, 10))
    if kind == 9:
        return CyclonRequest(
            descriptors=tuple(
                draw(st.lists(cyclon_descriptors(), max_size=4))
            )
        )
    if kind == 10:
        return CyclonReply(
            descriptors=tuple(
                draw(st.lists(cyclon_descriptors(), max_size=4))
            )
        )
    if kind == 1:
        return GossipOpen(
            redemption=draw(descriptors()),
            non_swappable=draw(st.booleans()),
            samples=tuple(draw(st.lists(descriptors(), max_size=3))),
            proofs=tuple(draw(st.lists(proofs(), max_size=2))),
        )
    if kind == 2:
        return GossipAccept(
            samples=tuple(draw(st.lists(descriptors(), max_size=3))),
            proofs=tuple(draw(st.lists(proofs(), max_size=2))),
        )
    if kind == 3:
        return GossipReject(
            reason=draw(st.text(max_size=30)),
            proofs=tuple(draw(st.lists(proofs(), max_size=2))),
        )
    if kind == 4:
        return TransferMessage(
            descriptor=draw(descriptors()),
            round_index=draw(st.integers(0, 2**16 - 1)),
        )
    if kind == 5:
        return TransferReply(
            descriptor=draw(st.one_of(st.none(), descriptors()))
        )
    if kind == 6:
        return BulkSwapMessage(
            descriptors=tuple(draw(st.lists(descriptors(), max_size=4)))
        )
    if kind == 7:
        return BulkSwapReply(
            descriptors=tuple(draw(st.lists(descriptors(), max_size=4)))
        )
    return ProofFlood(proof=draw(proofs()))


@given(message=messages())
@settings(max_examples=120, deadline=None)
def test_message_roundtrip(message):
    data = encode_message(message)
    decoded = decode_message(data)
    assert decoded == message
    assert encoded_message_size(message) == len(data)


@given(message=messages(), flip=st.data())
@settings(max_examples=60, deadline=None)
def test_truncated_messages_are_rejected(message, flip):
    """Every strict prefix of a valid frame raises the typed error."""
    data = encode_message(message)
    if len(data) < 2:
        return
    cut = flip.draw(st.integers(min_value=1, max_value=len(data) - 1))
    with pytest.raises(CodecError):
        decode_message(data[:cut])


@given(garbage=st.binary(max_size=300))
@settings(max_examples=200, deadline=None)
def test_random_bytes_never_leak_struct_error(garbage):
    """Decoding arbitrary bytes either succeeds or raises CodecError.

    The decoder must be total over byte strings: no ``struct.error``,
    no bare ``ValueError``, no ``IndexError`` — anything less and a
    malicious peer could crash a receiver instead of being rejected.
    (A random blob that happens to parse is astronomically unlikely
    but legal, hence the try/except shape.)
    """
    try:
        decode_message(garbage)
    except CodecError:
        pass


@given(message=messages(), corruption=st.data())
@settings(max_examples=100, deadline=None)
def test_corrupted_prefix_of_valid_frame_is_typed(message, corruption):
    """Random prefixes grafted onto random garbage stay typed errors."""
    data = encode_message(message)
    cut = corruption.draw(st.integers(min_value=0, max_value=len(data)))
    tail = corruption.draw(st.binary(max_size=40))
    mutated = data[:cut] + tail
    try:
        decoded = decode_message(mutated)
    except CodecError:
        return
    # If the mutation happened to produce a parseable frame, it must
    # round-trip like any other message.
    assert decode_message(encode_message(decoded)) == decoded


@given(message=messages(), mutation=st.data())
@settings(max_examples=100, deadline=None)
def test_bit_flipped_frames_decode_or_raise_typed(message, mutation):
    """Mutation fuzz: bit flips in valid frames stay inside the contract.

    This is exactly what the wire-plane MalformedFrameAttacker does to
    its frames; whatever comes out, the receiver must either get a
    message that round-trips or a typed :class:`CodecError` — never an
    untyped crash.
    """
    data = bytearray(encode_message(message))
    flips = mutation.draw(st.integers(min_value=1, max_value=8))
    for _ in range(flips):
        index = mutation.draw(
            st.integers(min_value=0, max_value=len(data) - 1)
        )
        bit = mutation.draw(st.integers(min_value=0, max_value=7))
        data[index] ^= 1 << bit
    try:
        decoded = decode_message(bytes(data))
    except CodecError:
        return
    assert decode_message(encode_message(decoded)) == decoded


@given(first=messages(), second=messages(), splice=st.data())
@settings(max_examples=60, deadline=None)
def test_spliced_frames_decode_or_raise_typed(first, second, splice):
    """Mutation fuzz: grafting two valid frames stays inside the contract.

    Models a truncation-plus-replay on the wire: the head of one
    legitimate frame welded onto the tail of another.
    """
    head = encode_message(first)
    tail = encode_message(second)
    cut_head = splice.draw(st.integers(min_value=0, max_value=len(head)))
    cut_tail = splice.draw(st.integers(min_value=0, max_value=len(tail)))
    spliced = head[:cut_head] + tail[cut_tail:]
    try:
        decoded = decode_message(spliced)
    except CodecError:
        return
    assert decode_message(encode_message(decoded)) == decoded


def test_unknown_type_code_rejected():
    with pytest.raises(CodecError):
        decode_message(b"\xff")


def test_frame_size_ceiling_boundary():
    """Frames at the ceiling decode; one byte past it is refused."""
    frame = encode_message(GossipReject(reason="x" * 100, proofs=()))
    # Exactly at a ceiling equal to the frame's own size: accepted.
    assert decode_message(frame, max_frame_bytes=len(frame)) is not None
    # One byte under: refused with the oversize subclass, before any
    # parsing could notice the frame is otherwise perfectly valid.
    with pytest.raises(FrameOversizeError):
        decode_message(frame, max_frame_bytes=len(frame) - 1)


def test_default_ceiling_rejects_megaframe():
    """An attacker-inflated frame is refused by one length check."""
    frame = encode_message(GossipReject(reason="x", proofs=()))
    inflated = frame + b"\x00" * MAX_FRAME_BYTES
    with pytest.raises(FrameOversizeError):
        decode_message(inflated)
    # The oversize error is still a CodecError: every receive boundary
    # that survives garbage survives volume.
    assert issubclass(FrameOversizeError, CodecError)
    # Disabling the ceiling restores the old behaviour (trailing bytes
    # are then rejected by parsing, not by the ceiling).
    with pytest.raises(CodecError):
        decode_message(inflated, max_frame_bytes=None)
    assert decode_message(frame, max_frame_bytes=None) is not None


def test_declared_length_cannot_force_allocation():
    """A u32 record length far past the real payload is rejected cheaply.

    The declared length is checked against the bytes actually present
    before slicing — a 4 GiB claim inside a 13-byte frame must die by
    arithmetic (and stay a typed error), not by materialising anything.
    """
    # Type byte 8 (ProofFlood) followed by a u32 blob length of
    # 0xFFFFFFFF and no payload to back it up.
    frame = bytes([8]) + struct.pack(">I", 0xFFFFFFFF) + b"\x00" * 8
    with pytest.raises(CodecError):
        decode_message(frame)


def test_non_message_rejected_on_encode():
    with pytest.raises(CodecError):
        encode_message(object())


def test_empty_bytes_rejected():
    with pytest.raises(CodecError):
        decode_message(b"")


def test_codec_error_is_a_descriptor_error():
    """Pre-CodecError callers caught DescriptorError; they still do."""
    assert issubclass(CodecError, DescriptorError)
    with pytest.raises(DescriptorError):
        decode_message(b"\x01\x00")


def test_empty_sequences_roundtrip():
    """Zero-length sample/proof/descriptor sequences frame cleanly."""
    for message in (
        GossipAccept(samples=(), proofs=()),
        GossipReject(reason="", proofs=()),
        BulkSwapMessage(descriptors=()),
        BulkSwapReply(descriptors=()),
        TransferReply(descriptor=None),
        CyclonRequest(descriptors=()),
        CyclonReply(descriptors=()),
    ):
        assert decode_message(encode_message(message)) == message


def test_max_hop_chain_roundtrips():
    """A chain at the practical hop ceiling survives the wire intact.

    Descriptors live ~view_length cycles and gain roughly two hops per
    cycle, so 2·ℓ (with the paper's largest ℓ = 50) bounds honest
    chains; encode at that depth and prove the decoded copy still
    *verifies*, not just compares equal.
    """
    descriptor = mint(_KEYPAIRS[0], NetworkAddress(host=9, port=9), 1.0)
    current = 0
    for hop in range(100):
        nxt = (current + 1) % 5
        descriptor = descriptor.transfer(
            _KEYPAIRS[current], _KEYPAIRS[nxt].public
        )
        current = nxt
    message = TransferMessage(descriptor=descriptor, round_index=3)
    decoded = decode_message(encode_message(message))
    assert decoded == message
    assert decoded.descriptor is not descriptor
    assert len(decoded.descriptor.hops) == 100
    assert verify_descriptor(decoded.descriptor, _REGISTRY)


def test_extension_registration_is_idempotent_and_guarded():
    """Re-registering the same type/code is a no-op; conflicts raise."""
    import repro.cyclon.codec as cyclon_codec

    # Same type, same code: importing twice must not blow up.
    register_message_codec(
        CyclonRequest,
        cyclon_codec.CYCLON_REQUEST_CODE,
        cyclon_codec._encode_shuffle,
        cyclon_codec._decode_request,
    )
    with pytest.raises(CodecError):
        register_message_codec(
            CyclonRequest, 200, cyclon_codec._encode_shuffle,
            cyclon_codec._decode_request,
        )
    with pytest.raises(CodecError):
        register_message_codec(
            TransferReply, cyclon_codec.CYCLON_REPLY_CODE,
            cyclon_codec._encode_shuffle, cyclon_codec._decode_reply,
        )
    with pytest.raises(CodecError):
        register_message_codec(
            GossipOpen, 4, cyclon_codec._encode_shuffle,
            cyclon_codec._decode_request,
        )


def test_encode_side_range_violations_are_typed():
    """Out-of-width fields raise CodecError at encode, never struct.error."""
    address = NetworkAddress(host=1, port=1)
    with pytest.raises(CodecError):
        encode_message(
            CyclonRequest(
                descriptors=(
                    CyclonDescriptor(node_id=1, address=address, age=2**32),
                )
            )
        )
    with pytest.raises(CodecError):
        encode_message(
            CyclonRequest(
                descriptors=(
                    CyclonDescriptor(
                        node_id="x" * 70000, address=address, age=0
                    ),
                )
            )
        )
    with pytest.raises(CodecError):
        encode_message(
            CyclonRequest(
                descriptors=(
                    CyclonDescriptor(node_id=2**70, address=address, age=0),
                )
            )
        )


def test_unencodable_cyclon_node_id_rejected():
    """IDs outside PublicKey/int/str cannot travel a real wire."""
    message = CyclonRequest(
        descriptors=(
            CyclonDescriptor(
                node_id=(1, 2), address=NetworkAddress(host=1, port=1), age=0
            ),
        )
    )
    with pytest.raises(CodecError):
        encode_message(message)
    with pytest.raises(CodecError):
        encode_message(
            CyclonRequest(
                descriptors=(
                    CyclonDescriptor(
                        node_id=True,
                        address=NetworkAddress(host=1, port=1),
                        age=0,
                    ),
                )
            )
        )


# ----------------------------------------------------------------------
# Batch-codec fast path: byte identity and decode equivalence
# ----------------------------------------------------------------------
#
# The WireTransport runs repro.core.codec_batch, not the reference
# codec, so everything the properties above pin about the reference
# must also be pinned *between* the two implementations: the batch
# encoder's bytes are the reference bytes, and the fast decoder's
# accept/reject set (including exception types) is the reference set.


@given(message=messages())
@settings(max_examples=120, deadline=None)
def test_batch_encoder_bytes_identical_to_reference(message):
    """Batch-encoded frames are byte-for-byte the reference encoding.

    Covers all ten registered message types, including the
    extension-registry Cyclon shuffles (which the batch encoder must
    delegate, not re-implement).
    """
    assert BatchEncoder().encode(message) == encode_message(message)


@given(batch=st.lists(messages(), max_size=6))
@settings(max_examples=60, deadline=None)
def test_encode_frames_identical_to_framed_concatenation(batch):
    """A batched fan-out is the concatenation of u32-prefixed frames."""
    encoder = BatchEncoder()
    expected = b"".join(
        struct.pack(">I", len(frame)) + frame
        for frame in map(encode_message, batch)
    )
    buffer = encoder.encode_frames(batch)
    assert buffer == expected
    assert split_frames(buffer) == [encode_message(m) for m in batch]


@given(message=messages(), cycles=st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_batch_encoder_memo_and_cycle_tick_preserve_bytes(message, cycles):
    """Memoised re-encodes stay byte-identical across cycle boundaries.

    The first encode fills the id-keyed memos; the second must hit them
    (same object) and return the same bytes; a begin_cycle tick drops
    the memos and a third encode must rebuild the identical frame.
    """
    encoder = BatchEncoder(InternTable())
    reference = encode_message(message)
    assert encoder.encode(message) == reference
    assert encoder.encode(message) == reference
    for cycle in range(cycles):
        encoder.begin_cycle(cycle)
        assert encoder.encode(message) == reference


@given(message=messages())
@settings(max_examples=120, deadline=None)
def test_fast_decoder_equivalent_on_valid_frames(message):
    """FastDecoder(frame) == decode_message(frame) on every valid frame."""
    frame = encode_message(message)
    decoded = FastDecoder().decode(frame)
    assert decoded == decode_message(frame)
    assert decoded == message


def _assert_decoders_agree(data):
    """Both decoders accept with equal results or raise the same type."""
    reference_error = reference_message = None
    try:
        reference_message = decode_message(data)
    except CodecError as exc:
        reference_error = exc
    fast_error = fast_message = None
    try:
        fast_message = FastDecoder().decode(data)
    except CodecError as exc:
        fast_error = exc
    if reference_error is None:
        assert fast_error is None, (
            f"reference accepted, fast raised {fast_error!r}"
        )
        assert fast_message == reference_message
    else:
        assert fast_error is not None, (
            f"reference raised {reference_error!r}, fast accepted"
        )
        assert type(fast_error) is type(reference_error)


@given(message=messages(), mutation=st.data())
@settings(max_examples=100, deadline=None)
def test_fast_decoder_equivalent_under_bit_flips(message, mutation):
    """Mutation fuzz: both decoders agree on bit-flipped valid frames.

    Byte-level agreement on the *reject* side matters as much as the
    accept side: the fault-injection suite counts typed rejections, so
    a fast path that rejected more (or less, or differently) would
    change measured robustness numbers.
    """
    data = bytearray(encode_message(message))
    flips = mutation.draw(st.integers(min_value=1, max_value=8))
    for _ in range(flips):
        index = mutation.draw(
            st.integers(min_value=0, max_value=len(data) - 1)
        )
        bit = mutation.draw(st.integers(min_value=0, max_value=7))
        data[index] ^= 1 << bit
    _assert_decoders_agree(bytes(data))


@given(message=messages(), cut=st.data())
@settings(max_examples=60, deadline=None)
def test_fast_decoder_equivalent_under_truncation(message, cut):
    """Every strict prefix is rejected by both decoders, same type."""
    data = encode_message(message)
    if len(data) < 2:
        return
    prefix = cut.draw(st.integers(min_value=0, max_value=len(data) - 1))
    _assert_decoders_agree(data[:prefix])


@given(first=messages(), second=messages(), splice=st.data())
@settings(max_examples=60, deadline=None)
def test_fast_decoder_equivalent_under_splices(first, second, splice):
    """Head-of-one-frame + tail-of-another: both decoders agree."""
    head = encode_message(first)
    tail = encode_message(second)
    cut_head = splice.draw(st.integers(min_value=0, max_value=len(head)))
    cut_tail = splice.draw(st.integers(min_value=0, max_value=len(tail)))
    _assert_decoders_agree(head[:cut_head] + tail[cut_tail:])


@given(garbage=st.binary(max_size=300))
@settings(max_examples=150, deadline=None)
def test_fast_decoder_equivalent_on_random_bytes(garbage):
    _assert_decoders_agree(garbage)


def test_fast_decoder_oversize_before_parsing():
    """The frame ceiling fires first, as the oversize subclass."""
    frame = encode_message(GossipReject(reason="x" * 100, proofs=()))
    decoder = FastDecoder()
    assert decoder.decode(frame, max_frame_bytes=len(frame)) is not None
    with pytest.raises(FrameOversizeError):
        decoder.decode(frame, max_frame_bytes=len(frame) - 1)
    with pytest.raises(FrameOversizeError):
        decoder.decode(frame + b"\x00" * MAX_FRAME_BYTES)
    # And with the ceiling disabled, trailing garbage is a parse error.
    with pytest.raises(CodecError):
        decoder.decode(frame + b"\x00", max_frame_bytes=None)


def test_fast_decoder_accepts_bytearray_frames():
    """Fault injectors hand bytearray frames; both decoders take them."""
    message = BulkSwapMessage(descriptors=())
    frame = bytearray(encode_message(message))
    assert FastDecoder().decode(frame) == message


def test_interned_decode_shares_atoms_but_not_shells():
    """Two decodes share immutable atoms, never descriptor objects.

    The wire-mode contract (pinned for the reference decoder in
    tests/sim/test_transport.py) is that receivers never share
    descriptor instances or verification state.  The intern table must
    only ever share the *immutable* atoms below the shell: keys, hops,
    identities.
    """
    descriptor = mint(_KEYPAIRS[0], NetworkAddress(host=5, port=5), 2.0)
    descriptor = descriptor.transfer(_KEYPAIRS[0], _KEYPAIRS[1].public)
    frame = encode_message(TransferMessage(descriptor=descriptor, round_index=0))
    decoder = FastDecoder()
    first = decoder.decode(frame).descriptor
    second = decoder.decode(frame).descriptor
    assert first == second
    assert first is not second
    assert first is not descriptor
    # Atoms are interned by content...
    assert first.creator is second.creator
    assert first.identity is second.identity
    assert first.hops is second.hops
    # ...and the verification cache slots start clean on every shell.
    assert first._verified_by is None and second._verified_by is None
    assert first._chain_digest is None and second._chain_digest is None
    assert verify_descriptor(first, _REGISTRY)
    # Verifying one shell must not have marked the other.
    assert second._verified_by is None


def test_decoded_content_key_feeds_encoder_memo():
    """Decode fills _content_key; re-encoding the copy is a dict probe."""
    intern = InternTable()
    decoder = FastDecoder(intern)
    encoder = BatchEncoder(intern)
    descriptor = mint(_KEYPAIRS[2], NetworkAddress(host=6, port=6), 3.0)
    frame = encode_message(TransferMessage(descriptor=descriptor, round_index=1))
    decoded = decoder.decode(frame).descriptor
    assert decoded._content_key is not None
    # Re-sending the received descriptor reproduces the reference bytes
    # through the content-key memo the decoder filled.
    reply = TransferReply(descriptor=decoded)
    assert encoder.encode(reply) == encode_message(reply)
    assert encoder.descriptor_hits >= 1


def test_intern_table_persists_across_cycles_and_stays_bounded():
    """Content-addressed maps survive the cycle tick; clear() drops them."""
    intern = InternTable()
    decoder = FastDecoder(intern)
    descriptor = mint(_KEYPAIRS[3], NetworkAddress(host=7, port=7), 4.0)
    frame = encode_message(TransferMessage(descriptor=descriptor, round_index=2))
    decoder.decode(frame)
    assert intern.stats()["records"] == 1
    intern.begin_cycle(1)
    # A content-addressed entry cannot go stale, so the tick retains it:
    # cycle-N receives are re-sent in cycle N+1.
    assert intern.stats()["records"] == 1
    before_hits = intern.hits
    decoder.decode(frame)
    assert intern.hits > before_hits
    intern.clear()
    assert intern.stats()["records"] == 0
    assert 0.0 <= intern.hit_rate <= 1.0
