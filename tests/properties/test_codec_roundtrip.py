"""Property-based round-trip tests for the whole-message codec.

Covers every dialogue message type the wire transport can carry — the
eight SecureCyclon messages (``GossipOpen`` … ``ProofFlood``) plus the
registered legacy-Cyclon shuffle messages — including empty sequences
and max-hop ownership chains, and fuzzes the error paths: truncations,
random byte prefixes, unknown type bytes, *mutations* of valid frames
(bit flips and cross-frame splices — what the wire-plane attackers
actually produce), and the frame-size ceiling must raise the typed
:class:`~repro.errors.CodecError`, never leak ``struct.error``.
"""

import random
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codec import (
    MAX_FRAME_BYTES,
    decode_message,
    encode_message,
    encoded_message_size,
    register_message_codec,
)
from repro.core.descriptor import mint, verify_descriptor
from repro.core.exchange import (
    BulkSwapMessage,
    BulkSwapReply,
    GossipAccept,
    GossipOpen,
    GossipReject,
    ProofFlood,
    TransferMessage,
    TransferReply,
)
from repro.core.proofs import build_cloning_proof
from repro.crypto.registry import KeyRegistry
from repro.cyclon import CyclonDescriptor, CyclonReply, CyclonRequest
from repro.errors import CodecError, DescriptorError, FrameOversizeError
from repro.sim.network import NetworkAddress

_REGISTRY = KeyRegistry()
_RNG = random.Random(7)
_KEYPAIRS = [_REGISTRY.new_keypair(_RNG) for _ in range(5)]


@st.composite
def descriptors(draw):
    creator = draw(st.integers(0, 4))
    timestamp = draw(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
    )
    descriptor = mint(
        _KEYPAIRS[creator],
        NetworkAddress(
            host=draw(st.integers(0, 2**32 - 1)),
            port=draw(st.integers(0, 2**16 - 1)),
        ),
        timestamp,
    )
    current = creator
    for nxt in draw(st.lists(st.integers(0, 4), max_size=4)):
        descriptor = descriptor.transfer(
            _KEYPAIRS[current], _KEYPAIRS[nxt].public
        )
        current = nxt
    return descriptor


@st.composite
def proofs(draw):
    base = draw(descriptors())
    owner_index = next(
        index
        for index, keypair in enumerate(_KEYPAIRS)
        if keypair.public == base.current_owner
    )
    owner = _KEYPAIRS[owner_index]
    branch_a = base.transfer(owner, _KEYPAIRS[(owner_index + 1) % 5].public)
    branch_b = base.transfer(owner, _KEYPAIRS[(owner_index + 2) % 5].public)
    proof = build_cloning_proof(branch_a, branch_b)
    assert proof is not None
    return proof


@st.composite
def cyclon_node_ids(draw):
    """Node IDs across all three encodable tags (key/int/str)."""
    tag = draw(st.integers(0, 2))
    if tag == 0:
        return _KEYPAIRS[draw(st.integers(0, 4))].public
    if tag == 1:
        return draw(st.integers(-(2**63), 2**63 - 1))
    return draw(st.text(max_size=20))


@st.composite
def cyclon_descriptors(draw):
    return CyclonDescriptor(
        node_id=draw(cyclon_node_ids()),
        address=NetworkAddress(
            host=draw(st.integers(0, 2**32 - 1)),
            port=draw(st.integers(0, 2**16 - 1)),
        ),
        age=draw(st.integers(0, 2**32 - 1)),
    )


@st.composite
def messages(draw):
    kind = draw(st.integers(1, 10))
    if kind == 9:
        return CyclonRequest(
            descriptors=tuple(
                draw(st.lists(cyclon_descriptors(), max_size=4))
            )
        )
    if kind == 10:
        return CyclonReply(
            descriptors=tuple(
                draw(st.lists(cyclon_descriptors(), max_size=4))
            )
        )
    if kind == 1:
        return GossipOpen(
            redemption=draw(descriptors()),
            non_swappable=draw(st.booleans()),
            samples=tuple(draw(st.lists(descriptors(), max_size=3))),
            proofs=tuple(draw(st.lists(proofs(), max_size=2))),
        )
    if kind == 2:
        return GossipAccept(
            samples=tuple(draw(st.lists(descriptors(), max_size=3))),
            proofs=tuple(draw(st.lists(proofs(), max_size=2))),
        )
    if kind == 3:
        return GossipReject(
            reason=draw(st.text(max_size=30)),
            proofs=tuple(draw(st.lists(proofs(), max_size=2))),
        )
    if kind == 4:
        return TransferMessage(
            descriptor=draw(descriptors()),
            round_index=draw(st.integers(0, 2**16 - 1)),
        )
    if kind == 5:
        return TransferReply(
            descriptor=draw(st.one_of(st.none(), descriptors()))
        )
    if kind == 6:
        return BulkSwapMessage(
            descriptors=tuple(draw(st.lists(descriptors(), max_size=4)))
        )
    if kind == 7:
        return BulkSwapReply(
            descriptors=tuple(draw(st.lists(descriptors(), max_size=4)))
        )
    return ProofFlood(proof=draw(proofs()))


@given(message=messages())
@settings(max_examples=120, deadline=None)
def test_message_roundtrip(message):
    data = encode_message(message)
    decoded = decode_message(data)
    assert decoded == message
    assert encoded_message_size(message) == len(data)


@given(message=messages(), flip=st.data())
@settings(max_examples=60, deadline=None)
def test_truncated_messages_are_rejected(message, flip):
    """Every strict prefix of a valid frame raises the typed error."""
    data = encode_message(message)
    if len(data) < 2:
        return
    cut = flip.draw(st.integers(min_value=1, max_value=len(data) - 1))
    with pytest.raises(CodecError):
        decode_message(data[:cut])


@given(garbage=st.binary(max_size=300))
@settings(max_examples=200, deadline=None)
def test_random_bytes_never_leak_struct_error(garbage):
    """Decoding arbitrary bytes either succeeds or raises CodecError.

    The decoder must be total over byte strings: no ``struct.error``,
    no bare ``ValueError``, no ``IndexError`` — anything less and a
    malicious peer could crash a receiver instead of being rejected.
    (A random blob that happens to parse is astronomically unlikely
    but legal, hence the try/except shape.)
    """
    try:
        decode_message(garbage)
    except CodecError:
        pass


@given(message=messages(), corruption=st.data())
@settings(max_examples=100, deadline=None)
def test_corrupted_prefix_of_valid_frame_is_typed(message, corruption):
    """Random prefixes grafted onto random garbage stay typed errors."""
    data = encode_message(message)
    cut = corruption.draw(st.integers(min_value=0, max_value=len(data)))
    tail = corruption.draw(st.binary(max_size=40))
    mutated = data[:cut] + tail
    try:
        decoded = decode_message(mutated)
    except CodecError:
        return
    # If the mutation happened to produce a parseable frame, it must
    # round-trip like any other message.
    assert decode_message(encode_message(decoded)) == decoded


@given(message=messages(), mutation=st.data())
@settings(max_examples=100, deadline=None)
def test_bit_flipped_frames_decode_or_raise_typed(message, mutation):
    """Mutation fuzz: bit flips in valid frames stay inside the contract.

    This is exactly what the wire-plane MalformedFrameAttacker does to
    its frames; whatever comes out, the receiver must either get a
    message that round-trips or a typed :class:`CodecError` — never an
    untyped crash.
    """
    data = bytearray(encode_message(message))
    flips = mutation.draw(st.integers(min_value=1, max_value=8))
    for _ in range(flips):
        index = mutation.draw(
            st.integers(min_value=0, max_value=len(data) - 1)
        )
        bit = mutation.draw(st.integers(min_value=0, max_value=7))
        data[index] ^= 1 << bit
    try:
        decoded = decode_message(bytes(data))
    except CodecError:
        return
    assert decode_message(encode_message(decoded)) == decoded


@given(first=messages(), second=messages(), splice=st.data())
@settings(max_examples=60, deadline=None)
def test_spliced_frames_decode_or_raise_typed(first, second, splice):
    """Mutation fuzz: grafting two valid frames stays inside the contract.

    Models a truncation-plus-replay on the wire: the head of one
    legitimate frame welded onto the tail of another.
    """
    head = encode_message(first)
    tail = encode_message(second)
    cut_head = splice.draw(st.integers(min_value=0, max_value=len(head)))
    cut_tail = splice.draw(st.integers(min_value=0, max_value=len(tail)))
    spliced = head[:cut_head] + tail[cut_tail:]
    try:
        decoded = decode_message(spliced)
    except CodecError:
        return
    assert decode_message(encode_message(decoded)) == decoded


def test_unknown_type_code_rejected():
    with pytest.raises(CodecError):
        decode_message(b"\xff")


def test_frame_size_ceiling_boundary():
    """Frames at the ceiling decode; one byte past it is refused."""
    frame = encode_message(GossipReject(reason="x" * 100, proofs=()))
    # Exactly at a ceiling equal to the frame's own size: accepted.
    assert decode_message(frame, max_frame_bytes=len(frame)) is not None
    # One byte under: refused with the oversize subclass, before any
    # parsing could notice the frame is otherwise perfectly valid.
    with pytest.raises(FrameOversizeError):
        decode_message(frame, max_frame_bytes=len(frame) - 1)


def test_default_ceiling_rejects_megaframe():
    """An attacker-inflated frame is refused by one length check."""
    frame = encode_message(GossipReject(reason="x", proofs=()))
    inflated = frame + b"\x00" * MAX_FRAME_BYTES
    with pytest.raises(FrameOversizeError):
        decode_message(inflated)
    # The oversize error is still a CodecError: every receive boundary
    # that survives garbage survives volume.
    assert issubclass(FrameOversizeError, CodecError)
    # Disabling the ceiling restores the old behaviour (trailing bytes
    # are then rejected by parsing, not by the ceiling).
    with pytest.raises(CodecError):
        decode_message(inflated, max_frame_bytes=None)
    assert decode_message(frame, max_frame_bytes=None) is not None


def test_declared_length_cannot_force_allocation():
    """A u32 record length far past the real payload is rejected cheaply.

    The declared length is checked against the bytes actually present
    before slicing — a 4 GiB claim inside a 13-byte frame must die by
    arithmetic (and stay a typed error), not by materialising anything.
    """
    # Type byte 8 (ProofFlood) followed by a u32 blob length of
    # 0xFFFFFFFF and no payload to back it up.
    frame = bytes([8]) + struct.pack(">I", 0xFFFFFFFF) + b"\x00" * 8
    with pytest.raises(CodecError):
        decode_message(frame)


def test_non_message_rejected_on_encode():
    with pytest.raises(CodecError):
        encode_message(object())


def test_empty_bytes_rejected():
    with pytest.raises(CodecError):
        decode_message(b"")


def test_codec_error_is_a_descriptor_error():
    """Pre-CodecError callers caught DescriptorError; they still do."""
    assert issubclass(CodecError, DescriptorError)
    with pytest.raises(DescriptorError):
        decode_message(b"\x01\x00")


def test_empty_sequences_roundtrip():
    """Zero-length sample/proof/descriptor sequences frame cleanly."""
    for message in (
        GossipAccept(samples=(), proofs=()),
        GossipReject(reason="", proofs=()),
        BulkSwapMessage(descriptors=()),
        BulkSwapReply(descriptors=()),
        TransferReply(descriptor=None),
        CyclonRequest(descriptors=()),
        CyclonReply(descriptors=()),
    ):
        assert decode_message(encode_message(message)) == message


def test_max_hop_chain_roundtrips():
    """A chain at the practical hop ceiling survives the wire intact.

    Descriptors live ~view_length cycles and gain roughly two hops per
    cycle, so 2·ℓ (with the paper's largest ℓ = 50) bounds honest
    chains; encode at that depth and prove the decoded copy still
    *verifies*, not just compares equal.
    """
    descriptor = mint(_KEYPAIRS[0], NetworkAddress(host=9, port=9), 1.0)
    current = 0
    for hop in range(100):
        nxt = (current + 1) % 5
        descriptor = descriptor.transfer(
            _KEYPAIRS[current], _KEYPAIRS[nxt].public
        )
        current = nxt
    message = TransferMessage(descriptor=descriptor, round_index=3)
    decoded = decode_message(encode_message(message))
    assert decoded == message
    assert decoded.descriptor is not descriptor
    assert len(decoded.descriptor.hops) == 100
    assert verify_descriptor(decoded.descriptor, _REGISTRY)


def test_extension_registration_is_idempotent_and_guarded():
    """Re-registering the same type/code is a no-op; conflicts raise."""
    import repro.cyclon.codec as cyclon_codec

    # Same type, same code: importing twice must not blow up.
    register_message_codec(
        CyclonRequest,
        cyclon_codec.CYCLON_REQUEST_CODE,
        cyclon_codec._encode_shuffle,
        cyclon_codec._decode_request,
    )
    with pytest.raises(CodecError):
        register_message_codec(
            CyclonRequest, 200, cyclon_codec._encode_shuffle,
            cyclon_codec._decode_request,
        )
    with pytest.raises(CodecError):
        register_message_codec(
            TransferReply, cyclon_codec.CYCLON_REPLY_CODE,
            cyclon_codec._encode_shuffle, cyclon_codec._decode_reply,
        )
    with pytest.raises(CodecError):
        register_message_codec(
            GossipOpen, 4, cyclon_codec._encode_shuffle,
            cyclon_codec._decode_request,
        )


def test_encode_side_range_violations_are_typed():
    """Out-of-width fields raise CodecError at encode, never struct.error."""
    address = NetworkAddress(host=1, port=1)
    with pytest.raises(CodecError):
        encode_message(
            CyclonRequest(
                descriptors=(
                    CyclonDescriptor(node_id=1, address=address, age=2**32),
                )
            )
        )
    with pytest.raises(CodecError):
        encode_message(
            CyclonRequest(
                descriptors=(
                    CyclonDescriptor(
                        node_id="x" * 70000, address=address, age=0
                    ),
                )
            )
        )
    with pytest.raises(CodecError):
        encode_message(
            CyclonRequest(
                descriptors=(
                    CyclonDescriptor(node_id=2**70, address=address, age=0),
                )
            )
        )


def test_unencodable_cyclon_node_id_rejected():
    """IDs outside PublicKey/int/str cannot travel a real wire."""
    message = CyclonRequest(
        descriptors=(
            CyclonDescriptor(
                node_id=(1, 2), address=NetworkAddress(host=1, port=1), age=0
            ),
        )
    )
    with pytest.raises(CodecError):
        encode_message(message)
    with pytest.raises(CodecError):
        encode_message(
            CyclonRequest(
                descriptors=(
                    CyclonDescriptor(
                        node_id=True,
                        address=NetworkAddress(host=1, port=1),
                        age=0,
                    ),
                )
            )
        )
