"""Property-based round-trip tests for the whole-message codec."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codec import (
    decode_message,
    encode_message,
    encoded_message_size,
)
from repro.core.descriptor import mint
from repro.core.exchange import (
    BulkSwapMessage,
    BulkSwapReply,
    GossipAccept,
    GossipOpen,
    GossipReject,
    ProofFlood,
    TransferMessage,
    TransferReply,
)
from repro.core.proofs import build_cloning_proof
from repro.crypto.registry import KeyRegistry
from repro.errors import DescriptorError
from repro.sim.network import NetworkAddress

_REGISTRY = KeyRegistry()
_RNG = random.Random(7)
_KEYPAIRS = [_REGISTRY.new_keypair(_RNG) for _ in range(5)]


@st.composite
def descriptors(draw):
    creator = draw(st.integers(0, 4))
    timestamp = draw(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
    )
    descriptor = mint(
        _KEYPAIRS[creator],
        NetworkAddress(
            host=draw(st.integers(0, 2**32 - 1)),
            port=draw(st.integers(0, 2**16 - 1)),
        ),
        timestamp,
    )
    current = creator
    for nxt in draw(st.lists(st.integers(0, 4), max_size=4)):
        descriptor = descriptor.transfer(
            _KEYPAIRS[current], _KEYPAIRS[nxt].public
        )
        current = nxt
    return descriptor


@st.composite
def proofs(draw):
    base = draw(descriptors())
    owner_index = next(
        index
        for index, keypair in enumerate(_KEYPAIRS)
        if keypair.public == base.current_owner
    )
    owner = _KEYPAIRS[owner_index]
    branch_a = base.transfer(owner, _KEYPAIRS[(owner_index + 1) % 5].public)
    branch_b = base.transfer(owner, _KEYPAIRS[(owner_index + 2) % 5].public)
    proof = build_cloning_proof(branch_a, branch_b)
    assert proof is not None
    return proof


@st.composite
def messages(draw):
    kind = draw(st.integers(1, 8))
    if kind == 1:
        return GossipOpen(
            redemption=draw(descriptors()),
            non_swappable=draw(st.booleans()),
            samples=tuple(draw(st.lists(descriptors(), max_size=3))),
            proofs=tuple(draw(st.lists(proofs(), max_size=2))),
        )
    if kind == 2:
        return GossipAccept(
            samples=tuple(draw(st.lists(descriptors(), max_size=3))),
            proofs=tuple(draw(st.lists(proofs(), max_size=2))),
        )
    if kind == 3:
        return GossipReject(
            reason=draw(st.text(max_size=30)),
            proofs=tuple(draw(st.lists(proofs(), max_size=2))),
        )
    if kind == 4:
        return TransferMessage(
            descriptor=draw(descriptors()),
            round_index=draw(st.integers(0, 2**16 - 1)),
        )
    if kind == 5:
        return TransferReply(
            descriptor=draw(st.one_of(st.none(), descriptors()))
        )
    if kind == 6:
        return BulkSwapMessage(
            descriptors=tuple(draw(st.lists(descriptors(), max_size=4)))
        )
    if kind == 7:
        return BulkSwapReply(
            descriptors=tuple(draw(st.lists(descriptors(), max_size=4)))
        )
    return ProofFlood(proof=draw(proofs()))


@given(message=messages())
@settings(max_examples=120, deadline=None)
def test_message_roundtrip(message):
    data = encode_message(message)
    decoded = decode_message(data)
    assert decoded == message
    assert encoded_message_size(message) == len(data)


@given(message=messages(), flip=st.data())
@settings(max_examples=60, deadline=None)
def test_truncated_messages_are_rejected(message, flip):
    data = encode_message(message)
    if len(data) < 2:
        return
    cut = flip.draw(st.integers(min_value=1, max_value=len(data) - 1))
    with pytest.raises(DescriptorError):
        decode_message(data[:cut])


def test_unknown_type_code_rejected():
    with pytest.raises(DescriptorError):
        decode_message(b"\xff")


def test_non_message_rejected_on_encode():
    with pytest.raises(DescriptorError):
        encode_message(object())


def test_empty_bytes_rejected():
    with pytest.raises(DescriptorError):
        decode_message(b"")
