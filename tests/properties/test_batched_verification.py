"""Equivalence of sequential and batched sample-stream verification.

The batched verification kernel (``repro.crypto.batch``) must be
observationally identical to the sequential path descriptor by
descriptor: for any batch — honest, forged, cloned, expired,
blacklisted, duplicated — running ``SampleCache.observe_stream`` and
``SampleCache.observe_stream_planned`` over independently rebuilt
copies of the same descriptors must leave behind identical caches,
identical blacklists, and identical adopted proofs.

The generators are seeded and derandomised (``derandomize=True``) so
CI runs are reproducible; the batch vocabulary deliberately covers the
kernel's distinct code paths:

* ``honest``             — valid chains of varying length;
* ``forged-mac``         — a tampered hop MAC (including wrong-length
                           MACs, which the flat kernel must reject
                           without misaligning its buffers);
* ``cloned-chain``       — two forked copies of one token (§IV-B
                           cloning, discovered mid-batch);
* ``expired-timestamp``  — mint timestamps beyond the deadline;
* ``blacklisted-owner``  — creators blacklisted before the batch;
* ``duplicate-digest``   — wire-rebuilt copies of an earlier batch
                           element (the cross-node digest-memo path).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.descriptor import (
    OwnershipHop,
    SecureDescriptor,
    TransferKind,
    mint,
)
from repro.core.samples import SampleCache
from repro.crypto.batch import VerificationPlan
from repro.crypto.keys import KeyPair
from repro.crypto.registry import KeyRegistry
from repro.crypto.signing import Signature
from repro.sim.network import NetworkAddress

PERIOD = 10.0
HORIZON = 40
DEADLINE = 1000.0

_SEED_RNG = random.Random(17)
_MASTER = KeyRegistry()
_KEYPAIRS = [_MASTER.new_keypair(_SEED_RNG) for _ in range(7)]
_ADDRESS = NetworkAddress(host=1, port=1)

# Batch element vocabulary (see module docstring).
_KINDS = st.sampled_from(
    [
        "honest",
        "forged-mac",
        "short-mac",
        "cloned-chain",
        "expired-timestamp",
        "blacklisted-owner",
        "duplicate-digest",
    ]
)


def _chain(creator: int, ts: float, path: tuple) -> SecureDescriptor:
    """An honest chain minted by ``creator`` through ``path`` owners."""
    descriptor = mint(_KEYPAIRS[creator], _ADDRESS, ts)
    holder = _KEYPAIRS[creator]
    for owner in path:
        nxt = _KEYPAIRS[owner]
        descriptor = descriptor.transfer(holder, nxt.public)
        holder = nxt
    return descriptor


def _tamper_last_mac(descriptor: SecureDescriptor, mac: bytes) -> SecureDescriptor:
    last = descriptor.hops[-1]
    forged_hop = OwnershipHop(
        owner=last.owner,
        kind=last.kind,
        signature=Signature(signer=last.signature.signer, mac=mac),
    )
    return SecureDescriptor(
        creator=descriptor.creator,
        address=descriptor.address,
        timestamp=descriptor.timestamp,
        hops=descriptor.hops[:-1] + (forged_hop,),
    )


def _rebuild(descriptor: SecureDescriptor) -> SecureDescriptor:
    """A wire-fidelity copy: same content, all-fresh objects/memos."""
    hops = tuple(
        OwnershipHop(
            owner=hop.owner,
            kind=hop.kind,
            signature=Signature(
                signer=hop.signature.signer, mac=hop.signature.mac
            ),
        )
        for hop in descriptor.hops
    )
    return SecureDescriptor(
        creator=descriptor.creator,
        address=descriptor.address,
        timestamp=descriptor.timestamp,
        hops=hops,
    )


def _materialize(spec) -> tuple:
    """Expand generated specs into (descriptors, pre-blacklisted set).

    Timestamps are spaced one period apart per creator so honest
    elements never conflict; cloned pairs share one mint on purpose.
    """
    kinds, creators, owner_picks = spec
    descriptors = []
    blacklisted_creators = set()
    for index, kind in enumerate(kinds):
        creator = creators[index] % 5
        ts = float((index + 1) * PERIOD)
        path = (5, (owner_picks[index] % 2) + 5)
        if kind == "honest":
            descriptors.append(_chain(creator, ts, (5,)))
        elif kind == "forged-mac":
            descriptors.append(
                _tamper_last_mac(_chain(creator, ts, path), b"\x00" * 32)
            )
        elif kind == "short-mac":
            descriptors.append(
                _tamper_last_mac(_chain(creator, ts, path), b"oops")
            )
        elif kind == "cloned-chain":
            base = _chain(creator, ts, (5,))
            clone_a = base.transfer(_KEYPAIRS[5], _KEYPAIRS[6].public)
            clone_b = base.transfer(_KEYPAIRS[5], _KEYPAIRS[creator].public)
            descriptors.append(clone_a)
            descriptors.append(clone_b)
        elif kind == "expired-timestamp":
            descriptors.append(_chain(creator, DEADLINE + ts, (5,)))
        elif kind == "blacklisted-owner":
            blacklisted_creators.add(_KEYPAIRS[creator].public)
            descriptors.append(_chain(creator, ts, (5,)))
        elif kind == "duplicate-digest":
            if descriptors:
                descriptors.append(
                    _rebuild(descriptors[owner_picks[index] % len(descriptors)])
                )
            else:
                descriptors.append(_chain(creator, ts, (5,)))
    return descriptors, blacklisted_creators


class _Harness:
    """One side of the comparison: cache + blacklist + adoption.

    Mirrors the blacklist-enabled tail of
    ``SecureCyclonNode._adopt_proof``: record the proof, blacklist the
    culprit, purge the cache — so mid-batch adoption effects
    (blacklisted creators, purged entries) land exactly as they do in a
    live node.
    """

    def __init__(self, registry, pre_blacklisted):
        self.registry = registry
        self.cache = SampleCache(horizon_cycles=HORIZON, period_seconds=PERIOD)
        self.blacklist = {key: "pre" for key in pre_blacklisted}
        self.proofs = []

    def adopt(self, proof, network, already_validated):
        self.proofs.append(proof)
        if proof.culprit in self.blacklist:
            return
        self.blacklist[proof.culprit] = proof
        self.cache.forget_creator(proof.culprit)

    def snapshot(self):
        cache_dump = {}
        for creator, slot in self.cache._by_creator.items():
            cache_dump[creator] = {
                ts: (len(d.hops), d.owners(), d.chain_digest())
                for ts, d in slot[1].items()
            }
        return (
            cache_dump,
            {k: getattr(v, "kind", v) for k, v in self.blacklist.items()},
            [
                (p.kind, p.culprit, p.first.identity, p.second.identity)
                for p in self.proofs
            ],
            len(self.cache),
        )


def _fresh_registry() -> KeyRegistry:
    registry = KeyRegistry()
    for keypair in _KEYPAIRS:
        registry.register(keypair)
    return registry


def _run_sequential(descriptors, pre_blacklisted):
    harness = _Harness(_fresh_registry(), pre_blacklisted)
    harness.cache.observe_stream(
        [_rebuild(d) for d in descriptors],
        cycle=1,
        registry=harness.registry,
        blacklisted=harness.blacklist,
        deadline=DEADLINE,
        drop_chains=False,
        adopt=harness.adopt,
        network=None,
    )
    return harness.snapshot()


def _run_batched(descriptors, pre_blacklisted):
    harness = _Harness(_fresh_registry(), pre_blacklisted)
    plan = VerificationPlan(harness.registry)
    plan.begin_cycle(1)
    harness.cache.observe_stream_planned(
        [_rebuild(d) for d in descriptors],
        cycle=1,
        registry=harness.registry,
        blacklisted=harness.blacklist,
        deadline=DEADLINE,
        drop_chains=False,
        adopt=harness.adopt,
        network=None,
        plan=plan,
    )
    return harness.snapshot()


@given(
    spec=st.tuples(
        st.lists(_KINDS, min_size=1, max_size=12),
        st.lists(st.integers(0, 4), min_size=12, max_size=12),
        st.lists(st.integers(0, 7), min_size=12, max_size=12),
    )
)
@settings(max_examples=120, deadline=None, derandomize=True)
def test_batched_stream_is_observationally_identical(spec):
    """Same batch, same effects: caches, blacklists, proofs all match."""
    descriptors, pre_blacklisted = _materialize(spec)
    assert _run_sequential(descriptors, pre_blacklisted) == _run_batched(
        descriptors, pre_blacklisted
    )


@given(
    spec=st.tuples(
        st.lists(_KINDS, min_size=1, max_size=12),
        st.lists(st.integers(0, 4), min_size=12, max_size=12),
        st.lists(st.integers(0, 7), min_size=12, max_size=12),
    ),
    split=st.integers(0, 11),
)
@settings(max_examples=60, deadline=None, derandomize=True)
def test_two_message_streams_match_across_shared_plan_state(spec, split):
    """Splitting one batch into two messages (as dialogue traffic does)
    keeps both paths identical — the plan memo carries state between
    verify_batch calls within a cycle."""
    descriptors, pre_blacklisted = _materialize(spec)
    cut = min(split, len(descriptors))

    seq = _Harness(_fresh_registry(), pre_blacklisted)
    rebuilt = [_rebuild(d) for d in descriptors]
    for part in (rebuilt[:cut], rebuilt[cut:]):
        seq.cache.observe_stream(
            part, 1, seq.registry, seq.blacklist, DEADLINE, False,
            seq.adopt, None,
        )

    bat = _Harness(_fresh_registry(), pre_blacklisted)
    plan = VerificationPlan(bat.registry)
    plan.begin_cycle(1)
    rebuilt = [_rebuild(d) for d in descriptors]
    for part in (rebuilt[:cut], rebuilt[cut:]):
        bat.cache.observe_stream_planned(
            part, 1, bat.registry, bat.blacklist, DEADLINE, False,
            bat.adopt, None, plan,
        )
    assert seq.snapshot() == bat.snapshot()


# ----------------------------------------------------------------------
# regression: mid-batch adoption ordering
# ----------------------------------------------------------------------


def _clone_pair(creator: int, ts: float):
    """Two copies of one token forked *at the creator*: the creator
    signed two first transfers, so the cloning culprit is the creator
    itself — which is what lets the scenario below assert that the
    culprit's other descriptors are purged."""
    base = mint(_KEYPAIRS[creator], _ADDRESS, ts)
    return (
        base.transfer(_KEYPAIRS[creator], _KEYPAIRS[5].public),
        base.transfer(_KEYPAIRS[creator], _KEYPAIRS[6].public),
    )


def _mid_batch_scenario():
    """A batch whose middle element triggers adoption against creator 2.

    Layout: [honest by 2, clone A of 2's token, clone B (violation fires
    here), later honest descriptor by 2, honest by 3].  Everything
    created by 2 must be gone from the cache afterwards — including the
    entries stored *before* the adoption — and the later descriptor by
    2 must never be stored because the loop re-reads the live blacklist.
    """
    early = _chain(2, 50.0, (5,))
    clone_a, clone_b = _clone_pair(2, 200.0)
    late_by_culprit = _chain(2, 400.0, (5,))
    unrelated = _chain(3, 300.0, (5,))
    return [early, clone_a, clone_b, late_by_culprit, unrelated]


def _assert_mid_batch_semantics(snapshot):
    cache_dump, blacklist, proofs, count = snapshot
    culprit = _KEYPAIRS[2].public
    bystander = _KEYPAIRS[3].public
    assert culprit in blacklist, "adoption must blacklist the cloner"
    assert [p[0] for p in proofs] == ["cloning"]
    assert proofs[0][1] == culprit
    # The purge ran mid-batch: nothing by the culprit survives, not even
    # the entries stored before the violation fired...
    assert culprit not in cache_dump
    # ...the later same-batch descriptor by the culprit was refused by
    # the live blacklist check...
    assert count == 1
    # ...and the innocent bystander after it was still accepted.
    assert bystander in cache_dump


def test_mid_batch_adoption_purges_later_descriptors_sequential():
    batch = _mid_batch_scenario()
    _assert_mid_batch_semantics(_run_sequential(batch, set()))


def test_mid_batch_adoption_purges_later_descriptors_batched():
    """The regression this suite exists for: the batched kernel must
    not hoist anything but pure crypto out of the loop — adoption
    effects (blacklist, purge) still land between loop steps."""
    batch = _mid_batch_scenario()
    _assert_mid_batch_semantics(_run_batched(batch, set()))


def test_mid_batch_semantics_agree_exactly():
    batch = _mid_batch_scenario()
    assert _run_sequential(batch, set()) == _run_batched(batch, set())
