"""Property-based tests for view invariants under random operations."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.descriptor import mint
from repro.core.view import SecureView
from repro.crypto.registry import KeyRegistry
from repro.sim.network import NetworkAddress

_REGISTRY = KeyRegistry()
_RNG = random.Random(7)
_KEYPAIRS = [_REGISTRY.new_keypair(_RNG) for _ in range(6)]
_OWNER = _KEYPAIRS[5]
_ADDRESS = NetworkAddress(host=1, port=1)


operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.integers(0, 5),  # creator (5 = owner: must be rejected)
            st.integers(0, 6),  # timestamp slot
            st.booleans(),  # non_swappable
        ),
        st.tuples(st.just("pop"), st.integers(1, 3)),
        st.tuples(st.just("purge"), st.integers(0, 5)),
    ),
    max_size=40,
)


def check_invariants(view):
    entries = list(view)
    assert len(entries) <= view.capacity
    identities = [entry.descriptor.identity for entry in entries]
    assert len(identities) == len(set(identities)), "duplicate identity"
    assert all(entry.creator != view.owner_id for entry in entries)
    assert (
        view.swappable_count() + view.non_swappable_count() == len(entries)
    )


@given(ops=operations)
@settings(max_examples=80, deadline=None)
def test_view_invariants_hold_under_any_operation_sequence(ops):
    view = SecureView(owner_id=_OWNER.public, capacity=5)
    rng = random.Random(42)
    for op in ops:
        if op[0] == "insert":
            _, creator, stamp, non_swappable = op
            descriptor = mint(
                _KEYPAIRS[creator], _ADDRESS, stamp * 10.0
            ).transfer(_KEYPAIRS[creator], _OWNER.public)
            view.insert(descriptor, non_swappable=non_swappable)
        elif op[0] == "pop":
            popped = view.pop_random_swappable(op[1], rng)
            assert all(not entry.non_swappable for entry in popped)
        elif op[0] == "purge":
            view.purge_creator(_KEYPAIRS[op[1]].public)
        check_invariants(view)


@given(ops=operations)
@settings(max_examples=40, deadline=None)
def test_oldest_is_always_the_minimum_timestamp(ops):
    view = SecureView(owner_id=_OWNER.public, capacity=5)
    rng = random.Random(1)
    for op in ops:
        if op[0] == "insert":
            _, creator, stamp, non_swappable = op
            descriptor = mint(
                _KEYPAIRS[creator], _ADDRESS, stamp * 10.0
            ).transfer(_KEYPAIRS[creator], _OWNER.public)
            view.insert(descriptor, non_swappable=non_swappable)
        elif op[0] == "pop":
            view.pop_random_swappable(op[1], rng)
        elif op[0] == "purge":
            view.purge_creator(_KEYPAIRS[op[1]].public)
        oldest = view.oldest()
        if len(view):
            assert oldest.timestamp == min(e.timestamp for e in view)
        else:
            assert oldest is None
