"""Property-based tests for the frequency check.

The invariant from §IV-B: for any set of descriptors by one creator,
the cache must flag a violation iff some *pair* of distinct timestamps
lies closer than the gossip period — never for a legally spaced
history, always for an over-minted one.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.proofs import FrequencyProof
from repro.core.samples import SampleCache
from repro.crypto.registry import KeyRegistry
from repro.core.descriptor import mint
from repro.sim.network import NetworkAddress

PERIOD = 10.0

_REGISTRY = KeyRegistry()
_RNG = random.Random(3)
_CREATOR = _REGISTRY.new_keypair(_RNG)
_HOLDER = _REGISTRY.new_keypair(_RNG)
_ADDRESS = NetworkAddress(host=1, port=1)


def observe_all(timestamps):
    cache = SampleCache(horizon_cycles=1000, period_seconds=PERIOD)
    proofs = []
    for cycle, stamp in enumerate(timestamps):
        descriptor = mint(_CREATOR, _ADDRESS, stamp).transfer(
            _CREATOR, _HOLDER.public
        )
        proofs.extend(
            p
            for p in cache.observe(descriptor, cycle)
            if isinstance(p, FrequencyProof)
        )
    return proofs


@given(
    count=st.integers(min_value=1, max_value=12),
    start=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
)
@settings(max_examples=50, deadline=None)
def test_legal_cadence_never_flagged(count, start):
    timestamps = [start + i * PERIOD for i in range(count)]
    assert observe_all(timestamps) == []


@given(
    stamps=st.lists(
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        min_size=2,
        max_size=10,
        unique=True,
    )
)
@settings(max_examples=80, deadline=None)
def test_violation_flagged_iff_some_pair_is_too_close(stamps):
    # The spec predicate: closer than the period minus the documented
    # nanosecond slack (see proofs.FREQUENCY_SLACK_SECONDS).
    has_close_pair = any(
        0 < abs(a - b) < PERIOD - 1e-9
        for i, a in enumerate(stamps)
        for b in stamps[i + 1 :]
    )
    proofs = observe_all(stamps)
    if has_close_pair:
        assert proofs, stamps
        for proof in proofs:
            assert proof.culprit == _CREATOR.public
            assert proof.validate(_REGISTRY, PERIOD)
    else:
        assert proofs == [], stamps
