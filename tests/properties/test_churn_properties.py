"""Property tests for churn schedules."""

import random

from hypothesis import given, strategies as st

from repro.sim.churn import CRASH, JOIN, LEAVE, ChurnEvent, ChurnSchedule


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    cycles=st.integers(min_value=0, max_value=200),
    join_rate=st.floats(min_value=0.0, max_value=1.0),
    leave_rate=st.floats(min_value=0.0, max_value=1.0),
)
def test_random_churn_events_stay_in_range(seed, cycles, join_rate, leave_rate):
    rng = random.Random(seed)
    schedule = ChurnSchedule.random_churn(
        rng, cycles, join_rate, leave_rate, candidate_ids=["a", "b", "c"]
    )
    seen = 0
    for cycle in range(cycles + 10):
        for event in schedule.events_at(cycle):
            seen += 1
            assert 0 <= event.cycle < cycles
            assert event.action in (JOIN, LEAVE, CRASH)
            if event.action == LEAVE:
                assert event.node_id in ("a", "b", "c")
    assert seen == len(schedule)
    assert seen <= 2 * cycles


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    cycles=st.integers(min_value=50, max_value=200),
)
def test_zero_rates_schedule_nothing(seed, cycles):
    rng = random.Random(seed)
    schedule = ChurnSchedule.random_churn(
        rng, cycles, join_rate=0.0, leave_rate=0.0, candidate_ids=["x"]
    )
    assert len(schedule) == 0


@given(
    cycles=st.lists(
        st.integers(min_value=0, max_value=100), min_size=1, max_size=30
    )
)
def test_events_are_retrievable_by_cycle(cycles):
    schedule = ChurnSchedule(
        ChurnEvent(cycle=cycle, action=JOIN) for cycle in cycles
    )
    for cycle in set(cycles):
        assert len(schedule.events_at(cycle)) == cycles.count(cycle)
    assert len(schedule) == len(cycles)
