"""Property-based tests for ownership chains (hypothesis).

The chain machinery is the security core of SecureCyclon; these
properties pin down the invariants the paper's argument relies on:

* any two honestly derived copies of one descriptor are compatible;
* any double transfer forks, and the fork is attributed to the owner
  that double-transferred — never to anyone else;
* chain verification accepts every honestly built chain.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.chain import ChainRelation, compare_chains
from repro.core.descriptor import mint, verify_descriptor
from repro.crypto.registry import KeyRegistry
from repro.sim.network import NetworkAddress

_REGISTRY = KeyRegistry()
_RNG = random.Random(20240612)
_KEYPAIRS = [_REGISTRY.new_keypair(_RNG) for _ in range(8)]
_ADDRESS = NetworkAddress(host=1, port=1)


def build_chain(path):
    """Honestly transfer a descriptor along ``path`` (list of indices)."""
    descriptor = mint(_KEYPAIRS[path[0]], _ADDRESS, 0.0)
    current = path[0]
    for nxt in path[1:]:
        descriptor = descriptor.transfer(
            _KEYPAIRS[current], _KEYPAIRS[nxt].public
        )
        current = nxt
    return descriptor


paths = st.lists(
    st.integers(min_value=0, max_value=7), min_size=1, max_size=6
)


@given(path=paths)
@settings(max_examples=60, deadline=None)
def test_honest_chains_always_verify(path):
    descriptor = build_chain(path)
    assert verify_descriptor(descriptor, _REGISTRY)


@given(path=paths, extra=st.lists(st.integers(0, 7), max_size=3))
@settings(max_examples=60, deadline=None)
def test_prefix_copies_are_compatible(path, extra):
    base = build_chain(path)
    longer = base
    current = path[-1]
    for nxt in extra:
        longer = longer.transfer(_KEYPAIRS[current], _KEYPAIRS[nxt].public)
        current = nxt
    comparison = compare_chains(base, longer)
    assert comparison.relation in (
        ChainRelation.EQUAL,
        ChainRelation.PREFIX,
    )
    assert not comparison.is_violation
    assert not compare_chains(longer, base).is_violation


@given(
    path=paths,
    branch_a=st.integers(0, 7),
    branch_b=st.integers(0, 7),
    extend_a=st.lists(st.integers(0, 7), max_size=2),
    extend_b=st.lists(st.integers(0, 7), max_size=2),
)
@settings(max_examples=80, deadline=None)
def test_double_transfer_always_blames_the_double_spender(
    path, branch_a, branch_b, extend_a, extend_b
):
    base = build_chain(path)
    spender = path[-1]
    if branch_a == branch_b:
        branch_b = (branch_b + 1) % 8
    copy_a = base.transfer(_KEYPAIRS[spender], _KEYPAIRS[branch_a].public)
    copy_b = base.transfer(_KEYPAIRS[spender], _KEYPAIRS[branch_b].public)
    # Extend both branches honestly: the fork point must not move.
    current = branch_a
    for nxt in extend_a:
        copy_a = copy_a.transfer(_KEYPAIRS[current], _KEYPAIRS[nxt].public)
        current = nxt
    current = branch_b
    for nxt in extend_b:
        copy_b = copy_b.transfer(_KEYPAIRS[current], _KEYPAIRS[nxt].public)
        current = nxt

    comparison = compare_chains(copy_a, copy_b)
    assert comparison.relation is ChainRelation.FORK
    assert comparison.is_violation
    assert comparison.culprit == _KEYPAIRS[spender].public
    assert comparison.fork_index == len(path) - 1


@given(path=paths)
@settings(max_examples=40, deadline=None)
def test_comparison_is_reflexive_and_symmetric(path):
    descriptor = build_chain(path)
    assert compare_chains(descriptor, descriptor).relation is ChainRelation.EQUAL
