"""Scheduler-equivalence guarantees for the pluggable runtime.

Two properties gate the refactor that split ``Engine.run`` into
schedulers:

1. **Bit-for-bit**: the :class:`~repro.sim.scheduler.CycleScheduler`
   must reproduce the pre-refactor engine exactly.  The golden files
   under ``tests/properties/golden/`` are the fig2/3/5/6/7 smoke-scale
   series captured from the engine *before* the scheduler abstraction
   existed (same capture as ``scripts/capture_figures.py``); any drift
   in RNG-stream consumption or activation order shows up as a diff.

2. **Statistical**: the :class:`~repro.sim.scheduler.EventScheduler`
   with zero latency and zero jitter is the same protocol on a
   staggered clock, so a converged honest overlay must produce the
   same degree/in-degree statistics within tolerance — not identical
   runs (activation interleaving differs by design), but the same
   topology-shaping behaviour.
"""

import pathlib

import pytest

from repro.cyclon.config import CyclonConfig
from repro.experiments import (
    fig2_indegree,
    fig3_cyclon_takeover,
    fig5_hub_defense,
    fig6_depletion,
    fig7_redemption,
)
from repro.experiments.scale import Scale
from repro.experiments.scenarios import build_cyclon_overlay
from repro.metrics.degree import indegree_statistics
from repro.metrics.links import view_fill_fraction

GOLDEN = pathlib.Path(__file__).parent / "golden"

_CAPTURES = {
    "fig2": lambda: fig2_indegree.render(
        fig2_indegree.run_fig2(scale=Scale.SMOKE, seed=1)
    ),
    "fig3": lambda: fig3_cyclon_takeover.render(
        fig3_cyclon_takeover.run_fig3(scale=Scale.SMOKE, seed=1)
    ),
    "fig5": lambda: fig5_hub_defense.render(
        fig5_hub_defense.run_fig5(scale=Scale.SMOKE, seed=1)
    ),
    "fig6": lambda: fig6_depletion.render(
        fig6_depletion.run_fig6(scale=Scale.SMOKE, seed=1)
    ),
    "fig7": lambda: fig7_redemption.render(
        fig7_redemption.run_fig7(scale=Scale.SMOKE, seed=1)
    ),
}


@pytest.mark.parametrize("name", sorted(_CAPTURES))
def test_cycle_scheduler_matches_pre_refactor_engine(name):
    """The extracted cycle loop is bit-for-bit the old ``Engine.run``."""
    expected = (GOLDEN / f"{name}.txt").read_text(encoding="utf-8")
    assert _CAPTURES[name]() + "\n" == expected


@pytest.mark.parametrize("name", sorted(_CAPTURES))
def test_batched_verification_matches_goldens(name, monkeypatch):
    """``verification=batched`` is bit-for-bit the sequential verifier.

    The batched kernel (``repro.crypto.batch``) replaces *how* chains
    are verified, never *what* is decided: flipping the whole harness
    to batched mode via the environment override must reproduce the
    committed golden series byte for byte — same RNG stream, same
    accepts, same blacklists, same figures.
    """
    monkeypatch.setenv("REPRO_VERIFICATION", "batched")
    expected = (GOLDEN / f"{name}.txt").read_text(encoding="utf-8")
    assert _CAPTURES[name]() + "\n" == expected


@pytest.mark.golden_wire
@pytest.mark.parametrize("verification", ["sequential", "batched"])
@pytest.mark.parametrize("name", sorted(_CAPTURES))
def test_wire_transport_matches_goldens(name, verification, monkeypatch):
    """``transport=wire`` is bit-for-bit the shared-object simulator.

    The wire transport replaces *how* messages travel — every dialogue
    leg and push framed to bytes and decoded fresh at the receiver —
    never *what* they say: the codec is lossless and consumes no RNG,
    so flipping the whole harness to wire mode via the environment
    override must reproduce the committed golden series byte for byte,
    under both verification modes (the acceptance bar for making the
    codec a load-bearing subsystem).
    """
    monkeypatch.setenv("REPRO_TRANSPORT", "wire")
    monkeypatch.setenv("REPRO_VERIFICATION", verification)
    expected = (GOLDEN / f"{name}.txt").read_text(encoding="utf-8")
    assert _CAPTURES[name]() + "\n" == expected


@pytest.mark.parametrize("transport", ["object", "wire"])
@pytest.mark.parametrize("name", sorted(_CAPTURES))
def test_inert_fault_subsystem_matches_goldens(name, transport, monkeypatch):
    """Installed-but-inert wire faults + health ledger change nothing.

    The fault plane (``repro.sim.transport.FaultInjector``) and the
    per-peer health ledger (``repro.sim.peerhealth``) must be free when
    idle: an injector whose plan injects nothing draws zero randomness
    from its (dedicated) stream, and a ledger that never sees an
    offence never quarantines — so wiring both into every engine must
    reproduce the committed golden series byte for byte, under both
    transports.
    """
    from repro.sim.engine import Engine
    from repro.sim.peerhealth import PeerHealthLedger
    from repro.sim.transport import FaultInjector, FaultPlan

    original_init = Engine.__init__

    def init_with_inert_subsystem(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        self.network.use_fault_injector(
            FaultInjector(
                rng=self.rng_hub.stream("wire-faults"), plan=FaultPlan()
            )
        )
        self.network.use_peer_health(PeerHealthLedger())

    monkeypatch.setattr(Engine, "__init__", init_with_inert_subsystem)
    monkeypatch.setenv("REPRO_TRANSPORT", transport)
    expected = (GOLDEN / f"{name}.txt").read_text(encoding="utf-8")
    assert _CAPTURES[name]() + "\n" == expected


def _converged_stats(runtime):
    overlay = build_cyclon_overlay(
        n=150,
        config=CyclonConfig(view_length=10, swap_length=3),
        seed=11,
        runtime=runtime,
    )
    overlay.run(40)
    return (
        indegree_statistics(overlay.engine),
        view_fill_fraction(overlay.engine),
    )


def test_event_scheduler_zero_latency_matches_cycle_statistics():
    """Zero latency + zero jitter: same degree statistics, by tolerance."""
    cycle_stats, cycle_fill = _converged_stats("cycle")
    event_stats, event_fill = _converged_stats("event")

    # Outdegree is pinned by the protocol, so mean indegree must agree
    # almost exactly; the spread is a converged-property of the shuffle
    # dynamics and may wobble a little between interleavings.
    assert event_stats["mean"] == pytest.approx(cycle_stats["mean"], rel=0.02)
    assert event_stats["stddev"] == pytest.approx(
        cycle_stats["stddev"], rel=0.5, abs=1.0
    )
    assert event_fill == pytest.approx(cycle_fill, abs=0.05)
