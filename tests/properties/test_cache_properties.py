"""Property-based tests for cache invariants (hypothesis)."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.descriptor import mint
from repro.core.redemption import RedemptionCache
from repro.core.samples import SampleCache
from repro.crypto.registry import KeyRegistry
from repro.sim.network import NetworkAddress

_REGISTRY = KeyRegistry()
_RNG = random.Random(5)
_KEYPAIRS = [_REGISTRY.new_keypair(_RNG) for _ in range(4)]
_ADDRESS = NetworkAddress(host=1, port=1)
PERIOD = 10.0


def make_descriptor(creator: int, stamp_slot: int):
    return mint(_KEYPAIRS[creator], _ADDRESS, stamp_slot * PERIOD).transfer(
        _KEYPAIRS[creator], _KEYPAIRS[3].public
    )


@given(
    events=st.lists(
        st.tuples(
            st.integers(0, 2),  # creator
            st.integers(0, 15),  # timestamp slot
            st.integers(0, 30),  # observation cycle
        ),
        max_size=50,
    )
)
@settings(max_examples=60, deadline=None)
def test_sample_cache_size_is_bounded_by_horizon(events):
    horizon = 5
    cache = SampleCache(horizon_cycles=horizon, period_seconds=PERIOD)
    events = sorted(events, key=lambda event: event[2])
    for creator, slot, cycle in events:
        cache.expire(cycle)
        cache.observe(make_descriptor(creator, slot), cycle)
        # At most one entry per distinct identity observed within the
        # horizon window — i.e. never more than what arrived recently.
        assert len(cache) <= 3 * 16  # creators x timestamp slots hard cap
    final_cycle = max((cycle for _, _, cycle in events), default=0)
    cache.expire(final_cycle + horizon + 1)
    assert len(cache) == 0


@given(
    adds=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 40)), max_size=40
    ),
    retention=st.integers(1, 8),
)
@settings(max_examples=60, deadline=None)
def test_redemption_cache_never_holds_expired_entries(adds, retention):
    cache = RedemptionCache(retention_cycles=retention)
    adds = sorted(adds, key=lambda add: add[1])
    added = []
    for slot, cycle in adds:
        descriptor = (
            mint(_KEYPAIRS[0], _ADDRESS, slot * PERIOD)
            .transfer(_KEYPAIRS[0], _KEYPAIRS[1].public)
            .redeem(_KEYPAIRS[1])
        )
        cache.expire(cycle)
        cache.add(descriptor, cycle)
        added.append(cycle)
        # Invariant: only entries added within the retention window may
        # remain (several redemptions per cycle are legal).
        in_window = sum(1 for c in added if c > cycle - retention)
        assert len(cache) <= in_window
    if adds:
        last = adds[-1][1]
        cache.expire(last + retention)
        assert len(cache) == 0
