"""Wire fault injection: plans, the injector, and channel degradation."""

import random

import pytest

from repro.core.codec import MAX_FRAME_BYTES
from repro.core.exchange import GossipAccept, GossipReject
from repro.errors import CodecError, ConfigError
from repro.sim.channel import Channel, MessageTimeout, MessageUndecodable
from repro.sim.network import Network
from repro.sim.peerhealth import PeerHealthLedger
from repro.sim.transport import (
    DROPPED,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    make_transport,
)

FRAME = bytes(range(64))


def injector(plan=None, seed=0, **kwargs):
    return FaultInjector(rng=random.Random(seed), plan=plan, **kwargs)


class TestFaultPlan:
    def test_default_plan_is_inert(self):
        assert FaultPlan().inert

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_any_nonzero_probability_breaks_inertness(self, kind):
        assert not FaultPlan(**{kind: 0.1}).inert

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_probabilities_validated(self, kind, bad):
        with pytest.raises(ConfigError):
            FaultPlan(**{kind: bad})

    def test_knobs_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan(max_bit_flips=0)
        with pytest.raises(ConfigError):
            FaultPlan(inflate_bytes=0)


class TestFaultInjector:
    def test_no_plan_passes_frames_through_untouched(self):
        inj = injector()
        assert inj.apply(FRAME, "a", "b", "request") is FRAME
        assert inj.total_injected == 0

    def test_inert_plan_consumes_zero_randomness(self):
        # The golden guarantee: an installed-but-inert injector must
        # not draw from its stream at all, so enabling the subsystem
        # cannot shift any later consumer of the same RNG object.
        inj = injector(FaultPlan())
        before = inj.rng.getstate()
        for _ in range(50):
            inj.apply(FRAME, "a", "b", "request")
        assert inj.rng.getstate() == before

    def test_drop_returns_sentinel(self):
        inj = injector(FaultPlan(drop=1.0))
        assert inj.apply(FRAME, "a", "b", "request") is DROPPED
        assert inj.injected["drop"] == 1

    def test_drop_applies_to_object_payloads_too(self):
        # Dropping needs no bytes; it must work under the object
        # transport as well.
        payload = GossipAccept(samples=(), proofs=())
        inj = injector(FaultPlan(drop=1.0))
        assert inj.apply(payload, "a", "b", "request") is DROPPED

    def test_byte_faults_skip_object_payloads(self):
        payload = GossipAccept(samples=(), proofs=())
        inj = injector(FaultPlan(corrupt=1.0, truncate=1.0, inflate=1.0))
        assert inj.apply(payload, "a", "b", "request") is payload
        assert inj.total_injected == 0

    def test_corrupt_flips_bits_preserving_length(self):
        inj = injector(FaultPlan(corrupt=1.0))
        mutated = inj.apply(FRAME, "a", "b", "request")
        assert len(mutated) == len(FRAME)
        assert mutated != FRAME

    def test_truncate_shortens_frame(self):
        inj = injector(FaultPlan(truncate=1.0))
        mutated = inj.apply(FRAME, "a", "b", "request")
        assert 1 <= len(mutated) < len(FRAME)
        assert FRAME.startswith(mutated)

    def test_inflate_pads_frame(self):
        inj = injector(FaultPlan(inflate=1.0, inflate_bytes=128))
        mutated = inj.apply(FRAME, "a", "b", "request")
        assert len(mutated) == len(FRAME) + 128
        assert mutated.startswith(FRAME)

    def test_replay_serves_a_previously_seen_frame(self):
        inj = injector(FaultPlan(replay=1.0))
        first = b"first-frame"
        assert inj.apply(first, "a", "b", "request") is first
        stale = inj.apply(FRAME, "a", "b", "request")
        assert stale == first

    def test_replay_without_history_passes_through(self):
        inj = injector(FaultPlan(replay=1.0))
        assert inj.apply(FRAME, "a", "b", "request") is FRAME
        assert inj.injected["replay"] == 0

    def test_per_sender_plans_override_the_global_default(self):
        inj = injector()
        inj.register_plan("mallory", FaultPlan(corrupt=1.0))
        assert inj.apply(FRAME, "honest", "b", "request") is FRAME
        assert inj.apply(FRAME, "mallory", "b", "request") != FRAME

    def test_registered_plan_respects_active_gate(self):
        gate = {"on": False}
        inj = injector()
        inj.register_plan(
            "mallory", FaultPlan(corrupt=1.0), active=lambda: gate["on"]
        )
        assert inj.apply(FRAME, "mallory", "b", "request") is FRAME
        gate["on"] = True
        assert inj.apply(FRAME, "mallory", "b", "request") != FRAME


def wire_channel(deliver, plan, health=None):
    return Channel(
        initiator_id="init",
        partner_id="partner",
        deliver=deliver,
        rng=random.Random(7),
        transport=make_transport("wire"),
        faults=injector(plan),
        health=health,
    )


class TestChannelDegradation:
    """Satellite regression: CodecError never escapes the channel."""

    def test_corrupted_request_degrades_to_undecodable(self):
        def deliver(payload):  # pragma: no cover - must not be reached
            raise AssertionError("corrupted request must not be delivered")

        channel = wire_channel(deliver, FaultPlan(corrupt=1.0))
        with pytest.raises(MessageUndecodable) as exc_info:
            channel.request(GossipReject(reason="x", proofs=()))
        # Never a raw CodecError, and not a retryable timeout either.
        assert not isinstance(exc_info.value, CodecError)
        assert not isinstance(exc_info.value, MessageTimeout)
        assert exc_info.value.delivered is False
        assert exc_info.value.oversize is False

    def test_corrupted_reply_keeps_the_delivered_asymmetry(self):
        delivered = []

        def deliver(payload):
            delivered.append(payload)
            return GossipAccept(samples=(), proofs=())

        channel = Channel(
            initiator_id="init",
            partner_id="partner",
            deliver=deliver,
            rng=random.Random(7),
            transport=make_transport("wire"),
            # Corrupt replies only: the partner processed the request.
            faults=FaultInjector(
                rng=random.Random(0), plan=FaultPlan(corrupt=1.0)
            ),
        )
        channel._faults.register_plan("init", FaultPlan())
        with pytest.raises(MessageUndecodable) as exc_info:
            channel.request(GossipReject(reason="x", proofs=()))
        assert delivered  # §V-A case 2: the request got through
        assert exc_info.value.delivered is True

    def test_inflated_frame_reports_oversize(self):
        plan = FaultPlan(inflate=1.0, inflate_bytes=MAX_FRAME_BYTES)
        channel = wire_channel(lambda payload: None, plan)
        with pytest.raises(MessageUndecodable) as exc_info:
            channel.request(GossipReject(reason="x", proofs=()))
        assert exc_info.value.oversize is True

    def test_health_ledger_scores_the_faulting_sender(self):
        ledger = PeerHealthLedger()
        channel = wire_channel(
            lambda payload: None, FaultPlan(corrupt=1.0), health=ledger
        )
        with pytest.raises(MessageUndecodable):
            channel.request(GossipReject(reason="x", proofs=()))
        # The *initiator* garbled its own request; the partner's record
        # stays clean.
        assert ledger.score("init") > 0
        assert ledger.score("partner") == 0


class _PushRecorder:
    def __init__(self):
        self.received = []

    def receive(self, sender_id, payload):  # pragma: no cover - unused
        raise AssertionError("dialogue path not under test")

    def receive_push(self, sender_id, payload):
        self.received.append((sender_id, payload))


class TestPushDegradation:
    def _network(self, plan):
        network = Network(
            rng=random.Random(3),
            transport=make_transport("wire"),
            fault_injector=injector(plan),
            health=PeerHealthLedger(),
        )
        recorder = _PushRecorder()
        network.attach("src", _PushRecorder())
        network.attach("dst", recorder)
        return network, recorder

    def test_corrupted_push_is_swallowed_and_counted(self):
        network, recorder = self._network(FaultPlan(corrupt=1.0))
        accepted = network.push(
            "src", "dst", GossipReject(reason="x", proofs=())
        )
        assert accepted  # the frame was sent; it died at the receiver
        assert recorder.received == []
        assert network.undecodable_frames == 1
        assert network.peer_health.score("src") > 0

    def test_clean_push_still_delivers(self):
        network, recorder = self._network(FaultPlan())
        assert network.push("src", "dst", GossipReject(reason="x", proofs=()))
        assert len(recorder.received) == 1
        assert network.undecodable_frames == 0

    def test_push_from_quarantined_sender_is_refused(self):
        network, recorder = self._network(FaultPlan())
        ledger = network.peer_health
        while not ledger.is_quarantined("src"):
            ledger.record_decode_failure("src")
        network.push("src", "dst", GossipReject(reason="x", proofs=()))
        assert recorder.received == []
        assert network.quarantine_refusals == 1
