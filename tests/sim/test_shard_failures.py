"""Crash-robustness of the shard coordinator.

A sharded run must never hang and never present a partial result: a
dead worker, a silent worker, or an invalid configuration all surface
as a typed :class:`~repro.errors.ShardFailure` (or its
:class:`~repro.errors.ShardTimeout` subclass for deadline expiry), and
the coordinator tears the whole fleet down before raising.
"""

import os
import signal
import threading
import time

import pytest

import repro.sim.shard as shard_module
from repro.core.config import SecureCyclonConfig
from repro.errors import ShardFailure, ShardTimeout
from repro.experiments.scenarios import build_secure_overlay
from repro.sim.shardcoord import ShardedSession, sharded


def _overlay(seed=11, n=16):
    return build_secure_overlay(
        n=n,
        config=SecureCyclonConfig(view_length=6, swap_length=3),
        seed=seed,
    )


def test_killed_worker_raises_shard_failure_not_a_hang():
    session = ShardedSession(_overlay(), 2, deadline_s=30.0)
    session.start()
    session._workers[1].kill()
    started = time.monotonic()
    with pytest.raises(ShardFailure):
        session.run_cycles(3)
    # EOF detection, not deadline expiry, must be what fired.
    assert time.monotonic() - started < 10.0
    assert not any(worker.is_alive() for worker in session._workers)
    session.close()


def test_worker_killed_mid_cycle_raises_shard_failure(monkeypatch):
    # Stall both workers inside the cycle (the hook is read post-fork,
    # monkeypatched pre-fork so children inherit it), then kill one
    # while the coordinator is blocked collecting BEGIN_DONE.
    monkeypatch.setattr(shard_module, "_TEST_STALL_S", 10.0)
    session = ShardedSession(_overlay(), 2, deadline_s=60.0)
    session.start()
    killer = threading.Timer(0.3, session._workers[0].kill)
    killer.start()
    started = time.monotonic()
    try:
        with pytest.raises(ShardFailure):
            session.run_cycles(1)
    finally:
        killer.cancel()
    assert time.monotonic() - started < 10.0
    session.close()


def test_silent_shard_honours_the_configured_deadline(monkeypatch):
    monkeypatch.setattr(shard_module, "_TEST_STALL_S", 30.0)
    session = ShardedSession(_overlay(), 2, deadline_s=1.0)
    session.start()
    started = time.monotonic()
    with pytest.raises(ShardTimeout):
        session.run_cycles(1)
    elapsed = time.monotonic() - started
    assert 1.0 <= elapsed < 10.0
    assert not any(worker.is_alive() for worker in session._workers)
    session.close()


def test_failure_tears_the_whole_fleet_down():
    session = ShardedSession(_overlay(), 4, deadline_s=30.0)
    session.start()
    pids = [worker.pid for worker in session._workers]
    session._workers[2].kill()
    with pytest.raises(ShardFailure):
        session.run_cycles(2)
    for worker in session._workers or []:
        assert not worker.is_alive()
    # close() is idempotent and the session refuses further driving.
    session.close()
    with pytest.raises(ShardFailure):
        session.run_cycles(1)
    assert len(pids) == 4


# ----------------------------------------------------------------------
# configuration rejections (typed, raised before any fork)
# ----------------------------------------------------------------------


def test_churn_schedules_are_rejected():
    overlay = _overlay()
    overlay.engine._churn.crash(5, next(iter(overlay.engine.nodes)))
    with pytest.raises(ShardFailure):
        ShardedSession(overlay, 2)


def test_event_runtime_is_rejected():
    overlay = build_secure_overlay(
        n=12,
        config=SecureCyclonConfig(view_length=6, swap_length=3),
        seed=3,
        runtime="event",
    )
    with pytest.raises(ShardFailure):
        ShardedSession(overlay, 2)


def test_deterministic_mode_rejects_message_loss():
    from repro.sim.channel import DropPolicy
    from repro.sim.engine import SimConfig

    overlay = build_secure_overlay(
        n=12,
        config=SecureCyclonConfig(view_length=6, swap_length=3),
        seed=3,
        sim_config=SimConfig(
            seed=3, drop_policy=DropPolicy(request_loss=0.1)
        ),
    )
    with pytest.raises(ShardFailure):
        ShardedSession(overlay, 2, mode="deterministic")


def test_bad_mode_backend_and_shard_count_are_rejected():
    overlay = _overlay()
    with pytest.raises(ShardFailure):
        ShardedSession(overlay, 0)
    with pytest.raises(ShardFailure):
        ShardedSession(overlay, 2, mode="chaotic")
    with pytest.raises(ShardFailure):
        ShardedSession(overlay, 2, backend="greenlet")
    with pytest.raises(ShardFailure):
        ShardedSession(overlay, 2, backend="thread")  # no replica_factory


def test_an_overlay_cannot_run_twice_under_a_sharded_context():
    overlay = _overlay()
    with sharded(2):
        overlay.run(2)
        with pytest.raises(ShardFailure):
            overlay.run(2)
