"""Per-peer health: scoring, decay, hysteresis, and the DoS meter."""

import pytest

from repro.adversary.wire import MalformedFrameAttacker
from repro.core.config import SecureCyclonConfig
from repro.errors import ConfigError, PeerQuarantined
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.links import view_fill_fraction
from repro.sim.engine import SimConfig
from repro.sim.peerhealth import (
    OFFENCE_DECODE,
    OFFENCE_OVERSIZE,
    OFFENCE_TIMEOUT,
    HealthPolicy,
    PeerHealthLedger,
)


class TestHealthPolicy:
    def test_defaults_validate(self):
        HealthPolicy()

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigError):
            HealthPolicy(decode_failure_weight=-1.0)

    @pytest.mark.parametrize("decay", [0.0, 1.0, 1.5])
    def test_decay_must_be_strictly_inside_unit_interval(self, decay):
        with pytest.raises(ConfigError):
            HealthPolicy(decay=decay)

    def test_release_must_sit_below_quarantine(self):
        with pytest.raises(ConfigError):
            HealthPolicy(quarantine_threshold=2.0, release_threshold=2.0)
        HealthPolicy(quarantine_threshold=2.0, release_threshold=1.9)


class TestScoring:
    def test_offences_accumulate_their_weights(self):
        policy = HealthPolicy(
            decode_failure_weight=1.0,
            oversize_weight=2.0,
            timeout_weight=0.25,
            quarantine_threshold=100.0,
            release_threshold=1.0,
        )
        ledger = PeerHealthLedger(policy)
        ledger.record_decode_failure("p")
        ledger.record_oversize("p")
        ledger.record_timeout("p")
        assert ledger.score("p") == pytest.approx(3.25)
        assert ledger.offences["p"] == {
            OFFENCE_DECODE: 1,
            OFFENCE_OVERSIZE: 1,
            OFFENCE_TIMEOUT: 1,
        }
        assert ledger.offence_total(OFFENCE_DECODE) == 1

    def test_clean_peers_score_zero(self):
        ledger = PeerHealthLedger()
        assert ledger.score("anyone") == 0.0
        assert not ledger.is_quarantined("anyone")

    def test_tick_decays_scores_geometrically(self):
        policy = HealthPolicy(decay=0.5, quarantine_threshold=100.0)
        ledger = PeerHealthLedger(policy)
        for _ in range(4):
            ledger.record_decode_failure("p")
        assert ledger.score("p") == pytest.approx(4.0)
        ledger.tick(1)
        assert ledger.score("p") == pytest.approx(2.0)
        ledger.tick(2)
        assert ledger.score("p") == pytest.approx(1.0)

    def test_tiny_scores_are_forgotten(self):
        ledger = PeerHealthLedger(HealthPolicy(quarantine_threshold=100.0))
        ledger.record_decode_failure("p")
        for cycle in range(100):
            ledger.tick(cycle)
        assert ledger.score("p") == 0.0


class TestQuarantineHysteresis:
    POLICY = HealthPolicy(
        decay=0.5, quarantine_threshold=3.0, release_threshold=0.75
    )

    def test_crossing_the_threshold_quarantines(self):
        ledger = PeerHealthLedger(self.POLICY)
        ledger.record_decode_failure("p")
        ledger.record_decode_failure("p")
        assert not ledger.is_quarantined("p")
        ledger.record_decode_failure("p")
        assert ledger.is_quarantined("p")
        assert ledger.quarantine_events == 1
        assert "p" in ledger.quarantined_at

    def test_quarantine_holds_inside_the_hysteresis_band(self):
        # Score 4.0 -> 2.0 -> 1.0: below the entry threshold both times
        # but above release (0.75), so the peer stays out.
        ledger = PeerHealthLedger(self.POLICY)
        for _ in range(4):
            ledger.record_decode_failure("p")
        assert ledger.is_quarantined("p")
        ledger.tick(1)
        ledger.tick(2)
        assert ledger.score("p") == pytest.approx(1.0)
        assert ledger.is_quarantined("p")

    def test_quiet_peer_is_eventually_released(self):
        ledger = PeerHealthLedger(self.POLICY)
        for _ in range(4):
            ledger.record_decode_failure("p")
        cycles = 0
        while ledger.is_quarantined("p"):
            cycles += 1
            assert cycles < 50, "quarantine never released"
            ledger.tick(cycles)
        assert ledger.release_events == 1
        # ...and a relapse quarantines again from the decayed base.
        for _ in range(6):
            ledger.record_decode_failure("p")
        assert ledger.is_quarantined("p")
        assert ledger.quarantine_events == 2
        # First-quarantine cycle is preserved across re-entry.
        assert ledger.quarantined_at["p"] == 0


class TestAmplificationMeter:
    def test_unbound_meter_stays_zero(self):
        ledger = PeerHealthLedger()
        ledger.note_sent("a", "b", 100)
        ledger.note_scanned("a", 100)
        assert ledger.adversary_bytes_sent == 0
        assert ledger.amplification() == 0.0

    def test_amplification_arithmetic(self):
        ledger = PeerHealthLedger()
        ledger.bind_adversary({"mallory"})
        ledger.note_sent("mallory", "honest", 100)  # adversary spends 100
        ledger.note_scanned("mallory", 100)  # honest scans those 100
        ledger.note_sent("honest", "mallory", 150)  # honest replies 150
        ledger.note_sent("honest", "honest2", 999)  # honest<->honest: free
        ledger.note_scanned("honest", 999)
        assert ledger.adversary_bytes_sent == 100
        assert ledger.adversary_bytes_scanned == 100
        assert ledger.honest_bytes_to_adversary == 150
        assert ledger.amplification() == pytest.approx(2.5)


class TestNetworkEnforcement:
    def _overlay(self, **kwargs):
        return build_secure_overlay(
            n=kwargs.pop("n", 20),
            config=SecureCyclonConfig(
                view_length=5, swap_length=2, transport="wire"
            ),
            seed=11,
            sim_config=SimConfig(
                seed=11, peer_health=HealthPolicy(), transport="wire"
            ),
            **kwargs,
        )

    def test_connect_refuses_quarantined_endpoints(self):
        overlay = self._overlay()
        network = overlay.engine.network
        ledger = network.peer_health
        ids = list(overlay.engine.alive_ids())
        victim, other, third = ids[0], ids[1], ids[2]
        while not ledger.is_quarantined(victim):
            ledger.record_decode_failure(victim)
        with pytest.raises(PeerQuarantined):
            network.connect(other, victim)  # quarantined partner
        with pytest.raises(PeerQuarantined):
            network.connect(victim, other)  # quarantined initiator
        network.connect(other, third)  # healthy pair unaffected
        assert network.quarantine_refusals == 2

    def test_quarantined_overlay_recovers_after_release(self):
        # Quarantine an honest node by hand, then run: once decay
        # releases it, its links function again and the overlay keeps
        # full views.
        overlay = self._overlay()
        ledger = overlay.engine.network.peer_health
        victim = next(iter(overlay.engine.alive_ids()))
        while not ledger.is_quarantined(victim):
            ledger.record_decode_failure(victim)
        overlay.run(10)
        assert not ledger.is_quarantined(victim)
        assert ledger.release_events >= 1
        assert view_fill_fraction(overlay.engine) > 0.9


def test_end_to_end_malformed_frame_attack_degrades_gracefully():
    """200 honest-ish nodes, 10% frame-corrupting attackers, wire mode.

    The engine must survive every cycle, the receive boundary must see
    (and count) garbage, quarantine must engage against the attackers,
    and the honest overlay must stay connected.
    """
    nodes = 200
    overlay = build_secure_overlay(
        n=nodes,
        config=SecureCyclonConfig(
            view_length=10, swap_length=3, transport="wire"
        ),
        malicious=nodes // 10,
        attack_start=3,
        seed=5,
        attacker_cls=MalformedFrameAttacker,
        sim_config=SimConfig(
            seed=5, peer_health=HealthPolicy(), transport="wire"
        ),
    )
    engine = overlay.engine
    ledger = engine.network.peer_health
    ledger.bind_adversary(engine.malicious_ids)
    overlay.run(15)  # no crash: CodecError never escapes the engine

    assert engine.network.undecodable_frames > 0
    quarantined_attackers = set(ledger.quarantined_at) & engine.malicious_ids
    assert quarantined_attackers, "quarantine never engaged"
    # No honest node was ever quarantined: collateral damage stays nil
    # (honest frames always decode).
    assert not set(ledger.quarantined_at) - engine.malicious_ids
    # The honest overlay survives: views stay usable throughout.
    assert view_fill_fraction(engine) > 0.5
    # The attacker paid for its noise: the amplification budget is
    # bounded (each adversary byte buys a bounded amount of honest
    # traffic/scan work, it does not snowball).
    assert 0.0 < ledger.amplification() < 10.0
