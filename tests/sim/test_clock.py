"""Unit tests for the simulated clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock


def test_initial_state():
    clock = SimClock(period_seconds=10.0)
    assert clock.cycle == 0
    assert clock.now() == 0.0


def test_advance_moves_wall_clock():
    clock = SimClock(period_seconds=10.0)
    clock.advance()
    assert clock.cycle == 1
    assert clock.now() == 10.0
    clock.advance(4)
    assert clock.now() == 50.0


def test_timestamp_cycle_roundtrip():
    clock = SimClock(period_seconds=7.5)
    for cycle in (0, 1, 13, 400):
        assert clock.cycle_of_timestamp(clock.timestamp_for_cycle(cycle)) == cycle


def test_invalid_period_rejected():
    with pytest.raises(SimulationError):
        SimClock(period_seconds=0)


def test_negative_advance_rejected():
    clock = SimClock()
    with pytest.raises(SimulationError):
        clock.advance(-1)


def test_negative_start_cycle_rejected():
    with pytest.raises(SimulationError):
        SimClock(start_cycle=-2)


def test_advance_to_moves_continuous_time_and_derives_cycle():
    clock = SimClock(period_seconds=10.0)
    assert clock.advance_to(25.0) == 2
    assert clock.now() == 25.0
    assert clock.cycle == 2


def test_advance_to_accepts_explicit_cycle_pin():
    clock = SimClock(period_seconds=10.0)
    assert clock.advance_to(30.0, cycle=3) == 3
    assert clock.cycle == 3


def test_advance_to_rejects_going_backwards():
    clock = SimClock(period_seconds=10.0)
    clock.advance_to(15.0)
    with pytest.raises(SimulationError):
        clock.advance_to(14.9)
