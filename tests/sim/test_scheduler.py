"""Unit tests for the pluggable schedulers (event runtime focus)."""

import pytest

from repro.errors import SimulationError
from repro.sim.churn import ChurnSchedule
from repro.sim.engine import Engine, ProtocolNode, SimConfig
from repro.sim.latency import ConstantLatency
from repro.sim.observers import Observer, TimedSeriesObserver
from repro.sim.scheduler import (
    CycleScheduler,
    EventScheduler,
    PeriodJitter,
    Scheduler,
    make_scheduler,
)


class TimestampingNode(ProtocolNode):
    """Records the wall-clock instants of its activations."""

    def __init__(self, node_id, engine):
        self.node_id = node_id
        self.engine = engine
        self.activations = []
        self.begin_cycles = []
        self.pushes = []

    def begin_cycle(self, cycle):
        self.begin_cycles.append(cycle)

    def run_cycle(self, network):
        self.activations.append(self.engine.clock.now_s)

    def receive(self, sender_id, payload):
        return None

    def receive_push(self, sender_id, payload):
        self.pushes.append((self.engine.clock.now_s, sender_id, payload))


def build_event_engine(n=4, scheduler=None, **engine_kwargs):
    engine = Engine(
        SimConfig(seed=2),
        scheduler=scheduler or EventScheduler(),
        **engine_kwargs,
    )
    nodes = [TimestampingNode(i, engine) for i in range(n)]
    for node in nodes:
        engine.add_node(node)
    return engine, nodes


def test_default_scheduler_is_cycle():
    assert isinstance(Engine().scheduler, CycleScheduler)


def test_make_scheduler_resolves_names_and_instances():
    assert isinstance(make_scheduler("cycle"), CycleScheduler)
    assert isinstance(make_scheduler("event"), EventScheduler)
    scheduler = EventScheduler()
    assert make_scheduler(scheduler) is scheduler
    with pytest.raises(SimulationError):
        make_scheduler("fiber")
    with pytest.raises(SimulationError):
        make_scheduler(scheduler, timeout_s=1.0)


def test_event_run_activates_each_node_once_per_period():
    engine, nodes = build_event_engine(n=5)
    engine.run(3)
    assert engine.clock.cycle == 3
    assert engine.clock.now_s == pytest.approx(30.0)
    for node in nodes:
        assert len(node.activations) == 3
        # Strict timers: consecutive activations exactly a period apart,
        # staggered somewhere inside the first period.
        assert 0.0 <= node.activations[0] < 10.0
        for earlier, later in zip(node.activations, node.activations[1:]):
            assert later - earlier == pytest.approx(10.0)


def test_event_runs_compose_like_one_long_run():
    engine_a, nodes_a = build_event_engine()
    engine_a.run(4)
    engine_b, nodes_b = build_event_engine()
    engine_b.run(1)
    engine_b.run(3)
    assert [n.activations for n in nodes_a] == [n.activations for n in nodes_b]


def test_event_observer_cycle_hooks_fire_per_cycle():
    class Spy(Observer):
        def __init__(self):
            self.cycles = []

        def on_cycle_end(self, engine, cycle):
            self.cycles.append(cycle)

    engine, _ = build_event_engine()
    spy = Spy()
    engine.add_observer(spy)
    engine.run(3)
    assert spy.cycles == [0, 1, 2]


def test_event_time_sampling_observer():
    engine, _ = build_event_engine(
        scheduler=EventScheduler(sample_every_s=2.5)
    )
    observer = TimedSeriesObserver({"population": lambda e: len(e.nodes)})
    engine.add_observer(observer)
    engine.run(1)
    # Half-open run window: the sample landing exactly on the final
    # boundary carries over to the next run (where it fires first).
    assert observer.times("population") == pytest.approx([2.5, 5.0, 7.5])
    engine.run(1)
    assert observer.times("population") == pytest.approx(
        [2.5, 5.0, 7.5, 10.0, 12.5, 15.0, 17.5]
    )
    assert observer.values("population") == [4] * 7


def test_uniform_jitter_changes_intervals_but_keeps_rate():
    scheduler = EventScheduler(
        jitter=PeriodJitter(mode="uniform", spread=0.3)
    )
    engine, nodes = build_event_engine(scheduler=scheduler)
    engine.run(20)
    for node in nodes:
        intervals = [
            later - earlier
            for earlier, later in zip(node.activations, node.activations[1:])
        ]
        assert intervals, "node never re-activated"
        assert any(abs(i - 10.0) > 1e-6 for i in intervals)
        for interval in intervals:
            assert 7.0 - 1e-9 <= interval <= 13.0 + 1e-9
        # Rate preserved on average: ~1 activation per period.
        assert len(node.activations) == pytest.approx(20, abs=3)


def test_poisson_jitter_produces_memoryless_intervals():
    scheduler = EventScheduler(jitter=PeriodJitter(mode="poisson"))
    engine, nodes = build_event_engine(n=2, scheduler=scheduler)
    engine.run(50)
    intervals = [
        later - earlier
        for node in nodes
        for earlier, later in zip(node.activations, node.activations[1:])
    ]
    assert len(set(round(i, 6) for i in intervals)) > len(intervals) // 2
    mean = sum(intervals) / len(intervals)
    assert 5.0 < mean < 20.0  # loose CLT bounds around the 10 s period


def test_jitter_validation():
    with pytest.raises(SimulationError):
        PeriodJitter(mode="gaussian")
    with pytest.raises(SimulationError):
        PeriodJitter(mode="uniform", spread=1.5)


def test_pushes_are_delayed_by_latency_and_survive_across_runs():
    scheduler = EventScheduler(latency=ConstantLatency(delay_s=4.0))
    engine, nodes = build_event_engine(n=2, scheduler=scheduler)

    class Pusher(TimestampingNode):
        def run_cycle(self, network):
            super().run_cycle(network)
            network.push(self.node_id, 0, "hello")

    pusher = Pusher("pusher", engine)
    engine.add_node(pusher)
    engine.run(1)
    deliveries = nodes[0].pushes
    assert len(pusher.activations) == 1
    # Sent at the pusher's activation instant, delivered 4 s later
    # (possibly in the next run's window — none lost either way).
    engine.run(1)
    deliveries = nodes[0].pushes
    assert len(deliveries) == 2
    for delivered_at, sender, payload in deliveries:
        assert payload == "hello"
        assert sender == "pusher"
    assert deliveries[0][0] == pytest.approx(pusher.activations[0] + 4.0)


def test_timed_churn_fires_between_cycle_boundaries():
    churn = ChurnSchedule().crash_at(14.5, 1)
    engine, nodes = build_event_engine(churn=churn)
    engine.run(3)
    assert 1 not in engine.nodes
    # Node 1 was activated in cycle 0 (before 14.5 s it had one or two
    # activations depending on stagger) and never after the crash.
    assert all(at < 14.5 for at in nodes[1].activations)
    assert engine.trace.count("churn.crash") == 1


def test_cycle_churn_applies_at_boundaries_in_event_mode():
    joined = []

    def join_factory(engine):
        node = TimestampingNode(f"new-{len(joined)}", engine)
        joined.append(node)
        return node

    churn = ChurnSchedule().leave(1, 0).join(2)
    engine, nodes = build_event_engine(
        churn=churn, join_factory=join_factory
    )
    engine.run(4)
    assert 0 not in engine.nodes
    assert all(at < 10.0 for at in nodes[0].activations)
    assert joined and joined[0].node_id in engine.nodes
    # Joined at the cycle-2 boundary (20 s): activated in cycles 2, 3.
    assert len(joined[0].activations) == 2
    assert all(at >= 20.0 for at in joined[0].activations)


def test_event_scheduler_refuses_second_engine():
    scheduler = EventScheduler()
    engine_a, _ = build_event_engine(scheduler=scheduler)
    engine_a.run(1)
    engine_b = Engine(SimConfig(seed=3), scheduler=scheduler)
    engine_b.add_node(TimestampingNode(0, engine_b))
    with pytest.raises(SimulationError):
        engine_b.run(1)


def test_use_scheduler_switches_runtime():
    engine, nodes = build_event_engine(scheduler=CycleScheduler())
    engine.run(2)
    engine.use_scheduler(EventScheduler())
    engine.run(2)
    assert engine.clock.cycle == 4
    assert engine.clock.now_s == pytest.approx(40.0)
    for node in nodes:
        assert len(node.activations) == 4
        # Cycle-mode activations sit exactly on boundaries; the event
        # ones are staggered inside (20 s, 40 s).
        assert node.activations[:2] == [0.0, 10.0]
        assert all(20.0 <= at < 40.0 for at in node.activations[2:])


def test_switching_back_to_cycle_unbinds_event_hooks():
    scheduler = EventScheduler(latency=ConstantLatency(delay_s=1.0))
    engine, nodes = build_event_engine(n=2, scheduler=scheduler)
    engine.run(1)
    engine.use_scheduler(CycleScheduler())
    engine.run(1)
    # Under the cycle runtime pushes are synchronous again: a push sent
    # now is delivered immediately, not parked in the event heap.
    engine.network.push(0, 1, "sync")
    assert nodes[1].pushes and nodes[1].pushes[-1][2] == "sync"


def test_scheduler_interface_is_abstract():
    with pytest.raises(NotImplementedError):
        Scheduler().run(None, 1)
