"""Unit tests for churn schedules."""

import random

import pytest

from repro.sim.churn import CRASH, JOIN, LEAVE, ChurnEvent, ChurnSchedule


def test_fluent_builders():
    schedule = ChurnSchedule().join(1).leave(2, "a").crash(2, "b")
    assert len(schedule) == 3
    assert [e.action for e in schedule.events_at(2)] == [LEAVE, CRASH]
    assert schedule.events_at(1)[0].action == JOIN
    assert schedule.events_at(99) == []


def test_invalid_action_rejected():
    with pytest.raises(ValueError):
        ChurnEvent(cycle=0, action="explode")


def test_negative_cycle_rejected():
    with pytest.raises(ValueError):
        ChurnEvent(cycle=-1, action=JOIN)


def test_random_churn_rates():
    rng = random.Random(0)
    schedule = ChurnSchedule.random_churn(
        rng, cycles=200, join_rate=0.5, leave_rate=0.5, candidate_ids=["x", "y"]
    )
    joins = sum(
        1
        for cycle in range(200)
        for event in schedule.events_at(cycle)
        if event.action == JOIN
    )
    leaves = len(schedule) - joins
    # Bernoulli(0.5) over 200 cycles: both should land near 100.
    assert 60 <= joins <= 140
    assert 60 <= leaves <= 140


def test_random_churn_without_candidates_never_leaves():
    rng = random.Random(0)
    schedule = ChurnSchedule.random_churn(
        rng, cycles=50, join_rate=0.0, leave_rate=1.0, candidate_ids=[]
    )
    assert len(schedule) == 0
