"""Unit tests for churn schedules."""

import random

import pytest

from repro.sim.churn import (
    CRASH,
    JOIN,
    LEAVE,
    ChurnEvent,
    ChurnSchedule,
    TimedChurnEvent,
)


def test_fluent_builders():
    schedule = ChurnSchedule().join(1).leave(2, "a").crash(2, "b")
    assert len(schedule) == 3
    assert [e.action for e in schedule.events_at(2)] == [LEAVE, CRASH]
    assert schedule.events_at(1)[0].action == JOIN
    assert schedule.events_at(99) == []


def test_invalid_action_rejected():
    with pytest.raises(ValueError):
        ChurnEvent(cycle=0, action="explode")


def test_negative_cycle_rejected():
    with pytest.raises(ValueError):
        ChurnEvent(cycle=-1, action=JOIN)


def test_random_churn_rates():
    rng = random.Random(0)
    schedule = ChurnSchedule.random_churn(
        rng, cycles=200, join_rate=0.5, leave_rate=0.5, candidate_ids=["x", "y"]
    )
    joins = sum(
        1
        for cycle in range(200)
        for event in schedule.events_at(cycle)
        if event.action == JOIN
    )
    leaves = len(schedule) - joins
    # Bernoulli(0.5) over 200 cycles: both should land near 100.
    assert 60 <= joins <= 140
    assert 60 <= leaves <= 140


def test_random_churn_without_candidates_never_leaves():
    rng = random.Random(0)
    schedule = ChurnSchedule.random_churn(
        rng, cycles=50, join_rate=0.0, leave_rate=1.0, candidate_ids=[]
    )
    assert len(schedule) == 0


def test_timed_events_are_windowed_and_sorted():
    schedule = (
        ChurnSchedule()
        .crash_at(25.0, "b")
        .leave_at(5.0, "a")
        .join_at(15.0)
    )
    assert len(schedule) == 3
    window = schedule.timed_events_between(0.0, 20.0)
    assert [event.time_s for event in window] == [5.0, 15.0]
    assert [event.action for event in window] == [LEAVE, JOIN]
    # Half-open: an event exactly at the window end stays out.
    assert schedule.timed_events_between(0.0, 25.0) == window
    assert schedule.timed_events_between(25.0, 30.0)[0].node_id == "b"


def test_timed_event_validation():
    with pytest.raises(ValueError):
        TimedChurnEvent(time_s=-1.0, action=CRASH, node_id="a")
    with pytest.raises(ValueError):
        TimedChurnEvent(time_s=1.0, action="explode")


def test_timed_and_cycle_events_coexist():
    schedule = ChurnSchedule().leave(2, "a").crash_at(31.0, "b")
    assert len(schedule) == 2
    assert schedule.events_at(2)[0].node_id == "a"
    assert schedule.timed_events_between(30.0, 40.0)[0].node_id == "b"
