"""Unit tests of the shard worker/coordinator over the thread backend.

The thread backend runs each :class:`~repro.sim.shard.ShardWorker` as
an in-process thread speaking the exact same socket protocol as the
fork backend, with identically-seeded overlay rebuilds standing in for
fork's copy-on-write replicas.  That makes the whole worker loop —
shuffle replication, token walking, cross-shard serve paths, snapshot
shipping — visible to in-process tooling (the coverage gate traces
threads, not forked children), and it pins the protocol itself rather
than fork inheritance as what the determinism contract rests on.
"""

import pytest

from repro.core.config import SecureCyclonConfig
from repro.errors import ShardFailure
from repro.experiments.runner import run_with_probes
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.links import view_fill_fraction
from repro.sim.shardcoord import (
    ShardedSession,
    run_overlay_sharded,
    sharded,
)


def _build(seed=23, n=24, malicious=3):
    return build_secure_overlay(
        n=n,
        config=SecureCyclonConfig(view_length=6, swap_length=3),
        malicious=malicious,
        attack_start=2,
        seed=seed,
    )


def _fingerprint(engine):
    return {
        node_id: tuple(
            (entry.creator, entry.timestamp, entry.non_swappable)
            for entry in node.view
        )
        for node_id, node in engine.nodes.items()
    }


@pytest.mark.parametrize("shards", [2, 3])
def test_thread_backend_deterministic_run_matches_single_process(shards):
    """Identically-seeded replicas + the token protocol = bit-exactness.

    The reference overlay runs in-process; the sharded overlay (same
    seed) runs across worker threads with every cross-shard message
    framed through the codec and a real socketpair.  Final views and
    the event trace length must agree exactly.
    """
    reference = _build()
    reference.run(6)

    overlay = _build()
    session = ShardedSession(
        overlay,
        shards,
        backend="thread",
        replica_factory=lambda index: _build(),
        deadline_s=60.0,
    )
    session.start()
    session.run_cycles(6)
    counters = session.finish()

    assert _fingerprint(overlay.engine) == _fingerprint(reference.engine)
    assert len(overlay.engine.trace) == len(reference.engine.trace)
    # The merged wire counters describe a real run, not a silent no-op.
    assert counters["dialogues_opened"] > 0
    assert set(counters) == {
        "dialogues_opened",
        "pushes_sent",
        "dialogue_bytes_forward",
        "dialogue_bytes_backward",
        "push_bytes",
    }


def test_thread_backend_free_running_mode_completes():
    """Free-running mode keeps cycles aligned but not activations; it
    promises liveness and a healthy overlay, not bit-exactness."""
    overlay = _build(seed=31)
    session = ShardedSession(
        overlay,
        2,
        mode="free",
        backend="thread",
        replica_factory=lambda index: _build(seed=31),
        deadline_s=60.0,
    )
    session.start()
    session.run_cycles(8)
    counters = session.finish()
    assert counters["dialogues_opened"] > 0
    assert view_fill_fraction(overlay.engine) > 0.5


def test_snapshots_mirror_node_state_onto_the_parent():
    """Sampling cycles ship views/blacklists back mid-run, so probes on
    the mirror see the distributed state without waiting for finish."""
    sampled = []

    overlay = _build(seed=5)
    session = ShardedSession(
        overlay,
        2,
        backend="thread",
        replica_factory=lambda index: _build(seed=5),
        deadline_s=60.0,
    )
    session.start()
    session.run_cycles(
        4,
        sample_cycles={1, 3},
        on_sample=lambda cycle: sampled.append(
            (cycle, view_fill_fraction(overlay.engine))
        ),
    )
    session.finish()
    assert [cycle for cycle, _ in sampled] == [1, 3]
    # Views were genuinely applied: a mirror with never-updated views
    # would report the sparse bootstrap fill at both samples.
    assert all(0.5 < fill <= 1.0 for _, fill in sampled)


def test_session_context_manager_closes_on_error():
    overlay = _build(seed=9)
    with ShardedSession(
        overlay,
        2,
        backend="thread",
        replica_factory=lambda index: _build(seed=9),
        deadline_s=60.0,
    ) as session:
        session.start()
        session.run_cycles(2)
        session.finish()
    assert session._workers == []


def test_sharded_context_routes_overlay_run_through_the_session():
    """``Overlay.run`` inside ``with sharded(...)`` is the distributed
    run — same final views as the in-process engine, no call-site
    changes."""
    reference = _build(seed=17)
    reference.run(5)

    overlay = _build(seed=17)
    with sharded(
        2,
        backend="thread",
        replica_factory=lambda index: _build(seed=17),
        deadline_s=60.0,
    ):
        overlay.run(5)
    assert _fingerprint(overlay.engine) == _fingerprint(reference.engine)


def test_sharded_context_routes_run_with_probes_bit_for_bit():
    """The ``run_with_probes`` seam: probe series sampled against the
    mirror match the in-process observer's series exactly."""
    probes = {"fill": view_fill_fraction}

    reference = _build(seed=29)
    expected = run_with_probes(reference, 6, probes, every=2)

    overlay = _build(seed=29)
    with sharded(
        2,
        backend="thread",
        replica_factory=lambda index: _build(seed=29),
        deadline_s=60.0,
    ):
        got = run_with_probes(overlay, 6, probes, every=2)

    assert got["fill"].points == expected["fill"].points
    assert got["fill"].label == "fill"


def test_sharded_runner_rejects_a_runtime_override():
    overlay = _build(seed=29)
    with sharded(
        2,
        backend="thread",
        replica_factory=lambda index: _build(seed=29),
    ):
        with pytest.raises(ShardFailure, match="cycle runtime"):
            run_with_probes(
                overlay, 2, {"fill": view_fill_fraction}, runtime="event"
            )


def test_run_overlay_sharded_requires_an_active_context():
    overlay = _build(seed=3)
    with pytest.raises(ShardFailure, match="no sharded context"):
        run_overlay_sharded(overlay, 2)


@pytest.mark.filterwarnings(
    # The worker thread re-raises after relaying OP_ERROR (so fork
    # workers exit non-zero); under the thread backend that re-raise
    # is deliberately unhandled.
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
def test_a_remote_node_exception_surfaces_as_a_typed_failure():
    """A node blowing up while serving a cross-shard request travels
    the full error path: REP("raise") back to the requester, which
    raises ShardRemoteError, which the worker relays as OP_ERROR —
    and the coordinator tears down with the remote traceback."""

    def broken_replica(index):
        replica = _build(seed=41)
        if index == 1:
            for node in replica.engine.nodes.values():
                def explode(sender_id, payload, _node=node):
                    raise RuntimeError("sabotaged receive")

                node.receive = explode
        return replica

    overlay = _build(seed=41)
    session = ShardedSession(
        overlay,
        2,
        backend="thread",
        replica_factory=broken_replica,
        deadline_s=60.0,
    )
    session.start()
    with pytest.raises(ShardFailure, match="sabotaged receive"):
        session.run_cycles(4)
        session.finish()
