"""Unit tests for the simulated network directory."""

import random

import pytest

from repro.errors import PeerUnreachable
from repro.sim.channel import DropPolicy
from repro.sim.network import Network, NetworkAddress


class EchoNode:
    def __init__(self):
        self.pushes = []

    def receive(self, sender_id, payload):
        return ("echo", payload)

    def receive_push(self, sender_id, payload):
        self.pushes.append((sender_id, payload))


class RefloodNode(EchoNode):
    """Re-floods every push once, to exercise the drain queue."""

    def __init__(self, network, targets):
        super().__init__()
        self.network = network
        self.targets = targets
        self.seen = set()

    def receive_push(self, sender_id, payload):
        super().receive_push(sender_id, payload)
        if payload in self.seen:
            return
        self.seen.add(payload)
        for target in self.targets:
            self.network.push("self", target, payload)


def make_network(**kwargs):
    return Network(rng=random.Random(0), **kwargs)


def test_addresses_are_stable_and_unique():
    network = make_network()
    a1 = network.reserve_address("a")
    b1 = network.reserve_address("b")
    assert a1 != b1
    assert network.reserve_address("a") == a1
    assert network.attach("a", EchoNode()) == a1


def test_connect_unknown_peer_raises():
    network = make_network()
    with pytest.raises(PeerUnreachable):
        network.connect("a", "ghost")


def test_dialogue_roundtrip():
    network = make_network()
    network.attach("b", EchoNode())
    channel = network.connect("a", "b")
    assert channel.request("hi") == ("echo", "hi")
    assert network.dialogues_opened == 1


def test_detach_makes_unreachable():
    network = make_network()
    network.attach("b", EchoNode())
    network.detach("b")
    assert not network.is_alive("b")
    with pytest.raises(PeerUnreachable):
        network.connect("a", "b")


def test_push_to_dead_target_returns_false():
    network = make_network()
    assert network.push("a", "ghost", "msg") is False


def test_push_delivers():
    network = make_network()
    node = EchoNode()
    network.attach("b", node)
    assert network.push("a", "b", "msg") is True
    assert node.pushes == [("a", "msg")]


def test_push_drop_policy_applies():
    network = make_network(drop_policy=DropPolicy(request_loss=1.0))
    node = EchoNode()
    network.attach("b", node)
    assert network.push("a", "b", "msg") is False
    assert node.pushes == []


def test_reentrant_pushes_drain_iteratively():
    # A ring of nodes that each re-flood: without the drain queue this
    # would recurse ~n deep; with it, every node sees the message once.
    network = make_network()
    n = 2000
    nodes = []
    for i in range(n):
        node = RefloodNode(network, targets=[(i + 1) % n])
        nodes.append(node)
        network.attach(i, node)
    network.push("origin", 0, "proof")
    assert all(node.pushes for node in nodes)


def test_network_address_validation():
    with pytest.raises(ValueError):
        NetworkAddress(host=2**32, port=1)
    with pytest.raises(ValueError):
        NetworkAddress(host=1, port=2**16)
    assert NetworkAddress(host=1, port=1).bits == 48
