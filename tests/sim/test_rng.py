"""Unit tests for the RNG hub."""

import pytest

from repro.sim.rng import RngHub


def test_streams_are_memoised():
    hub = RngHub(1)
    assert hub.stream("a") is hub.stream("a")


def test_streams_are_independent_of_each_other():
    hub = RngHub(1)
    a_first = hub.stream("a").random()
    # Drawing from "b" must not perturb "a"'s sequence.
    hub2 = RngHub(1)
    hub2.stream("b").random()
    a_second = hub2.stream("a").random()
    assert a_first == a_second


def test_same_seed_same_streams():
    assert RngHub(5).stream("x").random() == RngHub(5).stream("x").random()


def test_different_seeds_differ():
    assert RngHub(5).stream("x").random() != RngHub(6).stream("x").random()


def test_spawn_creates_independent_hub():
    hub = RngHub(5)
    child = hub.spawn("child")
    assert child.master_seed != hub.master_seed
    assert child.stream("x").random() != hub.stream("x").random()


def test_seed_must_be_int():
    with pytest.raises(TypeError):
        RngHub("not-an-int")
