"""Unit tests for the latency models and link timing."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.latency import (
    ConstantLatency,
    LatencyModel,
    LinkTiming,
    LognormalLatency,
    TwoClusterLatency,
    UniformLatency,
)


def test_constant_latency():
    model = ConstantLatency(delay_s=0.25)
    rng = random.Random(0)
    assert model.sample(rng) == 0.25
    with pytest.raises(SimulationError):
        ConstantLatency(delay_s=-1.0)


def test_uniform_latency_bounds():
    model = UniformLatency(low_s=0.1, high_s=0.5)
    rng = random.Random(1)
    samples = [model.sample(rng) for _ in range(200)]
    assert all(0.1 <= s <= 0.5 for s in samples)
    assert max(samples) - min(samples) > 0.1  # actually spread out
    with pytest.raises(SimulationError):
        UniformLatency(low_s=0.5, high_s=0.1)


def test_lognormal_latency_median_and_tail():
    model = LognormalLatency(median_s=0.1, sigma=0.5)
    rng = random.Random(2)
    samples = sorted(model.sample(rng) for _ in range(2000))
    median = samples[len(samples) // 2]
    assert median == pytest.approx(0.1, rel=0.15)
    assert samples[-1] > 2 * median  # heavy tail exists
    assert all(s > 0 for s in samples)
    assert LognormalLatency(median_s=0.1, sigma=0.0).sample(rng) == 0.1
    with pytest.raises(SimulationError):
        LognormalLatency(median_s=0.0)


def test_two_cluster_latency_is_stable_per_pair():
    model = TwoClusterLatency(
        lan_s=0.002, wan_s=0.08, site_a_fraction=0.5, spread=0.0
    )
    rng = random.Random(3)
    nodes = list(range(40))
    first = {
        (a, b): model.sample(rng, a, b)
        for a in nodes[:10]
        for b in nodes[10:20]
    }
    # Site assignment is memoised: re-sampling the same pair gives the
    # same class of latency (exactly equal with spread=0).
    for (a, b), latency in first.items():
        assert model.sample(rng, a, b) == latency
        assert latency in (0.002, 0.08)
    # With a balanced split both classes should occur.
    values = set(first.values())
    assert values == {0.002, 0.08}


def test_two_cluster_spread_wobbles_but_keeps_classes_apart():
    model = TwoClusterLatency(lan_s=0.002, wan_s=0.08, spread=0.2)
    rng = random.Random(4)
    samples = [model.sample(rng, a, b) for a in range(10) for b in range(10)]
    assert all(s <= 0.002 * 1.2 + 1e-12 or s >= 0.08 * 0.8 - 1e-12 for s in samples)


def test_link_timing_binds_model_rng_and_timeout():
    timing = LinkTiming(
        model=ConstantLatency(delay_s=0.5),
        rng=random.Random(5),
        timeout_s=2.0,
    )
    assert timing.sample("a", "b") == 0.5
    assert timing.timeout_s == 2.0
    with pytest.raises(SimulationError):
        LinkTiming(model=ConstantLatency(), rng=random.Random(5), timeout_s=0.0)


def test_latency_model_interface_is_abstract():
    with pytest.raises(NotImplementedError):
        LatencyModel().sample(random.Random(0))
