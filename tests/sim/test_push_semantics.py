"""One-way pushes are fire-and-forget on every runtime.

``Network.push``'s contract says senders neither wait for
acknowledgements nor retry — retries exist only for *dialogues*
(:class:`~repro.sim.retry.RetryPolicy` re-initiates timed-out exchange
openings).  These tests pin that invariant: a lost push is lost for
good, and enabling dialogue retries changes no push accounting.
"""

import random

from repro.sim.channel import DropPolicy
from repro.sim.network import Network


class Recorder:
    def __init__(self, node_id):
        self.node_id = node_id
        self.pushes = []

    def receive(self, sender_id, payload):
        return None

    def receive_push(self, sender_id, payload):
        self.pushes.append((sender_id, payload))


def test_dropped_push_is_never_resent():
    """With certain request loss every push dies, exactly once each:
    one send attempt per push() call, no hidden re-delivery."""
    network = Network(
        rng=random.Random(1), drop_policy=DropPolicy(request_loss=1.0)
    )
    target = Recorder("b")
    network.attach("a", Recorder("a"))
    network.attach("b", target)
    for _ in range(10):
        assert network.push("a", "b", "proof") is False
    assert network.pushes_sent == 10  # ten attempts, not a single resend
    assert target.pushes == []


def test_push_to_dead_target_is_silently_lost():
    network = Network(rng=random.Random(2))
    network.attach("a", Recorder("a"))
    assert network.push("a", "ghost", "proof") is False
    assert network.pushes_sent == 0


def test_dialogue_retry_policy_does_not_touch_push_accounting():
    """An aggressive RetryPolicy on the initiating protocol must leave
    push counts untouched: retries re-open dialogues, never re-push."""
    from repro.core.config import SecureCyclonConfig
    from repro.experiments.scenarios import build_secure_overlay
    from repro.sim.retry import RetryPolicy
    from repro.sim.scheduler import EventScheduler
    from tests.core.test_timeout_partial_failure import AlternatingLatency

    def overlay_with(retry):
        return build_secure_overlay(
            n=16,
            config=SecureCyclonConfig(
                view_length=6, swap_length=3, retry=retry
            ),
            seed=13,
            runtime=EventScheduler(
                latency=AlternatingLatency(request_s=1.0, reply_s=9.0),
                timeout_s=5.0,
            ),
        )

    plain = overlay_with(RetryPolicy())
    plain.run(3)
    retrying = overlay_with(RetryPolicy(mode="immediate", max_retries=3))
    retrying.run(3)
    assert retrying.engine.trace.count("secure.retry_immediate") > 0
    # Honest overlays under pure timeouts flood nothing; more to the
    # point, retrying must not invent pushes the plain run lacked.
    assert retrying.engine.network.pushes_sent == (
        plain.engine.network.pushes_sent
    )
