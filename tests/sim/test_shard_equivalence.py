"""Differential equivalence suite for the sharded engine.

The determinism contract (docs/SHARDING.md): a deterministic-mode
sharded run is **bit-for-bit** the single-process engine — same RNG
stream consumption, same activation order, same views, same series.
The committed golden files under ``tests/properties/golden/`` are the
pre-scheduler-refactor fig2/3/5/6/7 smoke captures that every engine
refactor since has reproduced byte-for-byte; here the same bar gates
the shard boundary: the unchanged figure harnesses run under a
``sharded(N)`` context, which forks one worker per shard and routes
every cross-shard dialogue leg and push through ``encode_frames``
buffers over sockets, and the rendered output must still match the
goldens exactly, at 1, 2 and 4 shards.
"""

import pathlib

import pytest

from repro.experiments import (
    fig2_indegree,
    fig3_cyclon_takeover,
    fig5_hub_defense,
    fig6_depletion,
    fig7_redemption,
)
from repro.experiments.scale import Scale
from repro.sim.shardcoord import sharded

GOLDEN = pathlib.Path(__file__).parent.parent / "properties" / "golden"

_CAPTURES = {
    "fig2": lambda: fig2_indegree.render(
        fig2_indegree.run_fig2(scale=Scale.SMOKE, seed=1)
    ),
    "fig3": lambda: fig3_cyclon_takeover.render(
        fig3_cyclon_takeover.run_fig3(scale=Scale.SMOKE, seed=1)
    ),
    "fig5": lambda: fig5_hub_defense.render(
        fig5_hub_defense.run_fig5(scale=Scale.SMOKE, seed=1)
    ),
    "fig6": lambda: fig6_depletion.render(
        fig6_depletion.run_fig6(scale=Scale.SMOKE, seed=1)
    ),
    "fig7": lambda: fig7_redemption.render(
        fig7_redemption.run_fig7(scale=Scale.SMOKE, seed=1)
    ),
}


@pytest.mark.golden_shard
@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("name", sorted(_CAPTURES))
def test_sharded_runs_match_goldens(name, shards):
    """N-shard deterministic runs are bit-for-bit the 1-process engine.

    Every capture below builds its overlays through the unchanged
    figure harness; the ambient context reroutes each ``Overlay.run`` /
    ``run_with_probes`` through a fresh worker fleet.  Byte equality of
    the rendered tables is deliberately the strongest possible check:
    it covers every sampled series value, every final view, and every
    trace-derived count the figures report.
    """
    expected = (GOLDEN / f"{name}.txt").read_text(encoding="utf-8")
    with sharded(shards):
        got = _CAPTURES[name]() + "\n"
    assert got == expected
