"""Unit tests for observers."""

import pytest

from repro.sim.engine import Engine
from repro.sim.observers import SeriesObserver
from tests.sim.test_engine import CountingNode


def test_series_observer_samples_every_cycle():
    engine = Engine()
    engine.add_node(CountingNode("a"))
    observer = SeriesObserver({"alive": lambda e: float(len(e.nodes))})
    engine.add_observer(observer)
    engine.run(3)
    assert observer.series["alive"] == [(0, 1.0), (1, 1.0), (2, 1.0)]
    assert observer.values("alive") == [1.0, 1.0, 1.0]
    assert observer.cycles("alive") == [0, 1, 2]


def test_series_observer_sampling_interval():
    engine = Engine()
    engine.add_node(CountingNode("a"))
    observer = SeriesObserver({"alive": lambda e: 1.0}, every=2)
    engine.add_observer(observer)
    engine.run(5)
    assert observer.cycles("alive") == [0, 2, 4]


def test_invalid_interval_rejected():
    with pytest.raises(ValueError):
        SeriesObserver({}, every=0)
