"""Unit tests for the pluggable message transport.

The contract under test: ``ObjectTransport`` preserves the historical
shared-object semantics exactly; ``WireTransport`` hands every receiver
freshly decoded objects and switches all traffic accounting to
measured frame sizes; the knob resolves explicit > environment >
object; and the two transports produce identical protocol outcomes on
identical seeds (the sim-level restatement of the golden guard).
"""

import random

import pytest

from repro.core.codec import encode_message
from repro.core.config import SecureCyclonConfig
from repro.core.exchange import GossipAccept, GossipOpen, ProofFlood
from repro.core.wire import payload_bytes
from repro.cyclon.config import CyclonConfig
from repro.errors import CodecError, ConfigError
from repro.experiments.scenarios import build_cyclon_overlay, build_secure_overlay
from repro.sim.channel import Channel
from repro.sim.engine import SimConfig
from repro.sim.network import Network
from repro.sim.transport import (
    ENV_TRANSPORT,
    ObjectTransport,
    Transport,
    WireTransport,
    make_transport,
    resolve_transport,
    validate_transport,
)


class EchoNode:
    """Returns the payload it received, and records push payloads."""

    def __init__(self):
        self.received = []
        self.pushes = []

    def receive(self, sender_id, payload):
        self.received.append(payload)
        return payload

    def receive_push(self, sender_id, payload):
        self.pushes.append(payload)


def _registry_and_message():
    from repro.crypto.registry import KeyRegistry
    from repro.sim.network import NetworkAddress
    from repro.core.descriptor import mint

    registry = KeyRegistry()
    rng = random.Random(5)
    alice = registry.new_keypair(rng)
    bob = registry.new_keypair(rng)
    descriptor = mint(alice, NetworkAddress(host=1, port=1), 0.0).transfer(
        alice, bob.public
    )
    opening = GossipOpen(
        redemption=descriptor, samples=(descriptor,), proofs=()
    )
    return registry, opening


# ----------------------------------------------------------------------
# knob resolution
# ----------------------------------------------------------------------


def test_default_is_object_transport(monkeypatch):
    monkeypatch.delenv(ENV_TRANSPORT, raising=False)
    assert resolve_transport(None) == "object"
    assert isinstance(make_transport(None), ObjectTransport)
    assert isinstance(make_transport("object"), ObjectTransport)


def test_env_override_selects_wire(monkeypatch):
    monkeypatch.setenv(ENV_TRANSPORT, "wire")
    assert resolve_transport(None) == "wire"
    assert isinstance(make_transport(None), WireTransport)
    # An explicit mode beats the environment.
    assert resolve_transport("object") == "object"


def test_invalid_env_value_raises(monkeypatch):
    monkeypatch.setenv(ENV_TRANSPORT, "telepathy")
    with pytest.raises(ConfigError):
        resolve_transport(None)


def test_invalid_mode_raises():
    with pytest.raises(ConfigError):
        validate_transport("telepathy")
    with pytest.raises(ConfigError):
        make_transport("telepathy")


def test_prebuilt_instance_passes_through():
    transport = WireTransport()
    assert make_transport(transport) is transport


def test_config_knob_validated_on_both_configs():
    with pytest.raises(ConfigError):
        SecureCyclonConfig(transport="telepathy")
    with pytest.raises(ConfigError):
        CyclonConfig(transport="telepathy")
    assert SecureCyclonConfig(transport="wire").effective_transport() == "wire"
    assert CyclonConfig(transport="wire").effective_transport() == "wire"


def test_config_knob_resolves_env_at_call_time(monkeypatch):
    config = SecureCyclonConfig()
    legacy = CyclonConfig()
    monkeypatch.delenv(ENV_TRANSPORT, raising=False)
    assert config.effective_transport() == "object"
    monkeypatch.setenv(ENV_TRANSPORT, "wire")
    assert config.effective_transport() == "wire"
    assert legacy.effective_transport() == "wire"


# ----------------------------------------------------------------------
# transport semantics
# ----------------------------------------------------------------------


def test_object_transport_is_identity():
    transport = ObjectTransport()
    payload = object()
    assert transport.encode(payload) is payload
    assert transport.decode(payload) is payload
    assert transport.wire_size(payload) is None


def test_wire_transport_roundtrips_fresh_objects():
    _, opening = _registry_and_message()
    transport = WireTransport()
    wire = transport.encode(opening)
    assert isinstance(wire, bytes)
    assert transport.wire_size(wire) == len(wire)
    decoded = transport.decode(wire)
    assert decoded == opening
    assert decoded is not opening
    assert decoded.redemption is not opening.redemption


def test_wire_transport_rejects_unknown_payloads():
    with pytest.raises(CodecError):
        WireTransport().encode({"not": "a message"})


def test_abstract_transport_hooks_raise():
    transport = Transport()
    with pytest.raises(NotImplementedError):
        transport.encode(object())
    with pytest.raises(NotImplementedError):
        transport.decode(object())
    with pytest.raises(NotImplementedError):
        transport.wire_size(object())


# ----------------------------------------------------------------------
# channel + network integration
# ----------------------------------------------------------------------


def test_channel_wire_mode_delivers_decoded_copies_and_measures():
    _, opening = _registry_and_message()
    node = EchoNode()
    channel = Channel(
        initiator_id="a",
        partner_id="b",
        deliver=lambda payload: node.receive("a", payload),
        rng=random.Random(0),
        transport=WireTransport(),
    )
    reply = channel.request(opening)
    frame_size = len(encode_message(opening))
    # The partner processed an equal-but-distinct rebuilt message...
    assert node.received[0] == opening
    assert node.received[0] is not opening
    # ...the echoed reply came back through its own frame...
    assert reply == opening
    assert reply is not node.received[0]
    # ...and both directions were billed at measured frame size.
    assert channel.bytes_sent == frame_size
    assert channel.bytes_received == frame_size


def test_channel_wire_mode_ignores_budgeted_sizer():
    """Wire mode bills measured frames even when a sizer is configured."""
    _, opening = _registry_and_message()
    channel = Channel(
        initiator_id="a",
        partner_id="b",
        deliver=lambda payload: None,
        rng=random.Random(0),
        sizer=lambda payload: 1,
        transport=WireTransport(),
    )
    channel.request(opening)
    assert channel.bytes_sent == len(encode_message(opening))


def test_wire_mode_bills_lost_reply_frames_at_partner_send():
    """A lost/late reply was still serialised and sent by the partner.

    Wire mode bills both directions at send time (symmetric with the
    request leg and with pushes); object mode keeps the historical
    rule of pricing only replies that survive.
    """
    from repro.sim.channel import DropPolicy, MessageDropped

    _, opening = _registry_and_message()
    frame = len(encode_message(opening))
    wire_channel = Channel(
        initiator_id="a",
        partner_id="b",
        deliver=lambda payload: payload,
        rng=random.Random(0),
        policy=DropPolicy(reply_loss=1.0),
        transport=WireTransport(),
    )
    with pytest.raises(MessageDropped):
        wire_channel.request(opening)
    assert wire_channel.bytes_sent == frame
    assert wire_channel.bytes_received == frame  # billed despite the loss

    object_channel = Channel(
        initiator_id="a",
        partner_id="b",
        deliver=lambda payload: payload,
        rng=random.Random(0),
        policy=DropPolicy(reply_loss=1.0),
        sizer=lambda payload: 7,
    )
    with pytest.raises(MessageDropped):
        object_channel.request(opening)
    assert object_channel.bytes_sent == 7
    assert object_channel.bytes_received == 0  # historical semantics


def test_flood_to_many_neighbors_encodes_once():
    """Pushing one payload object to N targets serialises it once."""
    calls = {"encode": 0}

    class CountingWire(WireTransport):
        def encode(self, payload):
            calls["encode"] += 1
            return super().encode(payload)

    _, opening = _registry_and_message()
    from repro.core.exchange import GossipAccept

    network = Network(rng=random.Random(0), transport=CountingWire())
    targets = [f"n{i}" for i in range(10)]
    for target in targets:
        network.attach(target, EchoNode())
    payload = GossipAccept(samples=opening.samples, proofs=())
    for target in targets:
        assert network.push("s", target, payload)
    assert calls["encode"] == 1
    # A different object (even an equal one) re-encodes.
    network.push("s", targets[0], GossipAccept(samples=opening.samples))
    assert calls["encode"] == 2


def test_channel_object_mode_unchanged_with_sizer():
    _, opening = _registry_and_message()
    channel = Channel(
        initiator_id="a",
        partner_id="b",
        deliver=lambda payload: payload,
        rng=random.Random(0),
        sizer=payload_bytes,
    )
    reply = channel.request(opening)
    assert reply is opening  # shared-object semantics intact
    assert channel.bytes_sent == payload_bytes(opening)


def test_network_push_wire_mode_decodes_at_receiver():
    registry, opening = _registry_and_message()
    from repro.core.proofs import build_cloning_proof
    from repro.core.descriptor import mint
    from repro.sim.network import NetworkAddress

    rng = random.Random(6)
    alice = registry.new_keypair(rng)
    bob = registry.new_keypair(rng)
    carol = registry.new_keypair(rng)
    base = mint(alice, NetworkAddress(host=3, port=3), 0.0)
    proof = build_cloning_proof(
        base.transfer(alice, bob.public), base.transfer(alice, carol.public)
    )
    flood = ProofFlood(proof=proof)

    network = Network(rng=random.Random(0), transport=WireTransport())
    receiver = EchoNode()
    network.attach("r", receiver)
    assert network.push("s", "r", flood)
    assert receiver.pushes[0] == flood
    assert receiver.pushes[0] is not flood
    assert network.push_bytes == len(encode_message(flood))


def test_network_exposes_message_transport():
    wire = WireTransport()
    network = Network(rng=random.Random(0), transport=wire)
    assert network.message_transport is wire
    swapped = ObjectTransport()
    network.use_message_transport(swapped)
    assert network.message_transport is swapped


# ----------------------------------------------------------------------
# overlay-level equivalence and threading
# ----------------------------------------------------------------------


def _secure_fingerprint(transport):
    overlay = build_secure_overlay(
        n=30,
        config=SecureCyclonConfig(view_length=8, swap_length=3,
                                  transport=transport),
        seed=13,
    )
    overlay.run(6)
    return sorted(
        (node.node_id.hex(), sorted(d.chain_digest().hex() for d in
                                    node.view.descriptors()))
        for node in overlay.engine.legit_nodes()
    )


def test_secure_overlay_identical_under_both_transports():
    """Same seed, same final views — transport cannot change outcomes."""
    assert _secure_fingerprint("object") == _secure_fingerprint("wire")


def _sample_cache_sharing(transport):
    """How many distinct nodes hold each cached sample *instance*.

    Keeps a reference to every descriptor alongside its id() so CPython
    cannot recycle addresses mid-census.
    """
    overlay = build_secure_overlay(
        n=20,
        config=SecureCyclonConfig(view_length=6, transport=transport),
        seed=3,
    )
    overlay.run(4)
    holders = {}
    for node in overlay.engine.legit_nodes():
        for slot in node.sample_cache._by_creator.values():
            for descriptor in slot[1].values():
                entry = holders.setdefault(id(descriptor), (descriptor, set()))
                entry[1].add(node.node_id)
    return [len(nodes) for _, nodes in holders.values()]


def test_wire_mode_breaks_object_identity_network_wide():
    """No two receivers may ever cache the same instance in wire mode.

    Sample caches are where shared-object identity memoised work away:
    in object mode the same descriptor object circulates and lands in
    many nodes' caches; in wire mode every receiver decoded its own
    copy, so each instance is cached by exactly one node.  The object-
    mode assertion proves the census has teeth.
    """
    assert max(_sample_cache_sharing("object")) > 1
    assert max(_sample_cache_sharing("wire")) == 1


def test_cyclon_overlay_runs_under_wire_and_measures():
    overlay = build_cyclon_overlay(
        n=25, config=CyclonConfig(view_length=6, transport="wire"), seed=5
    )
    overlay.run(5)
    assert overlay.engine.network.dialogue_bytes_forward > 0


def test_sim_config_transport_wins_over_protocol_config():
    overlay = build_secure_overlay(
        n=5,
        config=SecureCyclonConfig(transport="wire"),
        seed=1,
        sim_config=SimConfig(seed=1, transport="object"),
    )
    assert isinstance(
        overlay.engine.network.message_transport, ObjectTransport
    )


def test_protocol_config_transport_reaches_network():
    overlay = build_secure_overlay(
        n=5, config=SecureCyclonConfig(transport="wire"), seed=1
    )
    assert isinstance(overlay.engine.network.message_transport, WireTransport)


def test_in_flight_pushes_survive_transport_swap():
    """Frames decode with the transport that encoded them.

    A push queued on the event heap can outlive a between-runs
    ``use_message_transport`` swap; decoding it with the *new*
    transport would hand receive_push raw bytes (or double-decode).
    """
    registry = __import__("repro.crypto.registry", fromlist=["KeyRegistry"])
    from repro.core.proofs import build_cloning_proof
    from repro.core.descriptor import mint
    from repro.sim.network import NetworkAddress

    rng = random.Random(9)
    reg = registry.KeyRegistry()
    alice, bob, carol = (reg.new_keypair(rng) for _ in range(3))
    base = mint(alice, NetworkAddress(host=4, port=4), 0.0)
    flood = ProofFlood(
        proof=build_cloning_proof(
            base.transfer(alice, bob.public),
            base.transfer(alice, carol.public),
        )
    )

    class HoldingQueue:
        """Stands in for the event scheduler: holds pushes until asked."""

        def __init__(self, network):
            self.network = network
            self.held = []

        def schedule_push(self, sender_id, target_id, payload):
            self.held.append((sender_id, target_id, payload))

        def flush(self):
            for sender_id, target_id, payload in self.held:
                self.network.deliver_push(sender_id, target_id, payload)

    network = Network(rng=random.Random(0), transport=WireTransport())
    queue = HoldingQueue(network)
    network.use_event_transport(queue)
    receiver = EchoNode()
    network.attach("r", receiver)
    assert network.push("s", "r", flood)

    network.use_message_transport(ObjectTransport())  # swap mid-flight
    queue.flush()
    assert receiver.pushes[0] == flood  # decoded object, not raw bytes
    assert receiver.pushes[0] is not flood


def test_event_runtime_wire_pushes_decode_at_delivery():
    """Wire + event runtime: delayed pushes still decode per receiver."""
    from repro.sim.scheduler import EventScheduler

    overlay = build_secure_overlay(
        n=20,
        config=SecureCyclonConfig(view_length=6, transport="wire"),
        seed=7,
        runtime=EventScheduler(),
    )
    overlay.run(4)
    assert overlay.engine.network.dialogue_bytes_forward > 0