"""Unit tests for the simulation engine."""

import gc

import pytest

from repro.errors import SimulationError
from repro.sim.churn import ChurnSchedule
from repro.sim.engine import Engine, ProtocolNode, SimConfig
from repro.sim.observers import Observer


class CountingNode(ProtocolNode):
    def __init__(self, node_id, malicious=False):
        self.node_id = node_id
        self.malicious = malicious
        self.begin_calls = []
        self.run_calls = 0

    @property
    def is_malicious(self):
        return self.malicious

    def begin_cycle(self, cycle):
        self.begin_calls.append(cycle)

    def run_cycle(self, network):
        self.run_calls += 1

    def receive(self, sender_id, payload):
        return None


class RecordingObserver(Observer):
    def __init__(self):
        self.started = False
        self.cycles = []
        self.finished = False

    def on_start(self, engine):
        self.started = True

    def on_cycle_end(self, engine, cycle):
        self.cycles.append(cycle)

    def on_finish(self, engine):
        self.finished = True


def test_every_node_activated_once_per_cycle():
    engine = Engine(SimConfig(seed=1))
    nodes = [CountingNode(i) for i in range(5)]
    for node in nodes:
        engine.add_node(node)
    engine.run(3)
    for node in nodes:
        assert node.begin_calls == [0, 1, 2]
        assert node.run_calls == 3
    assert engine.clock.cycle == 3


def test_duplicate_node_id_rejected():
    engine = Engine()
    engine.add_node(CountingNode("a"))
    with pytest.raises(SimulationError):
        engine.add_node(CountingNode("a"))


def test_observer_hooks_fire():
    engine = Engine()
    engine.add_node(CountingNode("a"))
    observer = RecordingObserver()
    engine.add_observer(observer)
    engine.run(2)
    assert observer.started and observer.finished
    assert observer.cycles == [0, 1]


def test_malicious_and_legit_partition():
    engine = Engine()
    engine.add_node(CountingNode("good"))
    engine.add_node(CountingNode("evil", malicious=True))
    assert engine.malicious_ids == {"evil"}
    assert engine.legit_ids == {"good"}
    assert [n.node_id for n in engine.legit_nodes()] == ["good"]


def test_churn_leave_and_join():
    joined = []

    def join_factory(engine):
        node = CountingNode(f"new-{len(joined)}")
        joined.append(node)
        return node

    churn = ChurnSchedule().leave(1, "a").join(2)
    engine = Engine(churn=churn, join_factory=join_factory)
    engine.add_node(CountingNode("a"))
    engine.add_node(CountingNode("b"))
    engine.run(3)
    assert "a" not in engine.nodes
    assert joined and joined[0].node_id in engine.nodes
    assert engine.trace.count("churn.leave") == 1
    assert engine.trace.count("churn.join") == 1


def test_join_without_factory_is_an_error():
    engine = Engine(churn=ChurnSchedule().join(0))
    with pytest.raises(SimulationError):
        engine.run(1)


def test_negative_cycles_rejected():
    with pytest.raises(SimulationError):
        Engine().run(-1)


def test_gc_threshold_restored_when_observer_raises():
    """The tuned gen-0 threshold is scoped with try/finally: a crashing
    observer (or protocol) must not leak a 400k threshold."""

    class Exploding(Observer):
        def on_cycle_end(self, engine, cycle):
            raise RuntimeError("boom")

    before = gc.get_threshold()
    engine = Engine(SimConfig(gc_generation0_threshold=400_000))
    engine.add_node(CountingNode("a"))
    engine.add_observer(Exploding())
    with pytest.raises(RuntimeError):
        engine.run(1)
    assert gc.get_threshold() == before


def test_gc_threshold_restored_when_protocol_raises():
    class Exploding(CountingNode):
        def run_cycle(self, network):
            raise ValueError("protocol bug")

    before = gc.get_threshold()
    engine = Engine(SimConfig(gc_generation0_threshold=400_000))
    engine.add_node(Exploding("a"))
    with pytest.raises(ValueError):
        engine.run(1)
    assert gc.get_threshold() == before


def test_determinism_same_seed():
    def build_and_run(seed):
        engine = Engine(SimConfig(seed=seed))
        nodes = [CountingNode(i) for i in range(10)]
        for node in nodes:
            engine.add_node(node)
        order = []

        class OrderSpy(Observer):
            def on_cycle_end(self, engine, cycle):
                order.append(tuple(engine.alive_ids()))

        engine.add_observer(OrderSpy())
        engine.run(2)
        return order

    assert build_and_run(9) == build_and_run(9)
