"""Unit tests for the event trace."""

from repro.sim.trace import EventTrace


def test_emit_and_query():
    trace = EventTrace()
    trace.emit(0, "secure.blacklisted", node="a", culprit="b")
    trace.emit(1, "secure.idle", node="c")
    assert len(trace) == 2
    assert trace.count("secure.blacklisted") == 1
    assert trace.first("secure.blacklisted").detail["culprit"] == "b"
    assert trace.first("missing") is None


def test_prefix_matching():
    trace = EventTrace()
    trace.emit(0, "churn.join")
    trace.emit(0, "churn.leave")
    trace.emit(0, "churnfake")
    assert trace.count("churn") == 2


def test_disabled_trace_is_noop():
    trace = EventTrace(enabled=False)
    trace.emit(0, "anything")
    assert len(trace) == 0


def test_clear():
    trace = EventTrace()
    trace.emit(0, "x")
    trace.clear()
    assert len(trace) == 0
