"""Per-node clock drift: honest safety and attacker detection.

The acceptance bar for drift support: honest nodes under bounded
:class:`~repro.sim.clock.ClockDrift` register **zero** frequency
violations across a 50-cycle event-runtime run (given a frequency
tolerance sized to the drift envelope), while an attacker forging
future timestamps to over-mint is still provably detected.
"""

import random

import pytest

from repro.adversary.frequency import FrequencyAttacker
from repro.core.config import SecureCyclonConfig
from repro.errors import ConfigError, SimulationError
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.links import view_fill_fraction
from repro.sim.clock import ClockDrift, DriftedClock, DriftPlan, SimClock
from repro.sim.scheduler import EventScheduler, PeriodJitter


# ----------------------------------------------------------------------
# the drift model itself
# ----------------------------------------------------------------------


def test_clock_drift_perception():
    drift = ClockDrift(skew_s=2.0, rate=0.01)
    assert drift.perceive(0.0) == 2.0
    assert drift.perceive(100.0) == pytest.approx(103.0)
    assert drift.offset_at(100.0) == pytest.approx(3.0)
    assert ClockDrift().is_zero
    assert not drift.is_zero


def test_clock_drift_must_run_forwards():
    with pytest.raises(SimulationError):
        ClockDrift(rate=-1.0)


def test_drifted_clock_cycle_of_timestamp_inverts_the_drift():
    """timestamp_for_cycle and cycle_of_timestamp round-trip through
    the drift, matching the invariant the un-drifted clock pins."""
    base = SimClock(period_seconds=10.0)
    drifted = DriftedClock(base, ClockDrift(skew_s=-6.0, rate=0.01))
    for cycle in (0, 1, 7, 100):
        stamp = drifted.timestamp_for_cycle(cycle)
        assert drifted.cycle_of_timestamp(stamp) == cycle
        assert drifted.cycle_of_timestamp(stamp + 1.0) == cycle


def test_drifted_clock_filters_wall_time_but_not_cycles():
    base = SimClock(period_seconds=10.0)
    drifted = DriftedClock(base, ClockDrift(skew_s=1.5, rate=0.1))
    assert drifted.now_s == pytest.approx(1.5)
    assert drifted.cycle == 0
    assert drifted.period_seconds == 10.0
    base.advance(3)  # true time 30
    assert drifted.now_s == pytest.approx(34.5)
    assert drifted.now() == drifted.now_s
    # Cycles are engine bookkeeping, not a local measurement.
    assert drifted.cycle == base.cycle == 3


def test_drift_plan_envelope_and_bound():
    plan = DriftPlan(max_skew_s=2.0, max_rate=0.01)
    rng = random.Random(3)
    for _ in range(100):
        drift = plan.draw(rng)
        assert abs(drift.skew_s) <= 2.0
        assert abs(drift.rate) <= 0.01
    assert plan.bound_at(500.0) == pytest.approx(2.0 + 5.0)
    with pytest.raises(SimulationError):
        DriftPlan(max_skew_s=-1.0)
    with pytest.raises(SimulationError):
        DriftPlan(max_rate=1.0)


def test_frequency_tolerance_validation():
    config = SecureCyclonConfig(frequency_tolerance_seconds=2.0)
    assert config.effective_frequency_period(10.0) == 8.0
    with pytest.raises(ConfigError):
        SecureCyclonConfig(frequency_tolerance_seconds=-1.0)
    with pytest.raises(ConfigError):
        SecureCyclonConfig(
            frequency_tolerance_seconds=10.0
        ).effective_frequency_period(10.0)


# ----------------------------------------------------------------------
# honest safety at 50 cycles (the acceptance criterion)
# ----------------------------------------------------------------------


def test_bounded_drift_50_cycles_zero_frequency_violations():
    """Honest-only overlay, event runtime, jittered timers, every node
    on its own drifting clock: 50 cycles must produce zero frequency
    violations, zero blacklistings, and a healthy overlay."""
    period_s = 10.0
    plan = DriftPlan(max_skew_s=2.0, max_rate=0.003)
    horizon_s = 50 * period_s
    # Tolerances sized from the envelope: two clocks can disagree by
    # at most twice the plan's bound over the run.
    assert 2 * plan.bound_at(horizon_s) < period_s
    overlay = build_secure_overlay(
        n=40,
        config=SecureCyclonConfig(
            view_length=8,
            swap_length=3,
            frequency_tolerance_seconds=2 * plan.bound_at(horizon_s),
        ),
        seed=17,
        runtime=EventScheduler(
            jitter=PeriodJitter(mode="uniform", spread=0.1)
        ),
        drift=plan,
    )
    overlay.run(50)
    engine = overlay.engine
    violations = engine.trace.of_kind("secure.violation_found")
    assert violations == []
    assert engine.trace.count("secure.blacklisted") == 0
    assert view_fill_fraction(engine) > 0.9
    # The global audit judges by the same drift-tolerant window the
    # nodes enforce on each other: no false mint-rate findings either.
    from repro import audit_engine

    assert not [
        finding
        for finding in audit_engine(engine).findings
        if finding.invariant == "mint-rate"
    ]


def test_drift_without_tolerance_throttles_slow_clocks():
    """Control for the tolerance: with zero slack, nodes whose clocks
    run slow stamp their once-per-period mints fractionally under one
    period apart and the §IV-B self-guard makes them sit activations
    out — honest but starved.  (Never *violations*: the guard and the
    predicate see the same timestamps.)"""
    overlay = build_secure_overlay(
        n=20,
        config=SecureCyclonConfig(view_length=6, swap_length=3),
        seed=19,
        runtime=EventScheduler(),
        drift=DriftPlan(max_skew_s=0.0, max_rate=0.01),
    )
    overlay.run(10)
    engine = overlay.engine
    assert engine.trace.count("secure.violation_found") == 0
    assert engine.trace.count("secure.mint_rate_limited") > 0


# ----------------------------------------------------------------------
# attacker detection survives drift
# ----------------------------------------------------------------------


def test_future_forging_overminter_still_detected_under_drift():
    """A FrequencyAttacker forges future timestamps (its burst stamps
    run ahead of its clock) to circulate extra descriptors; bounded
    honest drift plus the matching tolerance must not blind the
    detector to it."""
    plan = DriftPlan(max_skew_s=2.0, max_rate=0.003)
    overlay = build_secure_overlay(
        n=30,
        config=SecureCyclonConfig(
            view_length=8,
            swap_length=3,
            frequency_tolerance_seconds=3.0,
        ),
        malicious=2,
        attack_start=2,
        seed=23,
        attacker_cls=FrequencyAttacker,
        attacker_kwargs={"burst": 4},
        runtime=EventScheduler(
            jitter=PeriodJitter(mode="uniform", spread=0.1)
        ),
        drift=plan,
    )
    overlay.run(12)
    engine = overlay.engine
    blacklistings = engine.trace.of_kind("secure.blacklisted")
    assert blacklistings
    malicious_ids = {node.node_id for node in overlay.malicious_nodes}
    assert {event.detail["culprit"] for event in blacklistings} <= malicious_ids
    # No honest node was caught in the crossfire.
    found = engine.trace.of_kind("secure.violation_found")
    assert {event.detail["culprit"] for event in found} <= malicious_ids


def test_far_future_timestamp_rejected_by_drifted_receiver():
    """Verification tolerance bounds the future: a descriptor stamped
    beyond now + tolerance is refused even by receivers whose own
    clocks drift."""
    from repro.core.descriptor import mint

    overlay = build_secure_overlay(
        n=6,
        config=SecureCyclonConfig(view_length=4, swap_length=2),
        seed=31,
        drift=DriftPlan(max_skew_s=2.0, max_rate=0.003),
    )
    engine = overlay.engine
    nodes = list(engine.nodes.values())
    receiver, forger = nodes[0], nodes[1]
    tolerance = receiver._tolerance_cached
    forged = mint(
        forger.keypair,
        forger.address,
        receiver.clock.now_s + tolerance + 100.0,
    ).transfer(forger.keypair, forger.node_id)
    assert receiver._observe(forged, None) is False
    # The same stamp inside the tolerance window is acceptable.
    near = mint(
        forger.keypair, forger.address, receiver.clock.now_s + tolerance / 2
    ).transfer(forger.keypair, forger.node_id)
    assert receiver._observe(near, None) is True
