"""Unit tests for channels and drop policies."""

import random

import pytest

from repro.sim.channel import Channel, DropPolicy, MessageDropped


def make_channel(policy=None, reply="pong"):
    log = []

    def deliver(payload):
        log.append(payload)
        return reply

    channel = Channel(
        initiator_id="a",
        partner_id="b",
        deliver=deliver,
        rng=random.Random(0),
        policy=policy,
        sizer=lambda payload: len(str(payload)),
    )
    return channel, log


def test_request_roundtrip():
    channel, log = make_channel()
    assert channel.request("ping") == "pong"
    assert log == ["ping"]
    assert channel.requests_sent == 1
    assert channel.replies_received == 1


def test_traffic_accounting():
    channel, _ = make_channel()
    channel.request("ping")
    assert channel.bytes_sent == len("ping")
    assert channel.bytes_received == len("pong")


def test_request_loss_marks_undelivered():
    channel, log = make_channel(policy=DropPolicy(request_loss=1.0))
    with pytest.raises(MessageDropped) as excinfo:
        channel.request("ping")
    assert excinfo.value.delivered is False
    assert log == []  # the partner never saw it


def test_reply_loss_marks_delivered():
    channel, log = make_channel(policy=DropPolicy(reply_loss=1.0))
    with pytest.raises(MessageDropped) as excinfo:
        channel.request("ping")
    assert excinfo.value.delivered is True
    assert log == ["ping"]  # the partner processed the request


def test_drop_policy_validates_probabilities():
    with pytest.raises(ValueError):
        DropPolicy(request_loss=1.5)
    with pytest.raises(ValueError):
        DropPolicy(reply_loss=-0.1)
