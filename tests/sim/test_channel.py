"""Unit tests for channels, drop policies, bursts, and timeouts."""

import random

import pytest

from repro.sim.channel import (
    BurstState,
    Channel,
    DropPolicy,
    MessageDropped,
    MessageTimeout,
)
from repro.sim.latency import ConstantLatency, LinkTiming


def make_channel(policy=None, reply="pong", timing=None, burst_state=None, seed=0):
    log = []

    def deliver(payload):
        log.append(payload)
        return reply

    channel = Channel(
        initiator_id="a",
        partner_id="b",
        deliver=deliver,
        rng=random.Random(seed),
        policy=policy,
        sizer=lambda payload: len(str(payload)),
        timing=timing,
        burst_state=burst_state,
    )
    return channel, log


def test_request_roundtrip():
    channel, log = make_channel()
    assert channel.request("ping") == "pong"
    assert log == ["ping"]
    assert channel.requests_sent == 1
    assert channel.replies_received == 1


def test_traffic_accounting():
    channel, _ = make_channel()
    channel.request("ping")
    assert channel.bytes_sent == len("ping")
    assert channel.bytes_received == len("pong")


def test_request_loss_marks_undelivered():
    channel, log = make_channel(policy=DropPolicy(request_loss=1.0))
    with pytest.raises(MessageDropped) as excinfo:
        channel.request("ping")
    assert excinfo.value.delivered is False
    assert log == []  # the partner never saw it


def test_reply_loss_marks_delivered():
    channel, log = make_channel(policy=DropPolicy(reply_loss=1.0))
    with pytest.raises(MessageDropped) as excinfo:
        channel.request("ping")
    assert excinfo.value.delivered is True
    assert log == ["ping"]  # the partner processed the request


def test_losses_in_a_timed_network_surface_as_timeouts():
    """With a dialogue timeout configured, the initiator only learns
    about a loss by waiting out its patience: both loss directions
    charge ``timeout_s`` to ``elapsed_s`` and raise
    :class:`MessageTimeout` — observationally the failure *is* a
    timeout (and is therefore retryable); the node never branches on
    drop-vs-late information it could not observe."""
    timing = LinkTiming(
        model=ConstantLatency(0.1), rng=random.Random(1), timeout_s=5.0
    )
    for policy, delivered in (
        (DropPolicy(request_loss=1.0), False),
        (DropPolicy(reply_loss=1.0), True),
    ):
        channel, _ = make_channel(policy=policy, timing=timing)
        with pytest.raises(MessageTimeout) as excinfo:
            channel.request("ping")
        assert excinfo.value.delivered is delivered
        assert channel.elapsed_s == 5.0
    # Without a timeout there is no bounded wait to charge.
    untimed = LinkTiming(
        model=ConstantLatency(0.1), rng=random.Random(1), timeout_s=None
    )
    channel, _ = make_channel(
        policy=DropPolicy(request_loss=1.0), timing=untimed
    )
    with pytest.raises(MessageDropped):
        channel.request("ping")
    assert channel.elapsed_s == 0.0


def test_drop_policy_validates_probabilities():
    with pytest.raises(ValueError):
        DropPolicy(request_loss=1.5)
    with pytest.raises(ValueError):
        DropPolicy(reply_loss=-0.1)
    with pytest.raises(ValueError):
        DropPolicy(burst_length=-1)
    with pytest.raises(ValueError):
        DropPolicy(burst_factor=0.5)


# ----------------------------------------------------------------------
# correlated (burst) loss
# ----------------------------------------------------------------------


def test_burst_state_doubles_loss_for_n_messages_after_a_drop():
    policy = DropPolicy(request_loss=0.3, burst_length=3, burst_factor=2.0)
    state = BurstState(policy)
    assert state.effective(0.3) == 0.3  # no drop yet: base probability
    state.on_drop()
    # The next three messages ride the burst at doubled probability...
    assert [state.effective(0.3) for _ in range(3)] == [0.6, 0.6, 0.6]
    # ...and the fourth is back to the base rate.
    assert state.effective(0.3) == 0.3


def test_burst_effective_probability_is_capped_at_one():
    policy = DropPolicy(request_loss=0.7, burst_length=1, burst_factor=3.0)
    state = BurstState(policy)
    state.on_drop()
    assert state.effective(0.7) == 1.0


def test_burst_rearms_on_drop_within_burst():
    policy = DropPolicy(request_loss=0.5, burst_length=2)
    state = BurstState(policy)
    state.on_drop()
    state.effective(0.5)  # one burst slot consumed
    state.on_drop()  # drop inside the burst: window restarts
    assert state.remaining == 2


def test_channel_drops_cluster_under_burst_policy():
    """With burst mode on, drops arrive in runs: the conditional
    probability of a drop right after a drop exceeds the base rate."""
    policy = DropPolicy(request_loss=0.2, burst_length=5, burst_factor=4.0)
    state = BurstState(policy)
    channel, _ = make_channel(policy=policy, burst_state=state, seed=7)
    outcomes = []
    for _ in range(4000):
        try:
            channel.request("ping")
            outcomes.append(False)
        except MessageDropped:
            outcomes.append(True)
    drops = outcomes.count(True)
    after_drop = [b for a, b in zip(outcomes, outcomes[1:]) if a]
    assert drops / len(outcomes) > 0.25  # bursts push loss above base
    assert sum(after_drop) / len(after_drop) > 2 * 0.2


def test_channel_without_burst_state_keeps_independent_drops():
    policy = DropPolicy(request_loss=0.2)
    channel, _ = make_channel(policy=policy, seed=7)
    outcomes = []
    for _ in range(4000):
        try:
            channel.request("ping")
            outcomes.append(False)
        except MessageDropped:
            outcomes.append(True)
    assert outcomes.count(True) / len(outcomes) == pytest.approx(0.2, abs=0.03)


# ----------------------------------------------------------------------
# latency and timeouts
# ----------------------------------------------------------------------


def _timing(delay_s, timeout_s):
    return LinkTiming(
        model=ConstantLatency(delay_s=delay_s),
        rng=random.Random(1),
        timeout_s=timeout_s,
    )


def test_fast_legs_complete_and_account_elapsed_time():
    channel, log = make_channel(timing=_timing(0.5, timeout_s=2.0))
    assert channel.request("ping") == "pong"
    assert log == ["ping"]
    assert channel.elapsed_s == pytest.approx(1.0)  # both legs


def test_request_leg_timeout_is_undelivered():
    channel, log = make_channel(timing=_timing(3.0, timeout_s=2.0))
    with pytest.raises(MessageTimeout) as excinfo:
        channel.request("ping")
    assert excinfo.value.delivered is False
    assert log == []  # the partner never saw the request
    assert isinstance(excinfo.value, MessageDropped)  # protocol-compatible


def test_round_trip_timeout_is_delivered():
    # Each leg beats the deadline but the round trip does not: the
    # partner processed the request, the reply arrives too late —
    # the §V-A case-2 asymmetry produced by timing.
    channel, log = make_channel(timing=_timing(1.2, timeout_s=2.0))
    with pytest.raises(MessageTimeout) as excinfo:
        channel.request("ping")
    assert excinfo.value.delivered is True
    assert log == ["ping"]
    assert excinfo.value.elapsed_s == pytest.approx(2.0)


def test_no_timeout_means_unbounded_patience():
    channel, log = make_channel(timing=_timing(500.0, timeout_s=None))
    assert channel.request("ping") == "pong"
    assert channel.elapsed_s == pytest.approx(1000.0)
