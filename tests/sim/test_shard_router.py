"""Property tests for the shard router and the cross-shard frame path.

Two pillars of the sharded engine that must hold for *any* node-id
population, not just the seeds the figures use:

* :class:`~repro.sim.shard.ShardPlan` — the consistent-hashing
  partition function must be **total** (every id maps to exactly one
  shard), **stable** (an id's shard depends on nothing but the id and
  the ring — joins and leaves move nobody), **monotone** (growing the
  ring only moves ids *to* the new shards) and **balanced** within
  generous bounds.

* The cross-shard data plane — a payload framed with
  ``BatchEncoder.encode_frames``, shipped through a real
  ``socket.socketpair``, split with ``split_frames`` and decoded by
  ``FastDecoder`` must come back byte-identical when re-encoded: the
  socket hop adds nothing and loses nothing.
"""

import random
import socket

from hypothesis import given, settings, strategies as st

from repro.core.codec_batch import (
    BatchEncoder,
    FastDecoder,
    InternTable,
    split_frames,
)
from repro.core.descriptor import mint
from repro.core.exchange import GossipOpen
from repro.crypto.registry import KeyRegistry
from repro.sim.network import NetworkAddress
from repro.sim.shard import ShardPlan

_REGISTRY = KeyRegistry()
_RNG = random.Random(13)
_KEYPAIRS = [_REGISTRY.new_keypair(_RNG) for _ in range(8)]


def _node_ids(draw_ints):
    """Map drawn integers onto the id shapes the simulator uses."""
    return [_KEYPAIRS[i % len(_KEYPAIRS)].public for i in draw_ints]


node_id_lists = st.lists(
    st.one_of(
        st.integers(min_value=-(2**40), max_value=2**40),
        st.text(min_size=0, max_size=24),
        st.binary(min_size=0, max_size=24),
        st.integers(0, 7).map(lambda i: _KEYPAIRS[i].public),
    ),
    min_size=0,
    max_size=200,
    unique=True,
)

shard_counts = st.integers(min_value=1, max_value=8)


@given(ids=node_id_lists, shards=shard_counts)
@settings(max_examples=50, deadline=None)
def test_partition_is_total(ids, shards):
    plan = ShardPlan(shards)
    parts = plan.partition(ids)
    assert len(parts) == shards
    flattened = [node_id for part in parts for node_id in part]
    assert sorted(flattened, key=repr) == sorted(ids, key=repr)
    for node_id in ids:
        assert 0 <= plan.shard_of(node_id) < shards


@given(ids=node_id_lists, shards=shard_counts, data=st.data())
@settings(max_examples=50, deadline=None)
def test_partition_is_stable_under_joins_and_leaves(ids, shards, data):
    """An id's shard never depends on which other ids exist."""
    plan = ShardPlan(shards)
    before = {node_id: plan.shard_of(node_id) for node_id in ids}
    survivors = data.draw(st.sets(st.sampled_from(ids)) if ids else st.just(set()))
    # Leaves: the survivors keep their shards.
    for node_id in survivors:
        assert plan.shard_of(node_id) == before[node_id]
    # Joins: new ids change nothing for the existing population.
    for node_id in ids:
        assert plan.shard_of(node_id) == before[node_id]


@given(ids=node_id_lists, shards=st.integers(min_value=1, max_value=7))
@settings(max_examples=50, deadline=None)
def test_partition_is_monotone_when_the_ring_grows(ids, shards):
    """Going from N to N+1 shards only moves ids to the new shard."""
    small = ShardPlan(shards)
    large = ShardPlan(shards + 1)
    for node_id in ids:
        before, after = small.shard_of(node_id), large.shard_of(node_id)
        assert after == before or after == shards


def test_partition_is_balanced_within_bounds():
    """128 vnodes/shard keep the split within loose bounds at scale.

    Consistent hashing is balanced only in expectation; with the fixed
    ring this repo ships the bound below is deterministic, and it is
    deliberately generous — the property that matters is "no shard gets
    starved or doubled", not perfect equality.
    """
    rng = random.Random(99)
    registry = KeyRegistry()
    ids = [registry.new_keypair(rng).public for _ in range(2000)]
    for shards in (2, 4, 8):
        plan = ShardPlan(shards)
        sizes = [len(part) for part in plan.partition(ids)]
        fair = len(ids) / shards
        assert min(sizes) > fair * 0.5, (shards, sizes)
        assert max(sizes) < fair * 1.6, (shards, sizes)


def test_pinned_ids_override_the_ring():
    rng = random.Random(5)
    registry = KeyRegistry()
    ids = [registry.new_keypair(rng).public for _ in range(32)]
    plan = ShardPlan(4).with_pinned({node_id: 0 for node_id in ids[:8]})
    assert all(plan.shard_of(node_id) == 0 for node_id in ids[:8])
    # And pinning leaves everyone else exactly where the ring put them.
    unpinned = ShardPlan(4)
    for node_id in ids[8:]:
        assert plan.shard_of(node_id) == unpinned.shard_of(node_id)


# ----------------------------------------------------------------------
# cross-shard frame round-trip over a real socket
# ----------------------------------------------------------------------


@st.composite
def gossip_opens(draw):
    creator = draw(st.integers(0, 7))
    timestamp = draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    count = draw(st.integers(min_value=0, max_value=6))
    descriptors = tuple(
        mint(
            _KEYPAIRS[draw(st.integers(0, 7))],
            NetworkAddress(host=draw(st.integers(0, 2**31 - 1)), port=9000),
            draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False)),
        )
        for _ in range(count)
    )
    own = mint(
        _KEYPAIRS[creator],
        NetworkAddress(host=creator, port=9000),
        timestamp,
    )
    return GossipOpen(
        redemption=own,
        non_swappable=draw(st.booleans()),
        samples=descriptors,
    )


@given(payloads=st.lists(gossip_opens(), min_size=1, max_size=5))
@settings(max_examples=25, deadline=None)
def test_cross_shard_frames_round_trip_over_a_socketpair(payloads):
    """encode_frames → socket → split_frames → FastDecoder is lossless.

    Byte-identity is checked in both directions: the received buffer is
    the sent buffer, and re-encoding the decoded payloads on the
    receiving side reproduces the original frame bytes exactly (the
    property the deterministic mode's wire accounting relies on).
    """
    sender = BatchEncoder(InternTable())
    receiver_decoder = FastDecoder(InternTable())
    receiver_encoder = BatchEncoder(receiver_decoder.intern)

    wire = sender.encode_frames(payloads)
    left, right = socket.socketpair()
    try:
        left.sendall(wire)
        left.shutdown(socket.SHUT_WR)
        received = bytearray()
        while True:
            chunk = right.recv(1 << 16)
            if not chunk:
                break
            received += chunk
    finally:
        left.close()
        right.close()

    received = bytes(received)
    assert received == wire
    frames = split_frames(received)
    assert len(frames) == len(payloads)
    decoded = receiver_decoder.decode_frames(received)
    assert decoded == payloads
    assert receiver_encoder.encode_frames(decoded) == wire
