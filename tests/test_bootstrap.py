"""Unit tests for the bootstrap module."""

import random

import pytest

from repro.bootstrap import bootstrap_joiner, random_targets
from repro.core.config import SecureCyclonConfig
from repro.core.node import SecureCyclonNode
from repro.experiments.scenarios import build_secure_overlay


def test_random_targets_excludes_and_bounds():
    rng = random.Random(0)
    ids = list(range(10))
    targets = random_targets(ids, 5, exclude=3, rng=rng)
    assert len(targets) == 5
    assert 3 not in targets
    # Requesting more than available caps at the pool size.
    assert len(random_targets(ids, 50, exclude=3, rng=rng)) == 9


def make_joiner(engine, name):
    keypair = engine.registry.new_keypair(engine.rng_hub.stream(name))
    node = SecureCyclonNode(
        keypair=keypair,
        address=engine.network.reserve_address(keypair.public),
        config=SecureCyclonConfig(view_length=6, swap_length=3),
        clock=engine.clock,
        registry=engine.registry,
        rng=engine.rng_hub.stream(f"{name}-rng"),
    )
    return node


def test_joiner_acquires_valid_owned_links():
    overlay = build_secure_overlay(
        n=20, config=SecureCyclonConfig(view_length=6, swap_length=3), seed=71
    )
    overlay.run(3)
    engine = overlay.engine
    joiner = make_joiner(engine, "j")
    acquired = bootstrap_joiner(
        joiner, engine.legit_nodes(), links=3, rng=random.Random(1)
    )
    assert acquired == 3
    for entry in joiner.view:
        assert entry.descriptor.current_owner == joiner.node_id
        assert not entry.non_swappable  # the joiner's links are real


def test_joiner_with_no_donors():
    overlay = build_secure_overlay(
        n=5, config=SecureCyclonConfig(view_length=3, swap_length=2), seed=71
    )
    engine = overlay.engine
    joiner = make_joiner(engine, "j2")
    assert bootstrap_joiner(joiner, [], links=3, rng=random.Random(1)) == 0
    assert len(joiner.view) == 0


def test_donated_links_remain_usable_for_gossip():
    """The joiner can actually redeem a donated token."""
    overlay = build_secure_overlay(
        n=20, config=SecureCyclonConfig(view_length=6, swap_length=3), seed=72
    )
    overlay.run(3)
    engine = overlay.engine
    joiner = make_joiner(engine, "j3")
    joiner.bind_network(engine.network)
    bootstrap_joiner(joiner, engine.legit_nodes(), links=3, rng=random.Random(2))
    engine.add_node(joiner)
    joiner.begin_cycle(engine.clock.cycle)
    joiner.run_cycle(engine.network)  # must not raise; view refreshes
    assert len(joiner.view) >= 3
