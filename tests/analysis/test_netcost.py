"""Tests pinning the §VI-A cost model to the paper's numbers."""

import pytest

from repro.analysis.netcost import NetworkCostModel


@pytest.fixture
def paper_model():
    """The exact configuration the paper budgets: ℓ=20, s=3, r=5."""
    return NetworkCostModel(
        view_length=20, swap_length=3, redemption_cache=5, period_seconds=10.0
    )


def test_node_info_is_368_bits(paper_model):
    assert paper_model.descriptor_bits(0) == 368


def test_each_transfer_adds_512_bits(paper_model):
    assert paper_model.descriptor_bits(1) - paper_model.descriptor_bits(0) == 512


def test_pessimistic_transfers_is_2s(paper_model):
    assert paper_model.pessimistic_transfers == 6


def test_descriptor_size_is_3440_bits_430_bytes(paper_model):
    assert paper_model.descriptor_bits(6) == 3440
    assert paper_model.pessimistic_descriptor_bytes == 430.0


def test_descriptors_per_direction_is_25(paper_model):
    assert paper_model.descriptors_per_direction == 25


def test_headline_kb_per_direction(paper_model):
    # Paper: "roughly 10.5 KBytes in each direction".
    assert paper_model.kilobytes_per_direction == pytest.approx(10.5, abs=0.1)


def test_bandwidth_is_modest(paper_model):
    # 2 exchanges/cycle, both directions, over a 10 s period: a few KB/s.
    assert paper_model.bandwidth_bytes_per_second < 8192


def test_larger_views_cost_more():
    small = NetworkCostModel(view_length=20, swap_length=3)
    large = NetworkCostModel(view_length=50, swap_length=3)
    assert large.bytes_per_direction > small.bytes_per_direction


def test_transfer_count_drives_descriptor_size():
    lazy = NetworkCostModel(view_length=20, swap_length=3)
    busy = NetworkCostModel(view_length=20, swap_length=10)
    assert busy.pessimistic_descriptor_bytes > lazy.pessimistic_descriptor_bytes


def test_validation():
    with pytest.raises(ValueError):
        NetworkCostModel(view_length=0)
    with pytest.raises(ValueError):
        NetworkCostModel(view_length=10, swap_length=11)
    with pytest.raises(ValueError):
        NetworkCostModel(view_length=10, swap_length=0)
    with pytest.raises(ValueError):
        NetworkCostModel(redemption_cache=-1)
    with pytest.raises(ValueError):
        NetworkCostModel(period_seconds=0.0)
    with pytest.raises(ValueError):
        NetworkCostModel().descriptor_bits(-1)


def test_model_is_frozen(paper_model):
    with pytest.raises(AttributeError):
        paper_model.view_length = 30
