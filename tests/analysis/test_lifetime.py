"""Tests for the descriptor lifetime / transfer-count models."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.lifetime import (
    expected_lifetime_cycles,
    expected_transfers,
    per_cycle_transfer_probability,
    transfer_count_distribution,
)


def test_lifetime_equals_view_length():
    assert expected_lifetime_cycles(20) == 20.0
    assert expected_lifetime_cycles(50) == 50.0


def test_lifetime_rejects_nonpositive_view():
    with pytest.raises(ValueError):
        expected_lifetime_cycles(0)


def test_paper_configuration_gives_six_transfers():
    # §VI-A: ℓ=20, s=3 → 2s = 6 transfers over a descriptor's lifetime.
    assert expected_transfers(view_length=20, swap_length=3) == pytest.approx(6.0)


def test_transfer_probability_is_2s_over_ell():
    assert per_cycle_transfer_probability(20, 3) == pytest.approx(0.3)
    assert per_cycle_transfer_probability(50, 5) == pytest.approx(0.2)


def test_transfer_probability_capped_at_one():
    assert per_cycle_transfer_probability(4, 4) == 1.0


def test_expected_transfers_scales_with_swap_length():
    low = expected_transfers(20, 3)
    high = expected_transfers(20, 10)
    assert high > low


def test_validation_errors():
    with pytest.raises(ValueError):
        expected_transfers(0, 1)
    with pytest.raises(ValueError):
        expected_transfers(10, 0)
    with pytest.raises(ValueError):
        expected_transfers(10, 11)


def test_distribution_sums_to_one():
    pmf = transfer_count_distribution(20, 3)
    assert sum(pmf) == pytest.approx(1.0)


def test_distribution_mean_matches_expected_transfers():
    pmf = transfer_count_distribution(20, 3)
    mean = sum(k * p for k, p in enumerate(pmf))
    assert mean == pytest.approx(expected_transfers(20, 3), rel=1e-9)


def test_distribution_truncation_preserves_mass():
    pmf = transfer_count_distribution(20, 10, max_transfers=5)
    assert len(pmf) == 6
    assert sum(pmf) == pytest.approx(1.0)


@given(
    view_length=st.integers(min_value=2, max_value=60),
    swap_length=st.integers(min_value=1, max_value=60),
)
def test_distribution_always_a_pmf(view_length, swap_length):
    if swap_length > view_length:
        with pytest.raises(ValueError):
            transfer_count_distribution(view_length, swap_length)
        return
    pmf = transfer_count_distribution(view_length, swap_length)
    assert all(p >= 0 for p in pmf)
    assert sum(pmf) == pytest.approx(1.0, abs=1e-9)


@given(
    view_length=st.integers(min_value=2, max_value=60),
)
def test_mean_transfers_bounded_by_lifetime(view_length):
    swap_length = max(1, view_length // 4)
    mean = expected_transfers(view_length, swap_length)
    assert 0 < mean <= view_length


def test_binomial_matches_math_comb_small_case():
    # ℓ=4, s=1: p=0.5 per cycle over 4 trials — textbook binomial.
    pmf = transfer_count_distribution(4, 1)
    expected = [math.comb(4, k) * 0.5**4 for k in range(5)]
    for got, want in zip(pmf, expected):
        assert got == pytest.approx(want)
