"""Tests for the indegree-equilibrium reference model."""

import pytest

from repro.analysis.indegree import (
    empirical_moments,
    indegree_distribution,
    indegree_moments,
)
from repro.cyclon.config import CyclonConfig
from repro.experiments.scenarios import build_cyclon_overlay
from repro.metrics.degree import indegree_counts


def test_distribution_is_a_pmf():
    pmf = indegree_distribution(nodes=1000, view_length=20)
    assert all(p >= 0 for p in pmf)
    assert sum(pmf) == pytest.approx(1.0, abs=1e-6)


def test_distribution_peaks_near_view_length():
    pmf = indegree_distribution(nodes=1000, view_length=20)
    peak = max(range(len(pmf)), key=pmf.__getitem__)
    assert abs(peak - 20) <= 1


def test_moments_mean_is_exactly_view_length():
    mean, std = indegree_moments(nodes=1000, view_length=20)
    assert mean == 20.0
    assert std == pytest.approx(20**0.5)


def test_validation():
    with pytest.raises(ValueError):
        indegree_distribution(nodes=1, view_length=20)
    with pytest.raises(ValueError):
        indegree_distribution(nodes=100, view_length=0)
    with pytest.raises(ValueError):
        indegree_moments(nodes=1, view_length=5)


def test_empirical_moments_empty():
    assert empirical_moments({}) == (0.0, 0.0)


def test_empirical_moments_simple():
    mean, std = empirical_moments({"a": 2, "b": 4})
    assert mean == 3.0
    assert std == 1.0


def test_converged_cyclon_matches_model():
    """Fig 2 cross-check: measured mean = ℓ exactly; spread below the
    Poisson envelope the model provides."""
    view_length = 10
    overlay = build_cyclon_overlay(
        n=120, config=CyclonConfig(view_length=view_length, swap_length=3),
        seed=11,
    )
    overlay.run(40)
    counts = indegree_counts(overlay.engine)
    mean, std = empirical_moments(counts)
    model_mean, model_std_envelope = indegree_moments(120, view_length)
    assert mean == pytest.approx(model_mean)  # links are conserved
    assert std < 2.0 * model_std_envelope
    assert min(counts.values()) > 0  # nobody starves
