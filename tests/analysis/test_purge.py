"""Tests for the Fig 5 collapse (purge-time) model."""

import pytest

from repro.analysis.purge import (
    cycles_to_purge,
    expected_collapse_cycles,
    expected_cycles_to_first_detection,
    link_decay_factor,
)


def test_first_detection_single_attacker():
    # One attacker, p=0.5 per exchange: mean 2 cycles.
    assert expected_cycles_to_first_detection(1, 0.5) == pytest.approx(2.0)


def test_first_detection_many_attackers_is_fast():
    assert expected_cycles_to_first_detection(100, 0.1) < 1.01


def test_first_detection_certain_detection():
    assert expected_cycles_to_first_detection(1, 1.0) == 1.0


def test_first_detection_validation():
    with pytest.raises(ValueError):
        expected_cycles_to_first_detection(0, 0.5)
    with pytest.raises(ValueError):
        expected_cycles_to_first_detection(5, 0.0)
    with pytest.raises(ValueError):
        expected_cycles_to_first_detection(5, 1.5)


def test_decay_factor_paper_config():
    # ℓ=20, s=3: a dead link survives a cycle with probability 0.7.
    assert link_decay_factor(20, 3) == pytest.approx(0.7)


def test_decay_factor_floors_at_zero():
    assert link_decay_factor(4, 4) == 0.0


def test_decay_factor_validation():
    with pytest.raises(ValueError):
        link_decay_factor(0, 3)
    with pytest.raises(ValueError):
        link_decay_factor(20, 0)


def test_purge_time_paper_config():
    # 0.7^t <= 0.01 → t ≈ 12.9 cycles: the Fig 5 collapse window.
    assert cycles_to_purge(20, 3) == pytest.approx(12.9, abs=0.1)


def test_purge_time_faster_with_higher_swap():
    assert cycles_to_purge(20, 8) < cycles_to_purge(20, 3)


def test_purge_time_instant_at_full_turnover():
    assert cycles_to_purge(4, 4) == 1.0


def test_purge_validation():
    with pytest.raises(ValueError):
        cycles_to_purge(20, 3, residual_fraction=0.0)
    with pytest.raises(ValueError):
        cycles_to_purge(20, 3, residual_fraction=1.0)


def test_collapse_composes_all_stages():
    total = expected_collapse_cycles(
        attackers=20, view_length=20, swap_length=3
    )
    decay_only = cycles_to_purge(20, 3)
    assert total > decay_only  # detection + flood add on top
    assert total < decay_only + 3  # but detection is near-instant at k=20


def test_collapse_matches_simulation_scale():
    """The seed-sensitivity bench measures 2–5 cycles to <1 % at
    ℓ=15, s=3 — but that clock starts at the *attack* and our overlay
    purges most links before full blacklisting completes.  The model
    (a pure post-blacklist decay bound) must land in the same decade,
    not orders of magnitude away."""
    total = expected_collapse_cycles(
        attackers=25, view_length=15, swap_length=3
    )
    assert 3.0 < total < 30.0
