"""Tests for the clone-detection probability estimate."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.detection import (
    clone_detection_probability,
    visibility_cycles,
)


def test_visibility_shrinks_with_age():
    young = visibility_cycles(20, age_at_cloning=2, redemption_cache_cycles=5)
    old = visibility_cycles(20, age_at_cloning=18, redemption_cache_cycles=5)
    assert young > old


def test_visibility_never_negative():
    assert visibility_cycles(20, age_at_cloning=40, redemption_cache_cycles=0) > 0


def test_visibility_rejects_negative_age():
    with pytest.raises(ValueError):
        visibility_cycles(20, age_at_cloning=-1, redemption_cache_cycles=5)


def test_probability_decreases_with_age():
    probabilities = [
        clone_detection_probability(1000, 20, age, redemption_cache_cycles=5)
        for age in range(2, 21, 2)
    ]
    assert all(a >= b for a, b in zip(probabilities, probabilities[1:]))


def test_probability_increases_with_cache():
    by_cache = [
        clone_detection_probability(
            1000, 20, age_at_cloning=18, redemption_cache_cycles=cache
        )
        for cache in (0, 2, 5, 10)
    ]
    assert all(a < b for a, b in zip(by_cache, by_cache[1:]))


def test_probability_decreases_with_malicious_share():
    by_share = [
        clone_detection_probability(
            1000, 20, age_at_cloning=10, malicious_fraction=share
        )
        for share in (0.0, 0.05, 0.2, 0.5)
    ]
    assert all(a > b for a, b in zip(by_share, by_share[1:]))


def test_young_clone_nearly_always_caught():
    # Fig 7: descriptors duplicated at a low age are detected with
    # high probability by view transmission alone.
    p = clone_detection_probability(
        1000, 20, age_at_cloning=2, redemption_cache_cycles=0
    )
    assert p > 0.7


def test_old_clone_with_no_cache_rarely_caught():
    p = clone_detection_probability(
        1000, 20, age_at_cloning=20, redemption_cache_cycles=0,
        malicious_fraction=0.5,
    )
    assert p < 0.2


def test_validation():
    with pytest.raises(ValueError):
        clone_detection_probability(1, 20, 5)
    with pytest.raises(ValueError):
        clone_detection_probability(100, 20, 5, malicious_fraction=1.0)
    with pytest.raises(ValueError):
        clone_detection_probability(100, 20, 5, malicious_fraction=-0.1)


@given(
    nodes=st.integers(min_value=10, max_value=100000),
    view_length=st.integers(min_value=2, max_value=60),
    age=st.integers(min_value=0, max_value=80),
    cache=st.integers(min_value=0, max_value=20),
    share=st.floats(min_value=0.0, max_value=0.9),
)
def test_probability_always_in_unit_interval(nodes, view_length, age, cache, share):
    p = clone_detection_probability(
        nodes, view_length, age, cache, malicious_fraction=share
    )
    assert 0.0 <= p <= 1.0
