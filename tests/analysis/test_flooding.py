"""Tests for the proof-flooding epidemic model."""

import pytest

from repro.analysis.flooding import coverage_per_round, flood_rounds_to_cover


def test_coverage_is_monotone():
    coverage = coverage_per_round(nodes=1000, fanout=20, rounds=6)
    assert all(a <= b for a, b in zip(coverage, coverage[1:]))


def test_coverage_reaches_everyone():
    coverage = coverage_per_round(nodes=1000, fanout=20, rounds=6)
    assert coverage[-1] > 0.999


def test_coverage_bounded_by_one():
    coverage = coverage_per_round(nodes=50, fanout=49, rounds=10)
    assert all(c <= 1.0 + 1e-9 for c in coverage)


def test_flood_is_fast_at_paper_parameters():
    # ℓ=20 fanout floods a 1K overlay in a couple of rounds; even 10K
    # with ℓ=50 takes ≤ 3 — far below one gossip cycle (DESIGN.md §4).
    assert flood_rounds_to_cover(1000, 20) <= 3
    assert flood_rounds_to_cover(10000, 50) <= 3


def test_smaller_fanout_needs_more_rounds():
    slow = flood_rounds_to_cover(10000, 2)
    fast = flood_rounds_to_cover(10000, 50)
    assert slow > fast


def test_initial_seed_accelerates():
    one = coverage_per_round(1000, 5, rounds=3, initial=1)
    many = coverage_per_round(1000, 5, rounds=3, initial=100)
    assert many[0] > one[0]


def test_validation():
    with pytest.raises(ValueError):
        coverage_per_round(0, 5, 3)
    with pytest.raises(ValueError):
        coverage_per_round(10, 0, 3)
    with pytest.raises(ValueError):
        coverage_per_round(10, 5, 3, initial=0)
    with pytest.raises(ValueError):
        coverage_per_round(10, 5, 3, initial=11)
    with pytest.raises(ValueError):
        flood_rounds_to_cover(100, 10, target_fraction=0.0)
    with pytest.raises(ValueError):
        flood_rounds_to_cover(100, 10, target_fraction=1.5)
