"""Tests for push-pull averaging over the overlay."""

from repro.core.config import SecureCyclonConfig
from repro.experiments.scenarios import build_secure_overlay
from repro.gossip.aggregation import push_pull_average


def test_estimates_converge_to_the_mean():
    overlay = build_secure_overlay(
        n=60, config=SecureCyclonConfig(view_length=8, swap_length=3), seed=4
    )
    overlay.run(15)
    ids = sorted(overlay.engine.legit_ids)
    values = {nid: float(i) for i, nid in enumerate(ids)}
    result = push_pull_average(overlay.engine, values, rounds=25)
    assert result.max_error() < 1.0
    # Variance decays monotonically (up to tiny numerical wiggle).
    assert result.variance_per_round[-1] < result.variance_per_round[0] / 100


def test_mean_is_preserved():
    overlay = build_secure_overlay(
        n=40, config=SecureCyclonConfig(view_length=6, swap_length=3), seed=4
    )
    overlay.run(10)
    ids = sorted(overlay.engine.legit_ids)
    values = {nid: 10.0 if i % 2 else 0.0 for i, nid in enumerate(ids)}
    result = push_pull_average(overlay.engine, values, rounds=20)
    estimate_mean = sum(result.estimates.values()) / len(result.estimates)
    assert abs(estimate_mean - result.true_mean) < 1e-6
