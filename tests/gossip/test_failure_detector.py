"""Tests for the heartbeat-gossip failure detector."""

import pytest

from repro.core.config import SecureCyclonConfig
from repro.experiments.scenarios import build_secure_overlay
from repro.gossip.failure_detector import FailureDetector


@pytest.fixture
def converged_overlay():
    overlay = build_secure_overlay(
        n=80,
        config=SecureCyclonConfig(view_length=10, swap_length=3),
        seed=41,
    )
    overlay.run(15)
    return overlay


def test_suspect_after_validation(converged_overlay):
    with pytest.raises(ValueError):
        FailureDetector(converged_overlay.engine, suspect_after=1)


def test_rounds_validation(converged_overlay):
    detector = FailureDetector(converged_overlay.engine, suspect_after=5)
    with pytest.raises(ValueError):
        detector.run(-1)


def test_no_false_positives_on_healthy_overlay(converged_overlay):
    # Heartbeats propagate epidemically in ~log2(n) rounds; the timeout
    # must exceed that latency or live nodes look stale.
    detector = FailureDetector(converged_overlay.engine, suspect_after=10)
    result = detector.run(30)
    assert result.false_positives(crashed=set()) == set()


def test_crashed_node_is_suspected(converged_overlay):
    engine = converged_overlay.engine
    detector = FailureDetector(engine, suspect_after=10)
    detector.run(10)  # seed the tables while everyone is alive

    victim = engine.alive_ids()[0]
    engine.remove_node(victim)
    result = detector.run(15)

    suspected_somewhere = set()
    for suspects in result.suspicions.values():
        suspected_somewhere |= suspects
    assert victim in suspected_somewhere


def test_crashed_node_eventually_suspected_by_all(converged_overlay):
    engine = converged_overlay.engine
    detector = FailureDetector(engine, suspect_after=10)
    detector.run(10)
    victim = engine.alive_ids()[0]
    engine.remove_node(victim)
    # Keep the overlay gossiping so views stay fresh for the detector.
    converged_overlay.run(5)
    result = detector.run(30)
    assert victim in result.suspected_by_all({victim})


def test_live_nodes_are_never_suspected_alongside_crash(converged_overlay):
    engine = converged_overlay.engine
    detector = FailureDetector(engine, suspect_after=10)
    detector.run(10)
    victim = engine.alive_ids()[0]
    engine.remove_node(victim)
    result = detector.run(30)
    assert result.false_positives({victim}) == set()


def test_detection_round_is_recorded(converged_overlay):
    engine = converged_overlay.engine
    detector = FailureDetector(engine, suspect_after=10)
    detector.run(10)
    victim = engine.alive_ids()[0]
    engine.remove_node(victim)
    result = detector.run(25)
    first = result.detection_round(victim)
    assert first is not None
    # Cannot be suspected before the timeout has elapsed post-crash.
    assert first >= 10


def test_detection_round_none_for_live_node(converged_overlay):
    detector = FailureDetector(converged_overlay.engine, suspect_after=5)
    result = detector.run(10)
    alive = converged_overlay.engine.alive_ids()[0]
    assert result.detection_round(alive) is None


def test_multiple_crashes_all_detected(converged_overlay):
    engine = converged_overlay.engine
    detector = FailureDetector(engine, suspect_after=10)
    detector.run(10)
    victims = set(engine.alive_ids()[:5])
    for victim in victims:
        engine.remove_node(victim)
    converged_overlay.run(3)
    result = detector.run(30)
    suspected_somewhere = set()
    for suspects in result.suspicions.values():
        suspected_somewhere |= suspects
    assert victims <= suspected_somewhere
    assert result.false_positives(victims) == set()


def test_honest_only_excludes_malicious_monitors():
    overlay = build_secure_overlay(
        n=60,
        config=SecureCyclonConfig(view_length=8, swap_length=3),
        malicious=6,
        attack_start=1000,  # never actually attack
        seed=43,
    )
    overlay.run(10)
    detector = FailureDetector(overlay.engine, suspect_after=5)
    result = detector.run(5)
    malicious = overlay.engine.malicious_ids
    assert not (set(result.suspicions) & malicious)
