"""Tests for epidemic dissemination over the overlay."""

import pytest

from repro.core.config import SecureCyclonConfig
from repro.cyclon.config import CyclonConfig
from repro.experiments.scenarios import build_cyclon_overlay, build_secure_overlay
from repro.gossip.dissemination import disseminate
from repro.metrics.links import malicious_link_fraction


def test_full_coverage_on_healthy_overlay():
    overlay = build_secure_overlay(
        n=80, config=SecureCyclonConfig(view_length=8, swap_length=3), seed=3
    )
    overlay.run(15)
    # Insertion-ordered pick: set iteration varies with PYTHONHASHSEED.
    origin = overlay.engine.alive_ids()[0]
    result = disseminate(overlay.engine, origin, fanout=5)
    # Push gossip with finite fanout reaches (nearly) everyone fast.
    assert result.coverage(80) >= 0.95
    assert result.rounds < 15
    assert result.per_round_coverage[-1] == result.coverage(80)


def test_origin_must_be_alive():
    overlay = build_secure_overlay(
        n=20, config=SecureCyclonConfig(view_length=5, swap_length=3), seed=3
    )
    with pytest.raises(ValueError):
        disseminate(overlay.engine, "ghost")


def test_hijacked_overlay_censors_broadcasts():
    """After a successful hub attack, malicious hubs swallow traffic."""
    overlay = build_cyclon_overlay(
        n=80,
        config=CyclonConfig(view_length=10, swap_length=3),
        malicious=10,
        attack_start=10,
        seed=3,
    )
    overlay.run(80)
    assert malicious_link_fraction(overlay.engine) > 0.9
    legit = overlay.engine.legit_ids
    origin = next(
        nid for nid in overlay.engine.alive_ids() if nid in legit
    )
    result = disseminate(overlay.engine, origin, fanout=4)
    # Nearly everything dies inside the malicious quorum.
    assert result.coverage(80) < 0.5
