"""Tests for structured-overlay construction over peer sampling."""

import pytest

from repro.core.config import SecureCyclonConfig
from repro.experiments.scenarios import build_secure_overlay
from repro.gossip.topology import RingDistance, TopologyBuilder


@pytest.fixture(scope="module")
def healthy():
    overlay = build_secure_overlay(
        n=80,
        config=SecureCyclonConfig(view_length=10, swap_length=3),
        seed=141,
    )
    overlay.run(15)
    return overlay


def test_k_validation(healthy):
    with pytest.raises(ValueError):
        TopologyBuilder(healthy.engine, k=0)


def test_rounds_validation(healthy):
    builder = TopologyBuilder(healthy.engine, k=4)
    with pytest.raises(ValueError):
        builder.run(-1)


def test_ring_distance_is_symmetric_and_bounded():
    distance = RingDistance()
    assert distance("a", "b") == distance("b", "a")
    assert distance("a", "a") == 0
    assert 0 <= distance("a", "b") <= RingDistance.SPACE // 2


def test_neighbors_never_include_self(healthy):
    result = TopologyBuilder(healthy.engine, k=4).run(8)
    for node_id, neighbors in result.neighbors.items():
        assert node_id not in neighbors
        assert len(neighbors) <= 4


def test_ring_converges_on_healthy_overlay(healthy):
    """The §I overlay-construction application: with live uniform
    views feeding the candidate stream, nodes find their true ring
    neighbors within a few rounds."""
    distance = RingDistance()
    builder = TopologyBuilder(healthy.engine, k=4, distance=distance)
    # Interleave proximity rounds with overlay cycles so the random
    # candidate stream keeps refreshing, as a real deployment would.
    for _ in range(6):
        healthy.run(1)
        result = builder.run(1)
    result = builder.run(4)
    assert result.ring_accuracy(distance) > 0.9


def test_more_rounds_never_hurt_accuracy(healthy):
    distance = RingDistance()
    builder = TopologyBuilder(healthy.engine, k=4, distance=distance)
    early = builder.run(2).ring_accuracy(distance)
    late = builder.run(8).ring_accuracy(distance)
    assert late >= early - 0.05


def test_zero_rounds_yields_empty_topology(healthy):
    result = TopologyBuilder(healthy.engine, k=4).run(0)
    assert result.rounds == 0
    assert all(not neighbors for neighbors in result.neighbors.values())


def test_honest_only_excludes_attackers():
    overlay = build_secure_overlay(
        n=60,
        config=SecureCyclonConfig(view_length=8, swap_length=3),
        malicious=6,
        attack_start=10_000,
        seed=142,
    )
    overlay.run(10)
    result = TopologyBuilder(overlay.engine, k=3).run(5)
    malicious = overlay.engine.malicious_ids
    assert not (set(result.neighbors) & malicious)
    for neighbors in result.neighbors.values():
        assert not (set(neighbors) & malicious)
