"""Extended aggregation tests: attack impact and configuration edges."""

import pytest

from repro.core.config import SecureCyclonConfig
from repro.experiments.scenarios import build_secure_overlay
from repro.gossip.aggregation import push_pull_average


@pytest.fixture(scope="module")
def healthy():
    overlay = build_secure_overlay(
        n=100,
        config=SecureCyclonConfig(view_length=10, swap_length=3),
        seed=121,
    )
    overlay.run(15)
    return overlay


def test_variance_decays_monotonically_in_aggregate(healthy):
    values = {
        node_id: float(index)
        for index, node_id in enumerate(healthy.engine.alive_ids())
    }
    result = push_pull_average(healthy.engine, values, rounds=15)
    variance = result.variance_per_round
    assert variance[-1] < variance[0] / 100  # exponential decay


def test_zero_rounds_returns_inputs(healthy):
    values = {
        node_id: 1.0 for node_id in healthy.engine.alive_ids()
    }
    result = push_pull_average(healthy.engine, values, rounds=0)
    assert result.max_error() == 0.0


def test_missing_inputs_default_to_zero(healthy):
    some = healthy.engine.alive_ids()[:10]
    values = {node_id: 10.0 for node_id in some}
    result = push_pull_average(healthy.engine, values, rounds=20)
    expected_mean = 10.0 * len(some) / len(healthy.engine.nodes)
    assert result.true_mean == pytest.approx(expected_mean)


def test_refusing_adversary_slows_but_does_not_bias():
    """Malicious nodes that refuse to aggregate shrink the participant
    set but cannot shift the honest mean (honest_only=True)."""
    overlay = build_secure_overlay(
        n=100,
        config=SecureCyclonConfig(view_length=10, swap_length=3),
        malicious=20,
        attack_start=10_000,  # passive: just refuse aggregation
        seed=122,
    )
    overlay.run(15)
    values = {
        node_id: float(index)
        for index, node_id in enumerate(overlay.engine.alive_ids())
    }
    result = push_pull_average(
        overlay.engine, values, rounds=25, honest_only=True
    )
    honest = overlay.engine.legit_ids
    honest_mean = sum(values[node_id] for node_id in honest) / len(honest)
    assert result.true_mean == pytest.approx(honest_mean)
    assert result.max_error() < 1.0


def test_all_equal_inputs_stay_equal(healthy):
    values = {node_id: 42.0 for node_id in healthy.engine.alive_ids()}
    result = push_pull_average(healthy.engine, values, rounds=10)
    assert result.max_error() < 1e-9
