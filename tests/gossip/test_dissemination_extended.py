"""Extended dissemination tests: fanout, flooding model cross-check,
per-round coverage, and behaviour with the attack defeated."""

import pytest

from repro.analysis.flooding import flood_rounds_to_cover
from repro.core.config import SecureCyclonConfig
from repro.experiments.scenarios import build_secure_overlay
from repro.gossip.dissemination import disseminate


@pytest.fixture(scope="module")
def healthy():
    overlay = build_secure_overlay(
        n=120,
        config=SecureCyclonConfig(view_length=12, swap_length=3),
        seed=111,
    )
    overlay.run(15)
    return overlay


def test_coverage_grows_monotonically(healthy):
    origin = healthy.engine.alive_ids()[0]
    result = disseminate(healthy.engine, origin, fanout=3)
    coverage = result.per_round_coverage
    assert coverage == sorted(coverage)


def test_higher_fanout_is_never_slower(healthy):
    origin = healthy.engine.alive_ids()[0]
    slow = disseminate(healthy.engine, origin, fanout=1, max_rounds=40)
    fast = disseminate(healthy.engine, origin, fanout=6, max_rounds=40)
    assert fast.rounds <= slow.rounds
    assert fast.coverage(120) >= 0.99


def test_rounds_match_epidemic_model(healthy):
    """The measured broadcast should finish within a small factor of
    the mean-field push model in repro.analysis.flooding."""
    origin = healthy.engine.alive_ids()[0]
    fanout = 4
    result = disseminate(healthy.engine, origin, fanout=fanout)
    predicted = flood_rounds_to_cover(120, fanout)
    assert result.coverage(120) > 0.99
    assert result.rounds <= 3 * predicted + 2


def test_defeated_attack_restores_dissemination():
    """After SecureCyclon purges the hub party, broadcasts reach every
    honest node again — the application-level payoff of Fig 5."""
    overlay = build_secure_overlay(
        n=120,
        config=SecureCyclonConfig(view_length=12, swap_length=3),
        malicious=12,
        attack_start=10,
        seed=112,
    )
    overlay.run(45)  # attack + purge + healing
    engine = overlay.engine
    # Pick the origin from the insertion-ordered alive list, not the
    # legit-id *set*: set iteration order varies with PYTHONHASHSEED,
    # which made this test flake across processes.
    origin = next(
        nid for nid in engine.alive_ids() if nid in engine.legit_ids
    )
    result = disseminate(engine, origin, fanout=3)
    honest = engine.legit_ids
    assert len(result.reached & honest) / len(honest) > 0.95


def test_rounds_capped_by_max_rounds(healthy):
    origin = healthy.engine.alive_ids()[0]
    result = disseminate(healthy.engine, origin, fanout=1, max_rounds=2)
    assert result.rounds <= 2
    assert result.coverage(120) < 1.0
