"""Tests for partner-selection violation attackers."""

import pytest

from repro.adversary.partner import (
    CyclonPartnerViolationAttacker,
    SecurePartnerViolationAttacker,
)
from repro.core.config import SecureCyclonConfig
from repro.cyclon.config import CyclonConfig
from repro.experiments.scenarios import (
    build_cyclon_overlay,
    build_secure_overlay,
)
from repro.metrics.degree import indegree_counts


@pytest.fixture(scope="module")
def legacy_overlay():
    """Random-victim mode: violations spread across the population."""
    overlay = build_cyclon_overlay(
        n=120,
        config=CyclonConfig(view_length=10, swap_length=3),
        malicious=6,
        attack_start=10,
        seed=23,
        attacker_cls=CyclonPartnerViolationAttacker,
    )
    overlay.run(60)
    return overlay


@pytest.fixture(scope="module")
def targeted_overlay():
    """Targeted mode: all attackers converge on a single victim."""
    overlay = build_cyclon_overlay(
        n=120,
        config=CyclonConfig(view_length=10, swap_length=3),
        malicious=6,
        attack_start=10,
        seed=23,
        attacker_cls=CyclonPartnerViolationAttacker,
    )
    malicious_ids = {node.node_id for node in overlay.malicious_nodes}
    target = next(
        node_id for node_id in overlay.engine.nodes
        if node_id not in malicious_ids
    )
    overlay.coordinator.eclipse_target = target
    overlay.run(60)
    return overlay, target


@pytest.fixture(scope="module")
def secure_overlay():
    overlay = build_secure_overlay(
        n=120,
        config=SecureCyclonConfig(view_length=10, swap_length=3),
        malicious=6,
        attack_start=10,
        seed=23,
        attacker_cls=SecurePartnerViolationAttacker,
    )
    overlay.run(60)
    return overlay


def test_legacy_attack_forces_exchanges(legacy_overlay):
    forced = sum(n.exchanges_forced for n in legacy_overlay.malicious_nodes)
    assert forced > 0


def test_targeted_violations_monopolise_the_victim(targeted_overlay):
    """With every violator converging on one victim, each forced
    exchange drains s random victim entries and injects attacker
    content — the victim's neighbourhood is captured although the
    attackers hold no descriptor of it."""
    overlay, target = targeted_overlay
    victim = overlay.engine.nodes[target]
    malicious_ids = {n.node_id for n in overlay.malicious_nodes}
    in_view = [d.node_id for d in victim.view]
    assert in_view, "victim view should not be empty"
    malicious_share = sum(
        1 for node_id in in_view if node_id in malicious_ids
    ) / len(in_view)
    assert malicious_share >= 0.4


def test_untargeted_nodes_keep_healthy_views(targeted_overlay):
    """The targeted campaign leaves the rest of the overlay intact."""
    overlay, target = targeted_overlay
    malicious_ids = {n.node_id for n in overlay.malicious_nodes}
    shares = []
    for node in overlay.engine.legit_nodes():
        if node.node_id == target or len(node.view) == 0:
            continue
        in_view = [d.node_id for d in node.view]
        shares.append(
            sum(1 for nid in in_view if nid in malicious_ids) / len(in_view)
        )
    assert sum(shares) / len(shares) < 0.3


def test_secure_rejects_every_violation(secure_overlay):
    """§IV-A: no redemption token, no gossip — deterministically."""
    accepted = sum(n.accepted for n in secure_overlay.malicious_nodes)
    rejected = sum(n.rejections for n in secure_overlay.malicious_nodes)
    assert accepted == 0
    assert rejected > 0


def test_secure_attacker_gains_no_indegree(secure_overlay):
    counts = indegree_counts(secure_overlay.engine)
    malicious_ids = {n.node_id for n in secure_overlay.malicious_nodes}
    attacker_mean = sum(counts.get(m, 0) for m in malicious_ids) / len(
        malicious_ids
    )
    honest = [
        count for node_id, count in counts.items()
        if node_id not in malicious_ids
    ]
    honest_mean = sum(honest) / len(honest)
    # Post-attack the violators stop minting fresh links entirely, so
    # their standing descriptors decay; they certainly never exceed
    # the honest equilibrium.
    assert attacker_mean <= honest_mean * 1.1


def test_attackers_flagged_malicious(legacy_overlay, secure_overlay):
    assert all(n.is_malicious for n in legacy_overlay.malicious_nodes)
    assert all(n.is_malicious for n in secure_overlay.malicious_nodes)
