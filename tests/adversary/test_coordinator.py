"""Unit tests for the malicious coordinator."""

import random

import pytest

from repro.adversary.coordinator import MaliciousCoordinator
from repro.core.chain import compare_chains
from repro.core.descriptor import verify_descriptor
from repro.sim.network import NetworkAddress


@pytest.fixture
def coordinator(keypairs, addresses):
    coord = MaliciousCoordinator(attack_start_cycle=10, rng=random.Random(0))
    for keypair, address in zip(keypairs[:3], addresses[:3]):
        coord.register_member(keypair, address)
    coord.note_legit_population([keypairs[3].public, keypairs[4].public])
    return coord


def test_attack_schedule(coordinator):
    assert not coordinator.is_attacking(9)
    assert coordinator.is_attacking(10)
    assert coordinator.is_attacking(99)


def test_membership(coordinator, keypairs):
    assert coordinator.is_member(keypairs[0].public)
    assert not coordinator.is_member(keypairs[4].public)
    assert len(coordinator.members()) == 3


def test_random_victim_is_legit(coordinator, keypairs):
    legit = {keypairs[3].public, keypairs[4].public}
    for _ in range(20):
        assert coordinator.random_victim() in legit


def test_pool_contribution_and_fake_views(coordinator, keypairs, registry):
    member = keypairs[0].public
    coordinator.contribute_fresh(member, timestamp=100.0)
    assert coordinator.pool_size() == 1
    fakes = coordinator.fake_view(4)
    assert len(fakes) == 4
    for fake in fakes:
        assert coordinator.is_member(fake.creator)
        assert verify_descriptor(fake, registry)
    # Copies of the same pool descriptor are mutually consistent: no
    # cloning proof can be built from the fake view alone.
    assert compare_chains(fakes[0], fakes[1]).relation.name == "EQUAL"


def test_fabricated_transfers_fork_at_a_member(
    coordinator, keypairs, registry
):
    member = keypairs[0].public
    coordinator.contribute_fresh(member, timestamp=100.0)
    victim_a = keypairs[3].public
    victim_b = keypairs[4].public
    t_a = coordinator.fabricate_transfer(keypairs[1].public, victim_a)
    t_b = coordinator.fabricate_transfer(keypairs[2].public, victim_b)
    assert verify_descriptor(t_a, registry)
    assert verify_descriptor(t_b, registry)
    assert t_a.current_owner == victim_a
    assert t_b.current_owner == victim_b
    comparison = compare_chains(t_a, t_b)
    # The double transfer forks at some colluding member — exactly the
    # provable cloning SecureCyclon catches.
    assert comparison.is_violation
    assert coordinator.is_member(comparison.culprit)


def test_fabricate_with_empty_pool_returns_none(keypairs, addresses):
    coord = MaliciousCoordinator(attack_start_cycle=0, rng=random.Random(0))
    coord.register_member(keypairs[0], addresses[0])
    assert coord.fabricate_transfer(keypairs[0].public, keypairs[1].public) is None
    assert coord.fake_view(3) == []
