"""Tests for the replay attacker (already-redeemed tokens)."""

import pytest

from repro.adversary.replay import ReplayAttacker
from repro.core.config import SecureCyclonConfig
from repro.experiments.scenarios import build_secure_overlay


@pytest.fixture(scope="module")
def replay_overlay():
    overlay = build_secure_overlay(
        n=100,
        config=SecureCyclonConfig(view_length=10, swap_length=3),
        malicious=5,
        attack_start=15,
        seed=29,
        attacker_cls=ReplayAttacker,
    )
    overlay.run(60)
    return overlay


def test_replays_are_attempted(replay_overlay):
    attempts = sum(
        node.replays_attempted for node in replay_overlay.malicious_nodes
    )
    assert attempts > 0


def test_no_replay_is_ever_accepted(replay_overlay):
    """DESIGN.md decision 6: creators remember spent timestamps."""
    accepted = sum(
        node.replays_accepted for node in replay_overlay.malicious_nodes
    )
    assert accepted == 0


def test_replays_are_rejected_not_dropped(replay_overlay):
    rejected = sum(
        node.replays_rejected for node in replay_overlay.malicious_nodes
    )
    attempts = sum(
        node.replays_attempted for node in replay_overlay.malicious_nodes
    )
    assert rejected == attempts


def test_overlay_survives_replay_attack(replay_overlay):
    """Replay spam costs honest nodes nothing: views stay populated."""
    for node in replay_overlay.engine.legit_nodes():
        assert len(node.view) >= node.config.view_length // 2
