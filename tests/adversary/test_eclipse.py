"""Behavioural tests for the targeted eclipse attacker."""

import pytest

from repro.adversary.eclipse import (
    EclipseAttacker,
    eclipse_pressure,
    make_eclipse_coordinator,
)
from repro.core.config import SecureCyclonConfig
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.links import blacklisted_malicious_fraction


def build_campaign(seed=51, attack_start=10):
    overlay = build_secure_overlay(
        n=100,
        config=SecureCyclonConfig(view_length=10, swap_length=3),
        malicious=15,
        attack_start=attack_start,
        seed=seed,
        attacker_cls=EclipseAttacker,
    )
    target = sorted(overlay.engine.legit_ids)[0]
    overlay.coordinator.eclipse_target = target
    return overlay, target


def test_without_target_degrades_to_hub_behaviour():
    overlay = build_secure_overlay(
        n=60,
        config=SecureCyclonConfig(view_length=8, swap_length=3),
        malicious=8,
        attack_start=5,
        seed=52,
        attacker_cls=EclipseAttacker,
    )
    # No eclipse_target set: behaves like the hub attack and is purged.
    overlay.run(40)
    assert blacklisted_malicious_fraction(overlay.engine) > 0.9


def test_campaign_is_blunted_and_party_exposed():
    """The extension finding: a targeted eclipse needs cloned tokens to
    sustain pressure, so the victim's own sample cache exposes the
    party within a few cycles — pressure never rises much above the
    attackers' baseline population share (15 %)."""
    overlay, target = build_campaign()
    pressures = []
    for _ in range(10):
        overlay.run(5)
        pressures.append(eclipse_pressure(overlay.engine, target))
    assert max(pressures) < 0.6  # never close to a full eclipse
    assert blacklisted_malicious_fraction(overlay.engine) > 0.8
    assert pressures[-1] < 0.1  # the victim's view recovers fully


def test_make_eclipse_coordinator():
    import random

    coordinator = make_eclipse_coordinator(5, random.Random(0), target="t")
    assert coordinator.eclipse_target == "t"
    assert coordinator.attack_start_cycle == 5


def test_pressure_of_unknown_target_is_zero():
    overlay, _ = build_campaign()
    assert eclipse_pressure(overlay.engine, "ghost") == 0.0
