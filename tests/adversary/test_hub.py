"""Behavioural tests for the hub attackers (both protocols)."""

from repro.core.config import SecureCyclonConfig
from repro.cyclon.config import CyclonConfig
from repro.experiments.scenarios import build_cyclon_overlay, build_secure_overlay
from repro.metrics.links import (
    blacklisted_malicious_fraction,
    malicious_link_fraction,
)


def test_cyclon_attacker_is_honest_before_attack():
    overlay = build_cyclon_overlay(
        n=60,
        config=CyclonConfig(view_length=8, swap_length=3),
        malicious=8,
        attack_start=1000,  # never starts
        seed=1,
    )
    overlay.run(20)
    fraction = malicious_link_fraction(overlay.engine)
    # Pre-attack, malicious representation stays near its population
    # share (8/60 ≈ 13%).
    assert fraction < 0.35


def test_cyclon_attacker_takes_over_after_attack():
    overlay = build_cyclon_overlay(
        n=80,
        config=CyclonConfig(view_length=10, swap_length=3),
        malicious=10,
        attack_start=10,
        seed=1,
    )
    overlay.run(80)
    assert malicious_link_fraction(overlay.engine) > 0.9


def test_secure_attacker_is_purged():
    overlay = build_secure_overlay(
        n=80,
        config=SecureCyclonConfig(view_length=10, swap_length=3),
        malicious=10,
        attack_start=10,
        seed=1,
    )
    overlay.run(45)
    assert blacklisted_malicious_fraction(overlay.engine) > 0.9
    assert malicious_link_fraction(overlay.engine) < 0.05


def test_secure_attacker_not_blacklisted_before_attack():
    overlay = build_secure_overlay(
        n=60,
        config=SecureCyclonConfig(view_length=8, swap_length=3),
        malicious=6,
        attack_start=1000,
        seed=1,
    )
    overlay.run(15)
    assert blacklisted_malicious_fraction(overlay.engine) == 0.0
    # And no violations were ever found against honest behaviour.
    assert overlay.engine.trace.count("secure.violation_found") == 0
