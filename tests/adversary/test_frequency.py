"""Behavioural tests for the frequency attacker."""

import pytest

from repro.adversary.frequency import FrequencyAttacker
from repro.core.config import SecureCyclonConfig
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.links import blacklisted_malicious_fraction


def test_burst_must_be_at_least_two(keypairs):
    import random

    from repro.adversary.coordinator import MaliciousCoordinator
    from repro.sim.clock import SimClock
    from repro.sim.network import NetworkAddress

    with pytest.raises(ValueError):
        FrequencyAttacker(
            keypair=keypairs[0],
            address=NetworkAddress(host=1, port=1),
            config=SecureCyclonConfig(),
            clock=SimClock(),
            registry=None,
            rng=random.Random(0),
            coordinator=MaliciousCoordinator(0, random.Random(0)),
            burst=1,
        )


def test_over_minting_is_provably_caught():
    overlay = build_secure_overlay(
        n=80,
        config=SecureCyclonConfig(view_length=10, swap_length=3),
        malicious=4,
        attack_start=10,
        seed=6,
        attacker_cls=FrequencyAttacker,
        attacker_kwargs={"burst": 3},
    )
    overlay.run(30)
    assert blacklisted_malicious_fraction(overlay.engine) == 1.0
    # Frequency proofs, specifically.
    kinds = {
        event.detail.get("proof_kind")
        for event in overlay.engine.trace.of_kind("secure.blacklisted")
    }
    assert "frequency" in kinds


def test_honest_before_attack():
    overlay = build_secure_overlay(
        n=60,
        config=SecureCyclonConfig(view_length=8, swap_length=3),
        malicious=3,
        attack_start=1000,
        seed=6,
        attacker_cls=FrequencyAttacker,
        attacker_kwargs={"burst": 4},
    )
    overlay.run(15)
    assert blacklisted_malicious_fraction(overlay.engine) == 0.0
