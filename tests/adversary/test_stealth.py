"""Tests for the rule-abiding stealth-bias attacker."""

import pytest

from repro.adversary.stealth import StealthBiasAttacker
from repro.core.config import SecureCyclonConfig
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.links import malicious_link_fraction


@pytest.fixture(scope="module")
def stealth_overlay():
    overlay = build_secure_overlay(
        n=150,
        config=SecureCyclonConfig(view_length=12, swap_length=3),
        malicious=15,  # 10 % of the population
        attack_start=10,
        seed=17,
        attacker_cls=StealthBiasAttacker,
    )
    overlay.run(60)
    return overlay


def test_attackers_report_malicious(stealth_overlay):
    assert all(node.is_malicious for node in stealth_overlay.malicious_nodes)


def test_no_attacker_is_ever_blacklisted(stealth_overlay):
    """The attacker never violates, so no proof can name it."""
    malicious_ids = {node.node_id for node in stealth_overlay.malicious_nodes}
    for node in stealth_overlay.engine.legit_nodes():
        assert not (set(node.blacklist.members()) & malicious_ids)


def test_bias_is_bounded_by_token_supply(stealth_overlay):
    """Rule-abiding bias cannot approach the Fig 3 takeover: the
    malicious share stays within a small factor of the population
    share (10 %), far from 100 %."""
    share = malicious_link_fraction(stealth_overlay.engine)
    assert share < 0.35


def test_bias_exceeds_population_share(stealth_overlay):
    """The bias is real: preferential forwarding lifts the malicious
    share above the honest-equilibrium baseline."""
    share = malicious_link_fraction(stealth_overlay.engine)
    assert share > 0.10


def test_attacker_ships_colleague_descriptors(stealth_overlay):
    shipped = sum(
        node.shipped_malicious for node in stealth_overlay.malicious_nodes
    )
    assert shipped > 0


def test_overlay_stays_healthy(stealth_overlay):
    """Honest views keep functioning (no depletion side effect)."""
    for node in stealth_overlay.engine.legit_nodes():
        assert len(node.view) > 0


def test_proof_swallowing_is_silent(stealth_overlay):
    """receive_push drops floods without raising."""
    attacker = stealth_overlay.malicious_nodes[0]
    attacker.receive_push("whoever", object())
