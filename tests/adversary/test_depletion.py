"""Behavioural tests for the link-depletion attacker (Fig 6)."""

import pytest

from repro.adversary.depletion import DepletionAttacker
from repro.core.config import SecureCyclonConfig
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.links import non_swappable_fraction, view_fill_fraction


def run_depletion(tit_for_tat, malicious, n=120, cycles=50, swap_length=5):
    overlay = build_secure_overlay(
        n=n,
        config=SecureCyclonConfig(
            view_length=12, swap_length=swap_length, tit_for_tat=tit_for_tat
        ),
        malicious=malicious,
        attack_start=15,
        seed=2,
        attacker_cls=DepletionAttacker,
    )
    overlay.run(cycles)
    return overlay


def test_bulk_mode_depletes_views():
    overlay = run_depletion(tit_for_tat=False, malicious=60)
    assert non_swappable_fraction(overlay.engine) > 0.5


def test_tit_for_tat_bounds_depletion():
    drained = run_depletion(tit_for_tat=False, malicious=60)
    protected = run_depletion(tit_for_tat=True, malicious=60)
    assert non_swappable_fraction(protected.engine) < non_swappable_fraction(
        drained.engine
    )
    assert view_fill_fraction(protected.engine) > view_fill_fraction(
        drained.engine
    )


def test_small_malicious_share_is_negligible_with_tft():
    overlay = run_depletion(tit_for_tat=True, malicious=3)
    assert non_swappable_fraction(overlay.engine) < 0.1


def test_depletion_attacker_is_honest_before_attack():
    overlay = build_secure_overlay(
        n=80,
        config=SecureCyclonConfig(view_length=10, swap_length=3),
        malicious=40,
        attack_start=1000,
        seed=2,
        attacker_cls=DepletionAttacker,
    )
    overlay.run(15)
    assert non_swappable_fraction(overlay.engine) < 0.05
    assert view_fill_fraction(overlay.engine) > 0.9
