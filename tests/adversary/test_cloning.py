"""Behavioural tests for the cloning attacker (Fig 7)."""

from repro.adversary.cloning import CloningAttacker
from repro.core.config import SecureCyclonConfig
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.detection import (
    detected_identities,
    overall_detection_ratio,
)


def run_cloning(cache_cycles, cycles=60, n=120):
    overlay = build_secure_overlay(
        n=n,
        config=SecureCyclonConfig(
            view_length=12,
            swap_length=3,
            redemption_cache_cycles=cache_cycles,
            blacklist_enabled=False,
        ),
        malicious=12,
        attack_start=8,
        seed=4,
        attacker_cls=CloningAttacker,
        attacker_kwargs={"age_range": (2, 14)},
    )
    overlay.run(cycles)
    events = [
        event
        for node in overlay.malicious_nodes
        for event in node.clone_events
    ]
    detected = detected_identities(overlay.engine.trace)
    return events, detected


def test_clone_events_are_produced():
    events, _ = run_cloning(cache_cycles=5)
    assert len(events) > 20
    ages = {event.age_at_duplication for event in events}
    assert len(ages) > 3  # coverage across the age range


def test_some_clones_are_detected():
    events, detected = run_cloning(cache_cycles=5)
    ratio = overall_detection_ratio(events, detected)
    assert ratio > 0.2


def test_redemption_cache_helps_detection():
    events_without, detected_without = run_cloning(cache_cycles=0)
    events_with, detected_with = run_cloning(cache_cycles=10)
    ratio_without = overall_detection_ratio(events_without, detected_without)
    ratio_with = overall_detection_ratio(events_with, detected_with)
    assert ratio_with >= ratio_without


def test_attacker_records_ages_within_plausible_bounds():
    events, _ = run_cloning(cache_cycles=5)
    for event in events:
        assert 0 <= event.age_at_duplication <= 40
        assert event.cycle >= 8  # never before the attack starts
