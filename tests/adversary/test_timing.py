"""The timing-adversary suite: stalls, induced timeouts, and the hook.

Covers three layers: the :class:`TimingStrategy` shaping rules in
isolation, the :class:`~repro.sim.latency.LinkTiming` hook's RNG
neutrality (registering attackers must not perturb honest legs), and
the end-to-end attacks on an event-runtime SecureCyclon overlay.
"""

import random

import pytest

from repro.adversary.timing import (
    SilentToVictims,
    StallAttacker,
    StallReplies,
    TimeoutInducer,
)
from repro.core.config import SecureCyclonConfig
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.links import view_fill_fraction
from repro.sim.latency import ConstantLatency, LinkTiming, UniformLatency
from repro.sim.scheduler import EventScheduler


def _overlay(attacker_cls, *, n=30, timeout_s=5.0, margin=None, cycles_kw=None):
    kwargs = {}
    if margin is not None:
        kwargs["margin_s"] = margin
    return build_secure_overlay(
        n=n,
        config=SecureCyclonConfig(view_length=6, swap_length=3),
        malicious=3,
        attack_start=0,
        seed=11,
        attacker_cls=attacker_cls,
        attacker_kwargs=kwargs,
        runtime=EventScheduler(
            latency=ConstantLatency(delay_s=0.2), timeout_s=timeout_s
        ),
    )


# ----------------------------------------------------------------------
# strategy shaping rules
# ----------------------------------------------------------------------


def test_stall_strategy_holds_replies_to_victims_only():
    strategy = StallReplies(spare=lambda dst: dst == "colleague", margin_s=1.0)
    assert strategy.shape(0.1, "me", "victim", "reply", 5.0) == 4.0
    assert strategy.shape(0.1, "me", "colleague", "reply", 5.0) == 0.1
    # Requests and pushes leave at the honest sample.
    assert strategy.shape(0.1, "me", "victim", "request", 5.0) == 0.1
    assert strategy.shape(0.1, "me", "victim", "push", 5.0) == 0.1
    # Without a timeout there is no budget to burn.
    assert strategy.shape(0.1, "me", "victim", "reply", None) == 0.1


def test_stall_strategy_never_shortens_a_leg():
    strategy = StallReplies(spare=lambda dst: False, margin_s=1.0)
    assert strategy.shape(9.0, "me", "victim", "reply", 5.0) == 9.0


def test_stall_strategy_respects_attack_gate():
    gate = {"on": False}
    strategy = StallReplies(
        spare=lambda dst: False, margin_s=1.0, active=lambda: gate["on"]
    )
    assert strategy.shape(0.1, "me", "victim", "reply", 5.0) == 0.1
    gate["on"] = True
    assert strategy.shape(0.1, "me", "victim", "reply", 5.0) == 4.0


def test_silence_strategy_prices_replies_past_every_deadline():
    strategy = SilentToVictims(spare=lambda dst: False, silence_factor=4.0)
    assert strategy.shape(0.1, "me", "victim", "reply", 5.0) == 20.0
    assert strategy.shape(0.1, "me", "victim", "request", 5.0) == 0.1
    assert strategy.shape(0.1, "me", "victim", "reply", None) == 0.1
    with pytest.raises(ValueError):
        SilentToVictims(spare=lambda dst: False, silence_factor=1.0)


# ----------------------------------------------------------------------
# the LinkTiming hook
# ----------------------------------------------------------------------


def test_registering_a_strategy_does_not_perturb_honest_legs():
    """The honest sample is always drawn first, so a run with attackers
    consumes the latency stream identically to one without."""
    model = UniformLatency(low_s=0.0, high_s=1.0)
    plain = LinkTiming(model=model, rng=random.Random(5), timeout_s=4.0)
    hooked = LinkTiming(model=model, rng=random.Random(5), timeout_s=4.0)
    hooked.register_strategy("attacker", StallReplies(spare=lambda d: False))
    legs = [("a", "b", "request"), ("b", "a", "reply"), ("c", "d", "push")]
    for src, dst, leg in legs * 10:
        assert plain.sample(src, dst, leg) == hooked.sample(src, dst, leg)


def test_strategy_shapes_only_its_senders_legs():
    timing = LinkTiming(
        model=ConstantLatency(0.1), rng=random.Random(1), timeout_s=5.0
    )
    timing.register_strategy(
        "attacker", StallReplies(spare=lambda d: False, margin_s=1.0)
    )
    assert timing.sample("attacker", "victim", leg="reply") == 4.0
    assert timing.sample("victim", "attacker", leg="reply") == 0.1
    timing.unregister_strategy("attacker")
    assert timing.sample("attacker", "victim", leg="reply") == 0.1


def test_strategy_registered_after_attach_builds_link_timing():
    """A scheduler attached without any link timing (no latency, no
    timeout) still honors a strategy registered later: timing is built
    on the spot and installed on the network."""
    from repro.experiments.scenarios import build_secure_overlay as build

    overlay = build(
        n=8,
        config=SecureCyclonConfig(view_length=4, swap_length=2),
        seed=3,
        runtime=EventScheduler(),
    )
    overlay.run(1)  # attach happens here, with no timing needed yet
    scheduler = overlay.engine.scheduler
    assert scheduler._timing is None
    recorder = []

    class Probe:
        def shape(self, base_s, src, dst, leg, timeout_s):
            recorder.append((src, dst, leg))
            return base_s

    sender = next(iter(overlay.engine.nodes))
    scheduler.register_timing_strategy(sender, Probe())
    assert scheduler._timing is not None
    assert overlay.engine.network._timing is scheduler._timing
    overlay.run(2)
    assert any(src == sender for src, _, _ in recorder)


# ----------------------------------------------------------------------
# end-to-end attacks
# ----------------------------------------------------------------------


def test_stall_attacker_burns_budget_without_failing_dialogues():
    """Replies held just under the deadline: no timeouts, but the
    network-wide waiting time multiplies against the honest control."""
    control = _overlay(StallAttacker, margin=1.0)
    # Control: same overlay, attack never starts (attack_start beyond run).
    control.coordinator.attack_start_cycle = 10**9
    control.run(6)
    honest_wait = control.engine.network.dialogue_seconds

    attacked = _overlay(StallAttacker, margin=1.0)
    attacked.run(6)
    stalled_wait = attacked.engine.network.dialogue_seconds

    assert attacked.engine.trace.count("secure.open_timeout") == 0
    assert stalled_wait > honest_wait * 1.5
    # Content-honest: nobody can ever prove anything against a staller.
    assert attacked.engine.trace.count("secure.blacklisted") == 0


def test_stall_attacker_at_the_boundary_forces_case2_timeouts():
    """A non-positive margin reproduces the §V-A spent-descriptor
    asymmetry on demand: delivered=True timeouts, on every dialogue."""
    overlay = _overlay(StallAttacker, margin=-0.01)
    overlay.run(6)
    timeouts = overlay.engine.trace.of_kind("secure.open_timeout")
    assert timeouts
    assert all(event.detail["delivered"] is True for event in timeouts)
    assert overlay.engine.trace.count("secure.blacklisted") == 0


def test_timeout_inducer_depletes_victims_and_answers_colleagues():
    overlay = _overlay(TimeoutInducer)
    overlay.run(8)
    engine = overlay.engine
    timeouts = engine.trace.of_kind("secure.open_timeout")
    assert timeouts
    # Victims' redemptions were processed before the silence: their
    # tokens are spent on both sides (the depletion-by-timing variant).
    assert all(event.detail["delivered"] is True for event in timeouts)
    # Attacker-initiated dialogues with honest partners still work:
    # the inducer gossips honestly as an initiator to harvest tokens.
    inducer_views = [len(node.view) for node in overlay.malicious_nodes]
    assert any(length > 0 for length in inducer_views)
    # Silence is not a violation.
    assert engine.trace.count("secure.blacklisted") == 0
    # Honest views end up below the no-attack control's fill.
    control = _overlay(TimeoutInducer)
    control.coordinator.attack_start_cycle = 10**9
    control.run(8)
    assert view_fill_fraction(engine) < view_fill_fraction(control.engine)
