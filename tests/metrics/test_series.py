"""Unit tests for series helpers."""

import pytest

from repro.metrics.series import Series, mean, percentile


def test_mean():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert mean([]) == 0.0


def test_percentile_interpolates():
    values = [0.0, 10.0, 20.0, 30.0]
    assert percentile(values, 0.0) == 0.0
    assert percentile(values, 1.0) == 30.0
    assert percentile(values, 0.5) == 15.0
    assert percentile([], 0.5) == 0.0
    assert percentile([7.0], 0.9) == 7.0


def test_series_accessors():
    series = Series(label="x")
    series.append(0, 1.0)
    series.append(10, 3.0)
    series.append(20, 2.0)
    assert series.xs == [0, 10, 20]
    assert series.ys == [1.0, 3.0, 2.0]
    assert series.max_y() == 3.0
    assert series.min_y() == 1.0
    assert series.final_y() == 2.0
    assert series.y_at(11) == 3.0
    assert series.window_mean(5, 25) == 2.5


def test_empty_series():
    series = Series(label="empty")
    assert series.max_y() == 0.0
    assert series.final_y() == 0.0
    assert series.y_at(5) == 0.0
    assert series.window_mean(0, 10) == 0.0
