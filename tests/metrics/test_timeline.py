"""Tests for the attack-timeline reporter."""

import pytest

from repro.core.config import SecureCyclonConfig
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.timeline import attack_timeline


@pytest.fixture(scope="module")
def attacked():
    overlay = build_secure_overlay(
        n=60,
        config=SecureCyclonConfig(view_length=8, swap_length=3),
        malicious=8,
        attack_start=8,
        seed=151,
    )
    overlay.run(30)
    return overlay


@pytest.fixture(scope="module")
def honest():
    overlay = build_secure_overlay(
        n=50,
        config=SecureCyclonConfig(view_length=8, swap_length=3),
        seed=152,
    )
    overlay.run(20)
    return overlay


def test_milestones_exist_under_attack(attacked):
    timeline = attack_timeline(attacked.engine)
    assert timeline.first_violation_found is not None
    assert timeline.first_blacklisting is not None
    assert timeline.full_blacklist_cycle is not None
    assert timeline.violations_found > 0
    assert timeline.blacklist_adoptions > 0


def test_milestones_are_ordered(attacked):
    timeline = attack_timeline(attacked.engine)
    assert (
        timeline.first_violation_found
        <= timeline.first_blacklisting
        <= timeline.full_blacklist_cycle
    )


def test_attack_cannot_be_proven_before_it_starts(attacked):
    timeline = attack_timeline(attacked.engine)
    assert timeline.first_violation_found >= 8  # attack_start


def test_detection_kinds_are_counted(attacked):
    timeline = attack_timeline(attacked.engine)
    assert sum(timeline.detections_by_kind.values()) == (
        timeline.violations_found
    )
    assert "cloning" in timeline.detections_by_kind


def test_honest_run_has_empty_timeline(honest):
    timeline = attack_timeline(honest.engine)
    assert timeline.first_violation_found is None
    assert timeline.first_blacklisting is None
    assert timeline.full_blacklist_cycle is None
    assert timeline.violations_found == 0
    assert timeline.blacklist_adoptions == 0


def test_render_is_a_table(attacked):
    text = attack_timeline(attacked.engine).render(title="T")
    assert text.startswith("T\n")
    assert "first violation proven (cycle)" in text
    assert "detections: cloning" in text


def test_render_shows_dashes_for_missing(honest):
    text = attack_timeline(honest.engine).render()
    assert "-" in text
