"""Unit tests for indegree metrics."""

from repro.cyclon.config import CyclonConfig
from repro.experiments.scenarios import build_cyclon_overlay
from repro.metrics.degree import (
    indegree_counts,
    indegree_histogram,
    indegree_statistics,
)


def converged_overlay(n=100, view_length=8):
    overlay = build_cyclon_overlay(
        n=n,
        config=CyclonConfig(view_length=view_length, swap_length=3),
        seed=3,
    )
    overlay.run(25)
    return overlay


def test_counts_sum_to_total_links():
    overlay = converged_overlay()
    counts = indegree_counts(overlay.engine)
    total_links = sum(
        len(node.view) for node in overlay.engine.nodes.values()
    )
    assert sum(counts.values()) == total_links
    assert set(counts) == set(overlay.engine.nodes)


def test_histogram_matches_counts():
    overlay = converged_overlay()
    counts = indegree_counts(overlay.engine)
    histogram = dict(indegree_histogram(overlay.engine))
    assert sum(histogram.values()) == len(counts)
    for indegree, node_count in histogram.items():
        assert node_count == sum(
            1 for value in counts.values() if value == indegree
        )


def test_converged_indegrees_hug_the_outdegree():
    """The Fig 2 property: mean ≈ ℓ with small deviation."""
    overlay = converged_overlay(n=150, view_length=10)
    stats = indegree_statistics(overlay.engine)
    assert abs(stats["mean"] - 10) < 0.5
    assert stats["stddev"] < 4.0
    assert stats["min"] > 0  # no node is left behind


def test_empty_engine():
    from repro.sim.engine import Engine

    stats = indegree_statistics(Engine())
    assert stats == {"min": 0.0, "max": 0.0, "mean": 0.0, "stddev": 0.0}
