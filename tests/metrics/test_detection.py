"""Unit tests for detection-ratio analysis."""

from repro.adversary.cloning import CloneEvent
from repro.core.descriptor import DescriptorId
from repro.metrics.detection import (
    detected_identities,
    detection_ratio_by_age,
    overall_detection_ratio,
)
from repro.sim.trace import EventTrace


def identity(keypairs, index, stamp):
    return DescriptorId(creator=keypairs[index].public, timestamp=stamp)


def test_detected_identities_reads_trace(keypairs):
    trace = EventTrace()
    ident = identity(keypairs, 0, 1.0)
    trace.emit(3, "secure.violation_found", node="x", identity=ident)
    trace.emit(4, "secure.blacklisted", node="x")  # no identity field
    assert detected_identities(trace) == {ident}


def test_ratio_by_age_buckets(keypairs):
    detected = {identity(keypairs, 0, 1.0)}
    events = [
        CloneEvent(identity=identity(keypairs, 0, 1.0), age_at_duplication=2, cycle=5),
        CloneEvent(identity=identity(keypairs, 0, 2.0), age_at_duplication=2, cycle=6),
        CloneEvent(identity=identity(keypairs, 0, 3.0), age_at_duplication=4, cycle=7),
    ]
    rows = detection_ratio_by_age(events, detected, [2, 4, 6])
    assert rows[0] == (2, 0.5, 2)
    assert rows[1] == (4, 0.0, 1)
    assert rows[2] == (6, 0.0, 0)


def test_overall_ratio(keypairs):
    detected = {identity(keypairs, 0, 1.0)}
    events = [
        CloneEvent(identity=identity(keypairs, 0, 1.0), age_at_duplication=2, cycle=5),
        CloneEvent(identity=identity(keypairs, 0, 2.0), age_at_duplication=3, cycle=6),
    ]
    assert overall_detection_ratio(events, detected) == 0.5
    assert overall_detection_ratio([], detected) == 0.0
