"""Unit tests for link-composition metrics."""

from repro.core.config import SecureCyclonConfig
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.links import (
    blacklisted_malicious_fraction,
    malicious_link_fraction,
    non_swappable_fraction,
    view_fill_fraction,
    view_targets,
)


def test_honest_overlay_has_no_malicious_links():
    overlay = build_secure_overlay(
        n=40, config=SecureCyclonConfig(view_length=6, swap_length=3), seed=1
    )
    overlay.run(5)
    assert malicious_link_fraction(overlay.engine) == 0.0
    assert non_swappable_fraction(overlay.engine) == 0.0
    assert blacklisted_malicious_fraction(overlay.engine) == 0.0
    assert 0.9 <= view_fill_fraction(overlay.engine) <= 1.0


def test_malicious_fraction_counts_only_legit_views():
    overlay = build_secure_overlay(
        n=40,
        config=SecureCyclonConfig(view_length=6, swap_length=3),
        malicious=10,
        attack_start=1000,
        seed=1,
    )
    overlay.run(5)
    fraction = malicious_link_fraction(overlay.engine)
    # Pre-attack, representation tracks the population share (25%).
    assert 0.05 <= fraction <= 0.5


def test_view_targets_works_for_both_protocols():
    from repro.cyclon.config import CyclonConfig
    from repro.experiments.scenarios import build_cyclon_overlay

    secure = build_secure_overlay(
        n=20, config=SecureCyclonConfig(view_length=5, swap_length=3), seed=1
    )
    cyclon = build_cyclon_overlay(
        n=20, config=CyclonConfig(view_length=5, swap_length=3), seed=1
    )
    for overlay in (secure, cyclon):
        node = next(iter(overlay.engine.legit_nodes()))
        targets = view_targets(node)
        assert len(targets) == 5
        assert node.node_id not in targets


def test_empty_engine_metrics_are_zero():
    from repro.sim.engine import Engine

    engine = Engine()
    assert malicious_link_fraction(engine) == 0.0
    assert non_swappable_fraction(engine) == 0.0
    assert view_fill_fraction(engine) == 0.0
