"""Unit tests for overlay-graph statistics."""

from repro.core.config import SecureCyclonConfig
from repro.cyclon.config import CyclonConfig
from repro.experiments.scenarios import build_cyclon_overlay, build_secure_overlay
from repro.metrics.graphstats import (
    build_overlay_graph,
    eclipsed_fraction,
    largest_component_fraction,
    overlay_statistics,
)


def test_overlay_graph_edges_match_views():
    overlay = build_cyclon_overlay(
        n=30, config=CyclonConfig(view_length=5, swap_length=3), seed=2
    )
    overlay.run(5)
    graph = build_overlay_graph(overlay.engine)
    total_links = sum(len(n.view) for n in overlay.engine.nodes.values())
    assert graph.number_of_edges() == total_links
    assert graph.number_of_nodes() == 30


def test_converged_overlay_is_one_component():
    overlay = build_cyclon_overlay(
        n=60, config=CyclonConfig(view_length=6, swap_length=3), seed=2
    )
    overlay.run(20)
    assert largest_component_fraction(overlay.engine) == 1.0


def test_random_graph_like_statistics():
    overlay = build_cyclon_overlay(
        n=100, config=CyclonConfig(view_length=8, swap_length=3), seed=2
    )
    overlay.run(30)
    stats = overlay_statistics(overlay.engine)
    assert stats["nodes"] == 100
    assert stats["largest_component"] == 1.0
    # Random-graph-like: low clustering, short paths.
    assert stats["clustering"] < 0.4
    assert 1.0 < stats["mean_shortest_path_sample"] < 5.0


def test_eclipsed_fraction_zero_without_malicious():
    overlay = build_secure_overlay(
        n=30, config=SecureCyclonConfig(view_length=5, swap_length=3), seed=2
    )
    overlay.run(5)
    assert eclipsed_fraction(overlay.engine) == 0.0


def test_empty_engine_statistics():
    from repro.sim.engine import Engine

    stats = overlay_statistics(Engine())
    assert stats["nodes"] == 0.0
    assert largest_component_fraction(Engine()) == 0.0
