"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.plotting import GLYPHS, ascii_chart, chart_panel
from repro.metrics.series import Series


def make_series(label, points):
    series = Series(label=label)
    for x, y in points:
        series.append(x, y)
    return series


def test_empty_series_list_yields_placeholder():
    assert "(no data)" in ascii_chart([])


def test_series_without_points_is_skipped():
    chart = ascii_chart([Series(label="empty")])
    assert "(no data)" in chart


def test_title_is_first_line():
    series = make_series("a", [(0, 0.0), (10, 1.0)])
    chart = ascii_chart([series], title="Fig X")
    assert chart.splitlines()[0] == "Fig X"


def test_dimensions_match_request():
    series = make_series("a", [(0, 0.0), (10, 1.0)])
    chart = ascii_chart([series], width=40, height=8, title=None)
    lines = chart.splitlines()
    # height rows + axis + caption + legend
    assert len(lines) == 8 + 3
    plot_rows = lines[:8]
    assert all("|" in row for row in plot_rows)
    body = plot_rows[0].split("|", 1)[1]
    assert len(body) == 40


def test_each_series_gets_distinct_glyph():
    a = make_series("a", [(0, 0.1), (10, 0.2)])
    b = make_series("b", [(0, 0.8), (10, 0.9)])
    chart = ascii_chart([a, b])
    assert GLYPHS[0] in chart
    assert GLYPHS[1] in chart
    assert f"{GLYPHS[0]}=a" in chart
    assert f"{GLYPHS[1]}=b" in chart


def test_high_values_render_above_low_values():
    low = make_series("low", [(0, 0.0), (10, 0.0)])
    high = make_series("high", [(0, 1.0), (10, 1.0)])
    chart = ascii_chart([low, high], height=10)
    lines = [line.split("|", 1)[1] for line in chart.splitlines() if "|" in line]
    top_rows = "".join(lines[:3])
    bottom_rows = "".join(lines[-3:])
    assert GLYPHS[1] in top_rows  # high series near the top
    assert GLYPHS[0] in bottom_rows  # low series near the bottom


def test_y_axis_labels_show_range():
    series = make_series("a", [(0, 0.0), (10, 0.5)])
    chart = ascii_chart([series], y_scale=100.0)
    assert "50" in chart  # top-of-range label
    assert "0" in chart


def test_x_axis_caption_shows_extremes_and_label():
    series = make_series("a", [(5, 0.0), (95, 1.0)])
    chart = ascii_chart([series], x_label="time (cycles)")
    caption = chart.splitlines()[-2]
    assert caption.strip().startswith("5")
    assert caption.strip().endswith("95")
    assert "time (cycles)" in caption


def test_pinned_y_range_is_respected():
    series = make_series("a", [(0, 0.2), (10, 0.4)])
    chart = ascii_chart([series], y_min=0.0, y_max=100.0)
    assert "100" in chart.splitlines()[0]


def test_constant_series_does_not_crash():
    series = make_series("flat", [(0, 0.5), (1, 0.5), (2, 0.5)])
    chart = ascii_chart([series])
    assert "flat" in chart


def test_single_point_series():
    series = make_series("dot", [(3, 0.3)])
    chart = ascii_chart([series])
    assert GLYPHS[0] in chart


def test_more_series_than_glyphs_cycles():
    many = [
        make_series(f"s{i}", [(0, i / 20), (1, i / 20)]) for i in range(10)
    ]
    chart = ascii_chart(many)
    assert f"{GLYPHS[0]}=s0" in chart
    assert f"{GLYPHS[8 % len(GLYPHS)]}=s8" in chart


def test_chart_panel_prepends_blank_line():
    series = make_series("a", [(0, 0.0), (10, 1.0)])
    panel = chart_panel("panel title", [series])
    assert panel.startswith("\n")
    assert "panel title" in panel


def test_negative_values_with_explicit_floor():
    series = make_series("delta", [(0, -0.5), (10, 0.5)])
    chart = ascii_chart([series], y_min=-50.0, y_scale=100.0)
    assert "-50" in chart
