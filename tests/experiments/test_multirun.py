"""Tests for the seed-sweep helpers."""

import pytest

from repro.experiments.multirun import (
    ScalarSweep,
    aggregate_series,
    sweep_scalars,
)
from repro.metrics.series import Series


def make_series(label, ys):
    series = Series(label=label)
    for x, y in enumerate(ys):
        series.append(float(x), y)
    return series


def test_scalar_sweep_statistics():
    sweep = ScalarSweep(name="metric", values=[1.0, 2.0, 3.0])
    assert sweep.mean == 2.0
    assert sweep.min == 1.0
    assert sweep.max == 3.0
    assert sweep.std == pytest.approx(1.0)


def test_scalar_sweep_single_value_has_zero_std():
    sweep = ScalarSweep(name="m", values=[5.0])
    assert sweep.std == 0.0


def test_scalar_sweep_row_shape():
    sweep = ScalarSweep(name="m", values=[1.0, 3.0])
    name, mean, std, lo, hi = sweep.row()
    assert name == "m"
    assert mean == 2.0
    assert (lo, hi) == (1.0, 3.0)


def test_sweep_scalars_collects_across_seeds():
    def run(seed):
        return {"a": float(seed), "b": float(seed * 2)}

    sweeps = {s.name: s for s in sweep_scalars(run, seeds=[1, 2, 3])}
    assert sweeps["a"].values == [1.0, 2.0, 3.0]
    assert sweeps["b"].mean == 4.0


def test_sweep_scalars_requires_seeds():
    with pytest.raises(ValueError):
        sweep_scalars(lambda seed: {"a": 1.0}, seeds=[])


def test_sweep_scalars_rejects_inconsistent_keys():
    def run(seed):
        return {"a": 1.0} if seed == 1 else {"b": 1.0}

    with pytest.raises(ValueError):
        sweep_scalars(run, seeds=[1, 2])


def test_aggregate_series_envelope():
    runs = [
        make_series("r1", [0.0, 1.0, 2.0]),
        make_series("r2", [2.0, 1.0, 0.0]),
    ]
    envelope = aggregate_series(runs, label="agg")
    assert envelope["mean"].ys == [1.0, 1.0, 1.0]
    assert envelope["min"].ys == [0.0, 1.0, 0.0]
    assert envelope["max"].ys == [2.0, 1.0, 2.0]
    assert envelope["mean"].label == "agg"


def test_aggregate_series_rejects_mismatched_x():
    runs = [make_series("r1", [0.0, 1.0]), make_series("r2", [0.0, 1.0, 2.0])]
    with pytest.raises(ValueError):
        aggregate_series(runs)


def test_aggregate_series_requires_runs():
    with pytest.raises(ValueError):
        aggregate_series([])


def test_sweep_over_real_overlay_outcomes():
    """End-to-end: hub-attack recovery is robust across seeds."""
    from repro.core.config import SecureCyclonConfig
    from repro.experiments.scenarios import build_secure_overlay
    from repro.metrics.links import malicious_link_fraction

    def run(seed):
        overlay = build_secure_overlay(
            n=60,
            config=SecureCyclonConfig(view_length=8, swap_length=3),
            malicious=8,
            attack_start=8,
            seed=seed,
        )
        overlay.run(35)
        return {"final_malicious": malicious_link_fraction(overlay.engine)}

    (sweep,) = sweep_scalars(run, seeds=[101, 102, 103])
    assert sweep.max < 0.05  # every seed recovers
