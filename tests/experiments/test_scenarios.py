"""Unit tests for scenario builders and bootstrap."""

import random

import pytest

from repro.bootstrap import bootstrap_secure
from repro.core.config import SecureCyclonConfig
from repro.core.descriptor import verify_descriptor
from repro.cyclon.config import CyclonConfig
from repro.experiments.scenarios import build_cyclon_overlay, build_secure_overlay


def test_secure_bootstrap_views_are_owned_and_valid():
    overlay = build_secure_overlay(
        n=30, config=SecureCyclonConfig(view_length=5, swap_length=3), seed=5
    )
    for node in overlay.engine.nodes.values():
        assert len(node.view) == 5
        for entry in node.view:
            descriptor = entry.descriptor
            assert descriptor.current_owner == node.node_id
            assert verify_descriptor(descriptor, overlay.engine.registry)
            assert not entry.non_swappable


def test_secure_bootstrap_respects_frequency_invariant():
    """Backdated bootstrap mints must never trigger the frequency check."""
    overlay = build_secure_overlay(
        n=40, config=SecureCyclonConfig(view_length=6, swap_length=3), seed=5
    )
    overlay.run(10)
    assert overlay.engine.trace.count("secure.violation_found") == 0


def test_malicious_count_honoured():
    overlay = build_secure_overlay(
        n=30,
        config=SecureCyclonConfig(view_length=5, swap_length=3),
        malicious=7,
        seed=5,
    )
    assert len(overlay.engine.malicious_ids) == 7
    assert len(overlay.malicious_nodes) == 7
    assert len(overlay.coordinator.members()) == 7
    assert len(overlay.coordinator.legit_ids) == 23


def test_too_many_malicious_rejected():
    with pytest.raises(ValueError):
        build_cyclon_overlay(
            n=5,
            config=CyclonConfig(view_length=3, swap_length=2),
            malicious=6,
        )


def test_cyclon_bootstrap_fills_views():
    overlay = build_cyclon_overlay(
        n=30, config=CyclonConfig(view_length=5, swap_length=3), seed=5
    )
    for node in overlay.engine.nodes.values():
        assert len(node.view) == 5
        assert not node.view.contains_id(node.node_id)


def test_same_seed_reproduces_runs():
    def run(seed):
        overlay = build_secure_overlay(
            n=25,
            config=SecureCyclonConfig(view_length=5, swap_length=3),
            malicious=5,
            attack_start=5,
            seed=seed,
        )
        overlay.run(15)
        from repro.metrics.links import malicious_link_fraction

        return malicious_link_fraction(overlay.engine)

    assert run(7) == run(7)
    assert run(7) != run(8) or True  # different seeds usually differ
