"""Tests for the experiments command-line entry point."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


def test_every_figure_is_wired():
    assert set(EXPERIMENTS) == {
        "fig2",
        "fig3",
        "fig5",
        "fig6",
        "fig7",
        "netcost",
        "eclipse",
        "stealth",
        "violations",
        "churn",
        "loss",
        "latency",
        "timing_attack",
        "wire_faults",
        "scale",
        "scale_sharded",
        "checkpoint_resume",
    }


def test_cli_runs_one_experiment(capsys):
    assert main(["netcost", "--scale", "smoke", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "VI-A" in out
    assert "finished in" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_list_prints_catalogue(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_cli_output_directory(tmp_path, capsys):
    assert main(
        ["netcost", "--scale", "smoke", "--seed", "1", "--output", str(tmp_path)]
    ) == 0
    capsys.readouterr()
    archived = tmp_path / "netcost.txt"
    assert archived.exists()
    assert "VI-A" in archived.read_text()
