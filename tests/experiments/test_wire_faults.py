"""Smoke-scale run of the wire-fault sweep."""

from repro.experiments import wire_faults
from repro.experiments.scale import Scale


def test_wire_faults_smoke():
    result = wire_faults.run_wire_faults(scale=Scale.SMOKE, seed=42)
    rows = {row.label: row for row in result.rows}
    assert set(rows) == {
        "baseline",
        "malformed-25",
        "malformed-50",
        "malformed-100",
        "truncate",
        "replay",
        "inflate",
    }

    # The attacker-free baseline never trips the fault machinery.
    baseline = rows["baseline"]
    assert baseline.undecodable == 0
    assert baseline.refusals == 0
    assert baseline.amplification == 0.0

    # Byte-mangling modes produce garbage the receive boundary counts
    # (and the engine survives — reaching this line at all proves no
    # CodecError escaped any of the seven runs).
    assert rows["malformed-100"].undecodable > 0
    assert rows["truncate"].undecodable > 0

    # Severity orders the garbage volume.
    assert (
        rows["malformed-25"].undecodable
        <= rows["malformed-50"].undecodable
        <= rows["malformed-100"].undecodable
    )

    # Inflated frames die on the size ceiling specifically.
    assert rows["inflate"].oversize > 0

    # Replayed frames decode fine: the codec plane stays quiet and the
    # protocol layer does the rejecting.
    assert rows["replay"].undecodable == 0

    # Quarantine engages against full-severity byte manglers.
    assert rows["truncate"].quarantined_attackers > 0
    assert rows["truncate"].first_quarantine is not None
    assert rows["truncate"].refusals > 0

    # Honest views survive every mode.
    for row in result.rows:
        assert row.view_fill_min > 0.5

    # The amplification budget is measured and bounded wherever an
    # adversary actually sent bytes.
    for label in ("malformed-100", "truncate", "inflate"):
        assert 0.0 < rows[label].amplification < 10.0


def test_wire_faults_render():
    result = wire_faults.run_wire_faults(scale=Scale.SMOKE, seed=42)
    text = wire_faults.render(result)
    assert "wire transport" in text
    assert "[chart]" in text
    assert "malformed-100" in text
    assert "DoS amplification" in text
