"""Smoke-scale run of the latency sweep (event runtime end-to-end)."""

from repro.experiments import latency_sweep
from repro.experiments.scale import Scale


def test_latency_sweep_smoke():
    sweep = latency_sweep.run_latency_sweep(scale=Scale.SMOKE, seed=7)
    assert len(sweep.rows) == 2
    baseline, stressed = sweep.rows

    # Control level: no latency, no jitter, hence no timeouts.
    assert baseline.latency_ratio == 0.0
    assert baseline.timeouts == 0

    # Fig2-style guarantee: indegree stays concentrated around the
    # outdegree at every level, lock-step or not.
    for row in sweep.rows:
        assert abs(row.indegree_mean - row.view_length) < 1.5
        assert row.indegree_stddev < row.view_length

    # The stressed level actually exercises the timeout path.
    assert stressed.timeouts > 0

    # Fig5-style guarantee: the hub attack still collapses — proofs
    # spread and attackers end (mostly) blacklisted at both levels.
    for row in sweep.rows:
        assert row.blacklist_progress > 0.5
        assert row.final_malicious < 0.05


def test_latency_sweep_render_mentions_the_runtime():
    sweep = latency_sweep.run_latency_sweep(scale=Scale.SMOKE, seed=7)
    text = latency_sweep.render(sweep)
    assert "event runtime" in text
    assert "[chart]" in text
    assert "timeouts" in text
