"""Smoke-scale runs of every figure harness.

These assert that each experiment module runs end to end at SMOKE scale
and that the paper's qualitative shape already shows up tiny.
"""

import pytest

from repro.experiments.scale import Scale
from repro.experiments import (
    fig2_indegree,
    fig3_cyclon_takeover,
    fig5_hub_defense,
    fig6_depletion,
    fig7_redemption,
    netcost_table,
)


def test_fig2_smoke():
    panels = fig2_indegree.run_fig2(scale=Scale.SMOKE, seed=1)
    assert len(panels) == 1
    panel = panels[0]
    assert abs(panel.statistics["mean"] - panel.view_length) < 1.0
    text = fig2_indegree.render(panels)
    assert "indegree" in text


def test_fig3_smoke():
    panels = fig3_cyclon_takeover.run_fig3(scale=Scale.SMOKE, seed=1)
    assert len(panels) == 1
    for series in panels[0].series:
        assert series.final_y() > 0.9  # takeover
        assert series.y_at(10) < 0.4  # pre-attack baseline
    assert "Fig 3" in fig3_cyclon_takeover.render(panels)


def test_fig5_smoke():
    panels = fig5_hub_defense.run_fig5(scale=Scale.SMOKE, seed=1)
    assert len(panels) == 2  # minimal + extreme
    for panel in panels:
        for series in panel.series:
            assert series.final_y() < 0.1  # purged
    assert "Fig 5" in fig5_hub_defense.render(panels)


def test_fig6_smoke():
    panels = fig6_depletion.run_fig6(scale=Scale.SMOKE, seed=1)
    # 50% malicious, tft off and on.
    assert len(panels) == 2
    drained = next(p for p in panels if not p.tit_for_tat)
    protected = next(p for p in panels if p.tit_for_tat)
    assert drained.series[0].max_y() > protected.series[0].max_y()
    assert "Fig 6" in fig6_depletion.render(panels)


def test_fig7_smoke():
    panels = fig7_redemption.run_fig7(scale=Scale.SMOKE, seed=1)
    assert len(panels) == 1
    curves = panels[0].curves
    assert len(curves) == 2  # cache 0 and cache 5
    assert curves[-1].overall >= curves[0].overall
    assert "Fig 7" in fig7_redemption.render(panels)


def test_netcost_smoke():
    result = netcost_table.run_netcost(scale=Scale.SMOKE, seed=1)
    analytic = dict(result.analytic_rows)
    assert analytic["descriptor size (bytes)"] == 430.0
    assert abs(analytic["per direction per gossip (KB)"] - 10.5) < 0.01
    measured = dict(result.measured_rows)
    assert measured["measured initiator->partner per gossip (KB)"] > 1.0
    assert "VI-A" in netcost_table.render(result)
