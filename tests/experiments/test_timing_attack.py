"""Smoke-scale run of the timing-attack comparison."""

from repro.experiments import timing_attack
from repro.experiments.scale import Scale


def test_timing_attack_smoke():
    result = timing_attack.run_timing_attack(scale=Scale.SMOKE, seed=7)
    rows = {row.label: row for row in result.rows}
    assert set(rows) == {
        "stealth",
        "stall",
        "stall-edge",
        "induce",
        "induce+retry",
    }

    # The stealth baseline never touches the timeout path.
    assert rows["stealth"].open_timeouts == 0

    # Boundary stall and induced silence force the §V-A asymmetry.
    assert rows["stall-edge"].open_timeouts > 0
    assert rows["induce"].open_timeouts > 0

    # The sub-deadline stall fails nothing but burns more waiting time
    # than the baseline.
    assert rows["stall"].open_timeouts == 0
    assert rows["stall"].waiting_hours > rows["stealth"].waiting_hours

    # Retrying actually retries.  (The fill-recovery claim is asserted
    # robustly in tests/core/test_retry_policy.py; at smoke scale the
    # final-sample fills of these two rows are within noise of full.)
    assert rows["induce+retry"].retries > 0
    assert (
        rows["induce+retry"].view_fill_final
        >= rows["induce"].view_fill_final - 0.05
    )

    # Timing attacks are content-legal: nobody is ever blacklisted.
    for row in result.rows:
        assert row.blacklisted == 0.0


def test_timing_attack_render():
    result = timing_attack.run_timing_attack(scale=Scale.SMOKE, seed=7)
    text = timing_attack.render(result)
    assert "event runtime" in text
    assert "[chart]" in text
    assert "stall-edge" in text
    assert "waiting" in text
