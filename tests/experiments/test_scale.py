"""Unit tests for scale resolution."""

import pytest

from repro.experiments.scale import ENV_VAR, Scale, pick, resolve_scale


def test_explicit_argument_wins(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "full")
    assert resolve_scale(Scale.SMOKE) is Scale.SMOKE


def test_env_var(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "full")
    assert resolve_scale() is Scale.FULL
    monkeypatch.setenv(ENV_VAR, "smoke")
    assert resolve_scale() is Scale.SMOKE


def test_default(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert resolve_scale() is Scale.DEFAULT


def test_invalid_env_value(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "gigantic")
    with pytest.raises(ValueError):
        resolve_scale()


def test_pick():
    assert pick(Scale.SMOKE, 1, 2, 3) == 1
    assert pick(Scale.DEFAULT, 1, 2, 3) == 2
    assert pick(Scale.FULL, 1, 2, 3) == 3


def test_scale_stress_smoke():
    """The churn + hub-attack stress scenario runs healthy at SMOKE."""
    from repro.experiments.scale import run_scale_stress

    report = run_scale_stress(scale=Scale.SMOKE, seed=7)
    assert report.nodes == 40
    assert report.crashed >= 1
    assert report.joined == report.crashed
    assert report.final_population == report.nodes  # churn is balanced
    assert report.mean_view_fill > 0.8  # views healed after churn
    assert report.blacklisted_fraction > 0.9  # hub attackers caught
    assert report.cycles_per_second > 0
    assert "scale stress" in report.render()


def test_scale_stress_is_deterministic():
    from repro.experiments.scale import run_scale_stress

    first = run_scale_stress(scale=Scale.SMOKE, seed=11)
    second = run_scale_stress(scale=Scale.SMOKE, seed=11)
    assert first.mean_view_fill == second.mean_view_fill
    assert first.blacklisted_fraction == second.blacklisted_fraction
    assert first.crashed == second.crashed


def test_paper_scale_smoke():
    """Both verification modes complete and agree on overlay health."""
    from repro.experiments.scale import run_paper_scale

    report = run_paper_scale(scale=Scale.SMOKE, seed=3)
    assert [row.verification for row in report.rows] == [
        "sequential",
        "batched",
    ]
    sequential, batched = report.rows
    assert sequential.nodes == batched.nodes == 60
    # Same seed, same protocol decisions: the converged health metric
    # must agree exactly across verification modes.
    assert sequential.mean_view_fill == batched.mean_view_fill
    assert sequential.cycles_per_second > 0
    assert batched.cycles_per_second > 0
    rendered = report.render()
    assert "paper scale" in rendered
    assert "batched" in rendered
