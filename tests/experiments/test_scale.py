"""Unit tests for scale resolution."""

import pytest

from repro.experiments.scale import ENV_VAR, Scale, pick, resolve_scale


def test_explicit_argument_wins(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "full")
    assert resolve_scale(Scale.SMOKE) is Scale.SMOKE


def test_env_var(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "full")
    assert resolve_scale() is Scale.FULL
    monkeypatch.setenv(ENV_VAR, "smoke")
    assert resolve_scale() is Scale.SMOKE


def test_default(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert resolve_scale() is Scale.DEFAULT


def test_invalid_env_value(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "gigantic")
    with pytest.raises(ValueError):
        resolve_scale()


def test_pick():
    assert pick(Scale.SMOKE, 1, 2, 3) == 1
    assert pick(Scale.DEFAULT, 1, 2, 3) == 2
    assert pick(Scale.FULL, 1, 2, 3) == 3
