"""Smoke-scale runs of the churn-recovery and loss-sweep experiments."""

import pytest

from repro.experiments import churn_recovery, loss_sweep
from repro.experiments.scale import Scale


@pytest.fixture(scope="module")
def churn_result():
    return churn_recovery.run_churn_recovery(scale=Scale.SMOKE, seed=5)


@pytest.fixture(scope="module")
def loss_rows():
    return loss_sweep.run_loss_sweep(scale=Scale.SMOKE, seed=5)


def test_crash_panels_cover_both_protocols(churn_result):
    protocols = {panel.protocol for panel in churn_result.crash_panels}
    assert protocols == {"cyclon", "secure"}


def test_overlay_never_fragments_after_crash(churn_result):
    for panel in churn_result.crash_panels:
        assert panel.min_component > 0.95


def test_views_recover_after_crash(churn_result):
    for panel in churn_result.crash_panels:
        assert panel.recovery_cycles != float("inf")
        assert panel.recovery_cycles < 30


def test_secure_healing_keeps_pace_with_cyclon(churn_result):
    """The security layer must not tax self-healing badly."""
    by_protocol = {}
    for panel in churn_result.crash_panels:
        by_protocol.setdefault(panel.protocol, []).append(
            panel.recovery_cycles
        )
    secure_mean = sum(by_protocol["secure"]) / len(by_protocol["secure"])
    cyclon_mean = sum(by_protocol["cyclon"]) / len(by_protocol["cyclon"])
    assert secure_mean <= cyclon_mean + 15


def test_continuous_churn_stays_healthy(churn_result):
    for panel in churn_result.churn_panels:
        assert panel.final_fill > 0.9
        assert panel.final_component > 0.95
        assert panel.final_non_swappable < 0.3


def test_churn_render_mentions_everything(churn_result):
    text = churn_recovery.render(churn_result)
    assert "Churn recovery" in text
    assert "Continuous churn" in text
    assert "[chart]" in text


def test_loss_sweep_covers_all_variants(loss_rows):
    variants = {row.variant for row in loss_rows}
    assert variants == {"cyclon", "secure", "secure+tft"}


def test_lossless_baseline_is_perfect(loss_rows):
    for row in loss_rows:
        if row.loss_rate == 0.0:
            assert row.final_fill > 0.99
            assert row.final_non_swappable < 0.01


def test_loss_never_fragments_overlay(loss_rows):
    for row in loss_rows:
        assert row.final_component > 0.95


def test_degradation_is_graceful(loss_rows):
    """Views stay majority-full even at the highest smoke loss rate."""
    for row in loss_rows:
        assert row.final_fill > 0.5


def test_tft_strands_no_more_than_bulk(loss_rows):
    by_rate = {}
    for row in loss_rows:
        by_rate.setdefault(row.loss_rate, {})[row.variant] = row
    for rate, variants in by_rate.items():
        assert (
            variants["secure+tft"].final_non_swappable
            <= variants["secure"].final_non_swappable + 0.05
        )


def test_loss_render_is_a_table(loss_rows):
    text = loss_sweep.render(loss_rows)
    assert "Message-loss sweep" in text
    assert "secure+tft" in text
