"""Smoke-scale runs of the extension experiments (stealth, violations)."""

from repro.experiments import stealth_experiment, violations_matrix
from repro.experiments.scale import Scale


def test_stealth_smoke():
    results = stealth_experiment.run_stealth(scale=Scale.SMOKE, seed=3)
    assert len(results) == 1
    result = results[0]
    share = result.malicious / result.nodes
    # The violating party collapses, the stealth party persists bounded.
    assert result.hub_settled < 0.1
    assert result.stealth_settled < min(1.0, 3.0 * share)
    assert result.stealth_settled > 0.0


def test_stealth_render_mentions_both_modes():
    results = stealth_experiment.run_stealth(scale=Scale.SMOKE, seed=3)
    text = stealth_experiment.render(results)
    assert "stealth" in text
    assert "hub" in text
    assert "[chart]" in text


def test_violations_smoke():
    outcomes = violations_matrix.run_violations(scale=Scale.SMOKE, seed=3)
    by_name = {outcome.violation: outcome for outcome in outcomes}
    assert len(by_name) == 4

    frequency = by_name["frequency (over-minting)"]
    assert frequency.punished

    cloning = by_name["view (descriptor cloning)"]
    assert cloning.attempts > 0
    assert cloning.punished

    partner = by_name["partner selection"]
    assert partner.attempts > 0
    assert partner.rejected

    replay = by_name["token replay"]
    assert replay.attempts > 0
    assert replay.rejected


def test_violations_render_is_a_complete_table():
    outcomes = violations_matrix.run_violations(scale=Scale.SMOKE, seed=3)
    text = violations_matrix.render(outcomes)
    assert "Violation matrix" in text
    assert "PARTIAL" not in text  # every avenue closed
