"""Unit tests for report rendering."""

from repro.experiments.report import format_table, histogram_table, series_table
from repro.metrics.series import Series


def test_format_table_aligns_and_rounds():
    text = format_table(["name", "value"], [("x", 1.234), ("long-name", 2.0)])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "1.23" in lines[2]
    assert all(len(line) == len(lines[0]) for line in lines[1:])


def test_series_table_merges_x_axes():
    a = Series(label="A", points=[(0, 0.1), (10, 0.2)])
    b = Series(label="B", points=[(0, 0.3), (20, 0.4)])
    text = series_table("title", [a, b])
    assert "title" in text
    assert "A" in text and "B" in text
    # Missing samples render as "-".
    assert "-" in text
    # Fractions are scaled to percentages by default.
    assert "10.00" in text and "40.00" in text


def test_histogram_table_bars():
    text = histogram_table("h", [(1, 5), (2, 10)], "x", "count")
    assert "#" in text
    assert "h" in text


def test_histogram_table_empty():
    assert "(empty)" in histogram_table("h", [], "x", "y")
