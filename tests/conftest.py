"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import SecureCyclonConfig
from repro.core.descriptor import mint
from repro.crypto.registry import KeyRegistry
from repro.sim.clock import SimClock
from repro.sim.network import NetworkAddress

PERIOD = 10.0


@pytest.fixture
def rng():
    return random.Random(1234)


@pytest.fixture
def registry():
    return KeyRegistry()


@pytest.fixture
def clock():
    return SimClock(period_seconds=PERIOD)


@pytest.fixture
def keypairs(registry, rng):
    """Five registered key pairs: enough actors for any protocol story."""
    return [registry.new_keypair(rng) for _ in range(5)]


@pytest.fixture
def addresses():
    return [NetworkAddress(host=i + 1, port=9000) for i in range(5)]


@pytest.fixture
def minted(keypairs, addresses):
    """A factory for fresh descriptors: minted(i, timestamp)."""

    def _mint(index: int, timestamp: float = 0.0):
        return mint(keypairs[index], addresses[index], timestamp)

    return _mint


@pytest.fixture
def small_config():
    return SecureCyclonConfig(view_length=8, swap_length=3)
