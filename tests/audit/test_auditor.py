"""Tests for the omniscient protocol auditor."""

import pytest

from repro.audit import AuditReport, Finding, audit_engine
from repro.core.config import SecureCyclonConfig
from repro.experiments.scenarios import build_secure_overlay


@pytest.fixture(scope="module")
def honest_overlay():
    overlay = build_secure_overlay(
        n=80,
        config=SecureCyclonConfig(view_length=10, swap_length=3),
        seed=91,
    )
    overlay.run(25)
    return overlay


def test_honest_run_audits_clean(honest_overlay):
    report = audit_engine(honest_overlay.engine)
    report.assert_clean()
    assert report.clean
    assert report.checks_run == 5


def test_summary_mentions_clean(honest_overlay):
    report = audit_engine(honest_overlay.engine)
    assert "clean" in report.summary()


def test_attacked_run_still_audits_clean():
    """Under a hub attack the *honest* state must stay lawful: the
    auditor skips adversarial internals but verifies everything honest
    nodes hold and every blacklist they build."""
    overlay = build_secure_overlay(
        n=80,
        config=SecureCyclonConfig(view_length=10, swap_length=3),
        malicious=10,
        attack_start=8,
        seed=92,
    )
    overlay.run(40)
    audit_engine(overlay.engine).assert_clean()


def test_lossy_run_audits_clean():
    from repro.sim.channel import DropPolicy
    from repro.sim.engine import SimConfig

    overlay = build_secure_overlay(
        n=60,
        config=SecureCyclonConfig(view_length=8, swap_length=3),
        seed=93,
        sim_config=SimConfig(
            seed=93, drop_policy=DropPolicy(request_loss=0.1, reply_loss=0.1)
        ),
    )
    overlay.run(30)
    audit_engine(overlay.engine).assert_clean()


def test_dirty_report_raises_with_digest():
    report = AuditReport(
        findings=[
            Finding("view-shape", "n1", "too big"),
            Finding("view-shape", "n2", "self link"),
            Finding("blacklist", "n3", "false positive"),
        ],
        checks_run=5,
    )
    assert not report.clean
    with pytest.raises(AssertionError) as excinfo:
        report.assert_clean()
    message = str(excinfo.value)
    assert "3 audit finding(s)" in message
    assert "view-shape: 2" in message
    assert "blacklist: 1" in message


def test_by_invariant_groups(honest_overlay):
    report = AuditReport(
        findings=[
            Finding("a", 1, "x"),
            Finding("a", 2, "y"),
            Finding("b", 3, "z"),
        ]
    )
    grouped = report.by_invariant()
    assert len(grouped["a"]) == 2
    assert len(grouped["b"]) == 1


def test_failed_summary_counts():
    report = AuditReport(findings=[Finding("mint-rate", 1, "burst")])
    assert "FAILED" in report.summary()
    assert "mint-rate=1" in report.summary()


def test_subset_of_checks(honest_overlay):
    from repro.audit import check_view_shape

    report = audit_engine(honest_overlay.engine, checks=(check_view_shape,))
    assert report.checks_run == 1
    assert report.clean


def test_auditor_catches_planted_self_link(honest_overlay):
    """Sanity: the auditor is not a rubber stamp — plant a violation
    and it must be found."""
    from repro.core.descriptor import mint

    engine = honest_overlay.engine
    node = engine.legit_nodes()[0]
    # Forge a self-link by planting the node's own descriptor.
    rogue = mint(node.keypair, node.address, engine.clock.now() + 12345.0)
    node.view._entries.append(
        type(next(iter(node.view)))(descriptor=rogue, non_swappable=False)
    )
    try:
        report = audit_engine(engine)
        assert not report.clean
        assert "view-shape" in report.by_invariant()
    finally:
        node.view._entries.pop()
