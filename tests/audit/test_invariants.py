"""Each audit invariant must actually fire when its rule is broken.

These tests plant one specific violation into otherwise-honest state
and assert the corresponding check (and only that check) reports it.
"""

import pytest

from repro.audit import (
    audit_engine,
    check_blacklists,
    check_chain_consistency,
    check_mint_rate,
    check_ownership,
    check_view_shape,
)
from repro.core.config import SecureCyclonConfig
from repro.core.descriptor import mint
from repro.core.view import ViewEntry
from repro.experiments.scenarios import build_secure_overlay


@pytest.fixture
def overlay():
    overlay = build_secure_overlay(
        n=40,
        config=SecureCyclonConfig(view_length=6, swap_length=3),
        seed=101,
    )
    overlay.run(12)
    return overlay


def _plant(node, descriptor, non_swappable=False):
    node.view._entries.append(
        ViewEntry(descriptor=descriptor, non_swappable=non_swappable)
    )


def test_clean_baseline(overlay):
    audit_engine(overlay.engine).assert_clean()


def test_view_shape_fires_on_duplicate_identity(overlay):
    node = overlay.engine.legit_nodes()[0]
    entry = next(iter(node.view))
    node.view._entries.append(entry)
    try:
        findings = list(check_view_shape(overlay.engine))
        assert any("duplicate" in f.message for f in findings)
    finally:
        node.view._entries.pop()


def test_view_shape_fires_on_overflow(overlay):
    node = overlay.engine.legit_nodes()[0]
    donors = overlay.engine.legit_nodes()[1:]
    added = 0
    for donor in donors:
        for entry in donor.view:
            if entry.creator != node.node_id:
                node.view._entries.append(entry)
                added += 1
        if len(node.view._entries) > node.view.capacity:
            break
    try:
        findings = list(check_view_shape(overlay.engine))
        assert any("capacity" in f.message for f in findings)
    finally:
        del node.view._entries[-added:]


def test_ownership_fires_on_foreign_descriptor(overlay):
    nodes = overlay.engine.legit_nodes()
    holder, victim, third = nodes[0], nodes[1], nodes[2]
    # A descriptor owned by `third`, planted into `holder`'s view.
    stolen = mint(
        victim.keypair, victim.address, overlay.engine.clock.now() + 9999.0
    ).transfer(victim.keypair, third.node_id)
    _plant(holder, stolen)
    try:
        findings = list(check_ownership(overlay.engine))
        assert any("holder is not the owner" in f.message for f in findings)
    finally:
        holder.view._entries.pop()


def test_ownership_fires_on_bogus_nonswappable(overlay):
    nodes = overlay.engine.legit_nodes()
    holder, victim = nodes[0], nodes[1]
    # A non-swappable copy of a token the holder never owned.
    foreign = mint(
        victim.keypair, victim.address, overlay.engine.clock.now() + 8888.0
    )
    _plant(holder, foreign, non_swappable=True)
    try:
        findings = list(check_ownership(overlay.engine))
        assert any("never owned" in f.message for f in findings)
    finally:
        holder.view._entries.pop()


def test_chain_consistency_fires_on_honest_fork(overlay):
    nodes = overlay.engine.legit_nodes()
    creator, spender, left, right = nodes[0], nodes[1], nodes[2], nodes[3]
    base = mint(
        creator.keypair, creator.address, overlay.engine.clock.now() + 7777.0
    ).transfer(creator.keypair, spender.node_id)
    fork_a = base.transfer(spender.keypair, left.node_id)
    fork_b = base.transfer(spender.keypair, right.node_id)
    _plant(left, fork_a)
    _plant(right, fork_b)
    try:
        findings = list(check_chain_consistency(overlay.engine))
        assert any("illegal fork" in f.message for f in findings)
    finally:
        left.view._entries.pop()
        right.view._entries.pop()


def test_mint_rate_fires_on_burst(overlay):
    nodes = overlay.engine.legit_nodes()
    burster, holder_a, holder_b = nodes[0], nodes[1], nodes[2]
    now = overlay.engine.clock.now()
    first = mint(burster.keypair, burster.address, now + 5000.0)
    second = mint(burster.keypair, burster.address, now + 5000.1)  # too close
    _plant(holder_a, first.transfer(burster.keypair, holder_a.node_id))
    _plant(holder_b, second.transfer(burster.keypair, holder_b.node_id))
    try:
        findings = list(check_mint_rate(overlay.engine))
        assert any("descriptors" in f.message for f in findings)
    finally:
        holder_a.view._entries.pop()
        holder_b.view._entries.pop()


def test_blacklist_fires_on_false_positive(overlay):
    nodes = overlay.engine.legit_nodes()
    accuser, framed = nodes[0], nodes[1]
    accuser.blacklist.by_culprit[framed.node_id] = None  # no proof either
    try:
        findings = list(check_blacklists(overlay.engine))
        messages = " | ".join(f.message for f in findings)
        assert "false positive" in messages
        assert "lacks a valid proof" in messages
    finally:
        del accuser.blacklist.by_culprit[framed.node_id]
