"""Protocol-level tests for the SecureCyclon node.

These wire a handful of real nodes into an engine and exercise the
acceptance rules, the tit-for-tat rounds, the non-swappable repair, and
the blacklisting pipeline at message granularity.
"""

import pytest

from repro.core.config import SecureCyclonConfig
from repro.core.descriptor import TransferKind, mint
from repro.core.exchange import (
    BulkSwapMessage,
    BulkSwapReply,
    GossipAccept,
    GossipOpen,
    GossipReject,
    ProofFlood,
    TransferMessage,
    TransferReply,
)
from repro.core.node import SecureCyclonNode
from repro.core.proofs import build_cloning_proof
from repro.sim.engine import Engine, SimConfig


def build_world(n=5, config=None):
    """``n`` real SecureCyclon nodes attached to one engine."""
    engine = Engine(SimConfig(seed=5))
    config = config or SecureCyclonConfig(view_length=6, swap_length=3)
    nodes = []
    for index in range(n):
        keypair = engine.registry.new_keypair(engine.rng_hub.stream("keys"))
        address = engine.network.reserve_address(keypair.public)
        node = SecureCyclonNode(
            keypair=keypair,
            address=address,
            config=config,
            clock=engine.clock,
            registry=engine.registry,
            rng=engine.rng_hub.stream(f"node-{index}"),
            trace=engine.trace,
        )
        node.bind_network(engine.network)
        engine.add_node(node)
        nodes.append(node)
    return engine, nodes


def give(giver, receiver, timestamp=0.0, non_swappable=False):
    """Mint a descriptor of ``giver`` and hand it to ``receiver``."""
    descriptor = mint(giver.keypair, giver.address, timestamp).transfer(
        giver.keypair, receiver.node_id
    )
    receiver.view.insert(descriptor, non_swappable=non_swappable)
    return descriptor


def open_for(initiator, partner, descriptor, non_swappable=False, **kwargs):
    redemption = descriptor.redeem(
        initiator.keypair, non_swappable=non_swappable
    )
    return GossipOpen(
        redemption=redemption, non_swappable=non_swappable, **kwargs
    )


# ----------------------------------------------------------------------
# redemption acceptance rules (§IV-A)
# ----------------------------------------------------------------------


def test_accepts_valid_redemption():
    engine, (a, b, *_) = build_world()
    d = give(b, a)
    reply = b.receive(a.node_id, open_for(a, b, d))
    assert isinstance(reply, GossipAccept)


def test_rejects_descriptor_of_another_creator():
    engine, (a, b, c, *_) = build_world()
    d = give(c, a)  # created by c, not b
    reply = b.receive(a.node_id, open_for(a, c, d))
    assert isinstance(reply, GossipReject)
    assert reply.reason == "not-my-descriptor"


def test_rejects_redemption_by_non_owner():
    engine, (a, b, c, *_) = build_world()
    d = give(b, c)  # owned by c
    redemption = d.redeem(c.keypair)
    reply = b.receive(a.node_id, GossipOpen(redemption=redemption))
    assert isinstance(reply, GossipReject)
    assert reply.reason == "not-the-owner"


def test_rejects_unredeemed_descriptor():
    engine, (a, b, *_) = build_world()
    d = give(b, a)
    reply = b.receive(a.node_id, GossipOpen(redemption=d))
    assert isinstance(reply, GossipReject)
    assert reply.reason == "missing-redeem-hop"


def test_rejects_double_redemption_of_same_token():
    engine, (a, b, *_) = build_world()
    d = give(b, a)
    opening = open_for(a, b, d)
    assert isinstance(b.receive(a.node_id, opening), GossipAccept)
    reply = b.receive(a.node_id, opening)
    assert isinstance(reply, GossipReject)
    assert reply.reason == "already-redeemed"


def test_rejects_kind_mismatch():
    engine, (a, b, *_) = build_world()
    d = give(b, a, non_swappable=True)
    redemption = d.redeem(a.keypair, non_swappable=True)
    # Flag says regular, hop says non-swappable.
    reply = b.receive(
        a.node_id, GossipOpen(redemption=redemption, non_swappable=False)
    )
    assert isinstance(reply, GossipReject)
    assert reply.reason == "redeem-kind-mismatch"


def test_nonswap_quota_once_per_descriptor_and_cycle():
    engine, (a, b, c, *_) = build_world()
    d_a = give(b, a, timestamp=0.0)
    d_c = give(b, c, timestamp=-10.0)
    first = b.receive(a.node_id, open_for(a, b, d_a, non_swappable=True))
    assert isinstance(first, GossipAccept)
    # Same cycle, different descriptor, also non-swappable: quota hit.
    second = b.receive(c.node_id, open_for(c, b, d_c, non_swappable=True))
    assert isinstance(second, GossipReject)
    assert second.reason == "nonswap-quota-this-cycle"
    # Next cycle the per-descriptor restriction persists.
    b.begin_cycle(1)
    third = b.receive(a.node_id, open_for(a, b, d_a, non_swappable=True))
    assert isinstance(third, GossipReject)
    assert third.reason == "nonswap-already-redeemed"


def test_rejects_blacklisted_sender():
    engine, (a, b, c, *_) = build_world()
    # b learns a proof incriminating a.
    base = mint(c.keypair, c.address, 0.0).transfer(c.keypair, a.node_id)
    proof = build_cloning_proof(
        base.transfer(a.keypair, b.node_id),
        base.transfer(a.keypair, c.node_id),
    )
    b.receive_push(c.node_id, ProofFlood(proof=proof))
    assert b.blacklist.is_blacklisted(a.node_id)
    d = give(b, a)
    reply = b.receive(a.node_id, open_for(a, b, d))
    assert isinstance(reply, GossipReject)
    assert reply.reason == "blacklisted"
    assert reply.proofs  # the evidence travels with the rejection


# ----------------------------------------------------------------------
# tit-for-tat rounds (§V-B)
# ----------------------------------------------------------------------


def test_transfer_rounds_counter_one_for_one():
    engine, (a, b, c, *_) = build_world()
    d = give(b, a)
    give(c, b, timestamp=-10.0)  # b has something to counter with
    assert isinstance(b.receive(a.node_id, open_for(a, b, d)), GossipAccept)
    fresh = a.mint_fresh_descriptor().transfer(a.keypair, b.node_id)
    reply = b.receive(
        a.node_id, TransferMessage(descriptor=fresh, round_index=0)
    )
    assert isinstance(reply, TransferReply)
    assert reply.descriptor is not None
    assert reply.descriptor.current_owner == a.node_id
    assert b.view.contains_creator(a.node_id)


def test_transfer_without_session_is_refused():
    engine, (a, b, *_) = build_world()
    fresh = mint(a.keypair, a.address, 0.0).transfer(a.keypair, b.node_id)
    reply = b.receive(
        a.node_id, TransferMessage(descriptor=fresh, round_index=0)
    )
    assert reply.descriptor is None
    assert not b.view.contains_creator(a.node_id)


def test_rounds_are_bounded_by_swap_length():
    engine, (a, b, c, *_) = build_world()
    d = give(b, a)
    for i in range(6):
        give(c, b, timestamp=-10.0 * (i + 1))
    assert isinstance(b.receive(a.node_id, open_for(a, b, d)), GossipAccept)
    accepted = 0
    for round_index in range(5):
        fresh = mint(
            a.keypair, a.address, float(round_index)
        ).transfer(a.keypair, b.node_id)
        reply = b.receive(
            a.node_id,
            TransferMessage(descriptor=fresh, round_index=round_index),
        )
        if reply.descriptor is not None:
            accepted += 1
    assert accepted <= b.config.swap_length


def test_stale_fresh_descriptor_refused():
    engine, (a, b, *_) = build_world()
    d = give(b, a)
    assert isinstance(b.receive(a.node_id, open_for(a, b, d)), GossipAccept)
    stale = mint(a.keypair, a.address, -500.0).transfer(a.keypair, b.node_id)
    reply = b.receive(
        a.node_id, TransferMessage(descriptor=stale, round_index=0)
    )
    assert reply.descriptor is None


def test_spent_descriptor_not_accepted_as_transfer():
    engine, (a, b, c, *_) = build_world()
    d = give(b, a)
    assert isinstance(b.receive(a.node_id, open_for(a, b, d)), GossipAccept)
    spent = (
        mint(c.keypair, c.address, 0.0)
        .transfer(c.keypair, a.node_id)
        .redeem(a.keypair)
    )
    reply = b.receive(
        a.node_id, TransferMessage(descriptor=spent, round_index=1)
    )
    assert reply.descriptor is None


# ----------------------------------------------------------------------
# bulk mode and depletion repair (§V-A)
# ----------------------------------------------------------------------


def test_bulk_swap_exchanges_descriptors():
    config = SecureCyclonConfig(view_length=6, swap_length=3, tit_for_tat=False)
    engine, (a, b, c, *_) = build_world(config=config)
    d = give(b, a)
    for i in range(3):
        give(c, b, timestamp=-10.0 * (i + 1))
    assert isinstance(b.receive(a.node_id, open_for(a, b, d)), GossipAccept)
    fresh = a.mint_fresh_descriptor().transfer(a.keypair, b.node_id)
    reply = b.receive(a.node_id, BulkSwapMessage(descriptors=(fresh,)))
    assert isinstance(reply, BulkSwapReply)
    assert 1 <= len(reply.descriptors) <= 3
    assert b.view.contains_creator(a.node_id)


def test_bulk_partner_repairs_with_non_swappables_when_drained():
    config = SecureCyclonConfig(view_length=6, swap_length=3, tit_for_tat=False)
    engine, (a, b, c, *_) = build_world(config=config)
    d = give(b, a)
    for i in range(4):
        give(c, b, timestamp=-10.0 * (i + 1))
    before = len(b.view)
    assert isinstance(b.receive(a.node_id, open_for(a, b, d)), GossipAccept)
    # Empty bulk: the link-depletion attack shape.
    reply = b.receive(a.node_id, BulkSwapMessage(descriptors=()))
    assert isinstance(reply, BulkSwapReply)
    assert len(reply.descriptors) >= 1
    # b gave descriptors away but repaired the holes as non-swappable.
    assert len(b.view) == before
    assert b.view.non_swappable_count() == len(reply.descriptors)


# ----------------------------------------------------------------------
# observation pipeline and blacklisting (§IV-B, §IV-C)
# ----------------------------------------------------------------------


def test_conflicting_samples_produce_blacklisting_and_purge():
    engine, (a, b, c, d_node, e) = build_world()
    # c clones a descriptor created by e: two forked branches.
    base = mint(e.keypair, e.address, 0.0).transfer(e.keypair, c.node_id)
    branch_1 = base.transfer(c.keypair, a.node_id)
    branch_2 = base.transfer(c.keypair, b.node_id)
    give(c, a, timestamp=-10.0)  # a holds a link to the future culprit

    assert a._observe(branch_1, engine.network)
    assert not a.blacklist.is_blacklisted(c.node_id)
    a._observe(branch_2, engine.network)
    assert a.blacklist.is_blacklisted(c.node_id)
    # The view was purged of the culprit's descriptors.
    assert not a.view.contains_creator(c.node_id)
    assert engine.trace.count("secure.violation_found") >= 1


def test_proof_flood_reaches_neighbors():
    engine, (a, b, c, d_node, e) = build_world()
    give(b, a)  # a's view points at b, so floods reach b
    base = mint(e.keypair, e.address, 0.0).transfer(e.keypair, c.node_id)
    branch_1 = base.transfer(c.keypair, a.node_id)
    branch_2 = base.transfer(c.keypair, d_node.node_id)
    a._observe(branch_1, engine.network)
    a._observe(branch_2, engine.network)
    assert a.blacklist.is_blacklisted(c.node_id)
    assert b.blacklist.is_blacklisted(c.node_id)  # via the flood


def test_invalid_proof_is_ignored():
    engine, (a, b, c, *_) = build_world()
    base = mint(c.keypair, c.address, 0.0).transfer(c.keypair, a.node_id)
    branch = base.transfer(a.keypair, b.node_id)
    # A "proof" whose chains do not actually fork.
    from repro.core.proofs import CloningProof

    bogus = CloningProof(first=base, second=branch, culprit=b.node_id)
    a.receive_push(c.node_id, ProofFlood(proof=bogus))
    assert not a.blacklist.is_blacklisted(b.node_id)


def test_node_never_blacklists_itself():
    engine, (a, b, c, *_) = build_world()
    base = mint(c.keypair, c.address, 0.0).transfer(c.keypair, a.node_id)
    proof = build_cloning_proof(
        base.transfer(a.keypair, b.node_id),
        base.transfer(a.keypair, c.node_id),
    )
    a.receive_push(b.node_id, ProofFlood(proof=proof))
    assert not a.blacklist.is_blacklisted(a.node_id)


def test_blacklist_disabled_traces_but_does_not_act():
    config = SecureCyclonConfig(
        view_length=6, swap_length=3, blacklist_enabled=False
    )
    engine, (a, b, c, d_node, e) = build_world(config=config)
    base = mint(e.keypair, e.address, 0.0).transfer(e.keypair, c.node_id)
    a._observe(base.transfer(c.keypair, a.node_id), engine.network)
    a._observe(base.transfer(c.keypair, b.node_id), engine.network)
    assert engine.trace.count("secure.violation_found") == 1
    assert not a.blacklist.is_blacklisted(c.node_id)


def test_mint_guard_once_per_cycle():
    engine, (a, *_) = build_world()
    a.begin_cycle(0)
    a.mint_fresh_descriptor()
    with pytest.raises(RuntimeError):
        a.mint_fresh_descriptor()
    a.begin_cycle(1)
    a.mint_fresh_descriptor()  # new cycle, new budget


def test_unknown_payload_rejected():
    # A payload that makes no sense as a request — e.g. a reply-type
    # frame replayed by a wire-plane attacker — is refused, never
    # crashed on: a Byzantine sender must not cost the receiver its
    # cycle.
    engine, (a, *_) = build_world()
    reply = a.receive("x", object())
    assert isinstance(reply, GossipReject)
    assert reply.reason == "unexpected message"
    assert engine.trace.count("secure.unexpected_request") == 1


def test_samples_payload_contains_view_and_redemption_cache():
    engine, (a, b, c, *_) = build_world()
    give(b, a, timestamp=-10.0)
    redeemed = (
        mint(c.keypair, c.address, 0.0)
        .transfer(c.keypair, a.node_id)
        .redeem(a.keypair)
    )
    a.redemption_cache.add(redeemed, cycle=0)
    samples = a._samples_payload()
    assert any(s.creator == b.node_id for s in samples)
    assert any(s.identity == redeemed.identity for s in samples)
