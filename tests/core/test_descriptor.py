"""Unit tests for SecureCyclon descriptors and chain verification."""

import pytest

from repro.core.descriptor import (
    SecureDescriptor,
    TransferKind,
    mint,
    require_valid,
    verify_descriptor,
)
from repro.errors import DescriptorError


def test_mint_has_no_hops(minted, keypairs):
    d = minted(0)
    assert d.creator == keypairs[0].public
    assert d.hops == ()
    assert d.current_owner == keypairs[0].public
    assert d.transfer_count == 0
    assert not d.is_spent


def test_transfer_appends_hop(minted, keypairs):
    d = minted(0).transfer(keypairs[0], keypairs[1].public)
    assert d.current_owner == keypairs[1].public
    assert d.owners() == (keypairs[0].public, keypairs[1].public)
    assert d.transfer_count == 1
    assert d.hops[0].kind is TransferKind.TRANSFER


def test_only_current_owner_may_transfer(minted, keypairs):
    d = minted(0).transfer(keypairs[0], keypairs[1].public)
    with pytest.raises(DescriptorError):
        d.transfer(keypairs[0], keypairs[2].public)  # 0 no longer owns it
    d2 = d.transfer(keypairs[1], keypairs[2].public)
    assert d2.current_owner == keypairs[2].public


def test_redeem_targets_creator(minted, keypairs):
    d = minted(0).transfer(keypairs[0], keypairs[1].public)
    redeemed = d.redeem(keypairs[1])
    assert redeemed.is_spent
    assert redeemed.hops[-1].kind is TransferKind.REDEEM
    assert redeemed.current_owner == keypairs[0].public


def test_redeem_hop_cannot_target_third_party(minted, keypairs):
    d = minted(0).transfer(keypairs[0], keypairs[1].public)
    with pytest.raises(DescriptorError):
        d.transfer(keypairs[1], keypairs[2].public, kind=TransferKind.REDEEM)


def test_spent_descriptor_cannot_move(minted, keypairs):
    d = minted(0).transfer(keypairs[0], keypairs[1].public).redeem(keypairs[1])
    with pytest.raises(DescriptorError):
        d.transfer(keypairs[0], keypairs[2].public)


def test_nonswap_redeem_kind(minted, keypairs):
    d = minted(0).transfer(keypairs[0], keypairs[1].public)
    redeemed = d.redeem(keypairs[1], non_swappable=True)
    assert redeemed.hops[-1].kind is TransferKind.NONSWAP_REDEEM


def test_identity_is_creator_and_timestamp(minted):
    a = minted(0, timestamp=10.0)
    b = minted(0, timestamp=10.0)
    c = minted(0, timestamp=20.0)
    assert a.identity == b.identity
    assert a.identity != c.identity


def test_identity_survives_transfers(minted, keypairs):
    d = minted(0, timestamp=5.0)
    moved = d.transfer(keypairs[0], keypairs[1].public)
    assert moved.identity == d.identity


def test_age_cycles(minted):
    d = minted(0, timestamp=100.0)
    assert d.age_cycles(now=150.0, period_seconds=10.0) == 5
    assert d.age_cycles(now=90.0, period_seconds=10.0) == 0  # clamped


def test_verify_honest_chain(registry, minted, keypairs):
    d = (
        minted(0)
        .transfer(keypairs[0], keypairs[1].public)
        .transfer(keypairs[1], keypairs[2].public)
        .redeem(keypairs[2])
    )
    assert verify_descriptor(d, registry)
    require_valid(d, registry)


def test_verify_rejects_grafted_chain(registry, minted, keypairs):
    """Splicing a hop from one descriptor onto another must fail."""
    d1 = minted(0, timestamp=0.0).transfer(keypairs[0], keypairs[1].public)
    d2 = minted(0, timestamp=10.0)
    grafted = SecureDescriptor(
        creator=d2.creator,
        address=d2.address,
        timestamp=d2.timestamp,
        hops=d1.hops,  # signature covers d1's digest, not d2's
    )
    assert not verify_descriptor(grafted, registry)
    with pytest.raises(DescriptorError):
        require_valid(grafted, registry)


def test_verify_rejects_reordered_hops(registry, minted, keypairs):
    d = (
        minted(0)
        .transfer(keypairs[0], keypairs[1].public)
        .transfer(keypairs[1], keypairs[2].public)
    )
    reordered = SecureDescriptor(
        creator=d.creator,
        address=d.address,
        timestamp=d.timestamp,
        hops=(d.hops[1], d.hops[0]),
    )
    assert not verify_descriptor(reordered, registry)


def test_verify_rejects_truncation_then_extension(registry, minted, keypairs):
    """An owner cannot drop its predecessor's hop and re-sign."""
    d = minted(0).transfer(keypairs[0], keypairs[1].public)
    # keypair 2 (never an owner) tries to append a hop.
    forged_hops = d.hops + (
        d.transfer(keypairs[1], keypairs[2].public).hops[-1],
    )
    fake = SecureDescriptor(
        creator=d.creator,
        address=d.address,
        timestamp=d.timestamp,
        hops=(forged_hops[1],),  # skip the genuine first hop
    )
    assert not verify_descriptor(fake, registry)


def test_verify_rejects_terminal_hop_mid_chain(registry, minted, keypairs):
    redeemed = (
        minted(0).transfer(keypairs[0], keypairs[1].public).redeem(keypairs[1])
    )
    extended_hops = redeemed.hops + (
        minted(1).transfer(keypairs[1], keypairs[2].public).hops[-1],
    )
    fake = SecureDescriptor(
        creator=redeemed.creator,
        address=redeemed.address,
        timestamp=redeemed.timestamp,
        hops=extended_hops,
    )
    assert not verify_descriptor(fake, registry)


def test_verification_is_memoised_per_registry(registry, minted, keypairs):
    d = minted(0).transfer(keypairs[0], keypairs[1].public)
    assert verify_descriptor(d, registry)
    # Second verification takes the memo path and must agree.
    assert verify_descriptor(d, registry)

    from repro.crypto.registry import KeyRegistry

    other = KeyRegistry()
    # A registry that does not know the keys cannot verify, even though
    # the first registry memoised success.
    assert not verify_descriptor(d, other)


def test_transfer_propagates_verified_memo(registry, minted, keypairs):
    parent = minted(0).transfer(keypairs[0], keypairs[1].public)
    assert verify_descriptor(parent, registry)
    child = parent.transfer(keypairs[1], keypairs[2].public)
    # The child must still verify (via the propagated memo or not).
    assert verify_descriptor(child, registry)


def test_chain_digest_is_stable_and_extended(minted, keypairs):
    d = minted(0)
    d1 = d.transfer(keypairs[0], keypairs[1].public)
    assert d.chain_digest() != d1.chain_digest()
    assert d1.chain_digest() == d1.chain_digest()
