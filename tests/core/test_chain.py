"""Unit tests for ownership-chain comparison."""

import pytest

from repro.core.chain import ChainRelation, compare_chains, longer_chain
from repro.errors import DescriptorError


def test_equal_chains(minted, keypairs):
    d = minted(0).transfer(keypairs[0], keypairs[1].public)
    assert compare_chains(d, d).relation is ChainRelation.EQUAL


def test_prefix_and_extension(minted, keypairs):
    short = minted(0).transfer(keypairs[0], keypairs[1].public)
    long = short.transfer(keypairs[1], keypairs[2].public)
    assert compare_chains(short, long).relation is ChainRelation.PREFIX
    assert compare_chains(long, short).relation is ChainRelation.EXTENSION
    assert longer_chain(short, long) is long
    assert longer_chain(long, short) is long


def test_fork_detects_culprit_at_first_owner(minted, keypairs):
    base = minted(0)
    branch_a = base.transfer(keypairs[0], keypairs[1].public)
    branch_b = base.transfer(keypairs[0], keypairs[2].public)
    comparison = compare_chains(branch_a, branch_b)
    assert comparison.relation is ChainRelation.FORK
    assert comparison.fork_index == 0
    assert comparison.culprit == keypairs[0].public
    assert comparison.is_violation


def test_fork_detects_culprit_mid_chain(minted, keypairs):
    base = minted(0).transfer(keypairs[0], keypairs[1].public)
    branch_a = base.transfer(keypairs[1], keypairs[2].public)
    branch_b = base.transfer(keypairs[1], keypairs[3].public)
    comparison = compare_chains(branch_a, branch_b)
    assert comparison.culprit == keypairs[1].public
    assert comparison.fork_index == 1


def test_fork_after_common_long_prefix(minted, keypairs):
    base = (
        minted(0)
        .transfer(keypairs[0], keypairs[1].public)
        .transfer(keypairs[1], keypairs[2].public)
    )
    branch_a = base.transfer(keypairs[2], keypairs[3].public)
    branch_b = base.redeem(keypairs[2])
    comparison = compare_chains(branch_a, branch_b)
    assert comparison.relation is ChainRelation.FORK
    assert comparison.culprit == keypairs[2].public
    assert comparison.is_violation  # transfer vs redeem double-spend


def test_nonswap_redemption_fork_is_sanctioned(minted, keypairs):
    base = minted(0).transfer(keypairs[0], keypairs[1].public)
    live = base.transfer(keypairs[1], keypairs[2].public)
    nonswap = base.redeem(keypairs[1], non_swappable=True)
    comparison = compare_chains(live, nonswap)
    assert comparison.relation is ChainRelation.FORK
    assert comparison.sanctioned
    assert not comparison.is_violation


def test_regular_redemption_fork_is_a_violation(minted, keypairs):
    base = minted(0).transfer(keypairs[0], keypairs[1].public)
    live = base.transfer(keypairs[1], keypairs[2].public)
    redeemed = base.redeem(keypairs[1])
    assert compare_chains(live, redeemed).is_violation


def test_different_identities_rejected(minted):
    a = minted(0, timestamp=0.0)
    b = minted(0, timestamp=10.0)
    with pytest.raises(DescriptorError):
        compare_chains(a, b)


def test_symmetry_of_fork_culprit(minted, keypairs):
    base = minted(0).transfer(keypairs[0], keypairs[1].public)
    branch_a = base.transfer(keypairs[1], keypairs[2].public)
    branch_b = base.transfer(keypairs[1], keypairs[3].public)
    assert (
        compare_chains(branch_a, branch_b).culprit
        == compare_chains(branch_b, branch_a).culprit
    )
