"""Unit tests for violation proofs."""

from repro.core.proofs import (
    CloningProof,
    FrequencyProof,
    build_cloning_proof,
    build_frequency_proof,
)

PERIOD = 10.0


def test_cloning_proof_builds_and_validates(registry, minted, keypairs):
    base = minted(0).transfer(keypairs[0], keypairs[1].public)
    branch_a = base.transfer(keypairs[1], keypairs[2].public)
    branch_b = base.transfer(keypairs[1], keypairs[3].public)
    proof = build_cloning_proof(branch_a, branch_b)
    assert proof is not None
    assert proof.culprit == keypairs[1].public
    assert proof.validate(registry, PERIOD)


def test_no_cloning_proof_for_compatible_chains(minted, keypairs):
    short = minted(0).transfer(keypairs[0], keypairs[1].public)
    long = short.transfer(keypairs[1], keypairs[2].public)
    assert build_cloning_proof(short, long) is None


def test_no_cloning_proof_across_identities(minted, keypairs):
    a = minted(0, timestamp=0.0).transfer(keypairs[0], keypairs[1].public)
    b = minted(1, timestamp=0.0).transfer(keypairs[1], keypairs[2].public)
    assert build_cloning_proof(a, b) is None


def test_cloning_proof_with_wrong_culprit_fails_validation(
    registry, minted, keypairs
):
    base = minted(0).transfer(keypairs[0], keypairs[1].public)
    branch_a = base.transfer(keypairs[1], keypairs[2].public)
    branch_b = base.transfer(keypairs[1], keypairs[3].public)
    lying = CloningProof(
        first=branch_a, second=branch_b, culprit=keypairs[0].public
    )
    assert not lying.validate(registry, PERIOD)


def test_frequency_proof_builds_and_validates(registry, minted, keypairs):
    a = minted(0, timestamp=100.0).transfer(keypairs[0], keypairs[1].public)
    b = minted(0, timestamp=104.0).transfer(keypairs[0], keypairs[2].public)
    proof = build_frequency_proof(a, b, PERIOD)
    assert proof is not None
    assert proof.culprit == keypairs[0].public
    assert proof.validate(registry, PERIOD)


def test_no_frequency_proof_for_legal_spacing(minted, keypairs):
    a = minted(0, timestamp=100.0).transfer(keypairs[0], keypairs[1].public)
    b = minted(0, timestamp=110.0).transfer(keypairs[0], keypairs[2].public)
    assert build_frequency_proof(a, b, PERIOD) is None


def test_no_frequency_proof_for_same_timestamp(minted, keypairs):
    a = minted(0, timestamp=100.0).transfer(keypairs[0], keypairs[1].public)
    b = minted(0, timestamp=100.0).transfer(keypairs[0], keypairs[2].public)
    # Same identity: that is a cloning matter, not frequency.
    assert build_frequency_proof(a, b, PERIOD) is None


def test_no_frequency_proof_for_different_creators(minted, keypairs):
    a = minted(0, timestamp=100.0).transfer(keypairs[0], keypairs[1].public)
    b = minted(1, timestamp=104.0).transfer(keypairs[1], keypairs[2].public)
    assert build_frequency_proof(a, b, PERIOD) is None


def test_unsigned_descriptors_cannot_prove_frequency(minted, keypairs):
    # Bare mints carry no creator signature; they prove nothing.
    a = minted(0, timestamp=100.0)
    b = minted(0, timestamp=104.0)
    assert build_frequency_proof(a, b, PERIOD) is None
    fake = FrequencyProof(first=a, second=b, culprit=keypairs[0].public)
    assert not fake.validate(object(), PERIOD)


def test_frequency_proof_boundary_is_strict(registry, minted, keypairs):
    a = minted(0, timestamp=100.0).transfer(keypairs[0], keypairs[1].public)
    b = minted(0, timestamp=100.0 + PERIOD).transfer(
        keypairs[0], keypairs[2].public
    )
    assert build_frequency_proof(a, b, PERIOD) is None
    c = minted(0, timestamp=100.0 + PERIOD - 1e-6).transfer(
        keypairs[0], keypairs[2].public
    )
    assert build_frequency_proof(a, c, PERIOD) is not None
