"""Unit tests for the sample cache (the §IV-B checks)."""

import pytest

from repro.core.proofs import CloningProof, FrequencyProof
from repro.core.samples import SampleCache

PERIOD = 10.0


@pytest.fixture
def cache():
    return SampleCache(horizon_cycles=10, period_seconds=PERIOD)


def test_first_observation_yields_no_proofs(cache, minted, keypairs):
    d = minted(0).transfer(keypairs[0], keypairs[1].public)
    assert cache.observe(d, cycle=0) == []
    assert cache.get(d.identity) is d


def test_reobserving_same_object_is_silent(cache, minted, keypairs):
    d = minted(0).transfer(keypairs[0], keypairs[1].public)
    cache.observe(d, cycle=0)
    assert cache.observe(d, cycle=3) == []


def test_longer_compatible_chain_is_retained(cache, minted, keypairs):
    short = minted(0).transfer(keypairs[0], keypairs[1].public)
    long = short.transfer(keypairs[1], keypairs[2].public)
    cache.observe(short, cycle=0)
    assert cache.observe(long, cycle=1) == []
    assert cache.get(short.identity) is long
    # A stale copy arriving later neither conflicts nor downgrades.
    assert cache.observe(short, cycle=2) == []
    assert cache.get(short.identity) is long


def test_fork_yields_cloning_proof(cache, minted, keypairs):
    base = minted(0).transfer(keypairs[0], keypairs[1].public)
    branch_a = base.transfer(keypairs[1], keypairs[2].public)
    branch_b = base.transfer(keypairs[1], keypairs[3].public)
    cache.observe(branch_a, cycle=0)
    proofs = cache.observe(branch_b, cycle=1)
    assert len(proofs) == 1
    assert isinstance(proofs[0], CloningProof)
    assert proofs[0].culprit == keypairs[1].public


def test_sanctioned_nonswap_fork_yields_no_proof(cache, minted, keypairs):
    base = minted(0).transfer(keypairs[0], keypairs[1].public)
    live = base.transfer(keypairs[1], keypairs[2].public)
    nonswap = base.redeem(keypairs[1], non_swappable=True)
    cache.observe(live, cycle=0)
    assert cache.observe(nonswap, cycle=1) == []


def test_frequency_violation_detected(cache, minted, keypairs):
    a = minted(0, timestamp=100.0).transfer(keypairs[0], keypairs[1].public)
    b = minted(0, timestamp=103.0).transfer(keypairs[0], keypairs[2].public)
    cache.observe(a, cycle=0)
    proofs = cache.observe(b, cycle=0)
    assert len(proofs) == 1
    assert isinstance(proofs[0], FrequencyProof)
    assert proofs[0].culprit == keypairs[0].public


def test_legal_minting_cadence_passes(cache, minted, keypairs):
    for cycle in range(5):
        d = minted(0, timestamp=cycle * PERIOD).transfer(
            keypairs[0], keypairs[1].public
        )
        assert cache.observe(d, cycle=cycle) == []


def test_frequency_check_between_non_adjacent_arrival_order(
    cache, minted, keypairs
):
    # Arrive out of chronological order: 100 and 120 are legal; 111
    # conflicts with 120 (Δ=9); 118 conflicts with both 111 and 120.
    stamps_and_proofs = [(100.0, 0), (120.0, 0), (111.0, 1), (118.0, 2)]
    for index, (stamp, expected) in enumerate(stamps_and_proofs):
        d = minted(0, timestamp=stamp).transfer(
            keypairs[0], keypairs[1].public
        )
        proofs = cache.observe(d, cycle=index)
        assert len(proofs) == expected, stamp


def test_expiry_drops_old_entries(cache, minted, keypairs):
    d = minted(0).transfer(keypairs[0], keypairs[1].public)
    cache.observe(d, cycle=0)
    assert len(cache) == 1
    cache.expire(cycle=10)
    assert len(cache) == 0
    assert cache.get(d.identity) is None


def test_expired_conflicts_are_no_longer_detected(cache, minted, keypairs):
    base = minted(0).transfer(keypairs[0], keypairs[1].public)
    branch_a = base.transfer(keypairs[1], keypairs[2].public)
    branch_b = base.transfer(keypairs[1], keypairs[3].public)
    cache.observe(branch_a, cycle=0)
    cache.expire(cycle=50)
    # The window closed: this is exactly why old clones need the
    # redemption cache (Fig 7).
    assert cache.observe(branch_b, cycle=50) == []


def test_forget_creator_purges(cache, minted, keypairs):
    for stamp in (0.0, PERIOD, 2 * PERIOD):
        cache.observe(
            minted(0, timestamp=stamp).transfer(keypairs[0], keypairs[1].public),
            cycle=0,
        )
    cache.observe(
        minted(1).transfer(keypairs[1], keypairs[2].public), cycle=0
    )
    assert cache.forget_creator(keypairs[0].public) == 3
    assert len(cache) == 1


def test_constructor_validation():
    with pytest.raises(ValueError):
        SampleCache(horizon_cycles=0, period_seconds=PERIOD)
    with pytest.raises(ValueError):
        SampleCache(horizon_cycles=5, period_seconds=0)
