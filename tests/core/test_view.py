"""Unit tests for the SecureCyclon view."""

import random

import pytest

from repro.core.view import SecureView


@pytest.fixture
def view(keypairs):
    return SecureView(owner_id=keypairs[4].public, capacity=4)


def owned(minted, keypairs, creator, holder=4, timestamp=0.0):
    return minted(creator, timestamp).transfer(
        keypairs[creator], keypairs[holder].public
    )


def test_insert_and_capacity(view, minted, keypairs):
    for i, stamp in enumerate((0.0, 10.0, 20.0, 30.0, 40.0)):
        view.insert(owned(minted, keypairs, creator=i % 3, timestamp=stamp))
    assert len(view) == 4
    assert view.free_slots == 0


def test_self_created_rejected(view, minted, keypairs):
    d = minted(4).transfer(keypairs[4], keypairs[0].public)
    assert not view.insert(d)


def test_same_identity_not_duplicated(view, minted, keypairs):
    d = owned(minted, keypairs, creator=0)
    assert view.insert(d)
    assert not view.insert(d)
    assert len(view) == 1


def test_two_tokens_of_same_creator_coexist(view, minted, keypairs):
    a = owned(minted, keypairs, creator=0, timestamp=0.0)
    b = owned(minted, keypairs, creator=0, timestamp=10.0)
    assert view.insert(a)
    assert view.insert(b)
    assert len(view) == 2


def test_swappable_upgrade_over_nonswappable(view, minted, keypairs):
    d = owned(minted, keypairs, creator=0)
    assert view.insert(d, non_swappable=True)
    assert view.non_swappable_count() == 1
    assert view.insert(d, non_swappable=False)
    assert view.non_swappable_count() == 0
    assert len(view) == 1
    # No downgrade in the other direction.
    assert not view.insert(d, non_swappable=True)
    assert view.non_swappable_count() == 0


def test_oldest_is_min_timestamp(view, minted, keypairs):
    view.insert(owned(minted, keypairs, creator=0, timestamp=30.0))
    view.insert(owned(minted, keypairs, creator=1, timestamp=10.0))
    view.insert(owned(minted, keypairs, creator=2, timestamp=20.0))
    assert view.oldest().timestamp == 10.0


def test_pop_random_swappable_skips_non_swappable(view, minted, keypairs):
    view.insert(owned(minted, keypairs, creator=0), non_swappable=True)
    view.insert(owned(minted, keypairs, creator=1))
    popped = view.pop_random_swappable(5, random.Random(0))
    assert len(popped) == 1
    assert popped[0].creator == keypairs[1].public
    assert view.non_swappable_count() == 1


def test_pop_random_swappable_exclude_creator(view, minted, keypairs):
    view.insert(owned(minted, keypairs, creator=0))
    view.insert(owned(minted, keypairs, creator=1))
    popped = view.pop_random_swappable(
        5, random.Random(0), exclude_creator=keypairs[0].public
    )
    assert [entry.creator for entry in popped] == [keypairs[1].public]


def test_purge_creator(view, minted, keypairs):
    view.insert(owned(minted, keypairs, creator=0, timestamp=0.0))
    view.insert(owned(minted, keypairs, creator=0, timestamp=10.0))
    view.insert(owned(minted, keypairs, creator=1))
    assert view.purge_creator(keypairs[0].public) == 2
    assert len(view) == 1


def test_purge_if(view, minted, keypairs):
    view.insert(owned(minted, keypairs, creator=0), non_swappable=True)
    view.insert(owned(minted, keypairs, creator=1))
    assert view.purge_if(lambda entry: entry.non_swappable) == 1
    assert view.non_swappable_count() == 0


def test_remove_identity(view, minted, keypairs):
    d = owned(minted, keypairs, creator=0)
    view.insert(d)
    entry = view.remove_identity(d.identity)
    assert entry is not None and entry.descriptor is d
    assert view.remove_identity(d.identity) is None


def test_remove_entry(view, minted, keypairs):
    d = owned(minted, keypairs, creator=0)
    view.insert(d)
    entry = view.entry_for_creator(keypairs[0].public)
    assert view.remove_entry(entry)
    assert not view.remove_entry(entry)


def test_neighbor_ids_and_lookup(view, minted, keypairs):
    view.insert(owned(minted, keypairs, creator=0))
    view.insert(owned(minted, keypairs, creator=1))
    assert set(view.neighbor_ids()) == {
        keypairs[0].public,
        keypairs[1].public,
    }
    assert view.contains_creator(keypairs[0].public)
    assert not view.contains_creator(keypairs[2].public)


def test_invalid_capacity(keypairs):
    with pytest.raises(ValueError):
        SecureView(owner_id=keypairs[0].public, capacity=0)
