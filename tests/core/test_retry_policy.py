"""Retry-after-timeout: safe re-attempts of timed-out dialogue openings.

The §V-A accounting makes a timed-out opening safe in isolation; these
tests prove the *retry* layer keeps it safe:

* a retried dialogue redeems a different descriptor — the timed-out
  redemption is spent and never re-sent, so no partner ever sees the
  same token twice (no ``already-redeemed`` rejections);
* retries never duplicate the cycle's single fresh mint (only
  un-opened dialogues retry, and backoff re-checks the §IV-B guard);
* retry combined with per-node clock drift never trips the
  frequency-violation detector for honest nodes;
* the policy is inert under the cycle runtime.
"""

import pytest

from repro.core.config import SecureCyclonConfig
from repro.errors import ConfigError
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.links import view_fill_fraction
from repro.sim.clock import DriftPlan
from repro.sim.retry import RetryPolicy
from repro.sim.scheduler import EventScheduler, PeriodJitter
from tests.core.test_timeout_partial_failure import AlternatingLatency


def _secure_config(retry, view_length=6):
    return SecureCyclonConfig(
        view_length=view_length, swap_length=3, retry=retry
    )


def _reply_timeout_overlay(retry, n=24, seed=71, **config_kwargs):
    """Every opening's reply times out (delivered=True, token spent)."""
    scheduler = EventScheduler(
        latency=AlternatingLatency(request_s=1.0, reply_s=9.0),
        timeout_s=5.0,
    )
    return build_secure_overlay(
        n=n,
        config=SecureCyclonConfig(
            view_length=6, swap_length=3, retry=retry, **config_kwargs
        ),
        seed=seed,
        runtime=scheduler,
    )


def test_retry_policy_validation():
    with pytest.raises(ConfigError):
        RetryPolicy(mode="sometimes")
    with pytest.raises(ConfigError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ConfigError):
        RetryPolicy(backoff_s=0.0)
    assert RetryPolicy().retries == 0
    assert RetryPolicy(mode="immediate", max_retries=3).retries == 3


def test_immediate_retry_never_double_spends():
    """With every reply timing out, each activation burns exactly
    1 + max_retries distinct tokens — and no partner ever rejects a
    replayed redemption, because none is ever replayed."""
    retries = 2
    overlay = _reply_timeout_overlay(
        RetryPolicy(mode="immediate", max_retries=retries)
    )
    overlay.run(2)
    engine = overlay.engine
    timeouts = engine.trace.count("secure.open_timeout")
    retried = engine.trace.count("secure.retry_immediate")
    assert retried > 0
    # A replayed (already spent) redemption would be rejected by the
    # partner with reason "already-redeemed"; none may exist.
    rejections = engine.trace.of_kind("secure.open_rejected")
    assert not [
        event
        for event in rejections
        if event.detail["reason"] == "already-redeemed"
    ]
    # Every timed-out attempt redeemed a distinct descriptor: two
    # cycles of (1 + retries) attempts each drain exactly that many
    # slots from every six-slot view (floor: views can't go negative).
    per_cycle = 1 + retries
    expected_fill = max(0.0, 1.0 - 2 * per_cycle / 6)
    assert view_fill_fraction(engine) == pytest.approx(expected_fill)
    # Every attempt (first or retried) shows up as its own timeout.
    assert timeouts > retried


def test_immediate_retry_recovers_lost_exchanges_under_partial_attack():
    """Against a timeout-inducing minority, retrying restores most of
    the view fill the no-retry overlay loses."""
    from repro.adversary.timing import TimeoutInducer

    def overlay_with(retry):
        return build_secure_overlay(
            n=30,
            config=_secure_config(retry),
            malicious=3,
            attack_start=0,
            seed=11,
            attacker_cls=TimeoutInducer,
            runtime=EventScheduler(latency=None, timeout_s=5.0),
        )

    no_retry = overlay_with(RetryPolicy())
    no_retry.run(8)
    with_retry = overlay_with(RetryPolicy(mode="immediate", max_retries=2))
    with_retry.run(8)
    assert with_retry.engine.trace.count("secure.retry_immediate") > 0
    assert view_fill_fraction(with_retry.engine) > view_fill_fraction(
        no_retry.engine
    )


def test_backoff_retry_fires_later_and_is_rate_limit_guarded():
    overlay = _reply_timeout_overlay(
        RetryPolicy(mode="backoff", max_retries=1, backoff_s=1.0)
    )
    overlay.run(2)
    engine = overlay.engine
    assert engine.trace.count("secure.retry_scheduled") > 0
    fired = engine.trace.count("secure.retry_backoff")
    limited = engine.trace.count("secure.retry_rate_limited")
    assert fired + limited > 0
    # Backoff re-attempts also never replay a redemption.
    rejections = engine.trace.of_kind("secure.open_rejected")
    assert not [
        event
        for event in rejections
        if event.detail["reason"] == "already-redeemed"
    ]


def test_retry_never_mints_twice_per_cycle():
    """The §IV-B frequency rule survives aggressive retrying: honest
    nodes discover no frequency violation against each other."""
    overlay = _reply_timeout_overlay(
        RetryPolicy(mode="immediate", max_retries=3)
    )
    overlay.run(3)
    engine = overlay.engine
    assert engine.trace.count("secure.violation_found") == 0
    assert engine.trace.count("secure.blacklisted") == 0


def test_retry_plus_drift_trips_no_frequency_detector():
    """The satellite guarantee: immediate retries + bounded per-node
    clock drift + timer jitter never incriminate an honest node."""
    scheduler = EventScheduler(
        latency=AlternatingLatency(request_s=1.0, reply_s=9.0),
        timeout_s=5.0,
        jitter=PeriodJitter(mode="uniform", spread=0.2),
    )
    overlay = build_secure_overlay(
        n=24,
        config=SecureCyclonConfig(
            view_length=6,
            swap_length=3,
            retry=RetryPolicy(mode="immediate", max_retries=2),
            frequency_tolerance_seconds=1.0,
        ),
        seed=29,
        runtime=scheduler,
        drift=DriftPlan(max_skew_s=2.0, max_rate=0.003),
    )
    overlay.run(6)
    engine = overlay.engine
    assert engine.trace.count("secure.retry_immediate") > 0
    assert engine.trace.count("secure.violation_found") == 0
    assert engine.trace.count("secure.blacklisted") == 0


def test_retry_is_inert_under_the_cycle_runtime():
    """The cycle runtime has no timeouts, so an aggressive policy must
    not change a seeded run at all (golden-series safety)."""
    plain = build_secure_overlay(
        n=20, config=_secure_config(RetryPolicy()), seed=5
    )
    plain.run(5)
    retrying = build_secure_overlay(
        n=20,
        config=_secure_config(
            RetryPolicy(mode="immediate", max_retries=3)
        ),
        seed=5,
    )
    retrying.run(5)
    assert retrying.engine.trace.count("secure.retry_immediate") == 0
    plain_views = {
        nid: list(node.view.neighbor_ids())
        for nid, node in plain.engine.nodes.items()
    }
    retry_views = {
        nid: list(node.view.neighbor_ids())
        for nid, node in retrying.engine.nodes.items()
    }
    assert plain_views == retry_views
