"""Unit tests for wire sizes and serialisation."""

import pytest

from repro.core.exchange import (
    BulkSwapMessage,
    GossipAccept,
    GossipOpen,
    GossipReject,
    ProofFlood,
    TransferMessage,
    TransferReply,
)
from repro.core.proofs import build_cloning_proof
from repro.core.wire import (
    HOP_BITS,
    NODE_INFO_BITS,
    decode_descriptor,
    decode_proof,
    descriptor_bits,
    encode_descriptor,
    encode_proof,
    encoded_descriptor_size,
    payload_bits,
    payload_bytes,
    proof_bits,
)
from repro.errors import DescriptorError


def test_paper_budget_constants():
    assert NODE_INFO_BITS == 368
    assert HOP_BITS == 512


def test_descriptor_bits_grow_per_hop(minted, keypairs):
    d = minted(0)
    assert descriptor_bits(d) == 368
    d = d.transfer(keypairs[0], keypairs[1].public)
    assert descriptor_bits(d) == 368 + 512
    d = d.transfer(keypairs[1], keypairs[2].public)
    assert descriptor_bits(d) == 368 + 2 * 512


def test_paper_example_descriptor_size(minted, keypairs):
    """§VI-A: six transfers -> 3440 bits = 430 bytes."""
    d = minted(0)
    owners = [1, 2, 3, 1, 2, 3]
    keypair = keypairs[0]
    for owner in owners:
        d = d.transfer(keypair, keypairs[owner].public)
        keypair = keypairs[owner]
    assert descriptor_bits(d) == 3440
    assert descriptor_bits(d) // 8 == 430


def test_payload_bits_cover_all_messages(minted, keypairs):
    d = minted(0).transfer(keypairs[0], keypairs[1].public)
    base = minted(1).transfer(keypairs[1], keypairs[2].public)
    proof = build_cloning_proof(
        base.transfer(keypairs[2], keypairs[3].public),
        base.transfer(keypairs[2], keypairs[4].public),
    )
    redemption = d.redeem(keypairs[1])
    messages = [
        GossipOpen(redemption=redemption, samples=(d,), proofs=(proof,)),
        GossipAccept(samples=(d,), proofs=(proof,)),
        GossipReject(reason="x", proofs=(proof,)),
        TransferMessage(descriptor=d, round_index=0),
        TransferReply(descriptor=d),
        TransferReply(descriptor=None),
        BulkSwapMessage(descriptors=(d, d)),
        ProofFlood(proof=proof),
    ]
    for message in messages:
        bits = payload_bits(message)
        assert bits > 0
        assert payload_bytes(message) == (bits + 7) // 8
    assert proof_bits(proof) == descriptor_bits(proof.first) + descriptor_bits(
        proof.second
    )


def test_descriptor_roundtrip(minted, keypairs, registry):
    d = (
        minted(0, timestamp=123.5)
        .transfer(keypairs[0], keypairs[1].public)
        .transfer(keypairs[1], keypairs[2].public)
        .redeem(keypairs[2])
    )
    decoded = decode_descriptor(encode_descriptor(d))
    assert decoded == d
    from repro.core.descriptor import verify_descriptor

    assert verify_descriptor(decoded, registry)


def test_encoded_size_close_to_budget(minted, keypairs):
    d = minted(0).transfer(keypairs[0], keypairs[1].public)
    measured = encoded_descriptor_size(d)
    budget = descriptor_bits(d) // 8
    # The measured encoding carries a kind byte per hop and framing.
    assert budget <= measured <= budget + 16


def test_decode_rejects_garbage():
    with pytest.raises(DescriptorError):
        decode_descriptor(b"\x00" * 10)
    with pytest.raises(DescriptorError):
        decode_descriptor(b"")


def test_decode_rejects_trailing_bytes(minted, keypairs):
    data = encode_descriptor(minted(0))
    with pytest.raises(DescriptorError):
        decode_descriptor(data + b"\x00")


def test_proof_roundtrip(minted, keypairs, registry):
    base = minted(0).transfer(keypairs[0], keypairs[1].public)
    proof = build_cloning_proof(
        base.transfer(keypairs[1], keypairs[2].public),
        base.transfer(keypairs[1], keypairs[3].public),
    )
    decoded = decode_proof(encode_proof(proof))
    assert decoded.culprit == proof.culprit
    assert decoded.first == proof.first
    assert decoded.second == proof.second
    assert decoded.validate(registry, 10.0)


def test_decode_proof_rejects_garbage():
    with pytest.raises(DescriptorError):
        decode_proof(b"\x01" * 20)
