"""The §V-A partial-failure matrix under the event runtime's timeouts.

The paper enumerates what a lost message costs each side of a gossip
exchange; the existing drop-path tests (``tests/integration/
test_titfortat_fairness.py``) cover losses injected by the
:class:`~repro.sim.channel.DropPolicy`.  Under the event runtime the
same matrix is produced by *timing*: a round trip that exceeds the
dialogue timeout raises :class:`~repro.sim.channel.MessageTimeout`, and

* request leg timed out (``delivered=False``) — the partner never saw
  the redemption; the initiator's token is nevertheless spent locally
  (mirrors 100 % request loss: at most the redeemed descriptor is lost
  per cycle);
* request delivered, reply timed out (``delivered=True``) — the §V-A
  case-2 asymmetry: the partner processed the redemption, so the sent
  descriptor is marked spent on *both* sides, exactly like the
  drop-path reply-loss case.
"""

from repro.core.config import SecureCyclonConfig
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.links import view_fill_fraction
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.scheduler import EventScheduler


class AlternatingLatency(LatencyModel):
    """Request legs fast, reply legs slow, by strict alternation.

    The synchronous dialogue samples legs in request/reply order (and a
    request that beats the deadline always reaches the reply sample),
    so alternation prices every odd leg as a reply.  Only valid while
    nothing else samples the model — honest overlays flood no pushes.
    """

    def __init__(self, request_s, reply_s):
        self.request_s = request_s
        self.reply_s = reply_s
        self._count = 0

    def sample(self, rng, src=None, dst=None):
        value = self.request_s if self._count % 2 == 0 else self.reply_s
        self._count += 1
        return value


def _overlay(n, scheduler, seed):
    return build_secure_overlay(
        n=n,
        config=SecureCyclonConfig(view_length=6, swap_length=3),
        seed=seed,
        runtime=scheduler,
    )


def test_request_timeout_costs_at_most_the_redeemed_token():
    """Mirror of ``test_request_loss_costs_at_most_the_redeemed_token``:
    with every request leg past the deadline, each initiator loses
    exactly its redeemed descriptor per cycle and nothing else."""
    scheduler = EventScheduler(
        latency=ConstantLatency(delay_s=9.0), timeout_s=5.0
    )
    overlay = _overlay(30, scheduler, seed=63)
    before = {
        node.node_id: len(node.view)
        for node in overlay.engine.nodes.values()
    }
    overlay.engine.run(1)
    engine = overlay.engine
    for node in engine.nodes.values():
        assert before[node.node_id] - len(node.view) <= 1
    timeouts = engine.trace.of_kind("secure.open_timeout")
    assert timeouts
    assert all(event.detail["delivered"] is False for event in timeouts)


def test_reply_timeout_marks_sent_descriptor_spent_on_both_sides():
    """§V-A case 2 by timing: the partner processed the redemption, so
    the initiator's token is spent even though it saw nothing back."""
    scheduler = EventScheduler(
        latency=AlternatingLatency(request_s=1.0, reply_s=9.0),
        timeout_s=5.0,
    )
    overlay = _overlay(12, scheduler, seed=61)
    engine = overlay.engine
    before = {
        node.node_id: len(node.view) for node in engine.nodes.values()
    }
    redeemed_before = sum(
        len(node._redeemed_own_timestamps)
        for node in engine.nodes.values()
    )
    engine.run(1)

    timeouts = engine.trace.of_kind("secure.open_timeout")
    assert timeouts
    # The request leg always beat the deadline: every timeout is the
    # asymmetric delivered-but-unanswered case.
    assert all(event.detail["delivered"] is True for event in timeouts)
    # The partner side recorded the redemption — the spent token can
    # never be redeemed again anywhere, despite the initiator never
    # seeing an acknowledgement.
    redeemed_after = sum(
        len(node._redeemed_own_timestamps)
        for node in engine.nodes.values()
    )
    assert redeemed_after > redeemed_before
    # The initiator's cost is bounded exactly like the drop path's:
    # at most the one redeemed descriptor per cycle.
    for node in engine.nodes.values():
        assert before[node.node_id] - len(node.view) <= 1


def test_sustained_reply_timeouts_drain_exactly_one_token_per_cycle():
    """Every exchange dying at the open (reply always late) costs each
    node exactly its redeemed token per cycle — no more (nothing else
    is exposed) and no less (the token is spent at the partner): after
    three cycles a six-slot view is exactly half empty."""
    scheduler = EventScheduler(
        latency=AlternatingLatency(request_s=1.0, reply_s=9.0),
        timeout_s=5.0,
    )
    overlay = _overlay(24, scheduler, seed=71)
    overlay.run(3)
    assert view_fill_fraction(overlay.engine) == 0.5


def test_generous_timeout_is_a_no_op():
    """Control: same latency with patience to spare — no timeouts, and
    the overlay converges as healthily as the instantaneous runtime."""
    scheduler = EventScheduler(
        latency=ConstantLatency(delay_s=1.0), timeout_s=60.0
    )
    overlay = _overlay(24, scheduler, seed=71)
    overlay.run(12)
    engine = overlay.engine
    assert engine.trace.count("secure.open_timeout") == 0
    assert engine.trace.count("secure.round_timeout") == 0
    assert view_fill_fraction(engine) > 0.85
