"""Unit tests for the exchange message types."""

from repro.core.exchange import (
    BulkSwapMessage,
    BulkSwapReply,
    GossipAccept,
    GossipOpen,
    GossipReject,
    ProofFlood,
    TransferMessage,
    TransferReply,
)


def test_messages_are_immutable_value_objects(minted, keypairs):
    d = minted(0).transfer(keypairs[0], keypairs[1].public)
    redemption = d.redeem(keypairs[1])
    opening = GossipOpen(redemption=redemption, samples=(d,), proofs=())
    assert opening == GossipOpen(redemption=redemption, samples=(d,), proofs=())
    assert opening.non_swappable is False

    import dataclasses

    with __import__("pytest").raises(dataclasses.FrozenInstanceError):
        opening.non_swappable = True


def test_defaults():
    accept = GossipAccept()
    assert accept.samples == () and accept.proofs == ()
    reject = GossipReject(reason="nope")
    assert reject.proofs == ()
    reply = TransferReply()
    assert reply.descriptor is None
    bulk = BulkSwapMessage()
    assert bulk.descriptors == ()
    assert BulkSwapReply().descriptors == ()


def test_transfer_message_carries_round(minted, keypairs):
    d = minted(0).transfer(keypairs[0], keypairs[1].public)
    message = TransferMessage(descriptor=d, round_index=2)
    assert message.round_index == 2
    assert message.descriptor is d


def test_proof_flood_wraps_proof(minted, keypairs):
    from repro.core.proofs import build_cloning_proof

    base = minted(0).transfer(keypairs[0], keypairs[1].public)
    proof = build_cloning_proof(
        base.transfer(keypairs[1], keypairs[2].public),
        base.transfer(keypairs[1], keypairs[3].public),
    )
    flood = ProofFlood(proof=proof)
    assert flood.proof.culprit == keypairs[1].public
