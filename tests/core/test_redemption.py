"""Unit tests for the redemption cache (§V-C)."""

import pytest

from repro.core.redemption import RedemptionCache


def test_add_and_contents(minted, keypairs):
    cache = RedemptionCache(retention_cycles=5)
    d = minted(0).transfer(keypairs[0], keypairs[1].public).redeem(keypairs[1])
    cache.add(d, cycle=3)
    assert cache.contents() == [d]
    assert cache.find(d.identity) is d
    assert len(cache) == 1


def test_retention_window(minted, keypairs):
    cache = RedemptionCache(retention_cycles=5)
    d = minted(0).transfer(keypairs[0], keypairs[1].public).redeem(keypairs[1])
    cache.add(d, cycle=0)
    assert cache.expire(cycle=4) == 0
    assert len(cache) == 1
    assert cache.expire(cycle=5) == 1
    assert len(cache) == 0
    assert cache.find(d.identity) is None


def test_zero_retention_disables(minted, keypairs):
    cache = RedemptionCache(retention_cycles=0)
    d = minted(0).transfer(keypairs[0], keypairs[1].public).redeem(keypairs[1])
    cache.add(d, cycle=0)
    assert len(cache) == 0
    assert cache.contents() == []


def test_contents_order_is_oldest_first(minted, keypairs):
    cache = RedemptionCache(retention_cycles=10)
    descriptors = []
    for i in range(3):
        d = (
            minted(0, timestamp=float(i) * 10)
            .transfer(keypairs[0], keypairs[1].public)
            .redeem(keypairs[1])
        )
        cache.add(d, cycle=i)
        descriptors.append(d)
    assert cache.contents() == descriptors


def test_negative_retention_rejected():
    with pytest.raises(ValueError):
        RedemptionCache(retention_cycles=-1)
