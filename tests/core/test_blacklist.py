"""Unit tests for the blacklist."""

from repro.core.blacklist import Blacklist
from repro.core.proofs import build_cloning_proof


def make_proof(minted, keypairs, creator=0, cheat=1):
    base = minted(creator).transfer(keypairs[creator], keypairs[cheat].public)
    a = base.transfer(keypairs[cheat], keypairs[2].public)
    b = base.transfer(keypairs[cheat], keypairs[3].public)
    return build_cloning_proof(a, b)


def test_add_is_idempotent_per_culprit(minted, keypairs):
    blacklist = Blacklist()
    proof = make_proof(minted, keypairs)
    assert blacklist.add(proof) is True
    assert blacklist.add(proof) is False
    assert len(blacklist) == 1
    assert blacklist.is_blacklisted(keypairs[1].public)
    assert keypairs[1].public in blacklist


def test_proof_retrieval(minted, keypairs):
    blacklist = Blacklist()
    proof = make_proof(minted, keypairs)
    blacklist.add(proof)
    assert blacklist.proof_for(keypairs[1].public) is proof
    assert blacklist.proof_for(keypairs[0].public) is None
    assert blacklist.proofs() == [proof]
    assert blacklist.proofs_tuple() == (proof,)


def test_members_iteration(minted, keypairs):
    blacklist = Blacklist()
    blacklist.add(make_proof(minted, keypairs, creator=0, cheat=1))
    blacklist.add(make_proof(minted, keypairs, creator=2, cheat=3))
    assert set(blacklist.members()) == {
        keypairs[1].public,
        keypairs[3].public,
    }
