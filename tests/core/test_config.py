"""Unit tests for SecureCyclon configuration."""

import pytest

from repro.core.config import SecureCyclonConfig
from repro.errors import ConfigError


def test_defaults_match_paper_proposal():
    config = SecureCyclonConfig()
    assert config.view_length == 20
    assert config.swap_length == 3
    assert config.redemption_cache_cycles == 5
    assert config.tit_for_tat is True


def test_effective_sample_horizon_defaults_to_twice_view():
    assert SecureCyclonConfig(view_length=20).effective_sample_horizon == 40
    assert (
        SecureCyclonConfig(sample_horizon_cycles=7).effective_sample_horizon
        == 7
    )


def test_effective_timestamp_tolerance_defaults_to_period():
    config = SecureCyclonConfig()
    assert config.effective_timestamp_tolerance(10.0) == 10.0
    custom = SecureCyclonConfig(timestamp_tolerance_seconds=3.0)
    assert custom.effective_timestamp_tolerance(10.0) == 3.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"view_length": 0},
        {"swap_length": 0},
        {"view_length": 3, "swap_length": 4},
        {"redemption_cache_cycles": -1},
        {"sample_horizon_cycles": 0},
        {"timestamp_tolerance_seconds": -1.0},
        {"non_swappable_swap_limit": -1},
    ],
)
def test_validation(kwargs):
    with pytest.raises(ConfigError):
        SecureCyclonConfig(**kwargs)


def test_verification_knob_validation_and_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_VERIFICATION", raising=False)
    assert SecureCyclonConfig().effective_verification() == "sequential"
    explicit = SecureCyclonConfig(verification="batched")
    assert explicit.effective_verification() == "batched"
    with pytest.raises(ConfigError):
        SecureCyclonConfig(verification="vectorized")


def test_verification_env_override_resolves_at_call_time(monkeypatch):
    config = SecureCyclonConfig()
    monkeypatch.setenv("REPRO_VERIFICATION", "batched")
    assert config.effective_verification() == "batched"
    # Explicit values beat the environment.
    pinned = SecureCyclonConfig(verification="sequential")
    assert pinned.effective_verification() == "sequential"
    monkeypatch.setenv("REPRO_VERIFICATION", "nonsense")
    with pytest.raises(ConfigError):
        config.effective_verification()


def test_cyclon_config_accepts_the_knob_uniformly(monkeypatch):
    from repro.cyclon.config import CyclonConfig

    monkeypatch.delenv("REPRO_VERIFICATION", raising=False)
    assert CyclonConfig().effective_verification() == "sequential"
    assert (
        CyclonConfig(verification="batched").effective_verification()
        == "batched"
    )
    with pytest.raises(ConfigError):
        CyclonConfig(verification="bogus")
