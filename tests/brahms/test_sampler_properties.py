"""Property tests for the Brahms min-wise sampler."""

import random

from hypothesis import given, settings, strategies as st

from repro.brahms.sampler import MinWiseSampler


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    ids=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1),
)
def test_sample_is_order_independent(seed, ids):
    """The min-hash winner depends only on the *set* observed."""
    rng = random.Random(seed)
    sampler_a = MinWiseSampler(rng)
    sampler_b = MinWiseSampler(random.Random(seed))
    # Same seed stream → same secret; feed permuted orders.
    shuffled = list(ids)
    random.Random(seed + 1).shuffle(shuffled)
    for node_id in ids:
        sampler_a.observe(node_id)
    for node_id in shuffled:
        sampler_b.observe(node_id)
    assert sampler_a.sample() == sampler_b.sample()


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    ids=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1),
    flood=st.integers(min_value=1, max_value=50),
)
def test_duplicates_cannot_displace_the_sample(seed, ids, flood):
    """The adversarial over-representation defence: observing one ID a
    thousand times is no different from observing it once."""
    base = MinWiseSampler(random.Random(seed))
    flooded = MinWiseSampler(random.Random(seed))
    for node_id in ids:
        base.observe(node_id)
        flooded.observe(node_id)
    attacker_id = ids[0]
    for _ in range(flood):
        flooded.observe(attacker_id)
    assert flooded.sample() == base.sample()


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=20)
def test_sample_is_roughly_uniform_across_slots(seed):
    """Across many independent slots, every stream element wins some
    slot — no systematic bias toward any ID."""
    ids = list(range(8))
    winners = set()
    rng = random.Random(seed)
    for _ in range(400):
        sampler = MinWiseSampler(rng)
        for node_id in ids:
            sampler.observe(node_id)
        winners.add(sampler.sample())
    assert len(winners) == len(ids)


def test_invalidate_and_resample():
    sampler = MinWiseSampler(random.Random(5))
    for node_id in ("a", "b", "c"):
        sampler.observe(node_id)
    winner = sampler.sample()
    assert sampler.invalidate_if(lambda nid: nid == winner)
    assert sampler.sample() is None
    sampler.observe("d")
    assert sampler.sample() == "d"
