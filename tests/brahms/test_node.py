"""Behavioural tests for the Brahms node and its attacker."""

import random

import pytest

from repro.brahms.config import BrahmsConfig
from repro.brahms.node import BrahmsHubAttacker, BrahmsNode
from repro.adversary.coordinator import MaliciousCoordinator
from repro.errors import ConfigError
from repro.sim.engine import Engine, SimConfig


def build_brahms_world(n=60, malicious=0, attack_start=10, seed=8):
    engine = Engine(SimConfig(seed=seed))
    config = BrahmsConfig(view_size=8, sampler_size=8)
    coordinator = MaliciousCoordinator(
        attack_start_cycle=attack_start, rng=engine.rng_hub.stream("adv")
    )
    nodes = []
    for i in range(n):
        node_id = f"n{i}"
        if i < malicious:
            node = BrahmsHubAttacker(
                node_id,
                config,
                engine.rng_hub.stream(node_id),
                coordinator=coordinator,
            )
            keypair = engine.registry.new_keypair(engine.rng_hub.stream("k"))
            coordinator._keypairs[node_id] = keypair  # ids are strings here
            coordinator._addresses[node_id] = None
        else:
            node = BrahmsNode(node_id, config, engine.rng_hub.stream(node_id))
        engine.add_node(node)
        nodes.append(node)
    coordinator.note_legit_population(
        [f"n{i}" for i in range(malicious, n)]
    )
    rng = engine.rng_hub.stream("boot")
    all_ids = [f"n{i}" for i in range(n)]
    for node in nodes:
        node.seed_view(rng.sample(all_ids, 10))
    return engine, nodes, coordinator


def test_config_validation():
    with pytest.raises(ConfigError):
        BrahmsConfig(alpha=0.5, beta=0.5, gamma=0.5)
    with pytest.raises(ConfigError):
        BrahmsConfig(view_size=0)
    config = BrahmsConfig(view_size=10)
    assert config.push_slots + config.pull_slots + config.sample_slots <= 10


def test_views_stay_populated():
    engine, nodes, _ = build_brahms_world()
    engine.run(15)
    sizes = [len(node.view) for node in nodes]
    assert min(sizes) > 0
    assert sum(sizes) / len(sizes) > 4


def test_samplers_fill_up():
    engine, nodes, _ = build_brahms_world()
    engine.run(15)
    legit = [n for n in nodes if not n.is_malicious]
    assert all(len(node.samplers.samples()) == 8 for node in legit)


def test_push_flood_defense_limits_view_bias():
    """Brahms bounds (but does not eliminate) malicious representation."""
    engine, nodes, coordinator = build_brahms_world(
        n=60, malicious=6, attack_start=5
    )
    engine.run(40)
    legit = [n for n in nodes if not n.is_malicious]
    malicious_ids = set(coordinator.members())
    view_share = sum(
        sum(1 for v in node.view if v in malicious_ids) / max(1, len(node.view))
        for node in legit
    ) / len(legit)
    sample_share = sum(
        sum(1 for s in node.samplers.samples() if s in malicious_ids)
        / max(1, len(node.samplers.samples()))
        for node in legit
    ) / len(legit)
    # The sampler stays near the true population share (10%) even while
    # the gossip view gets polluted well above it.
    assert sample_share < 0.35
    assert view_share < 0.9
    # And pollution never reaches SecureCyclon's post-purge zero.
    assert view_share > 0.0
