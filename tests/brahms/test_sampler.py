"""Unit tests for the min-wise samplers."""

import random
from collections import Counter

from repro.brahms.sampler import MinWiseSampler, SamplerArray


def test_sampler_is_deterministic_over_stream_order():
    rng = random.Random(1)
    sampler = MinWiseSampler(rng)
    ids = [f"n{i}" for i in range(50)]
    for node_id in ids:
        sampler.observe(node_id)
    first = sampler.sample()

    sampler2 = MinWiseSampler.__new__(MinWiseSampler)
    sampler2._seed = sampler._seed
    sampler2._best_value = None
    sampler2._best_id = None
    shuffled = list(ids)
    random.Random(9).shuffle(shuffled)
    for node_id in shuffled:
        sampler2.observe(node_id)
    assert sampler2.sample() == first


def test_duplicates_do_not_bias():
    """An adversary pushing its ID a million times gains nothing."""
    rng = random.Random(2)
    wins = 0
    for trial in range(200):
        sampler = MinWiseSampler(random.Random(trial))
        for node_id in (f"honest{i}" for i in range(9)):
            sampler.observe(node_id)
        for _ in range(50):
            sampler.observe("attacker")
        if sampler.sample() == "attacker":
            wins += 1
    # 1 of 10 distinct IDs: expect ~20/200 wins, far below flooding share.
    assert wins < 60


def test_empty_sampler_returns_none():
    assert MinWiseSampler(random.Random(0)).sample() is None


def test_invalidate_if():
    sampler = MinWiseSampler(random.Random(0))
    sampler.observe("x")
    assert sampler.invalidate_if(lambda nid: nid == "x")
    assert sampler.sample() is None
    assert not sampler.invalidate_if(lambda nid: True)


def test_array_collects_distinctish_samples():
    array = SamplerArray(16, random.Random(3))
    array.observe_all(f"n{i}" for i in range(100))
    samples = array.samples()
    assert len(samples) == 16
    assert len(set(samples)) > 4  # independent permutations differ


def test_array_invalidate():
    array = SamplerArray(8, random.Random(3))
    array.observe_all(["a", "b"])
    before = sum(1 for s in array.samples() if s == "a")
    count = array.invalidate_if(lambda nid: nid == "a")
    assert count == before
    assert all(s != "a" for s in array.samples())
