"""Unit tests for the batched verification kernel and its plan.

Covers the flat-buffer MAC kernel (single-comparison settle, failure
localisation, buffer growth), the memo layers (per-object, cycle digest
memo, within-batch piggyback), equivalence with ``verify_descriptor``
verdict-for-verdict, and — most importantly — the cross-node memo
lifecycle: cycle-boundary reset and blacklist/purge invalidation,
including the scenario where node A's adoption blacklists a creator
whose chains node B's same-cycle batch then sees.
"""

import random

import pytest

from repro.core.config import SecureCyclonConfig
from repro.core.descriptor import (
    OwnershipHop,
    SecureDescriptor,
    mint,
    verify_descriptor,
)
from repro.core.samples import SampleCache
from repro.crypto.batch import VerificationPlan
from repro.crypto.registry import KeyRegistry
from repro.crypto.signing import Signature
from repro.experiments.scenarios import build_secure_overlay
from repro.sim.network import NetworkAddress

ADDRESS = NetworkAddress(host=1, port=1)


@pytest.fixture()
def registry():
    return KeyRegistry()


def make_keypairs(registry, count, seed=3):
    rng = random.Random(seed)
    return [registry.new_keypair(rng) for _ in range(count)]


def chain(keypairs, creator, path, ts=0.0):
    descriptor = mint(keypairs[creator], ADDRESS, ts)
    holder = keypairs[creator]
    for index in path:
        descriptor = descriptor.transfer(holder, keypairs[index].public)
        holder = keypairs[index]
    return descriptor


def rebuild(descriptor):
    """Wire-fidelity copy: identical content, fresh objects and memos."""
    hops = tuple(
        OwnershipHop(
            owner=hop.owner,
            kind=hop.kind,
            signature=Signature(
                signer=hop.signature.signer, mac=hop.signature.mac
            ),
        )
        for hop in descriptor.hops
    )
    return SecureDescriptor(
        creator=descriptor.creator,
        address=descriptor.address,
        timestamp=descriptor.timestamp,
        hops=hops,
    )


def tamper(descriptor, mac=b"\xff" * 32):
    last = descriptor.hops[-1]
    hops = descriptor.hops[:-1] + (
        OwnershipHop(
            owner=last.owner,
            kind=last.kind,
            signature=Signature(signer=last.signature.signer, mac=mac),
        ),
    )
    return SecureDescriptor(
        creator=descriptor.creator,
        address=descriptor.address,
        timestamp=descriptor.timestamp,
        hops=hops,
    )


# ----------------------------------------------------------------------
# kernel verdicts
# ----------------------------------------------------------------------


def test_batch_verdicts_match_sequential_verifier(registry):
    keypairs = make_keypairs(registry, 6)
    batch = [
        chain(keypairs, 0, (1, 2, 3)),
        tamper(chain(keypairs, 1, (2, 3))),
        chain(keypairs, 2, ()),  # hopless: owned by its creator
        tamper(chain(keypairs, 3, (4,)), mac=b"short"),
        chain(keypairs, 4, (5, 0)),
    ]
    plan = VerificationPlan(registry)
    plan.begin_cycle(0)
    got = plan.verify_batch([rebuild(d) for d in batch])

    reference = KeyRegistry()
    for keypair in keypairs:
        reference.register(keypair)
    expected = [
        verify_descriptor(rebuild(d), reference) for d in batch
    ]
    assert got == expected == [True, False, True, False, True]


def test_forged_chain_is_localised_not_contagious(registry):
    """One forged hop fails the batch-wide comparison; localisation
    must still pass every honest chain in the same batch."""
    keypairs = make_keypairs(registry, 6)
    honest = [chain(keypairs, i, ((i + 1) % 6,), ts=float(i)) for i in range(6)]
    batch = [rebuild(d) for d in honest]
    batch.insert(3, tamper(chain(keypairs, 0, (1, 2), ts=99.0)))
    plan = VerificationPlan(registry)
    plan.begin_cycle(0)
    verdicts = plan.verify_batch(batch)
    assert verdicts == [True, True, True, False, True, True, True]
    assert plan.chains_rejected == 1
    assert plan.chains_verified == 6


def test_unknown_signer_fails_batched_and_sequential(registry):
    keypairs = make_keypairs(registry, 3)
    stranger_registry = KeyRegistry()
    stranger = make_keypairs(stranger_registry, 1, seed=99)[0]
    descriptor = mint(stranger, ADDRESS, 0.0).transfer(
        stranger, keypairs[0].public
    )
    assert not verify_descriptor(rebuild(descriptor), registry)
    plan = VerificationPlan(registry)
    plan.begin_cycle(0)
    assert plan.verify_batch([rebuild(descriptor)]) == [False]


def test_structural_violations_rejected_without_mac_work(registry):
    keypairs = make_keypairs(registry, 3)
    redeemed = (
        mint(keypairs[0], ADDRESS, 0.0)
        .transfer(keypairs[0], keypairs[1].public)
        .redeem(keypairs[1])
    )
    # Graft a hop after the terminal redemption: structurally illegal.
    extra = chain(keypairs, 0, (1, 2), ts=5.0).hops[-1]
    grafted = SecureDescriptor(
        creator=redeemed.creator,
        address=redeemed.address,
        timestamp=redeemed.timestamp,
        hops=redeemed.hops + (extra,),
    )
    plan = VerificationPlan(registry)
    plan.begin_cycle(0)
    assert plan.verify_batch([grafted]) == [False]
    assert plan.macs_checked == 0
    assert not verify_descriptor(grafted, registry)


def test_buffer_growth_handles_batches_past_initial_capacity(registry):
    keypairs = make_keypairs(registry, 8)
    batch = [
        rebuild(chain(keypairs, i % 8, tuple((i + j + 1) % 8 for j in range(5)), ts=float(i * 10)))
        for i in range(40)  # 200 hops >> the 64-hop initial capacity
    ]
    plan = VerificationPlan(registry)
    plan.begin_cycle(0)
    assert all(plan.verify_batch(batch))
    assert plan.macs_checked == 200


# ----------------------------------------------------------------------
# memo layers
# ----------------------------------------------------------------------


def test_duplicate_digests_are_mac_checked_once(registry):
    keypairs = make_keypairs(registry, 4)
    original = chain(keypairs, 0, (1, 2))
    copies = [rebuild(original) for _ in range(5)]
    plan = VerificationPlan(registry)
    plan.begin_cycle(0)
    # Three copies in one batch: one kernel pass, two piggybacks.
    assert all(plan.verify_batch(copies[:3]))
    assert plan.macs_checked == 2  # one distinct chain, two hops
    assert plan.chains_verified == 1
    # Two more in a later batch of the same cycle: digest-memo hits
    # (fresh objects, so the per-object memo cannot answer).
    assert all(plan.verify_batch([rebuild(original), rebuild(original)]))
    assert plan.chains_verified == 1
    assert plan.digest_memo_hits == 2


def test_negative_verdicts_are_memoised_within_cycle(registry):
    keypairs = make_keypairs(registry, 3)
    forged = tamper(chain(keypairs, 0, (1, 2)))
    plan = VerificationPlan(registry)
    plan.begin_cycle(0)
    assert plan.verify_batch([forged]) == [False]
    checked = plan.macs_checked
    assert plan.verify_batch([rebuild(forged)]) == [False]
    assert plan.macs_checked == checked  # no second kernel pass
    assert plan.digest_memo_hits == 1


def test_begin_cycle_is_idempotent_and_resets_per_cycle(registry):
    keypairs = make_keypairs(registry, 3)
    descriptor = chain(keypairs, 0, (1,))
    plan = VerificationPlan(registry)
    plan.begin_cycle(0)
    assert plan.verify_batch([rebuild(descriptor)]) == [True]
    plan.begin_cycle(0)  # same cycle: must keep the memo
    assert plan.verify_batch([rebuild(descriptor)]) == [True]
    assert plan.digest_memo_hits == 1
    plan.begin_cycle(1)  # new cycle: memo dropped...
    assert plan.verify_batch([rebuild(descriptor)]) == [True]
    assert plan.digest_memo_hits == 1
    # ...though the rebuilt copy still rides the registry prefix-trust
    # cache, so no MACs were re-run for the already-attested chain.
    assert plan.macs_checked == 1


def test_verified_objects_short_circuit(registry):
    keypairs = make_keypairs(registry, 3)
    descriptor = chain(keypairs, 0, (1,))
    plan = VerificationPlan(registry)
    plan.begin_cycle(0)
    assert plan.verify(descriptor)
    assert plan.verify(descriptor)
    assert plan.object_memo_hits >= 1
    assert descriptor._verified_by is registry


# ----------------------------------------------------------------------
# cross-node memo invalidation (satellite: stale-entry scenario)
# ----------------------------------------------------------------------


def test_invalidate_creator_drops_memo_entries(registry):
    keypairs = make_keypairs(registry, 4)
    by_culprit = chain(keypairs, 0, (1,))
    by_other = chain(keypairs, 2, (3,))
    plan = VerificationPlan(registry)
    plan.begin_cycle(0)
    plan.verify_batch([rebuild(by_culprit), rebuild(by_other)])
    dropped = plan.invalidate_creator(keypairs[0].public)
    assert dropped == 1
    assert plan.invalidations == 1
    # The other creator's entry must survive.
    plan.verify_batch([rebuild(by_other)])
    assert plan.digest_memo_hits == 1


def test_same_cycle_blacklist_is_never_bypassed_via_shared_memo(registry):
    """Node A's adoption blacklists creator C; node B's same-cycle batch
    must not accept C's descriptors via the shared digest memo.

    The guarantee is structural — the memo caches *crypto* verdicts
    only, and every receiver filters against its own live blacklist
    after verification — and the plan additionally drops C's entries on
    purge.  Both properties are asserted here with two caches sharing
    one plan, exactly the engine-wide wiring.
    """
    keypairs = make_keypairs(registry, 6)
    culprit_kp = keypairs[0]
    culprit = culprit_kp.public
    plan = VerificationPlan(registry)
    plan.begin_cycle(7)

    period = 10.0
    cache_a = SampleCache(horizon_cycles=10, period_seconds=period)
    cache_b = SampleCache(horizon_cycles=10, period_seconds=period)
    blacklist_a: dict = {}
    blacklist_b: dict = {}
    proofs_a: list = []

    def adopt_a(proof, network, already_validated):
        # Node A's adoption: blacklist + purge + plan invalidation +
        # "flood" to node B (whose own adoption purges its state too) —
        # the same effects SecureCyclonNode._adopt_proof produces.
        proofs_a.append(proof)
        for blacklist, cache in (
            (blacklist_a, cache_a),
            (blacklist_b, cache_b),
        ):
            if proof.culprit not in blacklist:
                blacklist[proof.culprit] = proof
                cache.forget_creator(proof.culprit)
        plan.invalidate_creator(proof.culprit)

    honest_by_culprit = chain(keypairs, 0, (2,), ts=500.0)
    clone_a, clone_b = (
        mint(culprit_kp, ADDRESS, 100.0).transfer(culprit_kp, keypairs[3].public),
        mint(culprit_kp, ADDRESS, 100.0).transfer(culprit_kp, keypairs[4].public),
    )

    # Node A first observes C's honest-looking descriptor (the memo now
    # holds its digest), then the forked pair — adoption fires mid-batch.
    cache_a.observe_stream_planned(
        [rebuild(honest_by_culprit), rebuild(clone_a), rebuild(clone_b)],
        7, registry, blacklist_a, 1000.0, False, adopt_a, None, plan,
    )
    assert culprit in blacklist_a
    assert [p.kind for p in proofs_a] == ["cloning"]
    assert len(cache_a) == 0

    # Same cycle, node B: a rebuilt copy of the descriptor whose digest
    # the plan verified for A.  It must not land in B's cache.
    def adopt_b(proof, network, already_validated):  # pragma: no cover
        raise AssertionError("node B must not discover anything here")

    cache_b.observe_stream_planned(
        [rebuild(honest_by_culprit)],
        7, registry, blacklist_b, 1000.0, False, adopt_b, None, plan,
    )
    assert len(cache_b) == 0
    assert cache_b.get(honest_by_culprit.identity) is None


def test_overlay_under_attack_exercises_shared_plan_invalidation():
    """End-to-end: a batched-verification overlay under a hub attack
    matches the sequential overlay node-for-node, and the blacklisting
    wave actually exercised the shared plan's invalidation hook."""

    def run(mode):
        overlay = build_secure_overlay(
            n=40,
            config=SecureCyclonConfig(
                view_length=8, swap_length=3, verification=mode
            ),
            malicious=4,
            attack_start=2,
            seed=11,
        )
        overlay.run(6)
        snapshot = {
            node_id: (
                tuple(
                    (e.creator, e.descriptor.timestamp, len(e.descriptor.hops))
                    for e in node.view._entries
                ),
                frozenset(node.blacklist.by_culprit),
            )
            for node_id, node in sorted(overlay.engine.nodes.items())
            if hasattr(node, "view")
        }
        return snapshot, overlay.engine

    sequential, _ = run("sequential")
    batched, engine = run("batched")
    assert sequential == batched
    plan = engine._verification_plan
    assert plan is not None
    assert plan.invalidations > 0
    assert plan.chains_verified > 0


def test_content_key_distinguishes_every_field(registry):
    """The memo key encoding is injective field by field: kind, MAC
    content, MAC length, and timestamp must all separate keys (the
    variable-length fields are length-prefixed so no boundary shift
    can make two distinct chains collide)."""
    from repro.crypto.batch import _content_key

    keypairs = make_keypairs(registry, 3)
    base = mint(keypairs[0], ADDRESS, 10.0)
    transferred = base.transfer(keypairs[0], keypairs[1].public)
    redeemed = base.transfer(
        keypairs[0], keypairs[0].public,
        kind=__import__("repro.core.descriptor", fromlist=["TransferKind"]).TransferKind.REDEEM,
    )
    keys = {
        _content_key(base),
        _content_key(transferred),
        _content_key(redeemed),
        _content_key(tamper(transferred)),
        _content_key(tamper(transferred, mac=b"\xff" * 31)),
        _content_key(tamper(transferred, mac=b"\xff" * 33)),
        _content_key(mint(keypairs[0], ADDRESS, 10.5)),
    }
    assert len(keys) == 7
