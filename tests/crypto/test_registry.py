"""Unit tests for the key registry."""

import random

import pytest

from repro.crypto.keys import KeyPair, generate_keypair
from repro.crypto.registry import KeyRegistry
from repro.errors import UnknownKeyError


def test_new_keypair_registers(registry, rng):
    pair = registry.new_keypair(rng)
    assert pair.public in registry
    assert registry.seed_for(pair.public) == pair.seed


def test_unknown_key_returns_none(registry, rng):
    pair = generate_keypair(rng)
    assert registry.seed_for(pair.public) is None


def test_reregistration_is_idempotent(registry, rng):
    pair = registry.new_keypair(rng)
    registry.register(pair)
    assert len(registry) == 1


def test_colliding_registration_rejected(registry, rng):
    pair = registry.new_keypair(rng)
    # Craft a would-be collision: same public key, different seed.
    evil = object.__new__(KeyPair)
    object.__setattr__(evil, "seed", b"\x01" * 32)
    object.__setattr__(evil, "public", pair.public)
    with pytest.raises(UnknownKeyError):
        registry.register(evil)


def test_iteration_and_len(registry, rng):
    pairs = [registry.new_keypair(rng) for _ in range(4)]
    assert len(registry) == 4
    assert {p.public for p in pairs} == set(registry)
