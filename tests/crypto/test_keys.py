"""Unit tests for key pairs and public keys."""

import random

import pytest

from repro.crypto.keys import (
    KeyPair,
    PublicKey,
    derive_public,
    generate_keypair,
)


def test_generate_keypair_is_deterministic_per_seed():
    a = generate_keypair(random.Random(7))
    b = generate_keypair(random.Random(7))
    assert a.public == b.public
    assert a.seed == b.seed


def test_different_rng_states_give_different_keys():
    rng = random.Random(7)
    a = generate_keypair(rng)
    b = generate_keypair(rng)
    assert a.public != b.public


def test_public_key_requires_32_bytes():
    with pytest.raises(ValueError):
        PublicKey(b"short")


def test_public_key_is_hashable_and_ordered():
    rng = random.Random(1)
    keys = sorted(generate_keypair(rng).public for _ in range(10))
    assert len(set(keys)) == 10
    assert keys == sorted(keys)


def test_public_key_hash_consistent_with_equality():
    rng = random.Random(2)
    key = generate_keypair(rng).public
    clone = PublicKey(bytes(key.digest))
    assert key == clone
    assert hash(key) == hash(clone)


def test_hex_prefix_length():
    rng = random.Random(3)
    key = generate_keypair(rng).public
    assert len(key.hex(8)) == 8
    assert key.digest.hex().startswith(key.hex(8))


def test_keypair_rejects_mismatched_public():
    rng = random.Random(4)
    a = generate_keypair(rng)
    b = generate_keypair(rng)
    with pytest.raises(ValueError):
        KeyPair(seed=a.seed, public=b.public)


def test_derive_public_matches_keypair():
    rng = random.Random(5)
    pair = generate_keypair(rng)
    assert derive_public(pair.seed) == pair.public


def test_public_key_wire_size_is_256_bits():
    rng = random.Random(6)
    assert generate_keypair(rng).public.bits == 256
