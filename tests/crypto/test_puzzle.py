"""Unit tests for the identifier-acquisition puzzle."""

import pytest

from repro.crypto.puzzle import (
    IdentifierPuzzle,
    solve_puzzle,
    verify_puzzle,
)
from repro.errors import CryptoError


def test_solve_and_verify(keypairs):
    puzzle = solve_puzzle(keypairs[0].public, difficulty_bits=8)
    assert verify_puzzle(puzzle)
    assert puzzle.public == keypairs[0].public


def test_zero_difficulty_is_trivial(keypairs):
    puzzle = solve_puzzle(keypairs[0].public, difficulty_bits=0)
    assert puzzle.nonce == 0
    assert verify_puzzle(puzzle)


def test_wrong_nonce_fails(keypairs):
    puzzle = solve_puzzle(keypairs[0].public, difficulty_bits=10)
    forged = IdentifierPuzzle(
        public=puzzle.public,
        difficulty_bits=puzzle.difficulty_bits,
        nonce=puzzle.nonce + 1,
    )
    # The forged nonce only verifies if it happens to also solve the
    # puzzle — overwhelmingly unlikely at 10 bits, but check honestly.
    if verify_puzzle(forged):
        pytest.skip("nonce+1 accidentally solves the puzzle")
    assert not verify_puzzle(forged)


def test_puzzle_is_bound_to_the_key(keypairs):
    puzzle = solve_puzzle(keypairs[0].public, difficulty_bits=10)
    stolen = IdentifierPuzzle(
        public=keypairs[1].public,
        difficulty_bits=puzzle.difficulty_bits,
        nonce=puzzle.nonce,
    )
    if verify_puzzle(stolen):
        pytest.skip("nonce accidentally solves the other key's puzzle")
    assert not verify_puzzle(stolen)


def test_difficulty_bounds(keypairs):
    with pytest.raises(CryptoError):
        solve_puzzle(keypairs[0].public, difficulty_bits=65)
    with pytest.raises(CryptoError):
        solve_puzzle(keypairs[0].public, difficulty_bits=-1)


def test_higher_difficulty_means_more_work(keypairs):
    easy = solve_puzzle(keypairs[0].public, difficulty_bits=2)
    hard = solve_puzzle(keypairs[0].public, difficulty_bits=12)
    assert verify_puzzle(easy) and verify_puzzle(hard)
