"""Unit tests for the idealised signing scheme."""

import pytest

from repro.crypto.signing import Signature, sign, verify, verify_or_raise
from repro.errors import SignatureError


def test_sign_and_verify_roundtrip(registry, keypairs):
    signature = sign(keypairs[0], b"hello")
    assert verify(registry, signature, b"hello")


def test_verify_fails_on_tampered_message(registry, keypairs):
    signature = sign(keypairs[0], b"hello")
    assert not verify(registry, signature, b"hellO")


def test_verify_fails_on_wrong_claimed_signer(registry, keypairs):
    signature = sign(keypairs[0], b"hello")
    forged = Signature(signer=keypairs[1].public, mac=signature.mac)
    assert not verify(registry, forged, b"hello")


def test_verify_fails_for_unknown_signer(keypairs):
    from repro.crypto.registry import KeyRegistry

    empty_registry = KeyRegistry()
    signature = sign(keypairs[0], b"hello")
    assert not verify(empty_registry, signature, b"hello")


def test_cannot_forge_without_the_seed(registry, keypairs):
    # An adversary holding only public keys cannot produce a valid MAC.
    fake = Signature(signer=keypairs[0].public, mac=b"\x00" * 32)
    assert not verify(registry, fake, b"hello")


def test_signing_requires_bytes(keypairs):
    with pytest.raises(TypeError):
        sign(keypairs[0], "not-bytes")


def test_verify_or_raise(registry, keypairs):
    signature = sign(keypairs[0], b"payload")
    verify_or_raise(registry, signature, b"payload")
    with pytest.raises(SignatureError):
        verify_or_raise(registry, signature, b"other")


def test_signature_is_deterministic(keypairs):
    assert sign(keypairs[0], b"x") == sign(keypairs[0], b"x")


def test_signature_wire_size_is_256_bits(keypairs):
    assert sign(keypairs[0], b"x").bits == 256
