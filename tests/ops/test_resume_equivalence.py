"""The resume contract: checkpoint + fresh rebuild == unbroken run.

The matrix runs {object, wire} transports × {sequential, batched}
verification: a run checkpointed at its midpoint and resumed into a
freshly built engine must reproduce the unbroken run's probe series
and final node state exactly — every RNG stream, view, cache,
blacklist, adversary pool, and counter carried over bit-for-bit.

Also covered: the scheduler-driven :class:`CheckpointPolicy` (every-N
and on-demand), the experiments CLI's ``split_runs`` hook, resuming
under the event runtime (state restores; documented
no-bit-exactness-limitation), and the typed rejection of mismatched
checkpoints (wrong seed, wrong period, wrong population, engine
already past the file).
"""

import dataclasses

import pytest

from repro.adversary.cloning import CloningAttacker
from repro.core.config import ENV_VERIFICATION, SecureCyclonConfig
from repro.cyclon.config import CyclonConfig
from repro.errors import CheckpointError, ConfigError, SimulationError
from repro.experiments.scenarios import build_cyclon_overlay, build_secure_overlay
from repro.metrics.collector import standard_probes
from repro.ops.checkpoint import (
    CheckpointPolicy,
    restore_checkpoint,
    save_checkpoint,
    split_runs,
)
from repro.sim.engine import SimConfig
from repro.sim.observers import SeriesObserver
from repro.sim.transport import ENV_TRANSPORT

NODES = 36
MALICIOUS = 4
CYCLES = 10
HALF = CYCLES // 2


def _build(seed: int = 13, **engine_kwargs):
    overlay = build_secure_overlay(
        n=NODES,
        config=SecureCyclonConfig(view_length=8, swap_length=3),
        malicious=MALICIOUS,
        attack_start=2,
        seed=seed,
        **engine_kwargs,
    )
    observer = SeriesObserver(standard_probes())
    overlay.engine.add_observer(observer)
    return overlay, observer


def _node_state(overlay):
    return {
        node_id: (
            tuple(
                (entry.descriptor, entry.non_swappable)
                for entry in node.view._entries
            ),
            node.blacklist.proofs_tuple(),
            node.current_cycle,
        )
        for node_id, node in overlay.engine.nodes.items()
    }


@pytest.mark.parametrize("transport", ["object", "wire"])
@pytest.mark.parametrize("verification", ["sequential", "batched"])
def test_resume_matches_unbroken_run(
    monkeypatch, tmp_path, transport, verification
):
    monkeypatch.setenv(ENV_TRANSPORT, transport)
    monkeypatch.setenv(ENV_VERIFICATION, verification)

    unbroken, unbroken_obs = _build()
    unbroken.run(CYCLES)

    first, _ = _build()
    first.run(HALF)
    path = save_checkpoint(first.engine, tmp_path / "mid.ckpt")

    resumed, resumed_obs = _build()
    header = restore_checkpoint(resumed.engine, path)
    assert header.cycle == HALF
    assert resumed.engine.clock.cycle == HALF
    resumed.run(CYCLES - HALF)

    assert resumed_obs.series == unbroken_obs.series
    assert _node_state(resumed) == _node_state(unbroken)
    assert (
        resumed.engine.network.dialogues_opened
        == unbroken.engine.network.dialogues_opened
    )
    assert (
        resumed.engine.network.push_bytes
        == unbroken.engine.network.push_bytes
    )
    assert list(resumed.engine.trace) == list(unbroken.engine.trace)


def test_resume_with_peer_health_ledger(tmp_path):
    """The health ledger's scores/quarantine state survive a resume."""
    kwargs = {"sim_config": SimConfig(seed=13, peer_health=True)}
    unbroken, unbroken_obs = _build(**kwargs)
    unbroken.run(CYCLES)

    first, _ = _build(**kwargs)
    first.run(HALF)
    path = save_checkpoint(first.engine, tmp_path / "health.ckpt")

    resumed, resumed_obs = _build(**kwargs)
    restore_checkpoint(resumed.engine, path)
    resumed.run(CYCLES - HALF)

    assert resumed_obs.series == unbroken_obs.series
    reference = unbroken.engine.network.peer_health
    candidate = resumed.engine.network.peer_health
    assert candidate._scores == reference._scores
    assert candidate._quarantined == reference._quarantined
    assert candidate.quarantine_events == reference.quarantine_events


def test_event_runtime_resume_restores_state(tmp_path):
    """Event runtime: state restores cleanly (no bit-exactness promise —
    the in-flight event queue is rebuilt, not serialised)."""
    first, _ = _build(runtime="event")
    first.run(HALF)
    path = save_checkpoint(first.engine, tmp_path / "event.ckpt")

    resumed, _ = _build(runtime="event")
    restore_checkpoint(resumed.engine, path)
    assert resumed.engine.clock.cycle == HALF
    assert _node_state(resumed) == _node_state(first)
    resumed.run(CYCLES - HALF)  # must run, not crash
    assert resumed.engine.clock.cycle == CYCLES


def test_cyclon_overlay_resume(tmp_path):
    """Legacy-Cyclon nodes (and hub attackers) round-trip too: epoch,
    record list, and attacker kind all survive the rebuild+overlay."""
    def _cyclon():
        overlay = build_cyclon_overlay(
            n=30,
            config=CyclonConfig(view_length=8, swap_length=3),
            malicious=3,
            attack_start=2,
            seed=19,
        )
        observer = SeriesObserver(standard_probes())
        overlay.engine.add_observer(observer)
        return overlay, observer

    unbroken, unbroken_obs = _cyclon()
    unbroken.run(CYCLES)

    first, _ = _cyclon()
    first.run(HALF)
    path = save_checkpoint(first.engine, tmp_path / "cyclon.ckpt")

    resumed, resumed_obs = _cyclon()
    restore_checkpoint(resumed.engine, path)
    resumed.run(CYCLES - HALF)

    assert resumed_obs.series == unbroken_obs.series
    for node_id, node in resumed.engine.nodes.items():
        twin = unbroken.engine.nodes[node_id]
        assert [r[0] for r in node.view._records] == [
            r[0] for r in twin.view._records
        ]
        assert node.view._epoch == twin.view._epoch


def test_cloning_attacker_resume(tmp_path):
    """CloningAttacker stashes and clone-event logs survive a resume."""
    def _cloning():
        overlay = build_secure_overlay(
            n=NODES,
            config=SecureCyclonConfig(view_length=8, swap_length=3),
            malicious=MALICIOUS,
            attack_start=1,
            seed=13,
            attacker_cls=CloningAttacker,
        )
        observer = SeriesObserver(standard_probes())
        overlay.engine.add_observer(observer)
        return overlay, observer

    unbroken, unbroken_obs = _cloning()
    unbroken.run(CYCLES)

    first, _ = _cloning()
    first.run(HALF)
    path = save_checkpoint(first.engine, tmp_path / "cloning.ckpt")

    resumed, resumed_obs = _cloning()
    restore_checkpoint(resumed.engine, path)
    resumed.run(CYCLES - HALF)

    assert resumed_obs.series == unbroken_obs.series
    attackers = [
        node
        for node in resumed.engine.nodes.values()
        if isinstance(node, CloningAttacker)
    ]
    twins = [
        node
        for node in unbroken.engine.nodes.values()
        if isinstance(node, CloningAttacker)
    ]
    assert sum(len(a.clone_events) for a in attackers) == sum(
        len(t.clone_events) for t in twins
    )


def test_wrong_node_kind_rejected(tmp_path):
    """Same population, different attacker class: typed rejection."""
    overlay, _ = _build()  # default SecureHubAttacker
    overlay.run(2)
    path = save_checkpoint(overlay.engine, tmp_path / "kind.ckpt")
    cloning = build_secure_overlay(
        n=NODES,
        config=SecureCyclonConfig(view_length=8, swap_length=3),
        malicious=MALICIOUS,
        attack_start=2,
        seed=13,
        attacker_cls=CloningAttacker,
    )
    with pytest.raises(CheckpointError, match="in the engine but a"):
        restore_checkpoint(cloning.engine, path)


def test_checkpoint_does_not_perturb_the_run(tmp_path):
    """Saving is pure reads: a run that checkpoints every 2 cycles ends
    bit-identical to one that never checkpoints."""
    plain, plain_obs = _build()
    plain.run(CYCLES)

    policed, policed_obs = _build()
    policy = CheckpointPolicy(tmp_path, every_cycles=2)
    policed.engine.checkpoint_policy = policy
    policed.run(CYCLES)

    assert policed_obs.series == plain_obs.series
    assert _node_state(policed) == _node_state(plain)
    assert [path.name for path in policy.saved] == [
        f"cycle-{c:06d}.ckpt" for c in range(2, CYCLES + 1, 2)
    ]


def test_policy_on_demand_and_validation(tmp_path):
    with pytest.raises(ConfigError):
        CheckpointPolicy(tmp_path, every_cycles=0)
    overlay, _ = _build()
    policy = CheckpointPolicy(tmp_path / "demand")
    overlay.engine.checkpoint_policy = policy
    overlay.run(3)
    assert policy.saved == []  # purely on-demand: nothing yet
    policy.request()
    overlay.run(2)
    assert [path.name for path in policy.saved] == ["cycle-000004.ckpt"]


def test_policy_resume_from_midpoint_file(tmp_path):
    unbroken, unbroken_obs = _build()
    policy = CheckpointPolicy(tmp_path, every_cycles=HALF)
    unbroken.engine.checkpoint_policy = policy
    unbroken.run(CYCLES)

    resumed, resumed_obs = _build()
    restore_checkpoint(resumed.engine, policy.saved[0])
    resumed.run(CYCLES - HALF)
    assert resumed_obs.series == unbroken_obs.series


def test_split_runs_checkpoint_then_resume(tmp_path):
    unbroken, unbroken_obs = _build()
    unbroken.run(CYCLES)

    with split_runs(tmp_path, "checkpoint"):
        first, first_obs = _build()
        first.run(CYCLES)
    # The intercepted run still completes identically...
    assert first_obs.series == unbroken_obs.series
    assert (tmp_path / "run-0.ckpt").exists()

    # ...and a resume-mode twin replays only the back half.
    with split_runs(tmp_path, "resume"):
        resumed, resumed_obs = _build()
        resumed.run(CYCLES)
    assert resumed_obs.series == unbroken_obs.series
    assert _node_state(resumed) == _node_state(unbroken)


def test_split_runs_passes_short_runs_through(tmp_path):
    """A 1-cycle run has no midpoint: both modes just run it."""
    with split_runs(tmp_path, "checkpoint"):
        overlay, _ = _build()
        overlay.run(1)
    assert overlay.engine.clock.cycle == 1
    assert list(tmp_path.glob("*.ckpt")) == []
    with split_runs(tmp_path, "resume"):
        overlay, _ = _build()
        overlay.run(1)
    assert overlay.engine.clock.cycle == 1


def test_split_runs_guards(tmp_path):
    with pytest.raises(ConfigError):
        with split_runs(tmp_path, "sideways"):
            pass
    with split_runs(tmp_path, "checkpoint"):
        with pytest.raises(SimulationError, match="already active"):
            with split_runs(tmp_path, "checkpoint"):
                pass
    with split_runs(tmp_path / "empty", "resume"):
        overlay, _ = _build()
        with pytest.raises(CheckpointError, match="missing"):
            overlay.run(CYCLES)


def test_mismatched_checkpoints_are_rejected(tmp_path):
    overlay, _ = _build(seed=13)
    overlay.run(HALF)
    path = save_checkpoint(overlay.engine, tmp_path / "mid.ckpt")

    wrong_seed, _ = _build(seed=14)
    with pytest.raises(CheckpointError, match="master seed"):
        restore_checkpoint(wrong_seed.engine, path)

    stale, _ = _build(seed=13)
    stale.run(HALF + 2)
    with pytest.raises(CheckpointError, match="past the"):
        restore_checkpoint(stale.engine, path)

    small = build_secure_overlay(n=NODES - 2, malicious=MALICIOUS, seed=13)
    with pytest.raises(CheckpointError, match="populations differ"):
        restore_checkpoint(small.engine, path)

    no_observer = build_secure_overlay(
        n=NODES,
        config=SecureCyclonConfig(view_length=8, swap_length=3),
        malicious=MALICIOUS,
        attack_start=2,
        seed=13,
    )
    with pytest.raises(CheckpointError, match="observer"):
        restore_checkpoint(no_observer.engine, path)


def test_wrong_period_rejected(tmp_path):
    overlay, _ = _build()
    overlay.run(2)
    path = save_checkpoint(overlay.engine, tmp_path / "p.ckpt")
    records = path.read_bytes()
    # Rebuild with a different gossip period via the sim config.
    other = build_secure_overlay(
        n=NODES,
        config=SecureCyclonConfig(view_length=8, swap_length=3),
        malicious=MALICIOUS,
        attack_start=2,
        seed=13,
        sim_config=SimConfig(seed=13, period_seconds=7.0),
    )
    assert records  # file written
    with pytest.raises(CheckpointError, match="period"):
        restore_checkpoint(other.engine, path)


def test_restore_preserves_blacklist_alias(tmp_path):
    """node._blacklist_map must still alias blacklist.by_culprit after
    a restore — the hot-path membership test depends on it."""
    overlay, _ = _build()
    overlay.run(CYCLES)  # long enough for proofs to exist
    path = save_checkpoint(overlay.engine, tmp_path / "alias.ckpt")
    resumed, _ = _build()
    restore_checkpoint(resumed.engine, path)
    some_proofs = 0
    for node in resumed.engine.nodes.values():
        assert node._blacklist_map is node.blacklist.by_culprit
        some_proofs += len(node.blacklist.proofs_tuple())
    assert some_proofs > 0  # the attack actually produced blacklists
