"""Fuzz and round-trip coverage for the checkpoint record codecs.

The checkpoint plane's records (codes 32–40) are codec extensions like
the dialogue messages, so they get the same treatment the wire codecs
get in ``tests/properties/test_codec_roundtrip.py``: every record type
round-trips exactly, and truncations, bit flips, garbage, unknown
version tags, and malformed files surface as the typed
:class:`~repro.errors.CodecError` / :class:`~repro.errors.CheckpointError`
— never ``struct.error`` or a silent wrong answer.
"""

import random
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codec import decode_message, encode_message
from repro.core.descriptor import mint
from repro.core.proofs import build_cloning_proof
from repro.crypto.registry import KeyRegistry
from repro.cyclon.descriptor import CyclonDescriptor
from repro.errors import CheckpointError, CodecError
from repro.ops.checkpoint import (
    FORMAT_VERSION,
    MAGIC,
    read_checkpoint,
    save_checkpoint,
)
from repro.ops.records import (
    BlobState,
    CheckpointFooter,
    CheckpointHeader,
    CoordinatorState,
    NetworkState,
    NodeState,
    PeerHealthState,
    RegistryState,
    RngStreamState,
)
from repro.sim.network import NetworkAddress

_REGISTRY = KeyRegistry()
_RNG = random.Random(99)
_KEYPAIRS = [_REGISTRY.new_keypair(_RNG) for _ in range(5)]


@st.composite
def descriptors(draw):
    creator = draw(st.integers(0, 4))
    descriptor = mint(
        _KEYPAIRS[creator],
        NetworkAddress(
            host=draw(st.integers(0, 2**32 - 1)),
            port=draw(st.integers(0, 2**16 - 1)),
        ),
        draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False)),
    )
    current = creator
    for nxt in draw(st.lists(st.integers(0, 4), max_size=3)):
        descriptor = descriptor.transfer(
            _KEYPAIRS[current], _KEYPAIRS[nxt].public
        )
        current = nxt
    return descriptor


@st.composite
def proofs(draw):
    base = draw(descriptors())
    owner_index = next(
        index
        for index, keypair in enumerate(_KEYPAIRS)
        if keypair.public == base.current_owner
    )
    owner = _KEYPAIRS[owner_index]
    branch_a = base.transfer(owner, _KEYPAIRS[(owner_index + 1) % 5].public)
    branch_b = base.transfer(owner, _KEYPAIRS[(owner_index + 2) % 5].public)
    proof = build_cloning_proof(branch_a, branch_b)
    assert proof is not None
    return proof


@st.composite
def node_refs(draw):
    tag = draw(st.integers(0, 2))
    if tag == 0:
        return _KEYPAIRS[draw(st.integers(0, 4))].public
    if tag == 1:
        return draw(st.integers(-(2**63), 2**63 - 1))
    return draw(st.text(max_size=12))


@st.composite
def rng_states(draw):
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    if draw(st.booleans()):
        rng.gauss(0.0, 1.0)  # may leave gauss_next set
    return rng.getstate()


@st.composite
def secure_node_states(draw):
    kind = draw(st.sampled_from(["secure", "secure-hub", "cloning"]))
    timestamps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            max_size=3,
        )
    )
    return NodeState(
        kind=kind,
        node_id=draw(node_refs()),
        current_cycle=draw(st.integers(0, 10_000)),
        last_mint_cycle=draw(st.one_of(st.none(), st.integers(0, 10_000))),
        last_mint_time_s=draw(
            st.one_of(
                st.none(),
                st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
            )
        ),
        nonswap_accepted=draw(st.booleans()),
        nonswap_redeemed=tuple(sorted(timestamps)),
        redeemed_own=tuple(sorted(timestamps)),
        view_entries=tuple(
            (d, draw(st.booleans()))
            for d in draw(st.lists(descriptors(), max_size=3))
        ),
        samples=tuple(
            (
                draw(node_refs()),
                tuple((d.timestamp, d) for d in group),
            )
            for group in draw(
                st.lists(st.lists(descriptors(), max_size=2), max_size=2)
            )
        ),
        sample_expiry=tuple(
            (draw(st.integers(0, 10_000)), draw(node_refs()), ts)
            for ts in timestamps
        ),
        redemptions=tuple(
            (draw(st.integers(0, 10_000)), d)
            for d in draw(st.lists(descriptors(), max_size=2))
        ),
        proofs=tuple(draw(st.lists(proofs(), max_size=2))),
        cycle_mint=draw(st.one_of(st.none(), descriptors())),
        stash=tuple(
            (d, draw(st.integers(0, 100)))
            for d in draw(st.lists(descriptors(), max_size=2))
        ),
        clone_events=tuple(
            (d.creator, d.timestamp, draw(st.integers(0, 100)), cycle)
            for cycle, d in enumerate(
                draw(st.lists(descriptors(), max_size=2))
            )
        ),
    )


@st.composite
def cyclon_node_states(draw):
    kind = draw(st.sampled_from(["cyclon", "cyclon-hub"]))
    return NodeState(
        kind=kind,
        node_id=draw(node_refs()),
        current_cycle=draw(st.integers(0, 10_000)),
        cyclon_epoch=draw(st.integers(0, 10_000)),
        cyclon_records=tuple(
            (
                CyclonDescriptor(
                    node_id=draw(node_refs()),
                    address=NetworkAddress(
                        host=draw(st.integers(0, 2**32 - 1)),
                        port=draw(st.integers(0, 2**16 - 1)),
                    ),
                    age=draw(st.integers(0, 1000)),
                ),
                draw(st.integers(0, 10_000)),
            )
            for _ in range(draw(st.integers(0, 3)))
        ),
    )


@st.composite
def records(draw):
    kind = draw(st.integers(0, 9))
    if kind == 0:
        return CheckpointHeader(
            format_version=draw(st.integers(0, 2**16 - 1)),
            master_seed=draw(st.integers(-(2**63), 2**63 - 1)),
            cycle=draw(st.integers(0, 2**32 - 1)),
            now_s=draw(
                st.floats(min_value=0.0, max_value=1e12, allow_nan=False)
            ),
            period_s=draw(
                st.floats(min_value=1e-3, max_value=1e6, allow_nan=False)
            ),
            node_count=draw(st.integers(0, 2**32 - 1)),
        )
    if kind == 1:
        return RngStreamState(
            name=draw(st.text(max_size=20)), state=draw(rng_states())
        )
    if kind == 2:
        return RegistryState(
            trusted_digests=tuple(
                draw(st.lists(st.binary(min_size=8, max_size=32), max_size=4))
            )
        )
    if kind == 3:
        return NetworkState(
            dialogues_opened=draw(st.integers(0, 2**40)),
            pushes_sent=draw(st.integers(0, 2**40)),
            push_bytes=draw(st.integers(0, 2**40)),
            dialogue_bytes_forward=draw(st.integers(0, 2**40)),
            dialogue_bytes_backward=draw(st.integers(0, 2**40)),
            dialogue_seconds=draw(
                st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
            ),
            undecodable_frames=draw(st.integers(0, 2**40)),
            quarantine_refusals=draw(st.integers(0, 2**40)),
        )
    if kind == 4:
        return PeerHealthState(
            cycle=draw(st.integers(0, 2**32)),
            scores=tuple(
                (draw(node_refs()), score)
                for score in draw(
                    st.lists(
                        st.floats(
                            min_value=-100.0,
                            max_value=100.0,
                            allow_nan=False,
                        ),
                        max_size=3,
                    )
                )
            ),
            quarantined=tuple(draw(st.lists(node_refs(), max_size=3))),
            offences=tuple(
                (
                    draw(node_refs()),
                    tuple(
                        (kind_name, draw(st.integers(0, 1000)))
                        for kind_name in draw(
                            st.lists(
                                st.sampled_from(
                                    ["decode_failure", "oversize_frame",
                                     "timeout"]
                                ),
                                max_size=3,
                                unique=True,
                            )
                        )
                    ),
                )
                for _ in range(draw(st.integers(0, 2)))
            ),
            quarantined_at=tuple(
                (draw(node_refs()), draw(st.integers(0, 10_000)))
                for _ in range(draw(st.integers(0, 2)))
            ),
            quarantine_events=draw(st.integers(0, 10_000)),
            release_events=draw(st.integers(0, 10_000)),
            adversary=tuple(draw(st.lists(node_refs(), max_size=3))),
            adversary_bytes_sent=draw(st.integers(0, 2**40)),
            adversary_bytes_scanned=draw(st.integers(0, 2**40)),
            honest_bytes_to_adversary=draw(st.integers(0, 2**40)),
        )
    if kind == 5:
        return BlobState(
            slot=draw(st.sampled_from(["trace", "observer-series"])),
            payload=draw(st.binary(max_size=256)),
        )
    if kind == 6:
        return draw(secure_node_states())
    if kind == 7:
        return draw(cyclon_node_states())
    if kind == 8:
        return CoordinatorState(
            pool_maxlen=draw(st.one_of(st.none(), st.integers(1, 1000))),
            pool=tuple(draw(st.lists(descriptors(), max_size=2))),
            circulating=tuple(draw(st.lists(descriptors(), max_size=2))),
        )
    return CheckpointFooter(record_count=draw(st.integers(0, 2**32 - 1)))


@given(record=records())
@settings(max_examples=150, deadline=None)
def test_record_roundtrip(record):
    """Every checkpoint record decodes back exactly equal."""
    assert decode_message(encode_message(record)) == record


@given(record=records(), data=st.data())
@settings(max_examples=120, deadline=None)
def test_truncated_records_are_typed(record, data):
    """Any strict prefix of a valid record raises CodecError."""
    frame = encode_message(record)
    cut = data.draw(st.integers(0, len(frame) - 1))
    with pytest.raises(CodecError):
        decode_message(frame[:cut])


@given(record=records(), data=st.data())
@settings(max_examples=120, deadline=None)
def test_bit_flipped_records_decode_or_raise_typed(record, data):
    """Corruption either decodes (to something) or raises CodecError."""
    frame = bytearray(encode_message(record))
    position = data.draw(st.integers(0, len(frame) - 1))
    frame[position] ^= 1 << data.draw(st.integers(0, 7))
    try:
        decode_message(bytes(frame), max_frame_bytes=None)
    except CodecError:
        pass
    except struct.error:  # pragma: no cover - the regression this guards
        pytest.fail("struct.error leaked through the record codec")


def test_unknown_rng_version_rejected():
    state = (4, tuple(range(625)), None)
    with pytest.raises(CodecError):
        encode_message(RngStreamState(name="x", state=state))


def test_unknown_blob_slot_rejected():
    with pytest.raises(CodecError):
        encode_message(BlobState(slot="arbitrary-pickle", payload=b""))


def test_bool_node_id_rejected():
    record = NodeState(kind="secure", node_id=True, current_cycle=0)
    with pytest.raises(CodecError):
        encode_message(record)


def test_unknown_node_kind_rejected():
    record = NodeState(kind="brahms", node_id=1, current_cycle=0)
    with pytest.raises(CodecError):
        encode_message(record)


# ----------------------------------------------------------------------
# file-level validation
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def checkpoint_file(tmp_path_factory):
    from repro.experiments.scenarios import build_secure_overlay

    overlay = build_secure_overlay(n=12, malicious=2, seed=5)
    overlay.run(3)
    path = tmp_path_factory.mktemp("ckpt") / "small.ckpt"
    save_checkpoint(overlay.engine, path)
    return path


def test_file_roundtrip_parses(checkpoint_file):
    records_list = read_checkpoint(checkpoint_file)
    assert isinstance(records_list[0], CheckpointHeader)
    assert isinstance(records_list[-1], CheckpointFooter)
    assert records_list[-1].record_count == len(records_list)


def test_bad_magic_rejected(tmp_path, checkpoint_file):
    data = checkpoint_file.read_bytes()
    bad = tmp_path / "bad-magic.ckpt"
    bad.write_bytes(b"ZZZZ" + data[len(MAGIC):])
    with pytest.raises(CheckpointError, match="magic"):
        read_checkpoint(bad)


@pytest.mark.parametrize("keep_fraction", [0.1, 0.5, 0.9, 0.999])
def test_truncated_file_rejected(tmp_path, checkpoint_file, keep_fraction):
    data = checkpoint_file.read_bytes()
    cut = tmp_path / "cut.ckpt"
    cut.write_bytes(data[: max(len(MAGIC), int(len(data) * keep_fraction))])
    with pytest.raises(CheckpointError):
        read_checkpoint(cut)


def test_unknown_format_version_rejected(tmp_path):
    header = CheckpointHeader(
        format_version=FORMAT_VERSION + 1,
        master_seed=0,
        cycle=0,
        now_s=0.0,
        period_s=10.0,
        node_count=0,
    )
    frames = [
        encode_message(header),
        encode_message(CheckpointFooter(record_count=2)),
    ]
    path = tmp_path / "future.ckpt"
    path.write_bytes(
        MAGIC
        + b"".join(struct.pack(">I", len(f)) + f for f in frames)
    )
    with pytest.raises(CheckpointError, match="version"):
        read_checkpoint(path)


def test_wrong_footer_count_rejected(tmp_path):
    header = CheckpointHeader(
        format_version=FORMAT_VERSION,
        master_seed=0,
        cycle=0,
        now_s=0.0,
        period_s=10.0,
        node_count=0,
    )
    frames = [
        encode_message(header),
        encode_message(CheckpointFooter(record_count=7)),
    ]
    path = tmp_path / "miscounted.ckpt"
    path.write_bytes(
        MAGIC
        + b"".join(struct.pack(">I", len(f)) + f for f in frames)
    )
    with pytest.raises(CheckpointError, match="declares"):
        read_checkpoint(path)


def test_missing_footer_rejected(tmp_path):
    header = CheckpointHeader(
        format_version=FORMAT_VERSION,
        master_seed=0,
        cycle=0,
        now_s=0.0,
        period_s=10.0,
        node_count=0,
    )
    frame = encode_message(header)
    path = tmp_path / "headless.ckpt"
    path.write_bytes(MAGIC + struct.pack(">I", len(frame)) + frame)
    with pytest.raises(CheckpointError, match="footer"):
        read_checkpoint(path)


def test_missing_file_rejected(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        read_checkpoint(tmp_path / "nope.ckpt")


def test_checkpoint_error_is_a_codec_error():
    assert issubclass(CheckpointError, CodecError)
