"""Round-tripped state must *behave* identically, not just compare equal.

Equality of dataclasses is necessary but not sufficient for the resume
contract: a descriptor that decodes equal but verifies differently (or
a proof that validates differently) would silently corrupt blacklists
after a resume.  These properties pin behaviour: for every descriptor
and proof carried through a checkpoint record, verification against a
*fresh* registry (no memos, no prefix-trust cache) gives the same
verdict before and after the round trip — including for proofs doctored
to be invalid.
"""

import dataclasses
import random

from hypothesis import given, settings, strategies as st

from repro.core.codec import decode_message, encode_message
from repro.core.descriptor import mint, verify_descriptor
from repro.core.proofs import build_cloning_proof, build_frequency_proof
from repro.crypto.registry import KeyRegistry
from repro.ops.records import CoordinatorState, NodeState
from repro.sim.network import NetworkAddress

PERIOD = 10.0

_REGISTRY = KeyRegistry()
_RNG = random.Random(41)
_KEYPAIRS = [_REGISTRY.new_keypair(_RNG) for _ in range(5)]


def _fresh_registry() -> KeyRegistry:
    """All five keys registered, no verification memos."""
    registry = KeyRegistry()
    for keypair in _KEYPAIRS:
        registry.register(keypair)
    return registry


@st.composite
def descriptors(draw):
    creator = draw(st.integers(0, 4))
    descriptor = mint(
        _KEYPAIRS[creator],
        NetworkAddress(
            host=draw(st.integers(0, 2**32 - 1)),
            port=draw(st.integers(0, 2**16 - 1)),
        ),
        draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False)),
    )
    current = creator
    for nxt in draw(st.lists(st.integers(0, 4), max_size=4)):
        descriptor = descriptor.transfer(
            _KEYPAIRS[current], _KEYPAIRS[nxt].public
        )
        current = nxt
    return descriptor


@st.composite
def cloning_proofs(draw):
    base = draw(descriptors())
    owner_index = next(
        index
        for index, keypair in enumerate(_KEYPAIRS)
        if keypair.public == base.current_owner
    )
    owner = _KEYPAIRS[owner_index]
    branch_a = base.transfer(owner, _KEYPAIRS[(owner_index + 1) % 5].public)
    branch_b = base.transfer(owner, _KEYPAIRS[(owner_index + 2) % 5].public)
    proof = build_cloning_proof(branch_a, branch_b)
    assert proof is not None
    # Sometimes doctor the culprit: the proof then *fails* validation,
    # and the round trip must preserve that failure.
    if draw(st.booleans()):
        wrong = _KEYPAIRS[(owner_index + 3) % 5].public
        proof = dataclasses.replace(proof, culprit=wrong)
    return proof


@st.composite
def frequency_proofs(draw):
    creator = draw(st.integers(0, 4))
    address = NetworkAddress(host=1, port=9000)
    base_ts = draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    # Within one period -> genuine violation; far apart -> invalid proof.
    gap = draw(st.sampled_from([PERIOD / 2, PERIOD * 10]))
    def _minted(timestamp: float):
        # A frequency proof needs at least one hop on each descriptor
        # (the creator's own transfer signature pins the mint).
        descriptor = mint(_KEYPAIRS[creator], address, timestamp)
        return descriptor.transfer(
            _KEYPAIRS[creator], _KEYPAIRS[(creator + 1) % 5].public
        )

    first = _minted(base_ts)
    second = _minted(base_ts + gap)
    proof = build_frequency_proof(first, second, PERIOD)
    if proof is None:
        # Far-apart mints: doctor a genuine proof so it carries the
        # non-conflicting second descriptor and fails validation.
        proof = dataclasses.replace(
            build_frequency_proof(
                _minted(base_ts), _minted(base_ts + 1.0), PERIOD
            ),
            second=second,
        )
    return proof


@given(descriptor=descriptors())
@settings(max_examples=100, deadline=None)
def test_descriptor_roundtrip_verifies_identically(descriptor):
    record = NodeState(
        kind="secure",
        node_id=_KEYPAIRS[0].public,
        current_cycle=0,
        view_entries=((descriptor, False),),
    )
    decoded = decode_message(encode_message(record))
    restored = decoded.view_entries[0][0]
    assert restored == descriptor
    assert verify_descriptor(restored, _fresh_registry()) == verify_descriptor(
        descriptor, _fresh_registry()
    )
    # The restored object is a distinct instance with no carried-over
    # verification memo — behaviour, not cache, must match.
    assert restored is not descriptor


@given(proof=st.one_of(cloning_proofs(), frequency_proofs()))
@settings(max_examples=100, deadline=None)
def test_proof_roundtrip_validates_identically(proof):
    record = NodeState(
        kind="secure",
        node_id=_KEYPAIRS[0].public,
        current_cycle=0,
        proofs=(proof,),
    )
    decoded = decode_message(encode_message(record))
    (restored,) = decoded.proofs
    assert restored == proof
    assert restored.validate(_fresh_registry(), PERIOD) == proof.validate(
        _fresh_registry(), PERIOD
    )


@given(pool=st.lists(descriptors(), max_size=3))
@settings(max_examples=60, deadline=None)
def test_coordinator_pool_roundtrip_verifies_identically(pool):
    record = CoordinatorState(
        pool_maxlen=64, pool=tuple(pool), circulating=tuple(pool)
    )
    decoded = decode_message(encode_message(record))
    assert decoded == record
    for original, restored in zip(pool, decoded.pool):
        assert verify_descriptor(
            restored, _fresh_registry()
        ) == verify_descriptor(original, _fresh_registry())
        # Circulation keys are rebuilt from descriptor identity on
        # restore; identity must survive the trip exactly.
        assert restored.identity == original.identity


@given(
    samples=st.lists(descriptors(), min_size=1, max_size=3),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_sample_cache_entries_roundtrip_verifies_identically(samples, data):
    record = NodeState(
        kind="secure",
        node_id=_KEYPAIRS[0].public,
        current_cycle=data.draw(st.integers(0, 1000)),
        samples=(
            (
                samples[0].creator,
                tuple((d.timestamp, d) for d in samples),
            ),
        ),
    )
    decoded = decode_message(encode_message(record))
    for (_, original), (_, restored) in zip(
        record.samples[0][1], decoded.samples[0][1]
    ):
        assert verify_descriptor(
            restored, _fresh_registry()
        ) == verify_descriptor(original, _fresh_registry())
        assert restored.chain_digest() == original.chain_digest()
