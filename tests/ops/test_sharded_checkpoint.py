"""Fleet-wide checkpoint/restore through the shard control plane.

``ShardedSession.checkpoint_fleet`` writes one checkpoint per worker
(each worker holds a full replica, so its file is a complete engine
checkpoint of which the local partition's state is the meaningful
part) plus ``mirror.ckpt`` for the parent; ``restore_fleet`` overlays
them onto a freshly started fleet of the same shape.  The thread
backend keeps everything in-process (the unit-test backend — same
socket protocol as fork).
"""

import pytest

from repro.core.config import SecureCyclonConfig
from repro.errors import ShardFailure
from repro.experiments.scenarios import build_secure_overlay
from repro.sim.shardcoord import ShardedSession

NODES = 24
SHARDS = 3
CYCLES = 8
HALF = CYCLES // 2


def _build():
    return build_secure_overlay(
        n=NODES,
        config=SecureCyclonConfig(view_length=6, swap_length=2),
        malicious=3,
        attack_start=2,
        seed=21,
    )


def _session(overlay):
    return ShardedSession(
        overlay,
        SHARDS,
        backend="thread",
        replica_factory=lambda index: _build(),
    )


def _merged_state(overlay):
    return {
        node_id: (
            tuple(
                (entry.descriptor, entry.non_swappable)
                for entry in node.view._entries
            ),
            node.blacklist.proofs_tuple(),
        )
        for node_id, node in overlay.engine.nodes.items()
    }


def test_fleet_checkpoint_restore_matches_unbroken(tmp_path):
    # Unbroken sharded reference.
    unbroken = _build()
    session = _session(unbroken).start()
    session.run_cycles(CYCLES)
    session.finish()

    # Checkpoint mid-run; the checkpointing fleet keeps running and
    # must still match (saving is pure reads on every shard).
    first = _build()
    session = _session(first).start()
    session.run_cycles(HALF)
    paths = session.checkpoint_fleet(tmp_path)
    session.run_cycles(CYCLES - HALF)
    session.finish()
    assert sorted(path.name for path in paths) == [
        "mirror.ckpt",
        "shard-0.ckpt",
        "shard-1.ckpt",
        "shard-2.ckpt",
    ]
    assert _merged_state(first) == _merged_state(unbroken)

    # A fresh fleet restored from the files finishes identically.
    resumed = _build()
    session = _session(resumed).start()
    session.restore_fleet(tmp_path)
    assert resumed.engine.clock.cycle == HALF
    session.run_cycles(CYCLES - HALF)
    session.finish()
    assert _merged_state(resumed) == _merged_state(unbroken)


@pytest.mark.filterwarnings(
    # Tearing the fleet down mid-protocol makes worker threads raise
    # control-link ShardFailures on their way out — expected here.
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
def test_restore_fleet_refuses_wrong_shard_count(tmp_path):
    overlay = _build()
    session = _session(overlay).start()
    session.run_cycles(2)
    session.checkpoint_fleet(tmp_path)
    session.finish()

    other = _build()
    session = ShardedSession(
        other,
        SHARDS + 1,
        backend="thread",
        replica_factory=lambda index: _build(),
    ).start()
    try:
        with pytest.raises(ShardFailure, match="shard count"):
            session.restore_fleet(tmp_path)
    finally:
        session.close()


@pytest.mark.filterwarnings(
    # The previous test's fleet teardown can surface its worker-thread
    # ShardFailures while this test runs; same expected noise.
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
def test_fleet_checkpoint_requires_running_session(tmp_path):
    overlay = _build()
    session = _session(overlay)
    with pytest.raises(ShardFailure, match="not running"):
        session.checkpoint_fleet(tmp_path)
    with pytest.raises(ShardFailure, match="not running"):
        session.restore_fleet(tmp_path)
