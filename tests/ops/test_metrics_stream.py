"""The observe plane: streaming metrics that never perturb the run.

Three layers under test:

* :class:`StreamingObserver` — per-cycle rows into a bounded queue;
  a full queue drops-and-counts, publishing never blocks.
* :class:`MetricsServer` + the ``python -m repro.ops tail`` CLI — the
  rows reach a real local socket as newline-delimited JSON and a
  stdlib-only tailer reads them back.
* The acceptance bar: attaching the observer (and at 1K nodes, a live
  server with a tailing client) leaves the committed fig2/fig5 goldens
  bit-for-bit unchanged — every probe is a pure read.
"""

import io
import json
import pathlib
import threading
import time

import pytest

from repro.experiments import fig2_indegree, fig5_hub_defense
from repro.experiments.scale import Scale
from repro.experiments.scenarios import build_secure_overlay
from repro.ops import MetricsServer, StreamingObserver
from repro.ops.__main__ import main as ops_main
from repro.ops.checkpoint import save_checkpoint
from repro.sim.engine import Engine, SimConfig
from repro.sim.transport import ENV_TRANSPORT

GOLDEN = pathlib.Path(__file__).parent.parent / "properties" / "golden"

_CAPTURES = {
    "fig2": lambda: fig2_indegree.render(
        fig2_indegree.run_fig2(scale=Scale.SMOKE, seed=1)
    ),
    "fig5": lambda: fig5_hub_defense.render(
        fig5_hub_defense.run_fig5(scale=Scale.SMOKE, seed=1)
    ),
}


def _small_overlay(**kwargs):
    return build_secure_overlay(n=20, malicious=2, seed=7, **kwargs)


# -- StreamingObserver ------------------------------------------------


def test_observer_rows_bracket_the_run():
    overlay = _small_overlay()
    observer = StreamingObserver()
    overlay.engine.add_observer(observer)
    overlay.run(3)

    rows = observer.drain()
    assert [row["event"] for row in rows] == [
        "start", "cycle", "cycle", "cycle", "finish",
    ]
    assert rows[0]["nodes"] == 20
    assert rows[0]["master_seed"] == 7
    assert [row["cycle"] for row in rows[1:-1]] == [0, 1, 2]
    assert rows[-1] == {"event": "finish", "cycle": 3, "dropped": 0}
    for row in rows[1:-1]:
        assert 0.0 <= row["view_fill"] <= 1.0
        assert row["indegree_min"] <= row["indegree_mean"]
        assert row["indegree_mean"] <= row["indegree_max"]
        assert row["traffic_bytes"] >= 0
        json.dumps(row)  # every row is JSON-serialisable
    assert observer.published == len(rows)
    assert observer.dropped == 0


def test_observer_includes_health_columns_when_ledger_present():
    overlay = _small_overlay(
        sim_config=SimConfig(seed=7, peer_health=True)
    )
    observer = StreamingObserver()
    overlay.engine.add_observer(observer)
    overlay.run(2)
    cycle_rows = [r for r in observer.drain() if r["event"] == "cycle"]
    for row in cycle_rows:
        assert "quarantined" in row
        assert "quarantine_events" in row
        assert "amplification" in row


def test_observer_samples_every_nth_cycle():
    overlay = _small_overlay()
    observer = StreamingObserver(every=2)
    overlay.engine.add_observer(observer)
    overlay.run(5)
    cycles = [
        row["cycle"] for row in observer.drain() if row["event"] == "cycle"
    ]
    assert cycles == [0, 2, 4]


def test_full_queue_drops_and_counts_without_blocking():
    observer = StreamingObserver(maxsize=2)
    started = time.monotonic()
    for index in range(5):
        observer.publish({"event": "cycle", "cycle": index})
    assert time.monotonic() - started < 1.0  # never blocked
    assert observer.published == 2
    assert observer.dropped == 3
    assert len(observer.drain()) == 2


def test_observer_validates_arguments():
    with pytest.raises(ValueError):
        StreamingObserver(every=0)
    with pytest.raises(ValueError):
        StreamingObserver(maxsize=0)


# -- MetricsServer over a real socket ---------------------------------


def _wait_for_client(server, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with server._lock:
            if server._clients:
                return
        time.sleep(0.01)
    raise AssertionError("tailer never connected")


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
def test_server_streams_ndjson_to_a_socket_client():
    overlay = _small_overlay()
    observer = StreamingObserver()
    overlay.engine.add_observer(observer)

    lines = []
    with MetricsServer(observer) as server:
        import socket

        def tail():
            with socket.create_connection(server.address, timeout=10.0) as s:
                with s.makefile("r", encoding="utf-8") as stream:
                    for line in stream:  # EOF after the sentinel
                        lines.append(line.rstrip("\n"))

        tailer = threading.Thread(target=tail, daemon=True)
        tailer.start()
        _wait_for_client(server)
        overlay.run(3)
        assert server.wait_drained(timeout=10.0)
        tailer.join(timeout=10.0)
        assert not tailer.is_alive()

    rows = [json.loads(line) for line in lines]
    assert [row["event"] for row in rows] == [
        "start", "cycle", "cycle", "cycle", "finish",
    ]
    assert server.sent_lines == 5
    assert server.dropped_clients == 0


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
def test_server_drops_dead_client_and_keeps_pumping():
    """A client that vanishes is dropped; the stream itself survives."""
    import socket

    observer = StreamingObserver()
    with MetricsServer(observer) as server:
        victim = socket.create_connection(server.address, timeout=5.0)
        _wait_for_client(server)
        # Sever the client; subsequent sendall calls fail with EPIPE/
        # ECONNRESET once the kernel buffer drains, and the server must
        # drop the client rather than the row stream.
        victim.close()
        deadline = time.monotonic() + 10.0
        index = 0
        while server.dropped_clients == 0 and time.monotonic() < deadline:
            observer.publish({"event": "cycle", "cycle": index, "pad": "x" * 4096})
            index += 1
            time.sleep(0.01)
        assert server.dropped_clients == 1
        assert server.sent_lines > 0


# -- the CLI ----------------------------------------------------------


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
def test_cli_tail_follows_stream_until_eof():
    overlay = _small_overlay()
    observer = StreamingObserver()
    overlay.engine.add_observer(observer)

    buffer = io.StringIO()
    codes = []
    with MetricsServer(observer) as server:
        tailer = threading.Thread(
            target=lambda: codes.append(
                ops_main(["tail", server.endpoint], out=buffer)
            ),
            daemon=True,
        )
        tailer.start()
        _wait_for_client(server)
        overlay.run(2)
        assert server.wait_drained(timeout=10.0)
        tailer.join(timeout=10.0)
        assert not tailer.is_alive()

    assert codes == [0]
    rows = [json.loads(line) for line in buffer.getvalue().splitlines()]
    assert [row["event"] for row in rows] == [
        "start", "cycle", "cycle", "finish",
    ]


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
def test_cli_tail_limit_stops_early():
    observer = StreamingObserver()
    buffer = io.StringIO()
    codes = []
    with MetricsServer(observer) as server:
        tailer = threading.Thread(
            target=lambda: codes.append(
                ops_main(["tail", server.endpoint, "--limit", "2"], out=buffer)
            ),
            daemon=True,
        )
        tailer.start()
        _wait_for_client(server)
        # Six rows, no sentinel: the tailer must stop at its limit, not
        # wait for the stream to end.
        for index in range(6):
            observer.publish({"event": "cycle", "cycle": index})
        tailer.join(timeout=10.0)
        assert not tailer.is_alive()

    assert codes == [0]
    assert len(buffer.getvalue().splitlines()) == 2


def test_cli_tail_rejects_bad_endpoint_and_dead_server():
    with pytest.raises(SystemExit):
        ops_main(["tail", "no-port-here"], out=io.StringIO())
    # Grab a port that is definitely closed.
    import socket

    probe = socket.create_server(("127.0.0.1", 0))
    host, port = probe.getsockname()[:2]
    probe.close()
    assert ops_main(["tail", f"{host}:{port}"], out=io.StringIO()) == 1


def test_cli_inspect_summarises_checkpoint(tmp_path):
    overlay = _small_overlay()
    overlay.run(2)
    path = save_checkpoint(overlay.engine, tmp_path / "state.ckpt")

    buffer = io.StringIO()
    assert ops_main(["inspect", str(path)], out=buffer) == 0
    summary = json.loads(buffer.getvalue())
    assert summary["format_version"] == 1
    assert summary["cycle"] == 2
    assert summary["master_seed"] == 7
    assert summary["node_kinds"]["secure"] > 0

    assert ops_main(["inspect", str(tmp_path / "nope.ckpt")],
                    out=io.StringIO()) == 1


# -- the acceptance bar: goldens unchanged with the observer attached --


def _attach_observer_to_every_engine(monkeypatch, observers):
    original_init = Engine.__init__

    def init_with_streaming_observer(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        observer = StreamingObserver(maxsize=4096)
        observers.append(observer)
        self.add_observer(observer)

    monkeypatch.setattr(Engine, "__init__", init_with_streaming_observer)


@pytest.mark.parametrize("name", sorted(_CAPTURES))
def test_goldens_unchanged_with_observer_attached(monkeypatch, name):
    observers = []
    _attach_observer_to_every_engine(monkeypatch, observers)
    expected = (GOLDEN / f"{name}.txt").read_text(encoding="utf-8")
    assert _CAPTURES[name]() + "\n" == expected
    assert observers and any(obs.published for obs in observers)


@pytest.mark.golden_wire
def test_golden_unchanged_with_observer_under_wire_transport(monkeypatch):
    observers = []
    _attach_observer_to_every_engine(monkeypatch, observers)
    monkeypatch.setenv(ENV_TRANSPORT, "wire")
    expected = (GOLDEN / "fig2.txt").read_text(encoding="utf-8")
    assert _CAPTURES["fig2"]() + "\n" == expected
    assert observers and any(obs.published for obs in observers)


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
def test_thousand_node_run_streams_to_live_tailer():
    """A 1K-node run streams per-cycle metrics to a live tailer."""
    overlay = build_secure_overlay(n=1000, malicious=20, seed=2)
    observer = StreamingObserver()
    overlay.engine.add_observer(observer)

    buffer = io.StringIO()
    codes = []
    with MetricsServer(observer) as server:
        tailer = threading.Thread(
            target=lambda: codes.append(
                ops_main(["tail", server.endpoint], out=buffer)
            ),
            daemon=True,
        )
        tailer.start()
        _wait_for_client(server)
        overlay.run(2)
        assert server.wait_drained(timeout=30.0)
        tailer.join(timeout=30.0)
        assert not tailer.is_alive()

    assert codes == [0]
    rows = [json.loads(line) for line in buffer.getvalue().splitlines()]
    cycle_rows = [row for row in rows if row["event"] == "cycle"]
    assert len(cycle_rows) == 2
    for row in cycle_rows:
        assert row["nodes"] == 1000
        assert row["dialogues_opened"] > 0
    assert rows[-1]["event"] == "finish"
    assert observer.dropped == 0
