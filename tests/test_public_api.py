"""The package's public surface: imports, exports, docstrings."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.crypto",
    "repro.sim",
    "repro.cyclon",
    "repro.core",
    "repro.adversary",
    "repro.brahms",
    "repro.gossip",
    "repro.metrics",
    "repro.experiments",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports_and_is_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_top_level_convenience_exports():
    import repro

    assert repro.__version__
    overlay = repro.build_secure_overlay(
        n=10, config=repro.SecureCyclonConfig(view_length=3, swap_length=2)
    )
    assert isinstance(overlay, repro.Overlay)


def test_public_classes_have_docstrings():
    from repro.core.node import SecureCyclonNode
    from repro.core.descriptor import SecureDescriptor
    from repro.cyclon.node import CyclonNode
    from repro.sim.engine import Engine

    for cls in (SecureCyclonNode, SecureDescriptor, CyclonNode, Engine):
        assert cls.__doc__
        public_methods = [
            getattr(cls, name)
            for name in dir(cls)
            if not name.startswith("_") and callable(getattr(cls, name))
        ]
        for method in public_methods:
            assert method.__doc__, f"{cls.__name__}.{method.__name__}"


def test_every_module_has_a_docstring():
    """Documentation deliverable: every module in the package explains
    itself."""
    import importlib
    import pathlib

    import repro

    package_root = pathlib.Path(repro.__file__).parent
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root.parent)
        module_name = ".".join(relative.with_suffix("").parts)
        if module_name.endswith(".__init__"):
            module_name = module_name[: -len(".__init__")]
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"


def test_top_level_exports_resolve():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None
