#!/usr/bin/env python3
"""Churn, crashes and the §V-A join procedure.

Shows the self-healing side of the protocol: a quarter of the overlay
crashes at once, new nodes join via the non-swappable bootstrap, and
the overlay stays connected with full views throughout.

Run:  python examples/churn_and_join.py
      (REPRO_SCALE=smoke shrinks the overlay for a quick run)
"""

from repro import SecureCyclonConfig, build_secure_overlay
from repro.bootstrap import bootstrap_joiner
from repro.core.node import SecureCyclonNode
from repro.metrics.graphstats import largest_component_fraction
from repro.metrics.links import non_swappable_fraction, view_fill_fraction
from repro.experiments.scale import Scale, resolve_scale

SMOKE = resolve_scale() is Scale.SMOKE
NODES = 60 if SMOKE else 200
CRASHES = 15 if SMOKE else 50
JOINERS = 4 if SMOKE else 10
SETTLE_CYCLES = 8 if SMOKE else 20


def report(overlay, label):
    engine = overlay.engine
    print(
        f"{label:<34} nodes={len(engine.nodes):>4}  "
        f"fill={view_fill_fraction(engine):.2f}  "
        f"nonswap={100 * non_swappable_fraction(engine):.1f}%  "
        f"component={largest_component_fraction(engine):.0%}"
    )


def join_one(overlay, name):
    engine = overlay.engine
    keypair = engine.registry.new_keypair(engine.rng_hub.stream(f"kp-{name}"))
    node = SecureCyclonNode(
        keypair=keypair,
        address=engine.network.reserve_address(keypair.public),
        config=SecureCyclonConfig(view_length=12, swap_length=3),
        clock=engine.clock,
        registry=engine.registry,
        rng=engine.rng_hub.stream(f"rng-{name}"),
        trace=engine.trace,
    )
    node.bind_network(engine.network)
    acquired = bootstrap_joiner(
        node,
        engine.legit_nodes(),
        links=4,
        rng=engine.rng_hub.stream(f"boot-{name}"),
    )
    engine.add_node(node)
    return node, acquired


def main() -> None:
    overlay = build_secure_overlay(
        n=NODES,
        config=SecureCyclonConfig(view_length=12, swap_length=3),
        seed=37,
    )
    overlay.run(SETTLE_CYCLES)
    report(overlay, "converged overlay")

    # Catastrophic failure: a quarter of the overlay crashes at once.
    for victim in list(overlay.engine.alive_ids())[:CRASHES]:
        overlay.engine.remove_node(victim)
    report(overlay, f"right after {CRASHES} crashes")
    overlay.run(SETTLE_CYCLES)
    report(overlay, f"{SETTLE_CYCLES} cycles later (healed)")

    # Newcomers join through the §V-A bootstrap.
    joiners = []
    for index in range(JOINERS):
        node, acquired = join_one(overlay, f"joiner-{index}")
        joiners.append(node)
    print(f"\n{JOINERS} joiners bootstrapped with ~4 donated links each")
    overlay.run(SETTLE_CYCLES)
    report(overlay, f"{SETTLE_CYCLES} cycles after the joins")
    fills = [len(node.view) / node.view.capacity for node in joiners]
    print(
        f"joiners' own view fill after integration: "
        f"{min(fills):.2f}..{max(fills):.2f}"
    )
    print(
        "\nDonors kept non-swappable copies of the links they gave away;\n"
        "those converted back to fresh swappable links by redemption —\n"
        "which is why the non-swappable share above returns to ~0."
    )


if __name__ == "__main__":
    main()
