#!/usr/bin/env python3
"""The paper's headline story: the hub attack, with and without defence.

Runs the same coordinated attack (malicious nodes presenting views that
point only at their colleagues) against legacy Cyclon and against
SecureCyclon, printing the malicious-link share side by side.  Legacy
Cyclon is fully captured; SecureCyclon detects the cloned descriptors,
floods the proofs, and evicts every attacker.

Run:  python examples/hub_attack_demo.py
      (REPRO_SCALE=smoke shrinks the overlay for a quick run)
"""

from repro import CyclonConfig, SecureCyclonConfig
from repro.experiments.scenarios import build_cyclon_overlay, build_secure_overlay
from repro.metrics.timeline import attack_timeline
from repro.metrics.links import (
    blacklisted_malicious_fraction,
    malicious_link_fraction,
)
from repro.experiments.scale import Scale, resolve_scale

SMOKE = resolve_scale() is Scale.SMOKE
NODES = 50 if SMOKE else 250
VIEW = 10 if SMOKE else 15
MALICIOUS = 5 if SMOKE else 15
ATTACK_START = 6 if SMOKE else 15
TOTAL_CYCLES = 24 if SMOKE else 75
REPORT_EVERY = 6 if SMOKE else 15


def main() -> None:
    cyclon = build_cyclon_overlay(
        n=NODES,
        config=CyclonConfig(view_length=VIEW, swap_length=3),
        malicious=MALICIOUS,
        attack_start=ATTACK_START,
        seed=23,
    )
    secure = build_secure_overlay(
        n=NODES,
        config=SecureCyclonConfig(view_length=VIEW, swap_length=3),
        malicious=MALICIOUS,
        attack_start=ATTACK_START,
        seed=23,
    )

    print(
        f"{NODES} nodes, view {VIEW}, {MALICIOUS} malicious "
        f"({MALICIOUS / NODES:.0%}), attack starts at cycle {ATTACK_START}\n"
    )
    print(f"{'cycle':>6} {'Cyclon mal%':>12} {'Secure mal%':>12} {'blacklisted%':>13}")
    for _ in range(TOTAL_CYCLES // REPORT_EVERY):
        cyclon.run(REPORT_EVERY)
        secure.run(REPORT_EVERY)
        print(
            f"{cyclon.engine.clock.cycle:>6}"
            f" {100 * malicious_link_fraction(cyclon.engine):>11.1f}%"
            f" {100 * malicious_link_fraction(secure.engine):>11.1f}%"
            f" {100 * blacklisted_malicious_fraction(secure.engine):>12.1f}%"
        )

    print()
    print(attack_timeline(secure.engine).render("What SecureCyclon proved:"))
    print(
        "\nEvery decision is backed by two conflicting signed descriptors\n"
        "that any third party can re-validate locally."
    )


if __name__ == "__main__":
    main()
