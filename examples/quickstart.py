#!/usr/bin/env python3
"""Quickstart: build a SecureCyclon overlay and sample peers.

Builds a 300-node overlay, runs it to convergence, and shows what the
peer-sampling service gives an application: a continuously refreshed,
uniformly random set of live peers — plus the overlay-health numbers
the paper cares about.

Run:  python examples/quickstart.py
      (REPRO_SCALE=smoke shrinks the overlay for a quick run)
"""

from repro import SecureCyclonConfig, build_secure_overlay
from repro.metrics.degree import indegree_statistics
from repro.metrics.graphstats import overlay_statistics
from repro.metrics.links import view_fill_fraction
from repro.experiments.scale import Scale, resolve_scale

SMOKE = resolve_scale() is Scale.SMOKE
NODES = 60 if SMOKE else 300
VIEW = 10 if SMOKE else 20
CYCLES = 12 if SMOKE else 30


def main() -> None:
    config = SecureCyclonConfig(view_length=VIEW, swap_length=3)
    overlay = build_secure_overlay(n=NODES, config=config, seed=7)

    print(f"Running {CYCLES} cycles of SecureCyclon over {NODES} nodes...")
    overlay.run(CYCLES)

    node = overlay.engine.legit_nodes()[0]
    print(f"\nNode {node.node_id.hex()} currently samples these peers:")
    for entry in list(node.view)[:8]:
        age = entry.descriptor.age_cycles(
            overlay.engine.clock.now(), overlay.engine.clock.period_seconds
        )
        print(
            f"  {entry.creator.hex()}  (descriptor age {age} cycles, "
            f"{len(entry.descriptor.hops)} ownership transfers)"
        )

    print("\nSample a few more cycles: the view keeps refreshing.")
    before = set(node.view.neighbor_ids())
    overlay.run(10)
    after = set(node.view.neighbor_ids())
    print(f"  view turnover over 10 cycles: {len(after - before)}/{len(after)}")

    stats = indegree_statistics(overlay.engine)
    graph = overlay_statistics(overlay.engine)
    print("\nOverlay health (the paper's Fig 2 properties):")
    print(f"  view fill:            {view_fill_fraction(overlay.engine):.2f}")
    print(
        f"  indegree mean/stddev: {stats['mean']:.1f} / {stats['stddev']:.2f} "
        f"(configured outdegree {config.view_length})"
    )
    print(f"  connected component:  {graph['largest_component']:.0%}")
    print(f"  clustering coeff:     {graph['clustering']:.3f} (random-graph-like)")


if __name__ == "__main__":
    main()
