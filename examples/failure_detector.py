#!/usr/bin/env python3
"""Gossip failure detection on top of the peer-sampling service.

One of the paper's §I motivations made concrete: a heartbeat-gossip
failure detector whose monitoring relationships come from the live
SecureCyclon views.  The demo crashes a batch of nodes and shows
prompt, false-positive-free detection — then repeats the run on an
overlay under a hub attack, where detection visibly degrades: the
application-level reason peer sampling must be dependable.

Run:  python examples/failure_detector.py
      (REPRO_SCALE=smoke shrinks the overlay for a quick run)
"""

from repro import SecureCyclonConfig, build_secure_overlay
from repro.gossip.failure_detector import FailureDetector
from repro.experiments.scale import Scale, resolve_scale

SMOKE = resolve_scale() is Scale.SMOKE
NODES = 40 if SMOKE else 150
VIEW = 8 if SMOKE else 12
SUSPECT_AFTER = 6 if SMOKE else 10
CRASHES = 4 if SMOKE else 10


def detection_report(overlay, label):
    engine = overlay.engine
    detector = FailureDetector(engine, suspect_after=SUSPECT_AFTER)
    detector.run(SUSPECT_AFTER)  # seed tables while everyone is alive

    legit = [nid for nid in engine.alive_ids() if nid not in engine.malicious_ids]
    victims = set(legit[:CRASHES])
    for victim in victims:
        engine.remove_node(victim)
    overlay.run(3)  # let the overlay notice and keep mixing
    result = detector.run(3 * SUSPECT_AFTER)

    detected = {
        victim for victim in victims if result.detection_round(victim) is not None
    }
    rounds = [
        result.detection_round(victim)
        for victim in victims
        if result.detection_round(victim) is not None
    ]
    false_positives = result.false_positives(victims)
    print(f"{label}")
    print(f"  crashed nodes detected:   {len(detected)}/{len(victims)}")
    if rounds:
        print(f"  median detection round:   {sorted(rounds)[len(rounds) // 2]}")
    print(f"  false positives:          {len(false_positives)}")
    print()


def main() -> None:
    print("=== healthy SecureCyclon overlay ===")
    overlay = build_secure_overlay(
        n=NODES,
        config=SecureCyclonConfig(view_length=VIEW, swap_length=3),
        seed=51,
    )
    overlay.run(20)
    detection_report(overlay, "uniform views -> crisp detection")

    print("=== same overlay, 20% hub attackers (blacklist disabled) ===")
    attacked = build_secure_overlay(
        n=NODES,
        config=SecureCyclonConfig(
            view_length=VIEW, swap_length=3, blacklist_enabled=False
        ),
        malicious=NODES // 5,
        attack_start=10,
        seed=51,
    )
    attacked.run(30)  # views polluted by the unpunished attack
    detection_report(
        attacked,
        "polluted views -> monitoring routed through the adversary",
    )
    print(
        "With enforcement enabled (the default) the attackers are "
        "blacklisted\nwithin a few cycles and detection quality returns "
        "to the healthy case."
    )


if __name__ == "__main__":
    main()
