#!/usr/bin/env python3
"""The paper's analytic arguments, executed and checked live.

Walks through `repro.analysis` next to a live overlay:

* the §VI-A cost budget for your configuration;
* the Fig 2 indegree equilibrium, model vs measured;
* how fast a violation proof floods the overlay;
* the global audit certifying the run obeyed the protocol.

Run:  python examples/cost_and_theory.py
      (REPRO_SCALE=smoke shrinks the overlay for a quick run)
"""

from repro import SecureCyclonConfig, audit_engine, build_secure_overlay
from repro.analysis import (
    NetworkCostModel,
    expected_transfers,
    flood_rounds_to_cover,
    indegree_moments,
)
from repro.analysis.indegree import empirical_moments
from repro.metrics.degree import indegree_counts
from repro.experiments.scale import Scale, resolve_scale

SMOKE = resolve_scale() is Scale.SMOKE
NODES = 60 if SMOKE else 300
VIEW = 10 if SMOKE else 20
SWAP = 3


def main() -> None:
    model = NetworkCostModel(
        view_length=VIEW, swap_length=SWAP, redemption_cache=5,
        period_seconds=10.0,
    )
    print("=== §VI-A cost budget ===")
    print(f"descriptor, {model.pessimistic_transfers} transfers: "
          f"{model.pessimistic_descriptor_bytes:.0f} B")
    print(f"per gossip direction ({model.descriptors_per_direction} "
          f"descriptors): {model.kilobytes_per_direction:.1f} KB")
    print(f"sustained per node: "
          f"{model.bandwidth_bytes_per_second / 1024:.1f} KB/s")
    print(f"expected lifetime transfers (2s): "
          f"{expected_transfers(VIEW, SWAP):.0f}")

    print("\n=== proof flooding (§IV-C) ===")
    rounds = flood_rounds_to_cover(NODES, VIEW)
    print(f"one discovery reaches >99.9% of {NODES} nodes in "
          f"{rounds} push rounds (well under one gossip cycle)")

    print("\n=== Fig 2 equilibrium, model vs live overlay ===")
    overlay = build_secure_overlay(
        n=NODES,
        config=SecureCyclonConfig(view_length=VIEW, swap_length=SWAP),
        seed=61,
    )
    overlay.run(40)
    model_mean, envelope = indegree_moments(NODES, VIEW)
    mean, std = empirical_moments(indegree_counts(overlay.engine))
    print(f"mean indegree:  model {model_mean:.2f}   measured {mean:.2f}")
    print(f"spread (std):   random-graph envelope {envelope:.2f}   "
          f"measured {std:.2f}  (tighter: Cyclon self-corrects)")

    print("\n=== global audit ===")
    report = audit_engine(overlay.engine)
    print(report.summary())
    report.assert_clean()


if __name__ == "__main__":
    main()
