#!/usr/bin/env python3
"""Decentralised averaging on top of peer sampling (a §I application).

Every node holds a local measurement; push-pull gossip averaging should
converge everyone to the global mean.  Convergence quality depends on
the sampling layer: on a hijacked overlay the estimates converge slowly
and unevenly because most links dead-end in censoring hubs.

Run:  python examples/aggregation_under_attack.py
      (REPRO_SCALE=smoke shrinks the overlay for a quick run)
"""

from repro import CyclonConfig, SecureCyclonConfig
from repro.experiments.scenarios import build_cyclon_overlay, build_secure_overlay
from repro.gossip.aggregation import push_pull_average
from repro.experiments.scale import Scale, resolve_scale

SMOKE = resolve_scale() is Scale.SMOKE
NODES = 40 if SMOKE else 150
VIEW = 8 if SMOKE else 10
MALICIOUS = 4 if SMOKE else 10


def run_aggregation(overlay, label):
    engine = overlay.engine
    ids = sorted(engine.legit_ids)
    # A synthetic sensor field: node i measures i (true mean known).
    values = {nid: float(i) for i, nid in enumerate(ids)}
    result = push_pull_average(engine, values, rounds=20)
    print(
        f"{label:<32} true mean={result.true_mean:8.2f}  "
        f"max error={result.max_error():8.4f}  "
        f"final variance={result.variance_per_round[-1]:10.6f}"
    )
    return result


def main() -> None:
    healthy = build_secure_overlay(
        n=NODES,
        config=SecureCyclonConfig(view_length=VIEW, swap_length=3),
        seed=41,
    )
    healthy.run(30)

    hijacked = build_cyclon_overlay(
        n=NODES,
        config=CyclonConfig(view_length=VIEW, swap_length=3),
        malicious=MALICIOUS,
        attack_start=10,
        seed=41,
    )
    hijacked.run(60)

    defended = build_secure_overlay(
        n=NODES,
        config=SecureCyclonConfig(view_length=VIEW, swap_length=3),
        malicious=MALICIOUS,
        attack_start=10,
        seed=41,
    )
    defended.run(60)

    print(f"Push-pull averaging, 20 rounds, {NODES} nodes:\n")
    run_aggregation(healthy, "healthy SecureCyclon")
    run_aggregation(hijacked, "Cyclon after hub attack")
    run_aggregation(defended, "SecureCyclon under same attack")
    print(
        "\nOn the captured overlay most view links point at hubs that\n"
        "refuse to aggregate, so estimates barely mix; the defended\n"
        "overlay matches the healthy baseline."
    )


if __name__ == "__main__":
    main()
