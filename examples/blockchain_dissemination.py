#!/usr/bin/env python3
"""Block dissemination over a peer-sampling overlay (the §I motivation).

Blockchains gossip blocks over overlays built by peer sampling.  This
example measures block-broadcast coverage on three overlays:

1. a healthy SecureCyclon overlay;
2. a legacy Cyclon overlay *after* a successful hub attack — malicious
   hubs swallow the block, so coverage collapses (the paper's massive
   DoS scenario);
3. the same SecureCyclon overlay under the same attack — the attackers
   were blacklisted, so dissemination is unharmed.

Run:  python examples/blockchain_dissemination.py
      (REPRO_SCALE=smoke shrinks the overlay for a quick run)
"""

from repro import CyclonConfig, SecureCyclonConfig
from repro.experiments.scenarios import build_cyclon_overlay, build_secure_overlay
from repro.gossip.dissemination import disseminate
from repro.metrics.links import malicious_link_fraction
from repro.experiments.scale import Scale, resolve_scale

SMOKE = resolve_scale() is Scale.SMOKE
NODES = 50 if SMOKE else 200
VIEW = 8 if SMOKE else 12
MALICIOUS = 5 if SMOKE else 12


def broadcast_coverage(overlay, blocks=5, fanout=4):
    """Average coverage over several block broadcasts from random origins."""
    engine = overlay.engine
    rng = engine.rng_hub.stream("block-origins")
    legit = sorted(engine.legit_ids)
    total = 0.0
    for _ in range(blocks):
        origin = rng.choice(legit)
        result = disseminate(engine, origin, fanout=fanout)
        total += len(result.reached & engine.legit_ids) / len(legit)
    return total / blocks


def main() -> None:
    healthy = build_secure_overlay(
        n=NODES,
        config=SecureCyclonConfig(view_length=VIEW, swap_length=3),
        seed=29,
    )
    healthy.run(40)

    hijacked = build_cyclon_overlay(
        n=NODES,
        config=CyclonConfig(view_length=VIEW, swap_length=3),
        malicious=MALICIOUS,
        attack_start=10,
        seed=29,
    )
    hijacked.run(70)

    defended = build_secure_overlay(
        n=NODES,
        config=SecureCyclonConfig(view_length=VIEW, swap_length=3),
        malicious=MALICIOUS,
        attack_start=10,
        seed=29,
    )
    defended.run(70)

    rows = [
        ("healthy SecureCyclon", healthy),
        ("Cyclon after hub attack", hijacked),
        ("SecureCyclon under same attack", defended),
    ]
    print(f"Block broadcast coverage over {NODES}-node overlays "
          f"({MALICIOUS} malicious where noted):\n")
    print(f"{'overlay':<32} {'mal links':>10} {'coverage':>10}")
    for label, overlay in rows:
        coverage = broadcast_coverage(overlay)
        mal = malicious_link_fraction(overlay.engine)
        print(f"{label:<32} {100 * mal:>9.1f}% {100 * coverage:>9.1f}%")

    print(
        "\nThe hub attack turns the unprotected overlay into a censorship\n"
        "machine; SecureCyclon's provable eviction keeps blocks flowing."
    )


if __name__ == "__main__":
    main()
