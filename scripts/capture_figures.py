"""Capture the seeded smoke-scale figure series for equivalence checks.

Renders fig2/fig3/fig5/fig6/fig7 at SMOKE scale with a fixed seed and
writes the text to a directory.  Run it before and after a hot-path
change and diff the outputs: they must be byte-identical, because every
optimisation of the simulation core is required to preserve RNG stream
consumption (see PERFORMANCE.md).

Usage: PYTHONPATH=src python scripts/capture_figures.py OUTDIR
"""

from __future__ import annotations

import pathlib
import sys

from repro.experiments import (
    fig2_indegree,
    fig3_cyclon_takeover,
    fig5_hub_defense,
    fig6_depletion,
    fig7_redemption,
)
from repro.experiments.scale import Scale


def main(outdir: str) -> None:
    out = pathlib.Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    captures = {
        "fig2": lambda: fig2_indegree.render(
            fig2_indegree.run_fig2(scale=Scale.SMOKE, seed=1)
        ),
        "fig3": lambda: fig3_cyclon_takeover.render(
            fig3_cyclon_takeover.run_fig3(scale=Scale.SMOKE, seed=1)
        ),
        "fig5": lambda: fig5_hub_defense.render(
            fig5_hub_defense.run_fig5(scale=Scale.SMOKE, seed=1)
        ),
        "fig6": lambda: fig6_depletion.render(
            fig6_depletion.run_fig6(scale=Scale.SMOKE, seed=1)
        ),
        "fig7": lambda: fig7_redemption.render(
            fig7_redemption.run_fig7(scale=Scale.SMOKE, seed=1)
        ),
    }
    for name, capture in captures.items():
        text = capture()
        (out / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"captured {name} -> {out / (name + '.txt')}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "figure-captures")
