"""Coverage gate for the verification hot path.

Fails (exit code 1) when measured line coverage of the §IV-B
verification modules drops below the recorded baseline.  Two engines:

* with ``pytest-cov`` installed, runs ``pytest --cov=repro`` over the
  gated test set and reads its percentage;
* otherwise (the CI container ships no coverage tooling and installs
  are not allowed) falls back to a stdlib implementation: a
  ``trace.Trace`` line tracer around an in-process ``pytest.main``
  run, with executable lines derived from each module's compiled code
  objects (``co_lines``), so the denominator is exactly what the
  interpreter can execute.

The gate is scoped to the crypto/verification layer rather than the
whole tree: the stdlib tracer is a pure-Python callback and tracing
the full three-minute suite would multiply CI time for no extra signal
— these modules are where this PR (and any future verification change)
can silently lose test reach.  The baseline below is the measured
coverage at the time the gate landed, rounded down a point to absorb
line-count drift; raise it when coverage improves.

Usage::

    PYTHONPATH=src python scripts/coverage_gate.py
    PYTHONPATH=src python scripts/coverage_gate.py --report   # per-file table
"""

from __future__ import annotations

import argparse
import importlib.util
import pathlib
import sys
import trace
from types import CodeType

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

#: Modules the gate measures: the batched kernel, every module the
#: sequential/batched verification paths run through, and — since the
#: transport redesign made the codec load-bearing — the wire layer
#: (record serialisation, message framing, the batch-codec fast path,
#: transport plumbing).
TARGET_MODULES = [
    "repro/crypto/batch.py",
    "repro/crypto/keys.py",
    "repro/crypto/registry.py",
    "repro/crypto/signing.py",
    "repro/core/chain.py",
    "repro/core/codec.py",
    "repro/core/codec_batch.py",
    "repro/core/descriptor.py",
    "repro/core/proofs.py",
    "repro/core/samples.py",
    "repro/core/wire.py",
    "repro/cyclon/codec.py",
    "repro/sim/transport.py",
    "repro/sim/shard.py",
    "repro/sim/shardcoord.py",
    "repro/ops/records.py",
    "repro/ops/checkpoint.py",
    "repro/ops/metrics_stream.py",
    "repro/ops/server.py",
    "repro/ops/__main__.py",
]

#: Tests that exercise those modules (kept narrow so the stdlib tracer
#: stays within the CI time budget).
TARGET_TESTS = [
    "tests/crypto",
    "tests/core/test_chain.py",
    "tests/core/test_descriptor.py",
    "tests/core/test_proofs.py",
    "tests/core/test_samples.py",
    "tests/core/test_wire.py",
    "tests/properties/test_batched_verification.py",
    "tests/properties/test_codec_roundtrip.py",
    "tests/sim/test_transport.py",
    "tests/sim/test_wire_faults.py",
    "tests/sim/test_shard_router.py",
    "tests/sim/test_shard_unit.py",
    "tests/sim/test_shard_failures.py",
    "tests/ops/test_checkpoint_records.py",
    "tests/ops/test_resume_equivalence.py",
    "tests/ops/test_metrics_stream.py",
    "tests/ops/test_sharded_checkpoint.py",
]

#: Measured 91.6% when the gate landed (stdlib engine), 94.3% after
#: the transport redesign added the wire layer to the gate, 94.7%
#: with the fault injector's tests gated alongside it, and holding
#: above 94% with the ops plane (checkpoint records/restore, metrics
#: stream, server, CLI) gated too; the margin absorbs executable-line
#: drift, not coverage regressions.
BASELINE_PERCENT = 93.0


def executable_lines(path: pathlib.Path) -> set:
    """Line numbers the compiled module can actually execute."""
    code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    lines = set()
    stack = [code]
    while stack:
        current = stack.pop()
        for _start, _end, line in current.co_lines():
            if line is not None:
                lines.add(line)
        for const in current.co_consts:
            if isinstance(const, CodeType):
                stack.append(const)
    return lines


def run_with_pytest_cov() -> int:
    import subprocess

    command = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        f"--cov={SRC / 'repro'}",
        f"--cov-fail-under={BASELINE_PERCENT}",
        *TARGET_TESTS,
    ]
    return subprocess.call(command, cwd=ROOT)


def run_with_stdlib_trace(report: bool) -> int:
    import threading

    import pytest

    tracer = trace.Trace(
        count=1,
        trace=0,
        ignoredirs=[sys.prefix, sys.exec_prefix],
    )
    # ``Trace.runfunc`` only installs the tracer on the calling thread;
    # the shard tests run worker loops on *threads* (the in-process
    # backend), so new threads must inherit the same tracer or the
    # whole worker side of shard.py would read as uncovered.
    threading.settrace(tracer.globaltrace)
    try:
        exit_code = tracer.runfunc(
            pytest.main, ["-q", "-p", "no:cacheprovider", *TARGET_TESTS]
        )
    finally:
        threading.settrace(None)
    if exit_code != 0:
        print(f"coverage gate: gated tests failed (pytest exit {exit_code})")
        return int(exit_code)

    counts = tracer.results().counts
    executed_by_file: dict = {}
    for (filename, lineno), _count in counts.items():
        executed_by_file.setdefault(filename, set()).add(lineno)

    total_executable = 0
    total_executed = 0
    rows = []
    for module in TARGET_MODULES:
        path = (SRC / module).resolve()
        possible = executable_lines(path)
        executed = executed_by_file.get(str(path), set()) & possible
        total_executable += len(possible)
        total_executed += len(executed)
        rows.append(
            (module, len(executed), len(possible),
             100.0 * len(executed) / len(possible) if possible else 100.0)
        )

    percent = 100.0 * total_executed / total_executable
    if report:
        width = max(len(row[0]) for row in rows)
        for module, hit, possible, pct in rows:
            print(f"  {module:<{width}}  {hit:>4}/{possible:<4}  {pct:6.1f}%")
    print(
        f"coverage gate: {percent:.1f}% of {total_executable} executable "
        f"lines across {len(TARGET_MODULES)} verification modules "
        f"(baseline {BASELINE_PERCENT}%)"
    )
    if percent < BASELINE_PERCENT:
        print("coverage gate: FAILED — coverage fell below the baseline")
        return 1
    print("coverage gate OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report", action="store_true", help="print the per-file table"
    )
    args = parser.parse_args()
    if importlib.util.find_spec("pytest_cov") is not None:
        return run_with_pytest_cov()
    return run_with_stdlib_trace(args.report)


if __name__ == "__main__":
    sys.exit(main())
