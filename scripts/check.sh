#!/usr/bin/env bash
# CI gate: tier-1 tests + a budgeted smoke-scale benchmark.
#
#   scripts/check.sh            # tests + perf guard
#   SKIP_PERF=1 scripts/check.sh  # tests only
#
# The perf guard reruns the 200-node full-cycle benchmark and fails if
# it regresses more than 20% against the most recent entry recorded in
# BENCH_core.json (see benchmarks/baseline.py).  The comparison uses
# the *min* statistic: on shared CI hardware scheduling noise only ever
# adds time, so the min is the stable signal.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

# The equivalence suite is part of tier-1 above; the dedicated step
# keeps the runtime-refactor safety net visible (and failing loudly by
# name) even if the tests move or tier-1 collection changes.
echo "== scheduler equivalence (CycleScheduler bit-for-bit vs golden; EventScheduler statistics) =="
python -m pytest -q tests/properties/test_scheduler_equivalence.py

if [[ "${SKIP_PERF:-0}" == "1" ]]; then
    echo "== perf guard skipped (SKIP_PERF=1) =="
    exit 0
fi

echo "== perf guard (budget: <=1.2x of BENCH_core.json) =="
python - <<'PY'
import json
import pathlib
import sys
import time

from repro.core.config import SecureCyclonConfig
from repro.experiments.scale import Scale, run_scale_stress
from repro.experiments.scenarios import build_secure_overlay

BUDGET = 1.20
WALL_CLOCK_BUDGET_S = 120.0

bench_path = pathlib.Path("BENCH_core.json")
if not bench_path.exists():
    sys.exit("BENCH_core.json missing; run benchmarks/baseline.py first")
data = json.loads(bench_path.read_text())
entries = data["entries"]
label, entry = list(entries.items())[-1]
recorded = entry["metrics"]["full_cycle_200_nodes_ms"]["min"]

started = time.perf_counter()

overlay = build_secure_overlay(
    n=200, config=SecureCyclonConfig(view_length=20, swap_length=3), seed=1
)
overlay.run(3)
times = []
for _ in range(5):
    t0 = time.perf_counter()
    overlay.run(1)
    times.append((time.perf_counter() - t0) * 1e3)
measured = min(times)

ratio = measured / recorded
print(f"full cycle: {measured:.1f} ms vs recorded [{label}] {recorded:.1f} ms "
      f"(x{ratio:.2f}, budget x{BUDGET})")

report = run_scale_stress(scale=Scale.SMOKE, seed=7)
print(report.render())

elapsed = time.perf_counter() - started
print(f"perf guard wall clock: {elapsed:.1f}s (budget {WALL_CLOCK_BUDGET_S:.0f}s)")
if elapsed > WALL_CLOCK_BUDGET_S:
    sys.exit("perf guard exceeded its wall-clock budget")
if ratio > BUDGET:
    sys.exit(f"full-cycle benchmark regressed: x{ratio:.2f} > x{BUDGET}")
print("perf guard OK")
PY
