#!/usr/bin/env bash
# CI gate: a budgeted smoke-scale benchmark + tier-1 tests + docs
# consistency + example smoke-runs.
#
#   scripts/check.sh              # perf guard + tests + docs + examples
#   SKIP_PERF=1 scripts/check.sh  # skip the perf guard
#
# The perf guard reruns the 200-node full-cycle benchmark and fails if
# it regresses more than 30% against the most recent entry recorded in
# BENCH_core.json (see benchmarks/baseline.py).  It runs FIRST, in a
# fresh process on a cold box: measuring right after the test suite
# inflates the number up to ~1.45x from burst/thermal throttling alone
# (calibration data in PERFORMANCE.md), which would force a uselessly
# loose budget.  The comparison uses the *min* statistic: on shared CI
# hardware scheduling noise only ever adds time, so the min is the
# stable signal.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if [[ "${SKIP_PERF:-0}" == "1" ]]; then
    echo "== perf guard skipped (SKIP_PERF=1) =="
else
    echo "== perf guard (budget: <=1.3x of BENCH_core.json; runs first, on a cold box) =="
    python - <<'PY'
import json
import pathlib
import sys
import time

from repro.core.config import SecureCyclonConfig
from repro.experiments.scale import Scale, run_scale_stress
from repro.experiments.scenarios import build_secure_overlay

# 1.3x absorbs machine drift between the recording and this box (the
# same revision measured within ~1.15x of its fresh recording when
# cold) while still catching real regressions — the seed -> optimized
# delta this gate exists to protect was 2.1x.
BUDGET = 1.30
WALL_CLOCK_BUDGET_S = 120.0

bench_path = pathlib.Path("BENCH_core.json")
if not bench_path.exists():
    sys.exit("BENCH_core.json missing; run benchmarks/baseline.py first")
data = json.loads(bench_path.read_text())
entries = data["entries"]
label, entry = list(entries.items())[-1]
recorded = entry["metrics"]["full_cycle_200_nodes_ms"]["min"]

started = time.perf_counter()

overlay = build_secure_overlay(
    n=200, config=SecureCyclonConfig(view_length=20, swap_length=3), seed=1
)
overlay.run(3)
times = []
for _ in range(5):
    t0 = time.perf_counter()
    overlay.run(1)
    times.append((time.perf_counter() - t0) * 1e3)
measured = min(times)

ratio = measured / recorded
print(f"full cycle: {measured:.1f} ms vs recorded [{label}] {recorded:.1f} ms "
      f"(x{ratio:.2f}, budget x{BUDGET})")

# Batched-verification micro-kernel: re-time the fan-out scenario (the
# kernel's reason to exist) against the recorded number under a 20%
# budget — micro-kernels are far less noisy than full-cycle wall time,
# so the tighter budget holds.
BATCH_BUDGET = 1.20
batch_ratio = None
recorded_batch = entry["metrics"].get("batch_verify_fanout")
if recorded_batch is not None:
    sys.path.insert(0, "benchmarks")
    from bench_batch_verify import bench_fanout

    fanout = bench_fanout(rounds=8)
    batch_ratio = (
        fanout["batched_us_per_sighting"]
        / recorded_batch["batched_us_per_sighting"]
    )
    print(
        f"batch verify fanout: {fanout['batched_us_per_sighting']:.2f} us "
        f"vs recorded [{label}] "
        f"{recorded_batch['batched_us_per_sighting']:.2f} us "
        f"(x{batch_ratio:.2f}, budget x{BATCH_BUDGET})"
    )

# Codec fast path: re-time the fan-out decode (the per-frame cost the
# wire transport actually pays each cycle) against the recorded
# number.  Slightly looser than the verify kernel's budget: the codec
# kernel is dict-probe heavy, so allocator state moves it a bit more.
CODEC_BUDGET = 1.25
codec_ratio = None
recorded_codec = entry["metrics"].get("codec_fanout")
if recorded_codec is not None:
    if "benchmarks" not in sys.path:
        sys.path.insert(0, "benchmarks")
    from bench_codec import bench_fanout as bench_codec_fanout

    codec = bench_codec_fanout(rounds=8)
    codec_ratio = (
        codec["fast_decode_us_per_frame"]
        / recorded_codec["fast_decode_us_per_frame"]
    )
    print(
        f"codec fanout decode: {codec['fast_decode_us_per_frame']:.2f} us "
        f"vs recorded [{label}] "
        f"{recorded_codec['fast_decode_us_per_frame']:.2f} us "
        f"(x{codec_ratio:.2f}, budget x{CODEC_BUDGET}) | "
        f"intern hit rate {codec['intern_hit_rate']:.1%}"
    )

report = run_scale_stress(scale=Scale.SMOKE, seed=7)
print(report.render())

elapsed = time.perf_counter() - started
print(f"perf guard wall clock: {elapsed:.1f}s (budget {WALL_CLOCK_BUDGET_S:.0f}s)")
if elapsed > WALL_CLOCK_BUDGET_S:
    sys.exit("perf guard exceeded its wall-clock budget")
if ratio > BUDGET:
    sys.exit(f"full-cycle benchmark regressed: x{ratio:.2f} > x{BUDGET}")
if batch_ratio is not None and batch_ratio > BATCH_BUDGET:
    sys.exit(
        f"batched verification kernel regressed: x{batch_ratio:.2f} "
        f"> x{BATCH_BUDGET}"
    )
if codec_ratio is not None and codec_ratio > CODEC_BUDGET:
    sys.exit(
        f"codec fast path regressed: x{codec_ratio:.2f} > x{CODEC_BUDGET}"
    )
print("perf guard OK")
PY
fi

echo "== tier-1 tests =="
python -m pytest -x -q

# Docs gate: every experiment registered in the CLI must appear in the
# README's experiment table — an experiment nobody can discover from
# the front page is an experiment that silently rots.
echo "== docs: README experiment table covers the CLI =="
python - <<'PY'
import pathlib
import sys

from repro.experiments.__main__ import EXPERIMENTS

readme = pathlib.Path("README.md").read_text(encoding="utf-8")
missing = [name for name in sorted(EXPERIMENTS) if f"`{name}`" not in readme]
if missing:
    sys.exit(
        "README.md experiment table is missing CLI-registered "
        f"experiment(s): {', '.join(missing)}"
    )
print(f"all {len(EXPERIMENTS)} registered experiments documented")
PY

# Example gate: every example must actually run end to end at reduced
# scale (the examples honor REPRO_SCALE=smoke).
echo "== examples smoke-run (REPRO_SCALE=smoke) =="
for example in examples/*.py; do
    printf '  %s ... ' "$example"
    REPRO_SCALE=smoke timeout 300 python "$example" > /dev/null
    echo ok
done

# Coverage gate: the verification hot path (crypto + §IV-B modules)
# must not lose test reach.  Uses pytest-cov when installed, otherwise
# a stdlib trace-based fallback; baseline recorded in the script.
echo "== coverage gate (verification modules) =="
python scripts/coverage_gate.py

# The equivalence suite is part of tier-1 above; the dedicated step
# keeps the runtime-refactor safety net visible (and failing loudly by
# name) even if the tests move or tier-1 collection changes.
echo "== scheduler equivalence (CycleScheduler bit-for-bit vs golden; EventScheduler statistics) =="
python -m pytest -q tests/properties/test_scheduler_equivalence.py

# Same goldens once more with the whole harness flipped to batched
# verification: the kernel must be bit-for-bit invisible in every
# figure.  (Tier-1 covers this via the in-file parametrisation too;
# the explicit env-override run additionally proves the REPRO_
# VERIFICATION escape hatch works end to end.)
echo "== batched-verification equivalence (REPRO_VERIFICATION=batched vs golden) =="
REPRO_VERIFICATION=batched python -m pytest -q \
    tests/properties/test_scheduler_equivalence.py \
    -k "batched_verification_matches or pre_refactor"

# And once more with the whole harness flipped to the wire transport:
# every dialogue leg and push framed through the binary codec, every
# receiver decoding fresh objects from bytes — still bit-for-bit.
# Tier-1 already parametrises wire x {sequential,batched} over all
# five goldens in-file; this step proves the REPRO_TRANSPORT escape
# hatch end to end, on one legacy-Cyclon and one SecureCyclon golden
# (wire captures re-verify every received chain, so the full five
# would add ~6 CI minutes for coverage tier-1 already has).
echo "== wire-transport equivalence (REPRO_TRANSPORT=wire vs golden) =="
REPRO_TRANSPORT=wire python -m pytest -q \
    tests/properties/test_scheduler_equivalence.py \
    -k "pre_refactor and (fig3 or fig5)"

# The observation screen's numpy kernel must be bit-for-bit invisible
# too: same golden subset plus the sample-cache unit tests under
# REPRO_OBSERVE=vectorized (the default loop mode is what tier-1 runs).
echo "== vectorised observation equivalence (REPRO_OBSERVE=vectorized vs golden) =="
REPRO_OBSERVE=vectorized python -m pytest -q \
    tests/core/test_samples.py \
    tests/properties/test_scheduler_equivalence.py \
    -k "samples or (pre_refactor and (fig3 or fig5))"

# Wire-fault plane: the fault injector and health ledger must be
# bit-for-bit invisible while inert (tier-1 parametrises this over all
# five goldens x both transports in-file; this step names the guard),
# and the wire_faults experiment itself must run end to end — seven
# fault modes, quarantine engaging, no CodecError ever escaping the
# engine.
echo "== wire-fault plane (inert subsystem vs golden; wire_faults smoke-run) =="
python -m pytest -q tests/properties/test_scheduler_equivalence.py \
    -k "inert_fault_subsystem and object and (fig3 or fig5)"
REPRO_SCALE=smoke timeout 300 python -m repro.experiments wire_faults > /dev/null
echo "wire_faults smoke-run ok"

# Sharded engine: deterministic-mode worker fleets must be bit-for-bit
# the single-process engine.  Tier-1 runs the full fig x shard-count
# matrix (marker: golden_shard); this step names the guard on a cheap
# subset — one multi-overlay capture at 2 shards, one probe capture at
# 4 — and then smoke-runs the scale_sharded experiment end to end
# (which includes its own free-running and bit-exactness-checked rows).
echo "== sharded-engine equivalence (fork fleets vs golden; scale_sharded smoke-run) =="
python -m pytest -q \
    "tests/sim/test_shard_equivalence.py::test_sharded_runs_match_goldens[fig3-2]" \
    "tests/sim/test_shard_equivalence.py::test_sharded_runs_match_goldens[fig2-4]"
REPRO_SCALE=smoke timeout 300 python -m repro.experiments scale_sharded > /dev/null
echo "scale_sharded smoke-run ok"

# Bench-history schema: the recorded perf trajectory the perf guard
# reads must stay well-formed (a merge-mangled BENCH_core.json would
# otherwise feed the guard a silent garbage budget).
echo "== bench history schema (benchmarks/baseline.py --list) =="
python benchmarks/baseline.py --list

# Checkpoint/resume: an experiment checkpointed at its midpoint and
# resumed in a FRESH PROCESS must reproduce the committed golden
# bit-for-bit.  Tier-1 runs the in-process {object,wire} x
# {sequential,batched} resume matrix (tests/ops/); this step proves
# the CLI split end to end — two invocations, two interpreters, one
# golden — on one object-transport and one wire-transport figure.
echo "== resume-golden (25+25 == 50: --checkpoint then --resume vs golden) =="
CKPT_DIR=$(mktemp -d)
trap 'rm -rf "$CKPT_DIR"' EXIT
for fig in fig2 fig5; do
    printf '  %s (object) checkpoint half ... ' "$fig"
    timeout 300 python -m repro.experiments "$fig" --scale smoke --seed 1 \
        --checkpoint "$CKPT_DIR/$fig" --output "$CKPT_DIR/$fig-first" > /dev/null
    diff -q "$CKPT_DIR/$fig-first/$fig.txt" "tests/properties/golden/$fig.txt" > /dev/null
    printf 'resume half ... '
    timeout 300 python -m repro.experiments "$fig" --scale smoke --seed 1 \
        --resume "$CKPT_DIR/$fig" --output "$CKPT_DIR/$fig-second" > /dev/null
    diff -q "$CKPT_DIR/$fig-second/$fig.txt" "tests/properties/golden/$fig.txt" > /dev/null
    echo ok
done
printf '  fig5 (wire) checkpoint half ... '
REPRO_TRANSPORT=wire timeout 300 python -m repro.experiments fig5 --scale smoke --seed 1 \
    --checkpoint "$CKPT_DIR/fig5-wire" --output "$CKPT_DIR/fig5-wire-first" > /dev/null
diff -q "$CKPT_DIR/fig5-wire-first/fig5.txt" "tests/properties/golden/fig5.txt" > /dev/null
printf 'resume half ... '
REPRO_TRANSPORT=wire timeout 300 python -m repro.experiments fig5 --scale smoke --seed 1 \
    --resume "$CKPT_DIR/fig5-wire" --output "$CKPT_DIR/fig5-wire-second" > /dev/null
diff -q "$CKPT_DIR/fig5-wire-second/fig5.txt" "tests/properties/golden/fig5.txt" > /dev/null
echo ok
echo "resume-golden ok (object: fig2 fig5; wire: fig5)"
