"""Overlay bootstrapping.

The paper's experiments start from "an initialization phase, where the
overlay was let emerge to a random-graph-like overlay" (§VI).  These
helpers construct that starting point directly — a random directed
graph with outdegree ℓ — and then let a short warm-up run of the
protocol finish the mixing.

For SecureCyclon the initial views must be *owned* descriptors with
valid chains and an honest minting history, so each node backdates its
bootstrap descriptors one per past cycle: exactly what an honest node
that had been running for a while would have produced.

Joining nodes follow §V-A: a handful of bootstrap peers each donate one
owned descriptor to the joiner (a genuine ownership transfer) and keep
a non-swappable copy for themselves.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.descriptor import mint
from repro.core.node import SecureCyclonNode
from repro.cyclon.descriptor import CyclonDescriptor
from repro.cyclon.node import CyclonNode


def random_targets(node_ids: Sequence, count: int, exclude, rng) -> List:
    """``count`` distinct random IDs from ``node_ids``, excluding one."""
    pool = [node_id for node_id in node_ids if node_id != exclude]
    count = min(count, len(pool))
    return rng.sample(pool, count)


def bootstrap_cyclon(nodes: Dict, view_length: int, rng) -> None:
    """Fill every Cyclon node's view with random neighbors.

    Ages are spread uniformly over ``[0, view_length)`` to mimic the
    steady-state age distribution, so the first cycles behave like a
    converged overlay rather than a synchronized burst.
    """
    node_ids = list(nodes)
    for node in nodes.values():
        for target_id in random_targets(node_ids, view_length, node.node_id, rng):
            target = nodes[target_id]
            descriptor = CyclonDescriptor(
                node_id=target.node_id,
                address=target.address,
                age=rng.randrange(view_length),
            )
            node.view.insert(descriptor)


def bootstrap_secure(nodes: Dict, view_length: int, rng) -> None:
    """Fill every SecureCyclon node's view with owned descriptors.

    For each (holder, target) edge of a random outdegree-ℓ graph, the
    target mints a descriptor backdated to a distinct past cycle and
    transfers it to the holder.  Backdating one mint per past cycle per
    target keeps the frequency invariant intact: the bootstrap is
    indistinguishable from an honest execution history.
    """
    node_ids = list(nodes)
    mints_so_far: Dict = {node_id: 0 for node_id in node_ids}
    for node in nodes.values():
        for target_id in random_targets(node_ids, view_length, node.node_id, rng):
            target = nodes[target_id]
            mints_so_far[target_id] += 1
            backdate_cycles = mints_so_far[target_id]
            timestamp = -backdate_cycles * target.clock.period_seconds
            descriptor = mint(target.keypair, target.address, timestamp)
            owned = descriptor.transfer(target.keypair, node.node_id)
            node.view.insert(owned)


def bootstrap_joiner(
    joiner: SecureCyclonNode,
    donors: Sequence[SecureCyclonNode],
    links: int,
    rng,
) -> int:
    """§V-A join: ``links`` donors each hand the joiner one descriptor.

    Each donor transfers ownership of a random swappable view entry to
    the joiner and keeps a non-swappable copy for itself (the sanctioned
    self-repair).  Returns the number of links actually acquired.
    """
    acquired = 0
    donor_pool = [d for d in donors if d.node_id != joiner.node_id]
    rng.shuffle(donor_pool)
    for donor in donor_pool:
        if acquired >= links:
            break
        entry = donor.view.pop_one_random_swappable(rng)
        if entry is None:
            continue
        if entry.descriptor.creator == joiner.node_id:
            # Useless to the joiner (self-link); give it back.
            donor.view.insert(entry.descriptor, non_swappable=entry.non_swappable)
            continue
        transferred = entry.descriptor.transfer(donor.keypair, joiner.node_id)
        if joiner.view.insert(transferred):
            acquired += 1
            donor.view.insert(entry.descriptor, non_swappable=True)
        else:
            donor.view.insert(
                entry.descriptor, non_swappable=entry.non_swappable
            )
    return acquired
