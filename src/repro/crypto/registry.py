"""The key registry: the idealised verification oracle.

In a real deployment, anyone can verify an Ed25519 signature using only
the signer's public key.  Our idealised scheme needs the private seed to
recompute the HMAC, so a per-simulation :class:`KeyRegistry` stores the
seed of every key pair ever generated and lends it out *only* for
verification.  Simulated nodes never read seeds out of the registry to
sign — signing goes through :func:`repro.crypto.signing.sign`, which
demands the :class:`~repro.crypto.keys.KeyPair` object itself.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.crypto.keys import KeyPair, PublicKey, generate_keypair
from repro.errors import UnknownKeyError


class KeyRegistry:
    """Registry of all key pairs in one simulated universe."""

    def __init__(self) -> None:
        self._seeds: Dict[PublicKey, bytes] = {}
        # Prefix-trust cache for ownership-chain verification: attested
        # digests (chain content + signature MACs) of chains this
        # registry has fully verified.  A dict doubles as an
        # insertion-ordered set so the verifier can evict the oldest
        # entries when the cache grows past its bound.  See
        # repro.core.descriptor.verify_descriptor.
        self.trusted_chain_digests: Dict[bytes, None] = {}

    def __len__(self) -> int:
        return len(self._seeds)

    def __contains__(self, public: PublicKey) -> bool:
        return public in self._seeds

    def __iter__(self) -> Iterator[PublicKey]:
        return iter(self._seeds)

    def register(self, keypair: KeyPair) -> None:
        """Record ``keypair`` so its signatures can later be verified.

        Re-registering the same pair is a no-op; registering a different
        seed under an existing public key indicates a hash collision and
        is rejected loudly.
        """
        existing = self._seeds.get(keypair.public)
        if existing is not None and existing != keypair.seed:
            raise UnknownKeyError(
                f"public key {keypair.public.hex()} already registered "
                "with a different seed"
            )
        self._seeds[keypair.public] = keypair.seed

    def new_keypair(self, rng) -> KeyPair:
        """Generate and register a fresh key pair in one step."""
        keypair = generate_keypair(rng)
        self.register(keypair)
        return keypair

    def seed_for(self, public: PublicKey) -> Optional[bytes]:
        """Seed for ``public``, or ``None`` if the key is unknown.

        Exposed for the verification path only; protocol code must never
        use this to sign on behalf of another node.
        """
        return self._seeds.get(public)
