"""Batched ownership-chain verification: the §IV-B kernel, batched.

Sequential verification (:func:`repro.core.descriptor.verify_descriptor`)
walks one chain at a time: per hop, a structural check, a digest
extension, a registry seed lookup, one keyed-BLAKE2b MAC, and one
constant-time comparison — four Python-level calls per hop, per chain,
per *receiver*.  At paper scale (1K–10K nodes) the sample payload of
every gossip message funnels through that walk ~10k times per cycle,
and most of those walks re-derive verdicts some other node already
established in the same cycle.

This module batches the work along two axes:

* **Across chains** — :class:`VerificationPlan.verify_batch` flattens
  every not-yet-verified chain of a message into contiguous
  preallocated byte buffers (hop messages, claimed MACs), runs the
  keyed-BLAKE2b PRF once per hop over the flat buffer, and settles the
  *entire batch* with a single constant-time comparison of the two
  buffers.  Per-chain failure localisation only runs when that one
  comparison fails, i.e. only under attack.

* **Across nodes** — the plan keeps a cycle-scoped memo that groups
  descriptors by chain: each distinct chain is MAC-checked once
  network-wide per cycle no matter how many receivers see a copy, and
  every later sighting — same object or a wire-rebuilt duplicate —
  resolves with one dictionary probe.  The memo key is a one-shot
  keyless BLAKE2b over the *entire* chain content — birth fields plus
  every hop's owner, kind, claimed signer, and MAC — so probing costs
  one C-level hash instead of the per-hop digest walk an
  attested-digest key would need, and key equality implies content
  equality under the same collision-resistance assumption the
  registry's prefix-trust cache already makes.  Successful entries
  carry the chain and attested digests, so a memo hit also warms the
  rebuilt copy's lazy digest slots.

The kernel computes exactly the predicate of ``verify_descriptor`` —
same structural rules, same signer-continuity checks, same prefix-trust
reuse, same per-object ``_verified_by`` memo side effects — so the two
paths are interchangeable descriptor by descriptor.  The equivalence is
enforced property-by-property in
``tests/properties/test_batched_verification.py`` and bit-for-bit on
the golden figure series (``REPRO_VERIFICATION=batched`` in
``tests/properties/test_scheduler_equivalence.py``).

Memo lifetime and invalidation: the digest memo is cleared at every
cycle boundary (:meth:`VerificationPlan.begin_cycle`), and
:meth:`VerificationPlan.invalidate_creator` drops every memo entry for
chains minted by a freshly blacklisted creator.  Crypto verdicts are
blacklist-independent — blacklist filtering always runs live against
each receiver's own blacklist, *after* verification, on both paths — so
invalidation is hygiene plus defence-in-depth, not a correctness
dependency; the cross-node tests in ``tests/crypto/test_batch.py`` pin
that a same-cycle memo entry can never smuggle a blacklisted creator's
descriptor past a receiver that already adopted the proof.
"""

from __future__ import annotations

import hashlib
import hmac
from itertools import islice
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.descriptor import (
    TERMINAL_KINDS,
    SecureDescriptor,
    TransferKind,
    _TRUSTED_CACHE_MAX,
    _extend_attested,
    _extend_digest,
)

_MAC_BYTES = 32
_INITIAL_HOP_CAPACITY = 64

# One fixed-width tag per hop kind (the closed TransferKind set), so the
# key encoding below never concatenates two variable-length fields.
_KIND_TAG = {
    kind: index.to_bytes(1, "big") for index, kind in enumerate(TransferKind)
}


def _content_key(descriptor: SecureDescriptor) -> bytes:
    """One-shot fingerprint of the complete chain content.

    Covers the birth fields and, per hop, the owner, the kind, the
    *claimed* signer, and the MAC — everything the verifier's verdict
    depends on — in a single keyless BLAKE2b call.  The encoding is
    injective: every field is either fixed-width (key digests, the
    kind tag) or carried behind an explicit length prefix (timestamp
    repr, the attacker-supplied MAC bytes), so no choice of field
    values can shift a boundary and make two distinct chains encode to
    the same input.  Key equality therefore implies content equality
    up to a hash collision — the same standing assumption the
    registry's trusted-digest cache makes — which is what lets
    verdicts (including structural rejections) be shared across
    copies.

    The key is cached on the descriptor (``_content_key``): it is
    content-determined and descriptors are immutable, so it never goes
    stale.  The zero-copy wire decoder pre-fills the slot with a
    *domain-separated* fingerprint of the canonical record bytes it
    just parsed (see :mod:`repro.core.codec_batch`) — a different but
    equally injective encoding of the same content, distinguished by a
    BLAKE2b ``person`` tag so the two schemes can never collide with
    each other.  Copies keyed under different schemes simply occupy
    two memo entries (one extra verification per distinct chain per
    cycle at worst); copies keyed under the same scheme share, which
    is the case that carries the traffic.
    """
    cached = descriptor._content_key
    if cached is not None:
        return cached
    address = descriptor.address
    ts_bytes = repr(descriptor.timestamp).encode("ascii")
    parts = [
        descriptor.creator.digest,
        address.host.to_bytes(4, "big"),
        address.port.to_bytes(2, "big"),
        len(ts_bytes).to_bytes(4, "big"),
        ts_bytes,
    ]
    append = parts.append
    for hop in descriptor.hops:
        signature = hop.signature
        mac = signature.mac
        append(hop.owner.digest)
        append(_KIND_TAG[hop.kind])
        append(signature.signer.digest)
        append(len(mac).to_bytes(4, "big"))
        append(mac)
    key = hashlib.blake2b(b"".join(parts), digest_size=32).digest()
    object.__setattr__(descriptor, "_content_key", key)
    return key


class _PendingChain:
    """One distinct chain awaiting the flat MAC kernel."""

    __slots__ = (
        "descriptor",
        "followers",
        "hop_start",
        "hop_count",
        "chain_digest",
        "attested_digest",
        "chain_key",
        "result_slots",
        "verdict",
    )

    def __init__(
        self,
        descriptor: SecureDescriptor,
        hop_start: int,
        hop_count: int,
        chain_digest: bytes,
        attested_digest: bytes,
    ) -> None:
        self.descriptor = descriptor
        self.followers: List[SecureDescriptor] = []
        self.hop_start = hop_start
        self.hop_count = hop_count
        self.chain_digest = chain_digest
        self.attested_digest = attested_digest
        self.result_slots: List[int] = []
        self.verdict = False


class VerificationPlan:
    """Cycle-scoped batched verification state, shared network-wide.

    One plan serves one :class:`~repro.crypto.registry.KeyRegistry` —
    in a simulation, one engine.  Every node bound to the plan routes
    its chain verifications through it; the plan answers from the
    per-object memo, the cycle digest memo, or the flat MAC kernel, in
    that order.  ``begin_cycle`` is idempotent per cycle number so the
    scheduler and every node may all call it at a cycle boundary.
    """

    __slots__ = (
        "registry",
        "_cycle",
        "_verdicts",
        "_creator_digests",
        "_messages",
        "_mac_buf",
        "_out_buf",
        "_keys",
        "batches",
        "macs_checked",
        "chains_verified",
        "chains_rejected",
        "digest_memo_hits",
        "object_memo_hits",
        "invalidations",
    )

    def __init__(self, registry: Any) -> None:
        self.registry = registry
        self._cycle: Optional[int] = None
        # Cycle-scoped memo: content key (see _content_key) -> False
        # for rejected chains, (chain_digest, attested_digest) for
        # verified ones, or a _PendingChain while its batch is in
        # flight.  Keyed on chain content so a wire-rebuilt duplicate
        # of an already-checked chain resolves with one hash + probe.
        self._verdicts: Dict[bytes, Any] = {}
        # creator -> [memo keys] recorded this cycle, so a
        # blacklist/purge can surgically drop the culprit's entries.
        self._creator_digests: Dict[Any, List[bytes]] = {}
        # Flat kernel state, preallocated and reused across batches:
        # the claimed-MAC and computed-MAC byte buffers (settled with a
        # single constant-time comparison; grown geometrically when a
        # batch overflows them) plus flat per-hop message/seed lists.
        capacity = _INITIAL_HOP_CAPACITY * _MAC_BYTES
        self._mac_buf = bytearray(capacity)
        self._out_buf = bytearray(capacity)
        self._keys: List[bytes] = []
        self._messages: List[bytes] = []
        # Counters: exposed for benchmarks and the perf docs.
        self.batches = 0
        self.macs_checked = 0
        self.chains_verified = 0
        self.chains_rejected = 0
        self.digest_memo_hits = 0
        self.object_memo_hits = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        """Open a new cycle: drop the previous cycle's digest memo.

        Idempotent per cycle number — the scheduler calls it once per
        boundary and every bound node calls it from ``begin_cycle``,
        whichever comes first wins and the rest are no-ops.
        """
        if cycle == self._cycle:
            return
        self._cycle = cycle
        self._verdicts.clear()
        self._creator_digests.clear()

    def invalidate_creator(self, creator: Any) -> int:
        """Drop every memo entry for chains minted by ``creator``.

        Called when a node bound to this plan blacklists (and purges)
        ``creator``.  Verification verdicts are pure crypto and do not
        depend on blacklists — receivers always filter against their
        own live blacklist after verification — so this is memo hygiene
        and defence-in-depth, not a correctness dependency.  Returns
        how many entries were dropped.
        """
        keys = self._creator_digests.pop(creator, None)
        if not keys:
            return 0
        verdicts = self._verdicts
        dropped = 0
        for key in keys:
            if verdicts.pop(key, None) is not None:
                dropped += 1
        self.invalidations += dropped
        return dropped

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------

    def verify(self, descriptor: SecureDescriptor) -> bool:
        """Verify one descriptor through the plan's memo layers."""
        if descriptor._verified_by is self.registry:
            self.object_memo_hits += 1
            return True
        return self.verify_batch((descriptor,))[0]

    def verify_batch(
        self, descriptors: Sequence[SecureDescriptor]
    ) -> List[bool]:
        """Verify a whole batch; returns one verdict per descriptor.

        Descriptors already carrying the per-object memo are settled
        immediately; the rest are grouped by chain content, answered
        from the cycle memo where possible, and the remaining distinct
        chains go through the flat MAC kernel together.  Successful
        chains receive exactly the side effects of
        ``verify_descriptor``: cached digests, the ``_verified_by``
        object memo, and a registry prefix-trust entry.
        """
        registry = self.registry
        memo = self._verdicts
        results = [False] * len(descriptors)
        pending: List[_PendingChain] = []
        hop_cursor = 0
        keys = self._keys
        keys.clear()
        messages = self._messages
        messages.clear()
        mac_buf = self._mac_buf
        seed_for = registry.seed_for
        trusted = getattr(registry, "trusted_chain_digests", None)
        fill = object.__setattr__

        for slot, descriptor in enumerate(descriptors):
            if descriptor._verified_by is registry:
                self.object_memo_hits += 1
                results[slot] = True
                continue
            chain_key = _content_key(descriptor)
            cached = memo.get(chain_key)
            if cached is not None:
                if cached.__class__ is _PendingChain:
                    # Same chain earlier in this very batch: piggyback.
                    cached.followers.append(descriptor)
                    cached.result_slots.append(slot)
                    continue
                # A copy of a chain already settled this cycle: one
                # dictionary probe replaces the whole walk.
                self.digest_memo_hits += 1
                if cached is not False:
                    if descriptor._chain_digest is None:
                        fill(descriptor, "_chain_digest", cached[0])
                    if descriptor._attested_digest is None:
                        fill(descriptor, "_attested_digest", cached[1])
                    fill(descriptor, "_verified_by", registry)
                    results[slot] = True
                continue
            encoded = self._walk_chain(descriptor, trusted)
            if encoded is None:
                # Structural violations are content-determined (the key
                # covers the claimed signers), so the rejection is
                # memoisable like any other verdict.
                memo[chain_key] = False
                self._track_creator(descriptor.creator, chain_key)
                self.chains_rejected += 1
                continue
            chain_digest, attested, hop_digests, suffix_start = encoded
            hops = descriptor.hops
            record = _PendingChain(
                descriptor,
                hop_cursor,
                len(hops) - suffix_start,
                chain_digest,
                attested,
            )
            record.chain_key = chain_key
            record.result_slots.append(slot)
            # Flatten the unverified suffix: hop messages + seeds as
            # flat lists, claimed MACs into the preallocated buffer the
            # kernel settles with one comparison.
            ok = True
            offset = hop_cursor * _MAC_BYTES
            needed = (hop_cursor + len(hops) - suffix_start) * _MAC_BYTES
            if needed > len(mac_buf):
                self._grow(needed)
                mac_buf = self._mac_buf
            for index in range(suffix_start, len(hops)):
                signature = hops[index].signature
                seed = seed_for(signature.signer)
                mac = signature.mac
                if seed is None or len(mac) != _MAC_BYTES:
                    # Unknown signer, or a malformed MAC the constant-
                    # time comparison would reject anyway.
                    ok = False
                    break
                mac_buf[offset : offset + _MAC_BYTES] = mac
                keys.append(seed)
                messages.append(hop_digests[index])
                offset += _MAC_BYTES
            if not ok:
                del keys[hop_cursor:]
                del messages[hop_cursor:]
                memo[chain_key] = False
                self._track_creator(descriptor.creator, chain_key)
                self.chains_rejected += 1
                continue
            hop_cursor += record.hop_count
            pending.append(record)
            memo[chain_key] = record

        if pending:
            self._run_kernel(pending, hop_cursor)
            for record in pending:
                chain_key = record.chain_key
                self._track_creator(record.descriptor.creator, chain_key)
                if record.verdict:
                    memo[chain_key] = (
                        record.chain_digest,
                        record.attested_digest,
                    )
                    self.chains_verified += 1
                    self._apply_success(
                        record.descriptor,
                        record.chain_digest,
                        record.attested_digest,
                        trusted,
                    )
                    for follower in record.followers:
                        self._apply_success(
                            follower,
                            record.chain_digest,
                            record.attested_digest,
                            trusted,
                        )
                    for slot in record.result_slots:
                        results[slot] = True
                else:
                    memo[chain_key] = False
                    self.chains_rejected += 1
        self.batches += 1
        return results

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _walk_chain(
        self, descriptor: SecureDescriptor, trusted: Optional[dict]
    ) -> Optional[Tuple[bytes, bytes, List[bytes], int]]:
        """Structural pass: rules, digest chain, deepest trusted prefix.

        Mirrors pass 1 of ``verify_descriptor`` exactly.  Returns
        ``None`` when a structural rule fails (terminal-hop placement,
        signer continuity), else ``(chain_digest, attested_digest,
        per-hop message digests, first unverified hop index)``.
        """
        hops = descriptor.hops
        creator = descriptor.creator
        digest = descriptor.base_digest()
        attested = digest
        last = len(hops) - 1
        signer = creator
        hop_digests: List[bytes] = []
        suffix_start = 0
        for index, hop in enumerate(hops):
            kind = hop.kind
            if kind in TERMINAL_KINDS and (
                index != last or hop.owner != creator
            ):
                return None
            if hop.signature.signer != signer:
                return None
            digest = _extend_digest(digest, hop.owner, kind)
            hop_digests.append(digest)
            attested = _extend_attested(
                attested, hop.owner, kind, hop.signature.mac
            )
            if trusted is not None and attested in trusted:
                suffix_start = index + 1
            signer = hop.owner
        return digest, attested, hop_digests, suffix_start

    def _run_kernel(self, pending: List[_PendingChain], total_hops: int) -> None:
        """The flat MAC kernel: hash every hop, compare once.

        Recomputes the keyed-BLAKE2b MAC of every flattened hop into
        the output buffer, then settles the whole batch with a single
        constant-time comparison against the claimed MACs.  Only when
        that comparison fails — i.e. at least one forged hop exists in
        the batch — does the per-chain localisation pass run.
        """
        size = total_hops * _MAC_BYTES
        out_buf = self._out_buf
        if size > len(out_buf):
            self._grow(size)
            out_buf = self._out_buf
        blake2b = hashlib.blake2b
        offset = 0
        for seed, message in zip(self._keys, self._messages):
            out_buf[offset : offset + _MAC_BYTES] = blake2b(
                message, key=seed, digest_size=_MAC_BYTES
            ).digest()
            offset += _MAC_BYTES
        self.macs_checked += total_hops
        mac_view = memoryview(self._mac_buf)
        out_view = memoryview(out_buf)
        if hmac.compare_digest(out_view[:size], mac_view[:size]):
            for record in pending:
                record.verdict = True
            return
        # Rare (adversarial) path: localise the forged chain(s).
        for record in pending:
            start = record.hop_start * _MAC_BYTES
            end = start + record.hop_count * _MAC_BYTES
            record.verdict = hmac.compare_digest(
                out_view[start:end], mac_view[start:end]
            )

    def _apply_success(
        self,
        descriptor: SecureDescriptor,
        chain_digest: bytes,
        attested: bytes,
        trusted: Optional[dict],
    ) -> None:
        """Side effects of a successful verification, as the sequential
        path produces them: cached digests, the per-object memo, and a
        prefix-trust entry (with the same bounded eviction)."""
        fill = object.__setattr__
        if descriptor._chain_digest is None:
            fill(descriptor, "_chain_digest", chain_digest)
        if descriptor._attested_digest is None:
            fill(descriptor, "_attested_digest", attested)
        fill(descriptor, "_verified_by", self.registry)
        if trusted is not None and descriptor.hops:
            trusted[attested] = None
            if len(trusted) > _TRUSTED_CACHE_MAX:
                for stale in list(
                    islice(iter(trusted), _TRUSTED_CACHE_MAX // 8)
                ):
                    del trusted[stale]

    def _track_creator(self, creator: Any, chain_key: tuple) -> None:
        bucket = self._creator_digests.get(creator)
        if bucket is None:
            self._creator_digests[creator] = [chain_key]
        else:
            bucket.append(chain_key)

    def _grow(self, needed: int) -> None:
        capacity = len(self._mac_buf)
        while capacity < needed:
            capacity *= 2
        self._mac_buf.extend(bytearray(capacity - len(self._mac_buf)))
        self._out_buf.extend(bytearray(capacity - len(self._out_buf)))

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (benchmarks, perf docs, tests)."""
        return {
            "batches": self.batches,
            "macs_checked": self.macs_checked,
            "chains_verified": self.chains_verified,
            "chains_rejected": self.chains_rejected,
            "digest_memo_hits": self.digest_memo_hits,
            "object_memo_hits": self.object_memo_hits,
            "invalidations": self.invalidations,
        }
