"""Idealised cryptographic substrate for the SecureCyclon simulation.

The paper assumes every node holds exactly one private/public key pair,
that messages are signed, and that malicious nodes *cannot* forge
signatures of other nodes (system model, paper §II-A).  Running real
asymmetric cryptography for tens of thousands of simulated nodes over
hundreds of cycles would dominate the run time without changing any
protocol behaviour, so this package provides an *idealised* scheme with
the same security semantics:

* a private key is a random seed;
* the public key is ``SHA-256(seed)`` — collision-free for our purposes,
  and exactly 256 bits like the keys the paper budgets for;
* a signature is ``HMAC-SHA256(seed, message)``;
* verification recomputes the HMAC using the seed held by a
  :class:`~repro.crypto.registry.KeyRegistry` (the "ideal oracle").

Because signing requires the private seed, and the registry only hands a
seed to the :class:`~repro.crypto.keys.KeyPair` that owns it, a simulated
adversary can only produce signatures for keys it controls — precisely
the unforgeability assumption of the paper.  The substitution is recorded
in ``DESIGN.md``.
"""

from repro.crypto.keys import KeyPair, PublicKey, generate_keypair
from repro.crypto.registry import KeyRegistry
from repro.crypto.signing import Signature, sign, verify

__all__ = [
    "KeyPair",
    "PublicKey",
    "generate_keypair",
    "KeyRegistry",
    "Signature",
    "sign",
    "verify",
    "VerificationPlan",
]


def __getattr__(name):
    # Lazy export: repro.crypto.batch depends on the descriptor layer,
    # which itself imports this package — resolving the plan on first
    # access keeps the import graph acyclic.
    if name == "VerificationPlan":
        from repro.crypto.batch import VerificationPlan

        return VerificationPlan
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
