"""Sybil-resistant identifier acquisition (paper §II-A).

The paper assumes "the acquisition of unique identifiers is not a
trivial process", citing Douceur's Sybil-attack countermeasures: a
trusted authority, or "having to solve a unique computational puzzle
in order to acquire an identifier".  This module provides the puzzle
variant — a hashcash-style proof of work bound to the public key — so
joins can be gated on admission evidence.

This is deliberately cheap at the default difficulty: the simulation
only needs the *mechanism*, not the economics.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.keys import PublicKey
from repro.errors import CryptoError

MAX_ATTEMPTS = 1_000_000


@dataclass(frozen=True)
class IdentifierPuzzle:
    """A solved admission puzzle for one public key."""

    public: PublicKey
    difficulty_bits: int
    nonce: int

    def digest(self) -> bytes:
        return _puzzle_digest(self.public, self.nonce)


def _puzzle_digest(public: PublicKey, nonce: int) -> bytes:
    hasher = hashlib.sha256()
    hasher.update(b"securecyclon-id-puzzle")
    hasher.update(public.digest)
    hasher.update(nonce.to_bytes(8, "big"))
    return hasher.digest()


def _leading_zero_bits(digest: bytes) -> int:
    bits = 0
    for byte in digest:
        if byte == 0:
            bits += 8
            continue
        bits += 8 - byte.bit_length()
        break
    return bits


def solve_puzzle(public: PublicKey, difficulty_bits: int) -> IdentifierPuzzle:
    """Find a nonce whose digest has ``difficulty_bits`` leading zeros.

    Raises :class:`CryptoError` if no solution is found within the
    attempt bound (only possible at absurd difficulties).
    """
    if not 0 <= difficulty_bits <= 64:
        raise CryptoError("difficulty_bits must be in [0, 64]")
    for nonce in range(MAX_ATTEMPTS):
        if _leading_zero_bits(_puzzle_digest(public, nonce)) >= difficulty_bits:
            return IdentifierPuzzle(
                public=public, difficulty_bits=difficulty_bits, nonce=nonce
            )
    raise CryptoError(
        f"no puzzle solution within {MAX_ATTEMPTS} attempts "
        f"(difficulty {difficulty_bits})"
    )


def verify_puzzle(puzzle: IdentifierPuzzle) -> bool:
    """Check a claimed admission puzzle."""
    if not 0 <= puzzle.difficulty_bits <= 64:
        return False
    return (
        _leading_zero_bits(puzzle.digest()) >= puzzle.difficulty_bits
    )
