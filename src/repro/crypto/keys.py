"""Key pairs and public keys for the idealised signature scheme.

Public keys double as node identifiers throughout the library, mirroring
the paper's system model: "We set the value of the unique ID of each node
to be equal to the value of its public key" (§II-A).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field  # noqa: F401 - field used below

PUBLIC_KEY_BITS = 256
"""Size of a public key on the wire, as budgeted by the paper (§VI-A)."""

_SEED_BYTES = 32


@dataclass(frozen=True, order=True, slots=True)
class PublicKey:
    """A 256-bit public key; also serves as the node's unique ID.

    Instances are immutable, hashable and totally ordered, so they can be
    used as dictionary keys and sorted deterministically in tests and
    reports.  Slotted: keys are read and hashed on every dictionary
    operation of the simulation, and slot access is measurably cheaper
    than a ``__dict__`` lookup.
    """

    digest: bytes
    _hash: int = field(
        init=False, repr=False, compare=False, default=0
    )

    def __post_init__(self) -> None:
        if len(self.digest) != _SEED_BYTES:
            raise ValueError(
                f"public key must be {_SEED_BYTES} bytes, got {len(self.digest)}"
            )
        # Public keys are dictionary keys everywhere (views, caches,
        # registries); pre-computing the hash keeps those lookups off
        # the simulation's critical path.
        object.__setattr__(self, "_hash", hash(self.digest))

    def __hash__(self) -> int:
        return self._hash

    @property
    def bits(self) -> int:
        """Wire size of this key in bits."""
        return PUBLIC_KEY_BITS

    def hex(self, length: int = 8) -> str:
        """Short hex prefix, convenient for logs and reports."""
        return self.digest[: (length + 1) // 2].hex()[:length]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PublicKey({self.hex()})"


@dataclass(frozen=True)
class KeyPair:
    """A private seed together with its derived public key.

    The seed is the signing capability: only code holding the
    :class:`KeyPair` can sign on behalf of its public key.  Equality and
    hashing are defined on the public key alone so that key pairs can be
    kept in sets without leaking seed material into comparisons.
    """

    seed: bytes = field(repr=False, compare=False)
    public: PublicKey = field(compare=True)

    def __post_init__(self) -> None:
        expected = derive_public(self.seed)
        if expected != self.public:
            raise ValueError("public key does not match seed")


def derive_public(seed: bytes) -> PublicKey:
    """Derive the public key for ``seed`` (``SHA-256(seed)``)."""
    return PublicKey(hashlib.sha256(seed).digest())


def generate_keypair(rng) -> KeyPair:
    """Generate a fresh key pair using ``rng`` (a ``random.Random``).

    Determinism matters for reproducible simulations, so the seed is drawn
    from the caller-supplied RNG rather than from ``os.urandom``.
    """
    seed = rng.getrandbits(_SEED_BYTES * 8).to_bytes(_SEED_BYTES, "big")
    return KeyPair(seed=seed, public=derive_public(seed))
