"""Signing and verification against the idealised oracle.

``sign`` requires the private :class:`~repro.crypto.keys.KeyPair`;
``verify`` requires a :class:`~repro.crypto.registry.KeyRegistry` that
holds the signer's seed.  This split models perfect asymmetric
signatures: possession of the key pair is the only way to produce a
signature that verifies.
"""

from __future__ import annotations

import hashlib
import hmac  # compare_digest; also the historical MAC implementation
from dataclasses import dataclass

from repro.crypto.keys import KeyPair, PublicKey
from repro.errors import SignatureError

SIGNATURE_BITS = 256
"""Wire size of a signature, as budgeted by the paper (§VI-A)."""


@dataclass(frozen=True, slots=True)
class Signature:
    """A detached signature by ``signer`` over some message bytes."""

    signer: PublicKey
    mac: bytes

    @property
    def bits(self) -> int:
        """Wire size of this signature in bits."""
        return SIGNATURE_BITS

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Signature(by={self.signer.hex()}, mac={self.mac[:4].hex()})"


def _compute_mac(seed: bytes, message: bytes) -> bytes:
    # Keyed BLAKE2b as the MAC PRF: one-shot, ~3x faster than
    # HMAC-SHA256 for these 32-byte messages, and signing happens once
    # per descriptor hop — one of the most frequently executed crypto
    # calls in a simulation.  Any deterministic keyed PRF satisfies the
    # idealised-signature contract (the seed never leaves the registry,
    # so only the key holder can produce a verifying MAC).
    return hashlib.blake2b(message, key=seed, digest_size=32).digest()


def sign(keypair: KeyPair, message: bytes) -> Signature:
    """Sign ``message`` with ``keypair``'s private seed."""
    if not isinstance(message, (bytes, bytearray)):
        raise TypeError(f"message must be bytes, got {type(message).__name__}")
    return Signature(signer=keypair.public, mac=_compute_mac(keypair.seed, bytes(message)))


def verify(registry, signature: Signature, message: bytes) -> bool:
    """Return ``True`` iff ``signature`` is valid for ``message``.

    ``registry`` is a :class:`~repro.crypto.registry.KeyRegistry` acting
    as the verification oracle.  Unknown signers verify as ``False``
    rather than raising, because a node receiving a descriptor signed by
    a key it has never heard of simply treats the signature as invalid.
    """
    seed = registry.seed_for(signature.signer)
    if seed is None:
        return False
    return hmac.compare_digest(signature.mac, _compute_mac(seed, bytes(message)))


def verify_or_raise(registry, signature: Signature, message: bytes) -> None:
    """Like :func:`verify` but raises :class:`SignatureError` on failure."""
    if not verify(registry, signature, message):
        raise SignatureError(
            f"signature by {signature.signer.hex()} failed verification"
        )
