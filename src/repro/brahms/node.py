"""The Brahms protocol node.

Each round a node pushes its ID to ``alpha·ℓ1`` view members, pulls the
views of ``beta·ℓ1`` members, and rebuilds its view from fixed quotas
of pushed, pulled and sampler-provided IDs.  Receiving more pushes than
the limit is treated as attack evidence: the node keeps its previous
view for that round (the limited-push defence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.brahms.config import BrahmsConfig
from repro.brahms.sampler import SamplerArray
from repro.errors import PeerUnreachable
from repro.sim.channel import MessageDropped, MessageTimeout
from repro.sim.engine import ProtocolNode
from repro.sim.network import Network


@dataclass(frozen=True)
class BrahmsPush:
    """One-way: the sender advertises its own ID."""

    node_id: Any


@dataclass(frozen=True)
class BrahmsPullRequest:
    """Dialogue: ask a peer for its current view."""


@dataclass(frozen=True)
class BrahmsPullReply:
    """Dialogue reply: the peer's current view IDs."""

    view: Tuple[Any, ...]


class BrahmsNode(ProtocolNode):
    """A correct Brahms participant.

    The node's public sample set (for applications) is the sampler
    array; the view is gossip working state.
    """

    def __init__(self, node_id: Any, config: BrahmsConfig, rng) -> None:
        self.node_id = node_id
        self.config = config
        self.rng = rng
        self.view: List[Any] = []
        self.samplers = SamplerArray(config.sampler_size, rng)
        self.current_cycle = 0
        self.timeouts_observed = 0
        self._pushes_received: List[Any] = []
        self._pulled: List[Any] = []

    def seed_view(self, node_ids) -> None:
        """Bootstrap the view (and samplers) with initial contacts."""
        for node_id in node_ids:
            if node_id != self.node_id and node_id not in self.view:
                self.view.append(node_id)
        del self.view[self.config.view_size :]
        self.samplers.observe_all(self.view)

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        self.current_cycle = cycle
        self._pushes_received = []
        self._pulled = []

    def run_cycle(self, network: Network) -> None:
        if not self.view:
            return
        push_targets = self._pick(self.config.push_slots)
        for target in push_targets:
            network.push(self.node_id, target, BrahmsPush(node_id=self.node_id))
        pull_targets = self._pick(self.config.pull_slots)
        for target in pull_targets:
            try:
                channel = network.connect(self.node_id, target)
                reply = channel.request(BrahmsPullRequest())
            except MessageTimeout:
                # Brahms simply forgoes the pull; counted so event-mode
                # experiments can report timeout pressure per node.
                self.timeouts_observed += 1
                continue
            except (PeerUnreachable, MessageDropped):
                continue
            if isinstance(reply, BrahmsPullReply):
                self._pulled.extend(
                    nid for nid in reply.view if nid != self.node_id
                )
        self._rebuild_view()

    def receive(self, sender_id: Any, payload: Any) -> Any:
        if isinstance(payload, BrahmsPullRequest):
            return BrahmsPullReply(view=tuple(self.view))
        raise TypeError(f"unexpected payload {type(payload).__name__}")

    def receive_push(self, sender_id: Any, payload: Any) -> None:
        if isinstance(payload, BrahmsPush):
            self._pushes_received.append(payload.node_id)

    # ------------------------------------------------------------------
    # view reconstruction
    # ------------------------------------------------------------------

    def _pick(self, count: int) -> List[Any]:
        count = min(count, len(self.view))
        return self.rng.sample(self.view, count) if count else []

    def _rebuild_view(self) -> None:
        pushes = self._pushes_received
        pulls = self._pulled
        self.samplers.observe_all(pushes)
        self.samplers.observe_all(pulls)

        if not pushes and not pulls:
            return
        if len(pushes) > self.config.push_limit:
            # Push flood: likely an attack; keep the previous view.
            return

        new_view: List[Any] = []

        def take(source: List[Any], count: int) -> None:
            pool = [nid for nid in source if nid not in new_view]
            count = min(count, len(pool))
            new_view.extend(self.rng.sample(pool, count))

        take(pushes, self.config.push_slots)
        take(pulls, self.config.pull_slots)
        take(self.samplers.samples(), self.config.sample_slots)
        take(self.view, self.config.view_size - len(new_view))
        if new_view:
            self.view = new_view[: self.config.view_size]


class BrahmsHubAttacker(BrahmsNode):
    """A colluding attacker flooding pushes and malicious-only pulls."""

    def __init__(self, *args, coordinator, push_rate: int = 4, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.coordinator = coordinator
        self.push_rate = push_rate

    @property
    def is_malicious(self) -> bool:
        return True

    def _attacking(self) -> bool:
        return self.coordinator.is_attacking(self.current_cycle)

    def run_cycle(self, network: Network) -> None:
        if not self._attacking():
            super().run_cycle(network)
            return
        members = self.coordinator.members()
        for _ in range(self.push_rate):
            victim = self.coordinator.random_victim()
            if victim is None:
                return
            advertised = self.coordinator.rng.choice(members)
            network.push(self.node_id, victim, BrahmsPush(node_id=advertised))

    def receive(self, sender_id: Any, payload: Any) -> Any:
        if not self._attacking():
            return super().receive(sender_id, payload)
        if isinstance(payload, BrahmsPullRequest):
            members = self.coordinator.members()
            count = min(self.config.view_size, len(members))
            return BrahmsPullReply(
                view=tuple(self.coordinator.rng.sample(members, count))
            )
        raise TypeError(f"unexpected payload {type(payload).__name__}")

    def receive_push(self, sender_id: Any, payload: Any) -> None:
        return  # attackers ignore inbound pushes
