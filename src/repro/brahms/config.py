"""Configuration for the Brahms-style sampler."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class BrahmsConfig:
    """Brahms parameters.

    ``view_size`` is ℓ1 (the gossip view), ``sampler_size`` ℓ2 (the
    min-wise sampler array).  ``alpha``/``beta``/``gamma`` split the
    view re-construction between pushed IDs, pulled IDs and sampled
    IDs and must sum to 1.  ``push_limit_factor`` bounds how many
    pushes a node accepts per round before suspecting an attack and
    keeping its previous view (the limited-push defence).
    """

    view_size: int = 16
    sampler_size: int = 16
    alpha: float = 0.45
    beta: float = 0.45
    gamma: float = 0.10
    push_limit_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.view_size < 1:
            raise ConfigError("view_size must be >= 1")
        if self.sampler_size < 1:
            raise ConfigError("sampler_size must be >= 1")
        total = self.alpha + self.beta + self.gamma
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(
                f"alpha + beta + gamma must equal 1, got {total}"
            )
        if min(self.alpha, self.beta, self.gamma) < 0:
            raise ConfigError("mixing weights must be non-negative")
        if self.push_limit_factor <= 0:
            raise ConfigError("push_limit_factor must be positive")

    @property
    def push_slots(self) -> int:
        return max(1, round(self.alpha * self.view_size))

    @property
    def pull_slots(self) -> int:
        return max(1, round(self.beta * self.view_size))

    @property
    def sample_slots(self) -> int:
        return max(0, self.view_size - self.push_slots - self.pull_slots)

    @property
    def push_limit(self) -> int:
        return max(1, round(self.push_limit_factor * self.push_slots))
