"""A Brahms-style Byzantine-resilient sampler (related work, §VII).

Brahms (Bortnikov et al., PODC 2008) is the classic comparison point
for Byzantine-resilient peer sampling.  It *bounds* the adversary's
over-representation — limited pushes plus min-wise independent
permutation samplers keep some unbiased links alive — but, as the paper
stresses, it never *eliminates* malicious descriptors the way
SecureCyclon's provable blacklisting does, and its sampler trades away
freshness.  This implementation exists to reproduce that qualitative
comparison in the benchmark suite.
"""

from repro.brahms.config import BrahmsConfig
from repro.brahms.sampler import MinWiseSampler, SamplerArray
from repro.brahms.node import BrahmsNode, BrahmsPush, BrahmsPullRequest, BrahmsPullReply

__all__ = [
    "BrahmsConfig",
    "MinWiseSampler",
    "SamplerArray",
    "BrahmsNode",
    "BrahmsPush",
    "BrahmsPullRequest",
    "BrahmsPullReply",
]
