"""Min-wise independent permutation samplers.

Each sampler slot draws a secret random seed and retains, from the
stream of node IDs it has ever observed, the ID minimising
``H(seed || id)``.  Because the seed is secret and the hash behaves
like a random permutation, the retained element is a uniform sample of
the observed stream — no matter how the adversary floods it (its
duplicates cannot lower the minimum twice).
"""

from __future__ import annotations

import hashlib
from typing import Any, List, Optional


class MinWiseSampler:
    """One sampler slot: keeps the stream's min-hash element."""

    def __init__(self, rng) -> None:
        self._seed = rng.getrandbits(64).to_bytes(8, "big")
        self._best_value: Optional[bytes] = None
        self._best_id: Any = None

    def _hash(self, node_id: Any) -> bytes:
        raw = getattr(node_id, "digest", None)
        if raw is None:
            raw = repr(node_id).encode("utf-8")
        return hashlib.sha256(self._seed + raw).digest()

    def observe(self, node_id: Any) -> None:
        """Feed one ID from the stream."""
        value = self._hash(node_id)
        if self._best_value is None or value < self._best_value:
            self._best_value = value
            self._best_id = node_id

    def sample(self) -> Any:
        """The current sample (None until the first observation)."""
        return self._best_id

    def invalidate_if(self, predicate) -> bool:
        """Reset the slot if its sample matches ``predicate``.

        Brahms re-validates samples against liveness probes; tests use
        this to model eviction of dead/blacklisted samples.
        """
        if self._best_id is not None and predicate(self._best_id):
            self._best_value = None
            self._best_id = None
            return True
        return False


class SamplerArray:
    """A fixed array of independent min-wise samplers."""

    def __init__(self, size: int, rng) -> None:
        if size < 1:
            raise ValueError("sampler array size must be >= 1")
        self._samplers: List[MinWiseSampler] = [
            MinWiseSampler(rng) for _ in range(size)
        ]

    def __len__(self) -> int:
        return len(self._samplers)

    def observe(self, node_id: Any) -> None:
        for sampler in self._samplers:
            sampler.observe(node_id)

    def observe_all(self, node_ids) -> None:
        for node_id in node_ids:
            self.observe(node_id)

    def samples(self) -> List[Any]:
        """Current non-empty samples."""
        return [
            sampler.sample()
            for sampler in self._samplers
            if sampler.sample() is not None
        ]

    def invalidate_if(self, predicate) -> int:
        return sum(
            1 for sampler in self._samplers if sampler.invalidate_if(predicate)
        )
