"""Running all invariant checks and reporting.

:func:`audit_engine` is the one-call entry point: it runs every check
in :mod:`repro.audit.invariants` against a live engine and returns an
:class:`AuditReport`.  Tests call ``audit_engine(engine).assert_clean()``
after end-to-end runs; experiments can audit mid-run via an observer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Sequence

from repro.audit.invariants import (
    Finding,
    check_blacklists,
    check_chain_consistency,
    check_mint_rate,
    check_ownership,
    check_view_shape,
)

ALL_CHECKS: Sequence[Callable[..., Iterator[Finding]]] = (
    check_view_shape,
    check_ownership,
    check_chain_consistency,
    check_mint_rate,
    check_blacklists,
)


@dataclass
class AuditReport:
    """The outcome of one audit pass."""

    findings: List[Finding] = field(default_factory=list)
    checks_run: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_invariant(self) -> Dict[str, List[Finding]]:
        """Findings grouped by invariant name."""
        grouped: Dict[str, List[Finding]] = {}
        for finding in self.findings:
            grouped.setdefault(finding.invariant, []).append(finding)
        return grouped

    def assert_clean(self) -> None:
        """Raise with a readable digest if any invariant was violated."""
        if self.clean:
            return
        lines = [f"{len(self.findings)} audit finding(s):"]
        for invariant, findings in sorted(self.by_invariant().items()):
            lines.append(f"  {invariant}: {len(findings)}")
            lines.extend(f"    {finding}" for finding in findings[:5])
            if len(findings) > 5:
                lines.append(f"    ... and {len(findings) - 5} more")
        raise AssertionError("\n".join(lines))

    def summary(self) -> str:
        """One line: clean, or counts per invariant."""
        if self.clean:
            return f"audit clean ({self.checks_run} checks)"
        parts = ", ".join(
            f"{invariant}={len(findings)}"
            for invariant, findings in sorted(self.by_invariant().items())
        )
        return f"audit FAILED: {parts}"


def audit_engine(
    engine,
    checks: Sequence[Callable[..., Iterator[Finding]]] = ALL_CHECKS,
) -> AuditReport:
    """Run ``checks`` (default: all of them) against ``engine``."""
    report = AuditReport()
    for check in checks:
        report.checks_run += 1
        report.findings.extend(check(engine))
    return report
