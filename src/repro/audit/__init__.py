"""Global protocol auditing for simulated overlays.

Individual SecureCyclon nodes can only check what passes through their
hands; the simulator, holding the whole universe, can check *global*
invariants that no real deployment could observe directly.  This
package is the omniscient auditor used by tests and long-running
experiments to certify that a run respected the protocol's theory:

* every owned descriptor verifies and is owned by its holder;
* circulating copies of one token never fork illegally among honest
  holders;
* honest creators never exceed the one-mint-per-cycle rate;
* every blacklist entry is backed by a valid proof naming a truly
  malicious node (zero false positives).
"""

from repro.audit.auditor import AuditReport, Finding, audit_engine
from repro.audit.invariants import (
    check_blacklists,
    check_chain_consistency,
    check_mint_rate,
    check_ownership,
    check_view_shape,
)

__all__ = [
    "AuditReport",
    "Finding",
    "audit_engine",
    "check_blacklists",
    "check_chain_consistency",
    "check_mint_rate",
    "check_ownership",
    "check_view_shape",
]
