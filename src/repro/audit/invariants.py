"""The individual global invariant checks.

Each check walks the live engine and yields :class:`Finding` records
for anything out of order.  All checks are read-only and side-effect
free, so they can run mid-simulation between cycles.

Checks apply to *honest* SecureCyclon nodes: adversarial node classes
deliberately break the rules (that is their job), so their internal
state is exempt — what matters is that honest state stays lawful even
while under attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Tuple

from repro.core.chain import compare_chains
from repro.core.descriptor import DescriptorId, SecureDescriptor, verify_descriptor
from repro.core.node import SecureCyclonNode


@dataclass(frozen=True)
class Finding:
    """One audit finding: which invariant, where, and what happened."""

    invariant: str
    node: Any
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.invariant}] node={self.node!r}: {self.message}"


def _honest_secure_nodes(engine) -> List[SecureCyclonNode]:
    return [
        node
        for node in engine.legit_nodes()
        if isinstance(node, SecureCyclonNode)
    ]


def check_view_shape(engine) -> Iterator[Finding]:
    """Views respect capacity, identity-uniqueness, and no self-links."""
    for node in _honest_secure_nodes(engine):
        entries = list(node.view)
        if len(entries) > node.view.capacity:
            yield Finding(
                "view-shape",
                node.node_id,
                f"view holds {len(entries)} > capacity {node.view.capacity}",
            )
        identities = [entry.descriptor.identity for entry in entries]
        if len(set(identities)) != len(identities):
            yield Finding(
                "view-shape", node.node_id, "duplicate descriptor identity"
            )
        for entry in entries:
            if entry.creator == node.node_id:
                yield Finding(
                    "view-shape", node.node_id, "view contains a self-link"
                )


def check_ownership(engine) -> Iterator[Finding]:
    """Every owned view descriptor verifies and names its holder as the
    current owner (non-swappable copies name the *transferee* instead,
    the §V-A shape)."""
    for node in _honest_secure_nodes(engine):
        for entry in node.view:
            descriptor = entry.descriptor
            if not verify_descriptor(descriptor, engine.registry):
                yield Finding(
                    "ownership",
                    node.node_id,
                    f"invalid chain on {descriptor.identity!r}",
                )
                continue
            if entry.non_swappable:
                # A retained copy: the node gave the ownership away, so
                # its own key must appear in the chain but not at the tail.
                if node.node_id not in descriptor.owners():
                    yield Finding(
                        "ownership",
                        node.node_id,
                        f"non-swappable copy never owned: "
                        f"{descriptor.identity!r}",
                    )
            elif descriptor.current_owner != node.node_id:
                yield Finding(
                    "ownership",
                    node.node_id,
                    f"holder is not the owner of {descriptor.identity!r}",
                )


def _circulating_copies(
    engine,
) -> Dict[DescriptorId, List[Tuple[Any, SecureDescriptor]]]:
    copies: Dict[DescriptorId, List[Tuple[Any, SecureDescriptor]]] = {}
    for node in _honest_secure_nodes(engine):
        for entry in node.view:
            copies.setdefault(entry.descriptor.identity, []).append(
                (node.node_id, entry.descriptor)
            )
    return copies


def check_chain_consistency(engine) -> Iterator[Finding]:
    """Copies of one token held by honest nodes never fork illegally.

    Honest nodes can transiently hold prefix-related copies (a sample
    that is younger than the circulating original), and sanctioned
    §V-A forks are legal; anything else among *honest* holders means
    an adversarial clone slipped past the checks, or worse, honest
    code double-spent.  Tokens created by malicious nodes are skipped:
    the adversary clones its own tokens by design and honest holders
    cannot know until proofs spread.
    """
    malicious = engine.malicious_ids
    for identity, holders in _circulating_copies(engine).items():
        if identity.creator in malicious:
            continue
        for index in range(1, len(holders)):
            holder_a, copy_a = holders[0]
            holder_b, copy_b = holders[index]
            comparison = compare_chains(copy_a, copy_b)
            if comparison.is_violation and comparison.culprit not in malicious:
                yield Finding(
                    "chain-consistency",
                    holder_b,
                    f"illegal fork of {identity!r} between honest holders "
                    f"{holder_a!r} and {holder_b!r}",
                )


def check_mint_rate(engine) -> Iterator[Finding]:
    """No honest creator has two circulating descriptors closer than
    the gossip period (the frequency invariant, §IV-B), and no honest
    node's own bookkeeping shows more than one mint per cycle.

    The enforced window is the *effective* frequency period the nodes
    themselves live by: under clock drift, configs relax every
    frequency predicate by ``frequency_tolerance_seconds``
    (``SecureCyclonConfig.effective_frequency_period``), and a global
    audit judging nodes by a stricter rule than the one they enforce
    on each other would report false violations for honest
    slow-clocked minters.
    """
    period = engine.clock.period_seconds
    for node in _honest_secure_nodes(engine):
        period = min(period, node._freq_period)
    by_creator: Dict[Any, List[float]] = {}
    malicious = engine.malicious_ids
    for identity in _circulating_copies(engine):
        if identity.creator not in malicious:
            by_creator.setdefault(identity.creator, []).append(
                identity.timestamp
            )
    for creator, stamps in by_creator.items():
        stamps.sort()
        for earlier, later in zip(stamps, stamps[1:]):
            if later != earlier and later - earlier < period - 1e-6:
                yield Finding(
                    "mint-rate",
                    creator,
                    f"two descriptors {later - earlier:.3f}s apart "
                    f"(period {period}s)",
                )


def check_blacklists(engine) -> Iterator[Finding]:
    """Blacklists contain only malicious nodes, each with a valid proof."""
    malicious = engine.malicious_ids
    period = engine.clock.period_seconds
    for node in _honest_secure_nodes(engine):
        for offender in node.blacklist.members():
            if offender not in malicious:
                yield Finding(
                    "blacklist",
                    node.node_id,
                    f"honest node {offender!r} blacklisted (false positive)",
                )
            proof = node.blacklist.proof_for(offender)
            if proof is None or not proof.validate(engine.registry, period):
                yield Finding(
                    "blacklist",
                    node.node_id,
                    f"blacklist entry for {offender!r} lacks a valid proof",
                )
