"""The §VI-A network-cost budget, as a parameterised model.

The paper walks through one configuration (ℓ=20, s=3, r=5) and lands
on "a descriptor is ~430 bytes, a gossip exchange moves ~10.5 KB each
way".  :class:`NetworkCostModel` reproduces that arithmetic for any
configuration, so the cost table can sweep parameters and the tests
can pin the paper's exact numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.lifetime import expected_transfers
from repro.core.wire import HOP_BITS, NODE_INFO_BITS


@dataclass(frozen=True)
class NetworkCostModel:
    """Analytic traffic budget for one SecureCyclon configuration.

    Parameters mirror the paper's: ``view_length`` ℓ, ``swap_length``
    s, ``redemption_cache`` r, and the per-cycle gossip period in
    seconds (for bandwidth figures).
    """

    view_length: int = 20
    swap_length: int = 3
    redemption_cache: int = 5
    period_seconds: float = 10.0

    def __post_init__(self) -> None:
        if self.view_length <= 0:
            raise ValueError("view_length must be positive")
        if not 0 < self.swap_length <= self.view_length:
            raise ValueError("swap_length must be in (0, view_length]")
        if self.redemption_cache < 0:
            raise ValueError("redemption_cache must be non-negative")
        if self.period_seconds <= 0:
            raise ValueError("period_seconds must be positive")

    # -- descriptor sizes ------------------------------------------------

    def descriptor_bits(self, transfers: int) -> int:
        """368 + 512·t bits for a descriptor transferred ``t`` times."""
        if transfers < 0:
            raise ValueError("transfers must be non-negative")
        return NODE_INFO_BITS + HOP_BITS * transfers

    @property
    def pessimistic_transfers(self) -> int:
        """The paper's pessimistic per-descriptor transfer count (2s)."""
        return round(expected_transfers(self.view_length, self.swap_length))

    @property
    def pessimistic_descriptor_bytes(self) -> float:
        """Descriptor size assuming every descriptor made 2s transfers.

        For the paper's configuration this is the quoted 430 bytes
        (3440 bits).
        """
        return self.descriptor_bits(self.pessimistic_transfers) / 8.0

    # -- per-exchange traffic -------------------------------------------

    @property
    def descriptors_per_direction(self) -> int:
        """Each party ships its view plus its redemption cache (ℓ+r)."""
        return self.view_length + self.redemption_cache

    @property
    def bytes_per_direction(self) -> float:
        """Budgeted bytes moved in each direction of one exchange."""
        return self.descriptors_per_direction * self.pessimistic_descriptor_bytes

    @property
    def kilobytes_per_direction(self) -> float:
        """The paper's headline figure (~10.5 KB for ℓ=20, s=3, r=5)."""
        return self.bytes_per_direction / 1024.0

    # -- per-node bandwidth ----------------------------------------------

    @property
    def bytes_per_node_per_cycle(self) -> float:
        """A node is party to ~2 exchanges per cycle, each bidirectional."""
        return 2 * 2 * self.bytes_per_direction

    @property
    def bandwidth_bytes_per_second(self) -> float:
        """Sustained per-node bandwidth implied by the gossip period."""
        return self.bytes_per_node_per_cycle / self.period_seconds
