"""How fast a violating party is purged (the Fig 5 collapse).

Fig 5 shows the malicious-link fraction collapsing within a few cycles
of the attack starting.  The mechanism decomposes into three stages,
each modelled here:

1. **first detection** — every attacking exchange exposes cloned
   descriptors to cross-checking; with per-exchange detection
   probability ``p`` and ``k`` attackers each gossiping once per
   cycle, the first proof appears after a geometrically distributed
   number of exchanges;
2. **flooding** — the proof reaches the overlay within one cycle
   (:mod:`repro.analysis.flooding`);
3. **link decay** — blacklisted creators' descriptors are dropped on
   sight, so remaining malicious links disappear as fast as they are
   touched: a per-cycle survival factor of roughly ``1 − 2s/ℓ`` (the
   §VI-A transfer probability), since every transfer or redemption of
   a dead link destroys it.
"""

from __future__ import annotations

import math


def expected_cycles_to_first_detection(
    attackers: int, per_exchange_detection: float
) -> float:
    """Mean cycles until the first proof exists.

    ``attackers`` exchanges happen per cycle (each attacker initiates
    once); each is detected with probability ``per_exchange_detection``
    independently — a geometric first-success model.
    """
    if attackers <= 0:
        raise ValueError("attackers must be positive")
    if not 0.0 < per_exchange_detection <= 1.0:
        raise ValueError("per_exchange_detection must be in (0, 1]")
    per_cycle = 1.0 - (1.0 - per_exchange_detection) ** attackers
    return 1.0 / per_cycle


def link_decay_factor(view_length: int, swap_length: int) -> float:
    """Per-cycle survival probability of a link to a blacklisted node.

    A standing link is touched (transferred or redeemed — either kills
    it once its creator is blacklisted) with probability ``2s/ℓ`` per
    cycle, so it survives with probability ``1 − 2s/ℓ``.
    """
    if view_length <= 0 or swap_length <= 0:
        raise ValueError("view_length and swap_length must be positive")
    return max(0.0, 1.0 - 2.0 * swap_length / view_length)


def cycles_to_purge(
    view_length: int,
    swap_length: int,
    residual_fraction: float = 0.01,
) -> float:
    """Cycles for blacklisted links to decay below ``residual_fraction``.

    Pure post-blacklist decay: ``factor^t <= residual`` solved for t.
    For the paper's ℓ=20, s=3 this is ~13 cycles to fall below 1 % —
    matching the rapid collapse in Fig 5.
    """
    if not 0.0 < residual_fraction < 1.0:
        raise ValueError("residual_fraction must be in (0, 1)")
    factor = link_decay_factor(view_length, swap_length)
    if factor <= 0.0:
        return 1.0
    return math.log(residual_fraction) / math.log(factor)


def expected_collapse_cycles(
    attackers: int,
    view_length: int,
    swap_length: int,
    per_exchange_detection: float = 0.5,
    flood_cycles: float = 1.0,
    residual_fraction: float = 0.01,
) -> float:
    """End-to-end estimate: detection + flood + decay.

    The Fig 5 bench observes 2–5 cycles to recovery at default scale —
    dominated by decay, because detection at realistic parameters is
    near-instant (hundreds of exposing exchanges per cycle).
    """
    return (
        expected_cycles_to_first_detection(attackers, per_exchange_detection)
        + flood_cycles
        + cycles_to_purge(view_length, swap_length, residual_fraction)
    )
