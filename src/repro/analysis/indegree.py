"""The indegree-equilibrium model behind Fig 2 (paper §II-B).

Cyclon's link arithmetic: every node *mints* exactly one descriptor of
itself per cycle and sees one of its standing descriptors *redeemed*
each time someone initiates an exchange with it.  A node with indegree
above the average is contacted more often than once per cycle, so its
indegree falls; below-average indegree rises.  The restoring force
makes the stationary indegree distribution concentrate tightly around
the configured outdegree ℓ.

For a quantitative reference curve we use the random-graph limit the
Cyclon paper demonstrates empirically: after mixing, each of the
``n·ℓ`` directed links points at a given node roughly independently
with probability ``1/n``, i.e. indegree ~ Binomial(n·ℓ, 1/n) ≈
Poisson(ℓ) for large n.  Cyclon's self-correcting dynamics squeeze the
distribution *tighter* than Poisson (the simulator shows a standard
deviation below √ℓ), so the Poisson curve is an upper envelope for the
spread — exactly how the tests use it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple


def indegree_distribution(
    nodes: int, view_length: int, max_indegree: int = 0
) -> List[float]:
    """Binomial(n·ℓ, 1/n) indegree pmf; index = indegree.

    ``max_indegree`` of 0 means "3ℓ", plenty for the mass to vanish.
    """
    if nodes <= 1:
        raise ValueError("need at least two nodes")
    if view_length <= 0:
        raise ValueError("view_length must be positive")
    cap = max_indegree or 3 * view_length
    trials = nodes * view_length
    p = 1.0 / nodes
    # Poisson approximation is numerically safer for the large trial
    # counts used here and indistinguishable at n >= 100.
    lam = trials * p
    pmf = []
    for k in range(cap + 1):
        log_mass = -lam + k * math.log(lam) - math.lgamma(k + 1)
        pmf.append(math.exp(log_mass))
    return pmf


def indegree_moments(nodes: int, view_length: int) -> Tuple[float, float]:
    """(mean, standard deviation) of the reference distribution.

    The mean is exactly ℓ — links are conserved, so this part is not an
    approximation.  The standard deviation √ℓ is the random-graph
    envelope; measured Cyclon overlays come in below it.
    """
    if nodes <= 1:
        raise ValueError("need at least two nodes")
    if view_length <= 0:
        raise ValueError("view_length must be positive")
    return float(view_length), math.sqrt(view_length)


def empirical_moments(indegrees: Dict) -> Tuple[float, float]:
    """(mean, standard deviation) of measured indegrees.

    Accepts the mapping produced by :func:`repro.metrics.degree.indegrees`.
    """
    values = list(indegrees.values())
    if not values:
        return 0.0, 0.0
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return mean, math.sqrt(variance)
