"""Descriptor lifetime and transfer-count models (paper §VI-A).

The paper's cost analysis rests on two claims taken from the Cyclon
paper and restated in §VI-A:

* a descriptor lives for an average of ℓ cycles before it is redeemed
  (ℓ = view length);
* during that lifetime it changes owner ``2s/ℓ`` times per cycle on
  average (each node takes part in about two exchanges per cycle and
  ships ``s`` of its ℓ descriptors in each), for a lifetime total of
  ``2s`` transfers.

This module derives those numbers, plus the full transfer-count
distribution under the same independence assumptions, so tests and the
cost table can compare the budget against simulation.
"""

from __future__ import annotations

import math
from typing import List


def expected_lifetime_cycles(view_length: int) -> float:
    """Mean descriptor lifetime in cycles (≈ ℓ, §VI-A).

    Views hold ℓ descriptors and each node redeems exactly one — its
    oldest — per cycle, so in steady state the per-node death rate is
    one descriptor per cycle against a standing population of ℓ:
    a mean life of ℓ cycles.
    """
    if view_length <= 0:
        raise ValueError("view_length must be positive")
    return float(view_length)


def per_cycle_transfer_probability(view_length: int, swap_length: int) -> float:
    """Chance a given descriptor changes owner in a given cycle (2s/ℓ).

    A node is party to about two gossip exchanges per cycle (initiates
    one, is contacted once on average) and each exchange moves ``s``
    random descriptors of the ℓ it holds.
    """
    _validate(view_length, swap_length)
    return min(1.0, 2.0 * swap_length / view_length)


def expected_transfers(view_length: int, swap_length: int) -> float:
    """Mean ownership transfers over a descriptor's lifetime (= 2s)."""
    return per_cycle_transfer_probability(
        view_length, swap_length
    ) * expected_lifetime_cycles(view_length)


def transfer_count_distribution(
    view_length: int, swap_length: int, max_transfers: int = 64
) -> List[float]:
    """Probability mass of a descriptor's lifetime transfer count.

    Under the §VI-A independence assumptions the count is binomial:
    ℓ cycle-trials, each moving the descriptor with probability 2s/ℓ.
    Entry ``k`` of the returned list is ``P[transfers = k]``; the list
    is truncated at ``max_transfers`` (tail mass added to the last
    entry) and sums to 1.
    """
    _validate(view_length, swap_length)
    trials = view_length
    p = per_cycle_transfer_probability(view_length, swap_length)
    size = min(trials, max_transfers) + 1
    pmf = [0.0] * size
    for k in range(trials + 1):
        mass = math.comb(trials, k) * p**k * (1 - p) ** (trials - k)
        pmf[min(k, size - 1)] += mass
    return pmf


def _validate(view_length: int, swap_length: int) -> None:
    if view_length <= 0:
        raise ValueError("view_length must be positive")
    if swap_length <= 0:
        raise ValueError("swap_length must be positive")
    if swap_length > view_length:
        raise ValueError("swap_length cannot exceed view_length")
