"""Epidemic spread of violation proofs (paper §IV-C).

When a node proves a violation it floods the proof over its current
out-links; receivers validate and forward.  The speed of that flood is
what turns a single detection into network-wide eviction — the cliff
in Fig 5.  This module models the flood as a push epidemic on a
random-graph overlay with out-degree (fanout) ℓ.
"""

from __future__ import annotations

import math
from typing import List


def coverage_per_round(
    nodes: int, fanout: int, rounds: int, initial: int = 1
) -> List[float]:
    """Fraction of nodes informed after each push round.

    Standard mean-field recurrence: an informed node pushes to
    ``fanout`` uniformly random targets per round, so with ``x``
    informed the chance an uninformed node stays uninformed is
    ``(1 − 1/n)^(fanout·x)``.
    """
    if nodes <= 0:
        raise ValueError("nodes must be positive")
    if fanout <= 0:
        raise ValueError("fanout must be positive")
    if not 0 < initial <= nodes:
        raise ValueError("initial must be in (0, nodes]")
    informed = float(initial)
    out = []
    for _ in range(rounds):
        uninformed = nodes - informed
        stay_dark = (1.0 - 1.0 / nodes) ** (fanout * informed)
        informed = informed + uninformed * (1.0 - stay_dark)
        out.append(informed / nodes)
    return out


def flood_rounds_to_cover(
    nodes: int, fanout: int, target_fraction: float = 0.999
) -> int:
    """Push rounds needed to inform ``target_fraction`` of the overlay.

    For fanout ℓ ≥ 20 this is 2–3 rounds even at 10K nodes — far below
    one gossip cycle, which is why the simulator's in-cycle BFS flood
    (DESIGN.md §4) is a faithful substitution.
    """
    if not 0.0 < target_fraction <= 1.0:
        raise ValueError("target_fraction must be in (0, 1]")
    max_rounds = max(4, 4 * int(math.log(max(nodes, 2), 2)))
    for round_index, fraction in enumerate(
        coverage_per_round(nodes, fanout, max_rounds), start=1
    ):
        if fraction >= target_fraction:
            return round_index
    return max_rounds
