"""Analytic models of SecureCyclon's behaviour.

The paper reasons informally about descriptor lifetimes, transfer
counts, message sizes (§VI-A), indegree equilibrium (§II-B / Fig 2),
and clone detectability (§V-C / Fig 7).  This package turns that prose
into executable models so the simulator can be *checked against the
theory* rather than only against itself:

* :mod:`repro.analysis.lifetime` — descriptor lifetime and ownership-
  transfer distributions;
* :mod:`repro.analysis.indegree` — the indegree-equilibrium model
  behind Fig 2;
* :mod:`repro.analysis.netcost` — the §VI-A back-of-the-envelope
  traffic budget, parameterised;
* :mod:`repro.analysis.detection` — a first-principles estimate of the
  clone-detection probability that Fig 7 measures;
* :mod:`repro.analysis.flooding` — epidemic proof-spread time, which
  bounds how fast a discovered violator is purged (Fig 5's collapse);
* :mod:`repro.analysis.purge` — the end-to-end Fig 5 collapse model:
  first detection, flood, link decay.
"""

from repro.analysis.detection import clone_detection_probability
from repro.analysis.flooding import flood_rounds_to_cover
from repro.analysis.indegree import (
    indegree_distribution,
    indegree_moments,
)
from repro.analysis.lifetime import (
    expected_lifetime_cycles,
    expected_transfers,
    transfer_count_distribution,
)
from repro.analysis.netcost import NetworkCostModel
from repro.analysis.purge import (
    cycles_to_purge,
    expected_collapse_cycles,
    link_decay_factor,
)

__all__ = [
    "NetworkCostModel",
    "clone_detection_probability",
    "cycles_to_purge",
    "expected_collapse_cycles",
    "link_decay_factor",
    "expected_lifetime_cycles",
    "expected_transfers",
    "flood_rounds_to_cover",
    "indegree_distribution",
    "indegree_moments",
    "transfer_count_distribution",
]
