"""A first-principles estimate of clone detectability (Fig 7, §V-C).

A clone is caught when one node sees *both* conflicting copies of the
descriptor — the honest continuation and the malicious fork.  Fig 7
measures how that probability falls with the descriptor's age at
cloning and rises with the redemption-cache size.  The model here
reproduces the mechanism with three ingredients:

* **visibility window** — a descriptor of age ``a`` has ``ℓ − a``
  cycles of life left; after redemption the redeemer exhibits it for
  ``r`` more cycles from its redemption cache.  Both the original and
  the clone share the same timestamp, so both windows shrink with
  ``a`` — that is the downward slope of Fig 7;
* **witnesses** — during each cycle of visibility the holder shows the
  copy, as a sample, to the ~2 partners it gossips with.  Only honest
  witnesses matter: malicious holders exhibit nothing, so a malicious
  population share ``m`` scales the per-cycle witness yield by
  ``(1 − m)`` for each copy — the downward shift across Fig 7's three
  panels;
* **collision** — each witness set is (approximately) a uniform sample
  of the ``n(1 − m)`` honest nodes; with ``W₁`` and ``W₂`` witnesses
  the chance that the sets intersect is the birthday-style
  ``1 − exp(−W₁·W₂ / honest)``.

The output is an *estimate* under independence assumptions — the tests
pin its shape (monotone in age, cache size, and malicious share) and
its agreement in kind with the simulated Fig 7, not exact values.
"""

from __future__ import annotations

import math


def visibility_cycles(
    view_length: int, age_at_cloning: int, redemption_cache_cycles: int
) -> float:
    """Cycles during which a copy can still be exhibited as a sample."""
    if age_at_cloning < 0:
        raise ValueError("age_at_cloning must be non-negative")
    remaining_life = max(view_length - age_at_cloning, 0.5)
    return remaining_life + redemption_cache_cycles


def clone_detection_probability(
    nodes: int,
    view_length: int,
    age_at_cloning: int,
    redemption_cache_cycles: int = 5,
    malicious_fraction: float = 0.0,
    exhibits_per_cycle: float = 2.0,
) -> float:
    """Estimated probability that a clone made at ``age_at_cloning``
    is ever matched against the honest copy.

    ``exhibits_per_cycle`` is the number of gossip partners a holder
    shows its samples to per cycle (two in Cyclon: one initiated, one
    received on average).
    """
    if nodes <= 1:
        raise ValueError("need at least two nodes")
    if not 0.0 <= malicious_fraction < 1.0:
        raise ValueError("malicious_fraction must be in [0, 1)")
    honest = nodes * (1.0 - malicious_fraction)
    window = visibility_cycles(
        view_length, age_at_cloning, redemption_cache_cycles
    )
    witnesses_per_copy = exhibits_per_cycle * window * (1.0 - malicious_fraction)
    collision_exponent = witnesses_per_copy**2 / honest
    return 1.0 - math.exp(-collision_exponent)
