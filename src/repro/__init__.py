"""SecureCyclon: dependable peer sampling (ICDCS 2023) — reproduction.

A production-quality Python reproduction of *SecureCyclon: Dependable
Peer Sampling* (Antonov & Voulgaris, ICDCS 2023), including:

* the legacy Cyclon protocol (:mod:`repro.cyclon`);
* the SecureCyclon protocol (:mod:`repro.core`);
* a cycle-driven P2P simulator (:mod:`repro.sim`);
* the paper's adversaries (:mod:`repro.adversary`);
* metrics, experiments and benchmarks for every figure (:mod:`repro.metrics`,
  :mod:`repro.experiments`).

Quickstart::

    from repro import build_secure_overlay, SecureCyclonConfig

    overlay = build_secure_overlay(n=200, config=SecureCyclonConfig())
    overlay.run(50)
    node = next(iter(overlay.engine.legit_nodes()))
    print([pk.hex() for pk in node.view.neighbor_ids()])
"""

from repro.audit import audit_engine
from repro.core.config import SecureCyclonConfig
from repro.core.node import SecureCyclonNode
from repro.cyclon.config import CyclonConfig
from repro.cyclon.node import CyclonNode
from repro.experiments.scenarios import (
    Overlay,
    build_cyclon_overlay,
    build_secure_overlay,
)
from repro.sim.clock import ClockDrift, DriftPlan
from repro.sim.engine import Engine, SimConfig
from repro.sim.retry import RetryPolicy

__version__ = "1.1.0"

__all__ = [
    "SecureCyclonConfig",
    "SecureCyclonNode",
    "CyclonConfig",
    "CyclonNode",
    "Overlay",
    "build_cyclon_overlay",
    "build_secure_overlay",
    "ClockDrift",
    "DriftPlan",
    "Engine",
    "RetryPolicy",
    "SimConfig",
    "audit_engine",
    "__version__",
]
