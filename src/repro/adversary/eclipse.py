"""The eclipse attack (paper §III-B): isolating one targeted victim.

Unlike the hub attack, an eclipse attack aims all malicious resources
at a *single* node, trying to own every link in its view.  The paper
stresses the orthogonality of the two attacks: SecureCyclon's hub
defences do not automatically guarantee that no single node can be
eclipsed (§III-C) — though the same token mechanics still force the
attackers to clone descriptors to sustain pressure, so they are still
progressively exposed.

An :class:`EclipseAttacker`:

* hoards every descriptor *created by the target* that passes through
  its hands (they are the only admission tickets to the victim);
* spends those tickets to gossip with the target as often as possible;
* feeds the target fabricated pool clones (malicious-only links);
* otherwise behaves correctly, to keep harvesting target tickets.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.adversary.coordinator import MaliciousCoordinator
from repro.adversary.hub import SecureHubAttacker
from repro.crypto.keys import PublicKey
from repro.sim.network import Network


class EclipseAttacker(SecureHubAttacker):
    """A hub attacker that concentrates on one victim.

    The campaign target is ``coordinator.eclipse_target`` (a public
    key), set by the experiment after the overlay is built — scenario
    builders construct attackers before the victim is chosen.  With no
    target set, the attacker degrades to plain hub behaviour.
    """

    @property
    def _target(self) -> Optional[PublicKey]:
        return getattr(self.coordinator, "eclipse_target", None)

    def _pick_redeemable(self):
        """Prefer redeeming a target-created token (attack the victim);
        fall back to the uniform choice to keep the supply flowing."""
        if self._target is None:
            return super()._pick_redeemable()
        target_entries = [
            entry for entry in self.view if entry.creator == self._target
        ]
        if target_entries:
            # The oldest target token first: honest-looking cadence.
            return min(target_entries, key=lambda entry: entry.timestamp)
        return super()._pick_redeemable()

    def _hoard(self, descriptor) -> None:
        """Target-created descriptors are prized gossip tickets; the
        rest feed the normal hoard."""
        if (
            self._target is not None
            and descriptor.creator == self._target
            and descriptor.current_owner == self.node_id
        ):
            # Keep it: it is a future gossip ticket to the victim.
            self.view.insert(descriptor, non_swappable=False)
            return
        super()._hoard(descriptor)


def make_eclipse_coordinator(
    attack_start_cycle: int, rng, target: PublicKey
) -> MaliciousCoordinator:
    """A coordinator pre-configured for an eclipse campaign."""
    coordinator = MaliciousCoordinator(
        attack_start_cycle=attack_start_cycle, rng=rng
    )
    coordinator.eclipse_target = target
    return coordinator


def eclipse_pressure(engine: Any, target: PublicKey) -> float:
    """Fraction of the target's current view that points at attackers."""
    node = engine.nodes.get(target)
    if node is None or len(node.view) == 0:
        return 0.0
    malicious = engine.malicious_ids
    return sum(
        1 for creator in node.view.neighbor_ids() if creator in malicious
    ) / len(node.view)
