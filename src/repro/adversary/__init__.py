"""The adversary suite (paper §II-C attack model, §III, §VI).

All malicious nodes in one simulation run under a single
:class:`~repro.adversary.coordinator.MaliciousCoordinator`: they collude,
share a pool of descriptors, know each other's keys, and "forge node
descriptors on demand to assist each other" (§II-C).

Attackers:

* :class:`~repro.adversary.hub.CyclonHubAttacker` /
  :class:`~repro.adversary.hub.SecureHubAttacker` — the hub attack
  (Figs 3 and 5): present views consisting exclusively of malicious
  descriptors.
* :class:`~repro.adversary.depletion.DepletionAttacker` — the
  link-depletion attack (Fig 6): accept descriptors, return nothing.
* :class:`~repro.adversary.cloning.CloningAttacker` — age-targeted
  descriptor cloning (Fig 7).
* :class:`~repro.adversary.frequency.FrequencyAttacker` — over-minting
  fresh self-descriptors (§III frequency violations).
* :class:`~repro.adversary.partner.CyclonPartnerViolationAttacker` /
  :class:`~repro.adversary.partner.SecurePartnerViolationAttacker` —
  partner-selection violations (§III): free against legacy Cyclon,
  deterministically rejected by SecureCyclon's redemption rule.
* :class:`~repro.adversary.stealth.StealthBiasAttacker` — the strongest
  *rule-abiding* strategy: bias every swap toward colleague descriptors
  without ever committing a provable violation.
* :class:`~repro.adversary.replay.ReplayAttacker` — re-redeems spent
  descriptors (rejected via the creator's redemption record).
* :class:`~repro.adversary.timing.StallAttacker` /
  :class:`~repro.adversary.timing.TimeoutInducer` — timing attackers
  for the event runtime: protocol-legal content, adversarial message
  timing (stalled or never-arriving replies).
* :class:`~repro.adversary.wire.MalformedFrameAttacker` /
  :class:`~repro.adversary.wire.TruncationAttacker` /
  :class:`~repro.adversary.wire.FrameReplayAttacker` /
  :class:`~repro.adversary.wire.FrameInflationAttacker` — wire-plane
  attackers for the wire transport: honest protocol content, mangled
  frames (bit flips, truncation, stale replays, oversize padding),
  countered by per-peer health scoring and quarantine instead of
  violation proofs.  See ``docs/ADVERSARIES.md`` for the full
  catalogue with knobs and the experiment that exercises each
  attacker.
"""

from repro.adversary.coordinator import MaliciousCoordinator
from repro.adversary.hub import CyclonHubAttacker, SecureHubAttacker
from repro.adversary.depletion import DepletionAttacker
from repro.adversary.cloning import CloneEvent, CloningAttacker
from repro.adversary.frequency import FrequencyAttacker
from repro.adversary.eclipse import EclipseAttacker, eclipse_pressure
from repro.adversary.partner import (
    CyclonPartnerViolationAttacker,
    SecurePartnerViolationAttacker,
)
from repro.adversary.replay import ReplayAttacker
from repro.adversary.stealth import StealthBiasAttacker
from repro.adversary.timing import (
    StallAttacker,
    TimeoutInducer,
    TimingAttacker,
    TimingStrategy,
)
from repro.adversary.wire import (
    FrameInflationAttacker,
    FrameReplayAttacker,
    MalformedFrameAttacker,
    TruncationAttacker,
    WireFaultAttacker,
)

__all__ = [
    "MaliciousCoordinator",
    "CyclonHubAttacker",
    "SecureHubAttacker",
    "CyclonPartnerViolationAttacker",
    "SecurePartnerViolationAttacker",
    "DepletionAttacker",
    "CloneEvent",
    "CloningAttacker",
    "FrequencyAttacker",
    "EclipseAttacker",
    "FrameInflationAttacker",
    "FrameReplayAttacker",
    "MalformedFrameAttacker",
    "ReplayAttacker",
    "StallAttacker",
    "StealthBiasAttacker",
    "TimeoutInducer",
    "TimingAttacker",
    "TimingStrategy",
    "TruncationAttacker",
    "WireFaultAttacker",
    "eclipse_pressure",
]
