"""Wire-plane attackers: weaponise the *frames*, not the protocol.

The paper's attack model (§II-C) lets a Byzantine peer put arbitrary
bytes on the wire.  The content attackers in this suite stay inside the
codec — they forge *valid* messages with hostile semantics.  This
module supplies the complement: attackers whose dialogue content is
bit-for-bit honest (they run the unmodified
:class:`~repro.core.node.SecureCyclonNode` exchange code) but whose
*frames* are mangled in flight — corrupted, truncated, replayed, or
inflated.  No violation proof can ever name them (garbage carries no
redeemable descriptor to pin a violation on), so the defence is not
forensic blacklisting but the wire-health plane added alongside them:
receivers convert undecodable frames to drops
(:class:`~repro.sim.channel.MessageUndecodable`), score the sender on
the :class:`~repro.sim.peerhealth.PeerHealthLedger`, and quarantine the
persistently faulty.

Mechanism: each attacker carries a
:class:`~repro.sim.transport.FaultPlan` in its ``fault_plan``
attribute.  The scenario builders register that plan with the
network's :class:`~repro.sim.transport.FaultInjector` under the
attacker's node id, gated on the coordinator's attack schedule — so
only frames *sent by this attacker* are mangled, only while the attack
is on, and honest traffic never touches the fault RNG stream.

Frame faults require frames: under the object transport
(``transport="object"``) there are no bytes to mangle, and every
attacker below except none degrades to a no-op (the injector applies
byte faults only to byte frames).  Run wire-fault scenarios with
``transport="wire"``.
"""

from __future__ import annotations

from typing import Any

from repro.adversary.coordinator import MaliciousCoordinator
from repro.core.codec import MAX_FRAME_BYTES
from repro.core.node import SecureCyclonNode
from repro.errors import ConfigError
from repro.sim.transport import FaultPlan


class WireFaultAttacker(SecureCyclonNode):
    """Base for colluding nodes that mangle their own outgoing frames.

    ``severity`` is the per-frame fault probability in ``(0, 1]``:
    at ``1.0`` every frame the attacker sends is mangled, at ``0.25``
    one in four.  Subclasses supply :meth:`_build_plan` mapping the
    severity onto one :class:`~repro.sim.transport.FaultPlan` knob.
    Like every member of the malicious party these nodes skip the
    voluntary security duties: flooded proofs are swallowed.
    """

    def __init__(
        self,
        *args,
        coordinator: MaliciousCoordinator,
        severity: float = 1.0,
        **kwargs,
    ) -> None:
        if not 0.0 < severity <= 1.0:
            raise ConfigError("severity must be in (0, 1]")
        self.severity = severity
        super().__init__(*args, **kwargs)
        self.coordinator = coordinator
        #: Consumed by the scenario builders: registered with the
        #: network's FaultInjector under this node's id, gated on
        #: ``_attacking``.
        self.fault_plan = self._build_plan()

    @property
    def is_malicious(self) -> bool:
        return True

    def _attacking(self) -> bool:
        return self.coordinator.is_attacking(self.current_cycle)

    def _build_plan(self) -> FaultPlan:
        raise NotImplementedError

    def receive_push(self, sender_id: Any, payload: Any) -> None:
        """Swallow proof floods (§IV: attackers skip security duties)."""
        del sender_id, payload


class MalformedFrameAttacker(WireFaultAttacker):
    """Bit-flips its outgoing frames: receivers get undecodable garbage.

    The cheapest wire attack — every corrupted frame forces the
    receiver to scan and reject it, burning a dialogue slot (request
    leg) or a retry budget (reply leg) per frame until quarantine cuts
    the link.
    """

    def _build_plan(self) -> FaultPlan:
        return FaultPlan(corrupt=self.severity)


class TruncationAttacker(WireFaultAttacker):
    """Cuts its outgoing frames short at a random byte boundary.

    Exercises the codec's truncation paths (every declared count and
    length is checked against the bytes actually present) rather than
    its content checks.
    """

    def _build_plan(self) -> FaultPlan:
        return FaultPlan(truncate=self.severity)


class FrameReplayAttacker(WireFaultAttacker):
    """Replaces its outgoing frames with stale previously-seen ones.

    The wire-plane cousin of the descriptor
    :class:`~repro.adversary.replay.ReplayAttacker`: the stale frame
    *decodes* fine — the defence here is not the codec but the protocol
    layer above it, which rejects the out-of-context message (a
    redemption that doesn't check out, a reply that doesn't match the
    dialogue state).  Measures that the redemption discipline holds
    even when the transport itself replays.
    """

    def _build_plan(self) -> FaultPlan:
        return FaultPlan(replay=self.severity)


class FrameInflationAttacker(WireFaultAttacker):
    """Pads its outgoing frames past the decoder's size ceiling.

    The volumetric variant: each inflated frame lands over
    :data:`~repro.core.codec.MAX_FRAME_BYTES`, so the receiver rejects
    it with one length comparison before parsing anything
    (:class:`~repro.errors.FrameOversizeError`) — the attacker pays a
    megabyte of (simulated) bandwidth per frame and buys a single
    integer compare of honest CPU.  The DoS-amplification meter prices
    exactly this asymmetry.
    """

    def _build_plan(self) -> FaultPlan:
        return FaultPlan(inflate=self.severity, inflate_bytes=MAX_FRAME_BYTES)
