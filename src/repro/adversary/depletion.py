"""The link-depletion attack (paper §V-B, evaluated in Fig 6).

A depletion attacker exploits non-atomic gossip exchanges: it takes the
descriptors a legitimate node offers and "transmits an empty view" in
return, draining the victim's swappable links.  With tit-for-tat
disabled the victim loses up to ``s`` descriptors per exchange; with
tit-for-tat enabled the loss is capped at the single redeemed token.
"""

from __future__ import annotations

from typing import Any

from repro.adversary.coordinator import MaliciousCoordinator
from repro.core.exchange import (
    BulkSwapMessage,
    BulkSwapReply,
    GossipAccept,
    GossipOpen,
    TransferMessage,
    TransferReply,
)
from repro.core.node import SecureCyclonNode
from repro.errors import PeerUnreachable
from repro.sim.channel import MessageDropped
from repro.sim.network import Network


class DepletionAttacker(SecureCyclonNode):
    """A SecureCyclon participant that defects on every counter-transfer."""

    def __init__(self, *args, coordinator: MaliciousCoordinator, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.coordinator = coordinator

    @property
    def is_malicious(self) -> bool:
        return True

    def _attacking(self) -> bool:
        return self.coordinator.is_attacking(self.current_cycle)

    # ------------------------------------------------------------------
    # initiator side: extract descriptors, give nothing
    # ------------------------------------------------------------------

    def run_cycle(self, network: Network) -> None:
        if not self._attacking():
            super().run_cycle(network)
            return
        if self.config.tit_for_tat:
            # Tit-for-tat leaves nothing for an initiating defector to
            # extract (counters only follow receipts), so the attacker
            # initiates normally — keeping its descriptors circulating
            # so victims keep redeeming tokens at it — and defects only
            # as a partner.
            super().run_cycle(network)
            return
        entry = self.view.oldest()
        if entry is None:
            return
        self.view.remove_entry(entry)
        try:
            channel = network.connect(self.node_id, entry.creator)
        except PeerUnreachable:
            return
        redemption = entry.descriptor.redeem(
            self.keypair, non_swappable=entry.non_swappable
        )
        opening = GossipOpen(
            redemption=redemption,
            non_swappable=entry.non_swappable,
            samples=(),
            proofs=(),
        )
        try:
            reply = channel.request(opening)
        except MessageDropped:
            return
        if not isinstance(reply, GossipAccept):
            return
        if not self.config.tit_for_tat:
            # The bulk-mode drain: offer nothing, harvest the partner's
            # full counter-swap (the §V-B attack in its purest form).
            try:
                swap = channel.request(BulkSwapMessage(descriptors=()))
            except MessageDropped:
                return
            if isinstance(swap, BulkSwapReply):
                for descriptor in swap.descriptors:
                    self._hoard(descriptor)
        # With tit-for-tat the partner only ever counters after
        # receiving, so there is nothing for a defector to extract:
        # the attacker simply walks away after the open.

    def _hoard(self, descriptor) -> None:
        if descriptor.creator == self.node_id:
            return
        if descriptor.current_owner != self.node_id:
            return
        self.view.insert(descriptor, non_swappable=False)

    # ------------------------------------------------------------------
    # partner side: accept, absorb, return nothing
    # ------------------------------------------------------------------

    def receive(self, sender_id: Any, payload: Any) -> Any:
        if not self._attacking():
            return super().receive(sender_id, payload)
        if isinstance(payload, GossipOpen):
            return GossipAccept(samples=(), proofs=())
        if isinstance(payload, TransferMessage):
            self._hoard(payload.descriptor)
            return TransferReply(descriptor=None)
        if isinstance(payload, BulkSwapMessage):
            for descriptor in payload.descriptors:
                self._hoard(descriptor)
            return BulkSwapReply(descriptors=())
        raise TypeError(f"unexpected payload {type(payload).__name__}")

    def receive_push(self, sender_id: Any, payload: Any) -> None:
        if not self._attacking():
            super().receive_push(sender_id, payload)
