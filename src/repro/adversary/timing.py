"""Timing-aware adversaries: attack *when*, not *what* (paper §II-C, §V-A).

Every attacker in this suite so far weaponises message *content* —
forged views, cloned descriptors, over-minting.  The event runtime
(PR 2) opened a second dimension the paper's attack model grants for
free: an adversary controls when its own messages leave, and "slow" is
indistinguishable from "malicious" to the waiting peer.  This module
weaponises that freedom and nothing else: every byte a timing attacker
sends is protocol-legal, so no violation proof can ever name it —
timing attacks sit with the stealth bias on the *rule-abiding* side of
the paper's guarantee, and the defence is economic (timeouts, retries),
not forensic (blacklisting).

Two attacks, one mechanism:

* :class:`StallAttacker` — answers honestly but holds every reply to a
  legitimate node until *just under* the victim's dialogue timeout.
  Each exchange with it succeeds, yet burns a full timeout budget of
  the victim's patience (``Network.dialogue_seconds`` prices the
  damage).  With ``margin_s <= 0`` the reply lands *at or past* the
  deadline instead: the dialogue dies as a §V-A case-2 partial failure
  (``MessageTimeout(delivered=True)``) — the spent-descriptor
  asymmetry, reproducible on demand.

* :class:`TimeoutInducer` — answers colleagues at honest speed and
  legitimate nodes *never* (in time).  Every honest-initiated dialogue
  with it times out after the partner has already processed the
  redemption: the victim's token is spent on both sides and nothing
  comes back.  A link-depletion variant (Fig 6) built from silence
  instead of protocol refusal — and, unlike the depletion attacker,
  invisible to the tit-for-tat countermeasure, because the exchange
  never reaches the rounds where tit-for-tat lives.

The mechanism is the :class:`TimingStrategy` hook on
:class:`~repro.sim.latency.LinkTiming`: the event scheduler consults
the strategy registered for a leg's *sender* after drawing the honest
latency sample, so attackers re-price their own legs without touching
the shared latency RNG stream (honest legs stay bit-identical to an
attacker-free run).  Wiring happens in the scenario builders via
``EventScheduler.register_timing_strategy``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.adversary.coordinator import MaliciousCoordinator
from repro.core.node import SecureCyclonNode
from repro.sim.latency import LEG_REPLY


class TimingStrategy:
    """Re-prices message legs sent by one (malicious) node.

    ``shape`` receives the honestly sampled latency for a leg this
    node is about to send and returns the latency that actually
    applies.  ``leg`` is one of the :mod:`~repro.sim.latency` leg
    labels (``request``/``reply``/``push``); ``timeout_s`` is the
    network-wide dialogue timeout (``None`` when initiators wait
    forever — most timing attacks are toothless then and should fall
    back to the honest sample).
    """

    def shape(
        self,
        base_s: float,
        src: Any,
        dst: Any,
        leg: str,
        timeout_s: Optional[float],
    ) -> float:
        return base_s


class StallReplies(TimingStrategy):
    """Hold replies to victims at ``timeout - margin_s`` seconds.

    A positive ``margin_s`` keeps every reply *just* inside the
    deadline: dialogues succeed but each round trip costs the victim
    nearly its whole timeout budget.  ``margin_s <= 0`` pushes the
    reply onto (or past) the deadline, turning every dialogue into the
    §V-A case-2 delivered-but-unanswered partial failure.

    ``spare`` exempts colleague ids; ``active`` gates the behaviour on
    the coordinator's attack schedule (inactive → honest sample).
    """

    def __init__(
        self,
        spare: Callable[[Any], bool],
        margin_s: float = 0.05,
        active: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.spare = spare
        self.margin_s = margin_s
        self.active = active

    def shape(self, base_s, src, dst, leg, timeout_s):
        if timeout_s is None or leg != LEG_REPLY:
            return base_s
        if self.active is not None and not self.active():
            return base_s
        if self.spare(dst):
            return base_s
        # Never *shorten* the leg: an honest sample already past the
        # stall point stands (the attacker cannot beat physics).
        return max(base_s, timeout_s - self.margin_s)


class SilentToVictims(TimingStrategy):
    """Replies to victims arrive only after every deadline has passed.

    The sent reply is protocol-legal; it is simply priced beyond the
    dialogue timeout (``timeout * silence_factor``), so to the victim
    the attacker looks like a peer that went quiet after processing
    the request.  Colleagues are answered at the honest sample.
    """

    def __init__(
        self,
        spare: Callable[[Any], bool],
        silence_factor: float = 4.0,
        active: Optional[Callable[[], bool]] = None,
    ) -> None:
        if silence_factor <= 1.0:
            raise ValueError("silence_factor must exceed 1.0")
        self.spare = spare
        self.silence_factor = silence_factor
        self.active = active

    def shape(self, base_s, src, dst, leg, timeout_s):
        if timeout_s is None or leg != LEG_REPLY:
            return base_s
        if self.active is not None and not self.active():
            return base_s
        if self.spare(dst):
            return base_s
        return max(base_s, timeout_s * self.silence_factor)


class TimingAttacker(SecureCyclonNode):
    """Base for colluding nodes whose only weapon is message timing.

    Protocol content stays bit-for-bit honest — these attackers run the
    unmodified :class:`~repro.core.node.SecureCyclonNode` exchange code
    — so they can never be blacklisted; the subclass supplies the
    :class:`TimingStrategy` that re-prices their outgoing legs.  Like
    every member of the malicious party they skip the voluntary
    security duties: flooded proofs are swallowed, not forwarded.
    """

    def __init__(
        self, *args, coordinator: MaliciousCoordinator, **kwargs
    ) -> None:
        super().__init__(*args, **kwargs)
        self.coordinator = coordinator
        #: Consumed by the scenario builders: registered with the event
        #: scheduler's link timing under this node's id.
        self.timing_strategy = self._build_strategy()

    @property
    def is_malicious(self) -> bool:
        return True

    def _attacking(self) -> bool:
        return self.coordinator.is_attacking(self.current_cycle)

    def _build_strategy(self) -> TimingStrategy:
        raise NotImplementedError

    def receive_push(self, sender_id: Any, payload: Any) -> None:
        """Swallow proof floods (§IV: attackers skip security duties)."""
        del sender_id, payload


class StallAttacker(TimingAttacker):
    """Stalls replies to legitimate nodes just under their timeout.

    ``margin_s`` is the headroom left before the deadline; at or below
    zero the attacker crosses the boundary and forces the §V-A
    spent-descriptor asymmetry on every dialogue instead.
    """

    def __init__(self, *args, margin_s: float = 0.05, **kwargs) -> None:
        self.margin_s = margin_s
        super().__init__(*args, **kwargs)

    def _build_strategy(self) -> TimingStrategy:
        return StallReplies(
            spare=self.coordinator.is_member,
            margin_s=self.margin_s,
            active=self._attacking,
        )


class TimeoutInducer(TimingAttacker):
    """Answers colleagues fast and legitimate nodes never (in time).

    Converts every honest-initiated dialogue with it into a timeout
    that has already spent the victim's redeemed descriptor — link
    depletion by silence.  As an initiator it gossips honestly,
    harvesting fresh tokens to keep the victims coming.
    """

    def __init__(self, *args, silence_factor: float = 4.0, **kwargs) -> None:
        self.silence_factor = silence_factor
        super().__init__(*args, **kwargs)

    def _build_strategy(self) -> TimingStrategy:
        return SilentToVictims(
            spare=self.coordinator.is_member,
            silence_factor=self.silence_factor,
            active=self._attacking,
        )
