"""Age-targeted descriptor cloning (paper §V-C, evaluated in Fig 7).

A cloning attacker behaves like a correct SecureCyclon node, except
that whenever it transfers a descriptor away it secretly keeps the
pre-transfer copy, and re-spends ("clones") that copy once the
descriptor reaches a target age.  Old descriptors are the interesting
case: they get redeemed soon after cloning, so the two forked branches
may never meet in anyone's sample cache — unless the redemption cache
keeps the spent copy around (which is exactly what Fig 7 measures).

Every duplication is recorded as a :class:`CloneEvent`; the Fig 7
harness joins these against the ``secure.violation_found`` trace events
of legitimate nodes to compute detection ratios per age bucket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.adversary.coordinator import MaliciousCoordinator
from repro.core.descriptor import DescriptorId, SecureDescriptor
from repro.core.node import SecureCyclonNode


@dataclass(frozen=True)
class CloneEvent:
    """One duplication: which descriptor, how old it was, and when."""

    identity: DescriptorId
    age_at_duplication: int
    cycle: int


@dataclass
class _StashEntry:
    descriptor: SecureDescriptor
    target_age: int


class CloningAttacker(SecureCyclonNode):
    """A mostly-correct node that double-spends descriptors at chosen ages."""

    def __init__(
        self,
        *args,
        coordinator: MaliciousCoordinator,
        age_range: Tuple[int, int] = (2, 20),
        stash_limit: int = 32,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.coordinator = coordinator
        self.age_range = age_range
        self.stash_limit = stash_limit
        self._stash: List[_StashEntry] = []
        self.clone_events: List[CloneEvent] = []

    @property
    def is_malicious(self) -> bool:
        return True

    def _attacking(self) -> bool:
        return self.coordinator.is_attacking(self.current_cycle)

    def _descriptor_age(self, descriptor: SecureDescriptor) -> int:
        return descriptor.age_cycles(
            self.clock.now(), self.clock.period_seconds
        )

    def _pop_outgoing(self, counterparty) -> Optional[SecureDescriptor]:
        if not self._attacking():
            return super()._pop_outgoing(counterparty)
        ready = self._take_ready_clone()
        if ready is not None:
            self.clone_events.append(
                CloneEvent(
                    identity=ready.identity,
                    age_at_duplication=self._descriptor_age(ready),
                    cycle=self.current_cycle,
                )
            )
            return ready
        descriptor = super()._pop_outgoing(counterparty)
        if descriptor is not None:
            self._maybe_stash(descriptor)
        return descriptor

    def _maybe_stash(self, descriptor: SecureDescriptor) -> None:
        """Keep a copy of a descriptor we are about to transfer away."""
        if len(self._stash) >= self.stash_limit:
            return
        if self.coordinator.is_member(descriptor.creator):
            return  # clone legitimate descriptors only: that is the attack
        low, high = self.age_range
        current_age = self._descriptor_age(descriptor)
        if current_age + 1 > high:
            return  # too old to reach any target age in the range
        target = self.rng.randint(max(low, current_age + 1), high)
        self._stash.append(_StashEntry(descriptor=descriptor, target_age=target))

    def _take_ready_clone(self) -> Optional[SecureDescriptor]:
        low, high = self.age_range
        for index, entry in enumerate(self._stash):
            age = self._descriptor_age(entry.descriptor)
            if age > high:
                # Window missed; drop silently.
                del self._stash[index]
                return self._take_ready_clone()
            if age >= entry.target_age:
                del self._stash[index]
                return entry.descriptor
        return None
