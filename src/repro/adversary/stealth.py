"""The stealth-bias attacker: maximal pollution *without* violating.

SecureCyclon's claim is that it "deterministically eliminates the
ability of malicious nodes to overrepresent themselves" — malicious
over-representation requires forging, cloning, or over-minting, all of
which are provable violations.  The strongest remaining strategy is a
*rule-abiding* bias:

* when asked to swap, preferentially hand out descriptors of malicious
  colleagues that the attacker legitimately owns;
* hold descriptors of legitimate nodes for redemption only, so they
  keep granting gossip access but are never propagated onward.

No rule is broken: every shipped descriptor is owned, chains never
fork, minting stays at one per cycle.  The attacker therefore can never
be blacklisted — and the experiment built on this class shows the flip
side of the paper's guarantee: the achievable bias is bounded by the
party's legitimate token supply (its population share), rather than
growing to 100 % as in Fig 3.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.adversary.coordinator import MaliciousCoordinator
from repro.core.descriptor import SecureDescriptor
from repro.core.node import SecureCyclonNode
from repro.crypto.keys import PublicKey


class StealthBiasAttacker(SecureCyclonNode):
    """A colluding node that biases swaps but never violates."""

    def __init__(self, *args, coordinator: MaliciousCoordinator, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.coordinator = coordinator
        #: How many descriptors this node shipped, by creator camp.
        self.shipped_malicious = 0
        self.shipped_legitimate = 0

    @property
    def is_malicious(self) -> bool:
        return True

    def _attacking(self) -> bool:
        return self.coordinator.is_attacking(self.current_cycle)

    def _pop_outgoing(
        self, counterparty: PublicKey
    ) -> Optional[SecureDescriptor]:
        """Prefer legitimately owned descriptors of malicious colleagues.

        Falls back to the honest random pick when no colleague
        descriptor is available — refusing to swap would only stall the
        dialogue and starve the attacker of fresh legitimate tokens.
        """
        if not self._attacking():
            return super()._pop_outgoing(counterparty)
        preferred = [
            entry
            for entry in self.view
            if not entry.non_swappable
            and entry.creator != counterparty
            and self.coordinator.is_member(entry.creator)
        ]
        if preferred:
            entry = self.rng.choice(preferred)
            self.view.remove_entry(entry)
            self.shipped_malicious += 1
            return entry.descriptor
        descriptor = super()._pop_outgoing(counterparty)
        if descriptor is not None:
            self.shipped_legitimate += 1
        return descriptor

    def receive_push(self, sender_id: Any, payload: Any) -> None:
        """Swallow proof floods (§IV: attackers skip security duties).

        A stealth attacker never commits a violation, so no proof can
        name it — but suppressing forwarded proofs about *other* nodes
        is free and marginally helps any colleagues that do violate.
        """
        del sender_id, payload
