"""The frequency attack (paper §III "frequency violations").

A frequency attacker mints several descriptors per cycle — timestamps
spread inside one gossip period — and circulates them as samples in
its gossip messages.  Any correct node that observes two of the burst
within its sample cache obtains a :class:`~repro.core.proofs.FrequencyProof`
and the attacker is blacklisted.  This attacker exists mainly to
demonstrate (and test) that over-minting is provably caught.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.adversary.coordinator import MaliciousCoordinator
from repro.core.descriptor import SecureDescriptor, mint
from repro.core.node import SecureCyclonNode


class FrequencyAttacker(SecureCyclonNode):
    """A node that mints ``burst`` descriptors per cycle instead of one."""

    def __init__(
        self,
        *args,
        coordinator: MaliciousCoordinator,
        burst: int = 3,
        **kwargs,
    ) -> None:
        if burst < 2:
            raise ValueError("a frequency attacker needs burst >= 2")
        super().__init__(*args, **kwargs)
        self.coordinator = coordinator
        self.burst = burst
        self._burst_mints: List[SecureDescriptor] = []

    @property
    def is_malicious(self) -> bool:
        return True

    def _attacking(self) -> bool:
        return self.coordinator.is_attacking(self.current_cycle)

    def begin_cycle(self, cycle: int) -> None:
        super().begin_cycle(cycle)
        if not self._attacking():
            return
        # Mint a burst of descriptors with sub-period timestamp spacing.
        # Each is given one self-hop so it carries the creator's
        # signature (a bare descriptor proves nothing).
        period = self.clock.period_seconds
        spacing = period / (self.burst + 1)
        base = self.clock.now()
        self._burst_mints = []
        for index in range(self.burst):
            descriptor = mint(
                self.keypair, self.address, base + index * spacing
            )
            self._burst_mints.append(
                descriptor.transfer(self.keypair, self.node_id)
            )

    def mint_fresh_descriptor(self) -> SecureDescriptor:
        if not self._attacking():
            return super().mint_fresh_descriptor()
        # Bypass the honest once-per-cycle guard: reuse the first burst
        # mint as this cycle's "fresh" descriptor.
        return mint(self.keypair, self.address, self.clock.now())

    def _samples_payload(self) -> Tuple[SecureDescriptor, ...]:
        samples = super()._samples_payload()
        if self._attacking() and self._burst_mints:
            samples = samples + tuple(self._burst_mints)
        return samples
