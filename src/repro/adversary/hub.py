"""The hub attack (paper §III-A, §VI-B) for both protocols.

Until the coordinator's attack cycle, attackers are indistinguishable
from correct nodes.  From then on they gossip at the correct rate and
with seemingly correct exchanges, but every descriptor they present
points at a member of the malicious party:

* against legacy Cyclon the attack trivially forges descriptors and
  takes over 100 % of all links (Fig 3);
* against SecureCyclon the attackers can only pollute by *cloning*
  pool descriptors (forking their ownership chains) — every fork is
  provable, so the attack collapses as members get blacklisted (Fig 5).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.adversary.coordinator import MaliciousCoordinator
from repro.core.exchange import (
    BulkSwapMessage,
    BulkSwapReply,
    GossipAccept,
    GossipOpen,
    GossipReject,
    TransferMessage,
    TransferReply,
)
from repro.core.node import SecureCyclonNode
from repro.cyclon.descriptor import CyclonDescriptor
from repro.cyclon.node import CyclonNode, CyclonReply, CyclonRequest
from repro.errors import PeerUnreachable
from repro.sim.channel import MessageDropped
from repro.sim.network import Network


class CyclonHubAttacker(CyclonNode):
    """A hub attacker in the unprotected Cyclon overlay.

    Post-attack it keeps gossiping at the correct rate, but every batch
    it ships is a fake view "consisting of malicious nodes exclusively"
    (§VI-B).  The batch is oversized — the §III view-violation /
    "rapid provision of supplementary node descriptors" building block
    of the attack model — and legacy Cyclon victims have no way to
    validate or refuse it.
    """

    def __init__(
        self,
        *args,
        coordinator: MaliciousCoordinator,
        aggression: int = 1,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.coordinator = coordinator
        if aggression < 1:
            raise ValueError("aggression must be >= 1")
        self.aggression = aggression

    @property
    def is_malicious(self) -> bool:
        return True

    def _attacking(self) -> bool:
        return self.coordinator.is_attacking(self.current_cycle)

    def _fake_view(self) -> List[CyclonDescriptor]:
        """A full view of freshly forged malicious descriptors.

        Legacy Cyclon descriptors are unauthenticated, so forging them
        is free — the root vulnerability of §II-B.  Members are distinct
        (an honest view never holds duplicates, and duplicates would
        only waste batch slots).
        """
        members = self.coordinator.members()
        count = min(self.config.view_length, len(members))
        chosen = self.coordinator.rng.sample(members, count)
        return [
            CyclonDescriptor(
                node_id=member,
                address=self.coordinator.address_of(member),
                age=0,
            )
            for member in chosen
        ]

    def run_cycle(self, network: Network) -> None:
        if not self._attacking():
            super().run_cycle(network)
            return
        # "Frequency violations" (§III) let an attacker initiate more
        # than once per cycle; the default aggression of 1 keeps the
        # paper's "correct rate" behaviour.
        for _ in range(self.aggression):
            victim_id = self.coordinator.random_victim()
            if victim_id is None:
                return
            try:
                channel = network.connect(self.node_id, victim_id)
            except PeerUnreachable:
                continue
            try:
                channel.request(CyclonRequest(tuple(self._fake_view())))
            except MessageDropped:
                pass
            # Replies are discarded: the coordinator already has "mutual
            # knowledge about the network" (§II-C).

    def receive(self, sender_id: Any, payload: Any) -> Any:
        if not self._attacking():
            return super().receive(sender_id, payload)
        if isinstance(payload, CyclonRequest):
            return CyclonReply(tuple(self._fake_view()))
        raise TypeError(f"unexpected payload {type(payload).__name__}")


class SecureHubAttacker(SecureCyclonNode):
    """A hub attacker inside a SecureCyclon overlay (§VI-B).

    Post-attack behaviour: fake views drawn from the coordinator's
    central pool, swapped descriptors fabricated by cloning pool
    descriptors, received legitimate descriptors hoarded as future
    redemption tokens, and all security duties (checking, flooding,
    blacklisting) abandoned.
    """

    def __init__(self, *args, coordinator: MaliciousCoordinator, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.coordinator = coordinator
        self._cycle_mint = None

    @property
    def is_malicious(self) -> bool:
        return True

    def _attacking(self) -> bool:
        return self.coordinator.is_attacking(self.current_cycle)

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        super().begin_cycle(cycle)
        if self._attacking():
            # One legal mint per cycle, shared with the pool (§VI-B).
            self._cycle_mint = self.coordinator.contribute_fresh(
                self.node_id, self.clock.now()
            )

    def run_cycle(self, network: Network) -> None:
        if not self._attacking():
            super().run_cycle(network)
            return
        self._network_for_flood = network
        entry = self._pick_redeemable()
        if entry is None:
            return
        self.view.remove_entry(entry)
        partner_id = entry.creator
        try:
            channel = network.connect(self.node_id, partner_id)
        except PeerUnreachable:
            return
        redemption = entry.descriptor.redeem(
            self.keypair, non_swappable=entry.non_swappable
        )
        opening = GossipOpen(
            redemption=redemption,
            non_swappable=entry.non_swappable,
            samples=self._fake_samples(),
            proofs=(),
        )
        try:
            reply = channel.request(opening)
        except MessageDropped:
            return
        if not isinstance(reply, GossipAccept):
            return
        if self.config.tit_for_tat:
            self._attack_rounds(channel, partner_id)
        else:
            self._attack_bulk(channel, partner_id)

    def _pick_redeemable(self):
        """A uniformly random view entry pointing at a legitimate node
        (§II-C: malicious nodes pick victims uniformly at random)."""
        candidates = [
            entry
            for entry in self.view
            if not self.coordinator.is_member(entry.creator)
        ]
        if candidates:
            return self.rng.choice(candidates)
        remaining = list(self.view)
        if remaining:
            return self.rng.choice(remaining)
        return None

    def _fake_samples(self):
        count = self.config.view_length + max(
            1, self.config.redemption_cache_cycles
        )
        return tuple(self.coordinator.fake_view(count))

    def _attack_rounds(self, channel, partner_id) -> None:
        for round_index in range(self.config.swap_length):
            outgoing = self._attack_descriptor(partner_id, round_index)
            if outgoing is None:
                return
            try:
                reply = channel.request(
                    TransferMessage(descriptor=outgoing, round_index=round_index)
                )
            except MessageDropped:
                return
            if not isinstance(reply, TransferReply) or reply.descriptor is None:
                return
            self._hoard(reply.descriptor)

    def _attack_bulk(self, channel, partner_id) -> None:
        outgoing = []
        for round_index in range(self.config.swap_length):
            descriptor = self._attack_descriptor(partner_id, round_index)
            if descriptor is not None:
                outgoing.append(descriptor)
        try:
            reply = channel.request(BulkSwapMessage(descriptors=tuple(outgoing)))
        except MessageDropped:
            return
        if isinstance(reply, BulkSwapReply):
            for descriptor in reply.descriptors:
                self._hoard(descriptor)

    def _attack_descriptor(self, victim_id, round_index: int):
        """Round 0: the legal fresh mint.  Later rounds: pool clones."""
        if round_index == 0 and self._cycle_mint is not None:
            descriptor = self._cycle_mint.transfer(self.keypair, victim_id)
            return descriptor
        return self.coordinator.fabricate_transfer(self.node_id, victim_id)

    def _hoard(self, descriptor) -> None:
        """Keep received legitimate descriptors as future gossip tokens."""
        if descriptor.creator == self.node_id:
            return
        if descriptor.current_owner != self.node_id:
            return
        self.view.insert(descriptor, non_swappable=False)

    # ------------------------------------------------------------------
    # partner side
    # ------------------------------------------------------------------

    def receive(self, sender_id: Any, payload: Any) -> Any:
        if not self._attacking():
            return super().receive(sender_id, payload)
        if isinstance(payload, GossipOpen):
            # Accept everything: each accepted redemption spends a
            # legitimate token and opens a pollution channel.
            self._sessions.pop(sender_id, None)
            return GossipAccept(samples=self._fake_samples(), proofs=())
        if isinstance(payload, TransferMessage):
            self._hoard(payload.descriptor)
            counter = self.coordinator.fabricate_transfer(
                self.node_id, sender_id
            )
            return TransferReply(descriptor=counter)
        if isinstance(payload, BulkSwapMessage):
            for descriptor in payload.descriptors:
                self._hoard(descriptor)
            counters = []
            for _ in range(self.config.swap_length):
                fabricated = self.coordinator.fabricate_transfer(
                    self.node_id, sender_id
                )
                if fabricated is not None:
                    counters.append(fabricated)
            return BulkSwapReply(descriptors=tuple(counters))
        raise TypeError(f"unexpected payload {type(payload).__name__}")

    def receive_push(self, sender_id: Any, payload: Any) -> None:
        if not self._attacking():
            super().receive_push(sender_id, payload)
        # Attackers swallow flooded proofs (§VI-B: proofs travel only
        # through legitimate links).
