"""Replaying already-redeemed descriptors (DESIGN.md decision 6).

Redeeming a descriptor ends its life: the creator records the spent
timestamp and refuses it from then on.  A malicious node could try to
stretch one legitimately acquired token into permanent gossip access
by redeeming it again each cycle.  Because the replayed chain is
*identical* to the recorded one (no fork), the ownership check alone
cannot prove a violation — the rejection comes from the creator's own
redeemed-timestamp record.

:class:`ReplayAttacker` implements the strategy and counts outcomes;
the tests assert that only the first redemption of any token is ever
accepted.
"""

from __future__ import annotations

from typing import List, Optional

from repro.adversary.coordinator import MaliciousCoordinator
from repro.core.descriptor import SecureDescriptor
from repro.core.exchange import GossipAccept, GossipOpen, GossipReject
from repro.core.node import SecureCyclonNode
from repro.errors import PeerUnreachable
from repro.sim.channel import MessageDropped
from repro.sim.network import Network


class ReplayAttacker(SecureCyclonNode):
    """Hoards every descriptor it redeems and redeems it again forever."""

    def __init__(
        self, *args, coordinator: MaliciousCoordinator, **kwargs
    ) -> None:
        super().__init__(*args, **kwargs)
        self.coordinator = coordinator
        self._spent: List[SecureDescriptor] = []
        self.replays_attempted = 0
        self.replays_accepted = 0
        self.replays_rejected = 0

    @property
    def is_malicious(self) -> bool:
        return True

    def _attacking(self) -> bool:
        return self.coordinator.is_attacking(self.current_cycle)

    def run_cycle(self, network: Network) -> None:
        if not self._attacking():
            # Pre-attack: behave honestly, but remember what we redeem.
            entry = self.view.oldest()
            if entry is not None and not entry.non_swappable:
                self._spent.append(entry.descriptor)
            super().run_cycle(network)
            return
        self._network_for_flood = network
        self._replay_one(network)

    def _replay_one(self, network: Network) -> None:
        token = self._pick_spent_token()
        if token is None:
            # Nothing hoarded yet: fall back to honest gossip (and hoard).
            entry = self.view.oldest()
            if entry is not None and not entry.non_swappable:
                self._spent.append(entry.descriptor)
            super().run_cycle(network)
            return
        try:
            channel = network.connect(self.node_id, token.creator)
        except PeerUnreachable:
            return
        opening = GossipOpen(
            redemption=token.redeem(self.keypair),
            non_swappable=False,
            samples=(),
            proofs=(),
        )
        self.replays_attempted += 1
        try:
            reply = channel.request(opening)
        except MessageDropped:
            self.replays_attempted -= 1
            return
        if isinstance(reply, GossipAccept):
            self.replays_accepted += 1
        elif isinstance(reply, GossipReject):
            self.replays_rejected += 1

    def _pick_spent_token(self) -> Optional[SecureDescriptor]:
        if not self._spent:
            return None
        return self.rng.choice(self._spent)
