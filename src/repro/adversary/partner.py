"""Partner-selection violations (paper §III, second building block).

A node is supposed to gossip with the *oldest* descriptor in its view.
Deviating lets an attacker focus its exchanges wherever they serve the
attack:

* :class:`CyclonPartnerViolationAttacker` runs in the unprotected
  overlay, where nothing ties an exchange to a descriptor — it can
  contact any legitimate node at will, every cycle, keeping its view
  unspent and farming fresh links to itself.
* :class:`SecurePartnerViolationAttacker` attempts the same against
  SecureCyclon, where §IV-A makes the redemption token the *only*
  admission ticket: a gossip request toward a node whose descriptor
  the attacker does not own is deterministically rejected.  The class
  records the rejections; the tests assert the attack yields nothing.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.adversary.coordinator import MaliciousCoordinator
from repro.core.exchange import GossipOpen, GossipReject
from repro.core.node import SecureCyclonNode
from repro.cyclon.descriptor import CyclonDescriptor
from repro.cyclon.node import CyclonNode, CyclonRequest
from repro.errors import PeerUnreachable
from repro.sim.channel import MessageDropped
from repro.sim.network import Network


class CyclonPartnerViolationAttacker(CyclonNode):
    """Legacy-Cyclon attacker that picks its partners arbitrarily.

    Each cycle it contacts a victim of its choosing — without redeeming
    (or even holding) that victim's descriptor — and runs an otherwise
    normal-looking exchange that always leads with a fresh
    self-descriptor.  With ``coordinator.eclipse_target`` set, all
    attackers converge on one victim: every forced exchange drains
    ``s`` random entries from the victim's view and replaces them with
    attacker-supplied content, so a handful of violators monopolise the
    victim's neighbourhood within a few cycles — a targeted eclipse
    built from the §III partner-selection building block alone.
    Without a target, victims are picked uniformly at random.
    """

    def __init__(
        self, *args, coordinator: MaliciousCoordinator, **kwargs
    ) -> None:
        super().__init__(*args, **kwargs)
        self.coordinator = coordinator
        self.exchanges_forced = 0

    @property
    def is_malicious(self) -> bool:
        return True

    def _attacking(self) -> bool:
        return self.coordinator.is_attacking(self.current_cycle)

    def run_cycle(self, network: Network) -> None:
        if not self._attacking():
            super().run_cycle(network)
            return
        victim_id = getattr(self.coordinator, "eclipse_target", None)
        if victim_id is None:
            victim_id = self.coordinator.random_victim()
        if victim_id is None:
            return
        try:
            channel = network.connect(self.node_id, victim_id)
        except PeerUnreachable:
            return
        outgoing = [self.self_descriptor()] + self._batch_filler(victim_id)
        try:
            channel.request(CyclonRequest(tuple(outgoing)))
            self.exchanges_forced += 1
        except MessageDropped:
            pass

    def _batch_filler(self, victim_id) -> list:
        """The s−1 descriptors accompanying the fresh self-descriptor.

        Partner-selection violations compose with the §III view
        violations: the filler descriptors are forged links to
        colleagues (the victim cannot validate them in legacy Cyclon).
        Falls back to copies from the attacker's own view when it has
        no colleagues.
        """
        members = [
            member for member in self.coordinator.members()
            if member != self.node_id and member != victim_id
        ]
        count = self.config.swap_length - 1
        if members:
            chosen = self.coordinator.rng.sample(members, min(count, len(members)))
            return [
                CyclonDescriptor(
                    node_id=member,
                    address=self.coordinator.address_of(member),
                    age=0,
                )
                for member in chosen
            ]
        sample = [
            entry for entry in self.view if entry.node_id != victim_id
        ]
        self.rng.shuffle(sample)
        return sample[:count]


class SecurePartnerViolationAttacker(SecureCyclonNode):
    """The same strategy against SecureCyclon — provably fruitless.

    The attacker opens gossip toward random victims using whatever
    owned descriptor it has at hand (created by somebody else) or a
    freshly minted self-descriptor.  §IV-A's redemption check
    ("a descriptor for which the initiator is currently the owner and
    its neighbor was the creator") rejects every such opening.
    """

    def __init__(
        self, *args, coordinator: MaliciousCoordinator, **kwargs
    ) -> None:
        super().__init__(*args, **kwargs)
        self.coordinator = coordinator
        self.rejections = 0
        self.accepted = 0

    @property
    def is_malicious(self) -> bool:
        return True

    def _attacking(self) -> bool:
        return self.coordinator.is_attacking(self.current_cycle)

    def run_cycle(self, network: Network) -> None:
        if not self._attacking():
            super().run_cycle(network)
            return
        self._network_for_flood = network
        victim_id = self.coordinator.random_victim()
        if victim_id is None:
            return
        try:
            channel = network.connect(self.node_id, victim_id)
        except PeerUnreachable:
            return
        token = self._any_token(victim_id)
        if token is None:
            return
        opening = GossipOpen(
            redemption=token.redeem(self.keypair),
            non_swappable=False,
            samples=(),
            proofs=(),
        )
        try:
            reply = channel.request(opening)
        except MessageDropped:
            return
        if isinstance(reply, GossipReject):
            self.rejections += 1
        else:
            self.accepted += 1

    def _any_token(self, victim_id) -> Optional[Any]:
        """A descriptor to mis-redeem: anything not created by the victim."""
        for entry in self.view:
            if entry.creator != victim_id:
                return entry.descriptor
        try:
            return self.mint_fresh_descriptor()
        except RuntimeError:
            return None
