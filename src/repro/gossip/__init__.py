"""Gossip applications built on top of the peer-sampling service.

The paper motivates peer sampling with the applications that depend on
it (§I): dissemination, aggregation, overlay robustness.  This package
implements two of them against the overlay's live views, so examples
and tests can demonstrate end-to-end what a healthy (or hijacked)
peer-sampling layer means for the application above it.
"""

from repro.gossip.dissemination import DisseminationResult, disseminate
from repro.gossip.aggregation import AggregationResult, push_pull_average
from repro.gossip.failure_detector import (
    FailureDetector,
    FailureDetectorResult,
    HeartbeatEntry,
)
from repro.gossip.topology import (
    RingDistance,
    TopologyBuilder,
    TopologyResult,
)

__all__ = [
    "DisseminationResult",
    "disseminate",
    "AggregationResult",
    "push_pull_average",
    "FailureDetector",
    "FailureDetectorResult",
    "HeartbeatEntry",
    "RingDistance",
    "TopologyBuilder",
    "TopologyResult",
]
