"""Structured-overlay construction over the peer-sampling service.

The paper's §I motivation list opens with overlay construction, and
its reference [6] (VICINITY, by the same author) is the canonical
recipe: run a proximity-driven gossip layer *on top of* peer sampling.
Each node ranks candidates by an application-defined distance and
keeps the closest ones; the peer-sampling views supply the random
long-range candidates that keep the search global and prevent local
minima.

This module implements that two-layer pattern compactly:

* :class:`RingDistance` — the classic demo proximity: nodes arrange
  into a ring ordered by (a hash of) their IDs;
* :class:`TopologyBuilder` — per-round candidate collection (proximity
  neighbors' neighbors + fresh peer-sampling links) and greedy
  selection of the ``k`` closest.

Convergence to the *correct* ring requires the sampling layer to keep
supplying uniformly random honest peers — one more application-level
reason peer sampling must be dependable: on a hijacked overlay the
candidate stream dries up and the ring cannot close.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Set

from repro.metrics.links import view_targets


class RingDistance:
    """Distance on a hash ring: ``d(a, b)`` is the circular gap between
    the two IDs' positions on a 64-bit ring."""

    SPACE = 2**64

    def position(self, node_id: Any) -> int:
        """The node's ring coordinate (deterministic in its ID)."""
        raw = getattr(node_id, "digest", None)
        if raw is None:
            raw = repr(node_id).encode("utf-8")
        return int.from_bytes(
            hashlib.sha256(raw).digest()[:8], "big"
        )

    def __call__(self, a: Any, b: Any) -> int:
        gap = abs(self.position(a) - self.position(b))
        return min(gap, self.SPACE - gap)


@dataclass
class TopologyResult:
    """Outcome of a topology-construction run."""

    rounds: int
    #: node -> its selected proximity neighbors
    neighbors: Dict[Any, List[Any]] = field(default_factory=dict)

    def ring_accuracy(self, distance: RingDistance) -> float:
        """Fraction of nodes whose two true ring successors/predecessors
        (among participants) made it into their proximity set."""
        participants = sorted(self.neighbors, key=distance.position)
        if len(participants) < 3:
            return 1.0
        hits = 0
        total = 0
        count = len(participants)
        for index, node_id in enumerate(participants):
            wanted = {
                participants[(index - 1) % count],
                participants[(index + 1) % count],
            }
            have = set(self.neighbors[node_id])
            total += len(wanted)
            hits += len(wanted & have)
        return hits / total if total else 1.0


class TopologyBuilder:
    """Greedy proximity gossip over live peer-sampling views.

    ``k`` is the proximity-view size.  Each round, every node gathers
    candidates from three streams — its current proximity neighbors,
    those neighbors' proximity neighbors (transitive closure step),
    and its *current peer-sampling view* (the randomness injection) —
    and keeps the ``k`` candidates closest under ``distance``.
    """

    def __init__(
        self,
        engine: Any,
        k: int = 4,
        distance: Callable[[Any, Any], float] = None,
        honest_only: bool = True,
    ) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.engine = engine
        self.k = k
        self.distance = distance or RingDistance()
        malicious = engine.malicious_ids if honest_only else set()
        self._participants: List[Any] = [
            node_id for node_id in engine.nodes if node_id not in malicious
        ]
        self._proximity: Dict[Any, List[Any]] = {
            node_id: [] for node_id in self._participants
        }
        self._round = 0

    def run(self, rounds: int) -> TopologyResult:
        """Advance ``rounds`` proximity-gossip rounds and report."""
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        for _ in range(rounds):
            self._run_round()
        return TopologyResult(
            rounds=self._round,
            neighbors={
                node_id: list(neighbors)
                for node_id, neighbors in self._proximity.items()
            },
        )

    def _run_round(self) -> None:
        self._round += 1
        alive = [
            node_id
            for node_id in self._participants
            if node_id in self.engine.nodes
        ]
        snapshot = {
            node_id: list(self._proximity[node_id]) for node_id in alive
        }
        for node_id in alive:
            candidates: Set[Any] = set(snapshot[node_id])
            for neighbor in snapshot[node_id]:
                candidates.update(snapshot.get(neighbor, ()))
            node = self.engine.nodes.get(node_id)
            if node is not None:
                candidates.update(
                    target
                    for target in view_targets(node)
                    if target in self._proximity
                )
            candidates.discard(node_id)
            self._proximity[node_id] = sorted(
                candidates, key=lambda c: self.distance(node_id, c)
            )[: self.k]
