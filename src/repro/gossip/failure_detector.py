"""A gossip-based failure-detection service over the overlay's views.

The §I motivation list includes fault detection: "fault detection
algorithms require that nodes be monitored by an unbiased selection of
other nodes to properly detect faulty behavior".  This module
implements the classic heartbeat-gossip detector (van Renesse et al.):

* every node keeps a table ``node → (heartbeat counter, last-updated
  round)``;
* each round it increments its own counter and merges tables with one
  random view neighbor (push-pull);
* an entry not refreshed within ``suspect_after`` rounds marks its node
  *suspected*.

Detection quality depends directly on peer-sampling health: with
uniform views, heartbeats reach everyone within O(log n) rounds and
crashed nodes are suspected promptly with no false positives; on a
hijacked overlay, heartbeats route through the adversary and honest
nodes start suspecting each other — the application-level symptom of a
hub attack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.metrics.links import view_targets


@dataclass
class HeartbeatEntry:
    """One row of a node's monitoring table."""

    counter: int
    updated_round: int


@dataclass
class FailureDetectorResult:
    """Outcome of a monitored run."""

    rounds: int
    suspect_after: int
    #: node -> set of peers it currently suspects
    suspicions: Dict[Any, Set[Any]] = field(default_factory=dict)
    #: (round, monitor, suspected) detection log
    detections: List[Tuple[int, Any, Any]] = field(default_factory=list)

    def suspected_by_all(self, crashed: Set[Any]) -> Set[Any]:
        """Crashed nodes that every live monitor currently suspects."""
        if not self.suspicions:
            return set()
        universal = set(crashed)
        for suspected in self.suspicions.values():
            universal &= suspected
        return universal

    def false_positives(self, crashed: Set[Any]) -> Set[Any]:
        """Live nodes suspected by anyone."""
        wrongly = set()
        for suspected in self.suspicions.values():
            wrongly |= suspected - crashed
        return wrongly

    def detection_round(self, node_id: Any) -> Optional[int]:
        """First round any monitor suspected ``node_id``."""
        for round_index, _, suspect in self.detections:
            if suspect == node_id:
                return round_index
        return None


class FailureDetector:
    """Heartbeat-gossip failure detection over live overlay views."""

    def __init__(
        self,
        engine: Any,
        suspect_after: int = 10,
        rng=None,
        honest_only: bool = True,
    ) -> None:
        if suspect_after < 2:
            raise ValueError("suspect_after must be at least 2 rounds")
        self.engine = engine
        self.suspect_after = suspect_after
        self.rng = rng or engine.rng_hub.stream("failure-detector")
        malicious = engine.malicious_ids if honest_only else set()
        self._participants = [
            node_id for node_id in engine.nodes if node_id not in malicious
        ]
        self._tables: Dict[Any, Dict[Any, HeartbeatEntry]] = {
            node_id: {node_id: HeartbeatEntry(counter=0, updated_round=0)}
            for node_id in self._participants
        }
        self._round = 0
        self._already_reported: Set[Tuple[Any, Any]] = set()
        self._detections: List[Tuple[int, Any, Any]] = []

    # ------------------------------------------------------------------
    # protocol rounds
    # ------------------------------------------------------------------

    def run(self, rounds: int) -> FailureDetectorResult:
        """Advance ``rounds`` heartbeat-gossip rounds and report."""
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        for _ in range(rounds):
            self._run_round()
        return self.result()

    def _run_round(self) -> None:
        self._round += 1
        alive = [
            node_id
            for node_id in self._participants
            if node_id in self.engine.nodes
        ]
        # Heartbeat: every alive node bumps its own counter.
        for node_id in alive:
            table = self._tables[node_id]
            entry = table[node_id]
            entry.counter += 1
            entry.updated_round = self._round

        order = list(alive)
        self.rng.shuffle(order)
        for node_id in order:
            node = self.engine.nodes.get(node_id)
            if node is None:
                continue
            targets = [
                target
                for target in view_targets(node)
                if target in self._tables and target in self.engine.nodes
            ]
            if not targets:
                continue
            partner = self.rng.choice(targets)
            self._merge(node_id, partner)
            self._merge(partner, node_id)
        self._record_new_suspicions(alive)

    def _merge(self, into: Any, source: Any) -> None:
        """Push-pull table merge: keep the freshest counter per node."""
        target_table = self._tables[into]
        for node_id, entry in self._tables[source].items():
            known = target_table.get(node_id)
            if known is None or entry.counter > known.counter:
                target_table[node_id] = HeartbeatEntry(
                    counter=entry.counter, updated_round=self._round
                )

    def _record_new_suspicions(self, alive: List[Any]) -> None:
        for monitor in alive:
            for suspect in self._suspected_by(monitor):
                key = (monitor, suspect)
                if key not in self._already_reported:
                    self._already_reported.add(key)
                    self._detections.append((self._round, monitor, suspect))

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------

    def _suspected_by(self, monitor: Any) -> Set[Any]:
        table = self._tables[monitor]
        return {
            node_id
            for node_id, entry in table.items()
            if node_id != monitor
            and self._round - entry.updated_round >= self.suspect_after
        }

    def result(self) -> FailureDetectorResult:
        """Snapshot of current suspicions and the detection log."""
        alive = [
            node_id
            for node_id in self._participants
            if node_id in self.engine.nodes
        ]
        return FailureDetectorResult(
            rounds=self._round,
            suspect_after=self.suspect_after,
            suspicions={
                monitor: self._suspected_by(monitor) for monitor in alive
            },
            detections=list(self._detections),
        )
