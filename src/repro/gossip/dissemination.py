"""Epidemic dissemination over the overlay's current views.

A push-gossip broadcast: each informed node forwards the message to
``fanout`` of its current view neighbors per round.  Reliability and
speed depend directly on the health of the peer-sampling layer — on a
hijacked overlay the broadcast dies inside the malicious quorum, which
is exactly the failure mode the paper's hub attack aims for (§III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Set

from repro.metrics.links import view_targets


@dataclass
class DisseminationResult:
    """Outcome of one broadcast."""

    origin: Any
    rounds: int
    reached: Set[Any] = field(default_factory=set)
    per_round_coverage: List[float] = field(default_factory=list)

    def coverage(self, population: int) -> float:
        """Fraction of the population reached."""
        if population == 0:
            return 0.0
        return len(self.reached) / population


def disseminate(
    engine: Any,
    origin: Any,
    fanout: int = 3,
    max_rounds: int = 30,
    rng=None,
    malicious_swallow: bool = True,
) -> DisseminationResult:
    """Broadcast from ``origin`` over the overlay's current views.

    ``malicious_swallow`` models censoring adversaries: malicious nodes
    receive the message but never forward it.  The simulation is
    synchronous-round based and purely functional over the engine's
    current views — it does not mutate protocol state.
    """
    if origin not in engine.nodes:
        raise ValueError("origin must be an alive node")
    rng = rng or engine.rng_hub.stream("dissemination")
    malicious = engine.malicious_ids if malicious_swallow else set()

    reached: Set[Any] = {origin}
    frontier: List[Any] = [origin]
    result = DisseminationResult(origin=origin, rounds=0)
    population = len(engine.nodes)

    for _ in range(max_rounds):
        if not frontier:
            break
        next_frontier: List[Any] = []
        for node_id in frontier:
            if node_id in malicious and node_id != origin:
                continue  # censors swallow instead of forwarding
            node = engine.nodes.get(node_id)
            if node is None:
                continue
            targets = view_targets(node)
            if not targets:
                continue
            count = min(fanout, len(targets))
            for target in rng.sample(targets, count):
                if target in reached or target not in engine.nodes:
                    continue
                reached.add(target)
                next_frontier.append(target)
        frontier = next_frontier
        result.rounds += 1
        result.per_round_coverage.append(len(reached) / population)
        if len(reached) == population:
            break

    result.reached = reached
    return result
