"""Push-pull averaging over the overlay's current views.

The classic gossip aggregation (Jelasity-style anti-entropy averaging):
each round, every node pairs with a random view neighbor and both move
to the midpoint of their values.  With a uniform peer-sampling service
all estimates converge exponentially fast to the global mean; a biased
overlay converges slower or to a manipulated value — one of the §I
motivations for dependable peer sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.metrics.links import view_targets


@dataclass
class AggregationResult:
    """Outcome of a push-pull averaging run."""

    true_mean: float
    rounds: int
    estimates: Dict[Any, float] = field(default_factory=dict)
    variance_per_round: List[float] = field(default_factory=list)

    def max_error(self) -> float:
        """Largest absolute deviation of any estimate from the mean."""
        if not self.estimates:
            return 0.0
        return max(
            abs(value - self.true_mean) for value in self.estimates.values()
        )


def _variance(values) -> float:
    values = list(values)
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    return sum((v - mean) ** 2 for v in values) / len(values)


def push_pull_average(
    engine: Any,
    initial_values: Dict[Any, float],
    rounds: int = 20,
    rng=None,
    honest_only: bool = True,
) -> AggregationResult:
    """Run synchronous push-pull averaging over current views.

    ``initial_values`` maps node IDs to their local inputs; nodes not
    listed default to 0.0.  ``honest_only`` restricts pairing to
    legitimate nodes (malicious ones neither respond nor update), which
    models an adversary that simply refuses to aggregate.
    """
    rng = rng or engine.rng_hub.stream("aggregation")
    malicious = engine.malicious_ids if honest_only else set()
    participants = [nid for nid in engine.nodes if nid not in malicious]
    estimates = {
        nid: float(initial_values.get(nid, 0.0)) for nid in participants
    }
    true_mean = (
        sum(estimates.values()) / len(estimates) if estimates else 0.0
    )

    result = AggregationResult(true_mean=true_mean, rounds=0)
    for _ in range(rounds):
        order = list(participants)
        rng.shuffle(order)
        for node_id in order:
            node = engine.nodes.get(node_id)
            if node is None:
                continue
            targets = [
                t
                for t in view_targets(node)
                if t in estimates and t != node_id
            ]
            if not targets:
                continue
            partner = rng.choice(targets)
            midpoint = (estimates[node_id] + estimates[partner]) / 2.0
            estimates[node_id] = midpoint
            estimates[partner] = midpoint
        result.rounds += 1
        result.variance_per_round.append(_variance(estimates.values()))

    result.estimates = estimates
    return result
