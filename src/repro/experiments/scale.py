"""Experiment scale presets.

The paper's evaluation runs 1K and 10K-node overlays for up to 500
cycles.  Pure-Python simulation reproduces those shapes at a fraction
of the size in a fraction of the time, so three presets exist:

* ``smoke``   — seconds; used by the test suite;
* ``default`` — minutes; used by the benchmark harness in CI;
* ``full``    — the paper's parameters; set ``REPRO_SCALE=full``.

Every figure module reads the preset through :func:`resolve_scale`, so
``REPRO_SCALE`` uniformly rescales the whole harness.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass
from typing import Optional

ENV_VAR = "REPRO_SCALE"


class Scale(enum.Enum):
    """How big an experiment run should be."""

    SMOKE = "smoke"
    DEFAULT = "default"
    FULL = "full"


def resolve_scale(scale: Optional[Scale] = None) -> Scale:
    """Explicit argument wins; otherwise the ``REPRO_SCALE`` env var;
    otherwise :data:`Scale.DEFAULT`."""
    if scale is not None:
        return scale
    raw = os.environ.get(ENV_VAR, "").strip().lower()
    if not raw:
        return Scale.DEFAULT
    try:
        return Scale(raw)
    except ValueError:
        valid = ", ".join(member.value for member in Scale)
        raise ValueError(
            f"invalid {ENV_VAR}={raw!r}; expected one of: {valid}"
        ) from None


def pick(scale: Scale, smoke, default, full):
    """Select a per-preset value."""
    if scale is Scale.SMOKE:
        return smoke
    if scale is Scale.FULL:
        return full
    return default


# ----------------------------------------------------------------------
# paper-scale wall-time benchmark (1K / 10K nodes)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PaperScaleRow:
    """One (overlay size, verification mode) wall-time measurement."""

    nodes: int
    cycles: int
    verification: str
    build_seconds: float
    run_seconds: float
    per_cycle_ms: float
    cycles_per_second: float
    mean_view_fill: float
    transport: str = "object"


@dataclass(frozen=True)
class PaperScaleReport:
    """Outcome of one :func:`run_paper_scale` sweep.

    The paper evaluates 1K and 10K-node overlays; this harness times
    exactly those shapes under both verification modes so the recorded
    numbers in ``BENCH_core.json`` / ``EXPERIMENTS.md`` stay
    reproducible from one command line.
    """

    scale: str
    seed: int
    rows: tuple

    def render(self) -> str:
        lines = [
            f"paper scale [{self.scale}] seed {self.seed}",
            f"{'nodes':>7}  {'cycles':>6}  {'verification':>12}  "
            f"{'transport':>9}  {'build s':>8}  {'run s':>8}  "
            f"{'ms/cycle':>9}  {'cycles/s':>8}  {'view fill':>9}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.nodes:>7}  {row.cycles:>6}  {row.verification:>12}  "
                f"{row.transport:>9}  "
                f"{row.build_seconds:>8.2f}  {row.run_seconds:>8.2f}  "
                f"{row.per_cycle_ms:>9.1f}  {row.cycles_per_second:>8.2f}  "
                f"{row.mean_view_fill:>9.3f}"
            )
        return "\n".join(lines)


def measure_paper_scale(
    nodes: int,
    cycles: int,
    seed: int = 42,
    verification: Optional[str] = None,
    transport: Optional[str] = None,
) -> PaperScaleRow:
    """Build and run one overlay shape; returns its wall-time row.

    ``transport`` selects the message-passing mode (``None`` resolves
    through ``REPRO_TRANSPORT``); wire mode re-frames every message
    through the codec, which is the regime where batched verification
    shows its end-to-end win.  Tracing is disabled — at 10K nodes a
    traced full run would spend more memory on the event log than on
    the overlay itself.
    """
    from repro.core.config import SecureCyclonConfig, resolve_verification
    from repro.experiments.scenarios import build_secure_overlay
    from repro.metrics.links import view_fill_fraction
    from repro.sim.engine import SimConfig
    from repro.sim.transport import resolve_transport

    import gc
    import time

    # Collection barrier: the previous measurement's run leaves a huge
    # young generation behind (Engine.run raises the gen-0 threshold),
    # and letting its collection land inside this measurement skews
    # build/run times by whole seconds at 1K+ nodes.
    gc.collect()
    mode = resolve_verification(verification)
    transport_mode = resolve_transport(transport)
    config = SecureCyclonConfig(
        view_length=20, swap_length=3, verification=mode,
        transport=transport_mode,
    )
    build_started = time.perf_counter()
    overlay = build_secure_overlay(
        n=nodes,
        config=config,
        seed=seed,
        sim_config=SimConfig(seed=seed, trace=False),
    )
    build_seconds = time.perf_counter() - build_started
    run_started = time.perf_counter()
    overlay.run(cycles)
    run_seconds = time.perf_counter() - run_started
    return PaperScaleRow(
        nodes=nodes,
        cycles=cycles,
        verification=mode,
        build_seconds=round(build_seconds, 3),
        run_seconds=round(run_seconds, 3),
        per_cycle_ms=round(run_seconds / cycles * 1e3, 2),
        cycles_per_second=round(cycles / run_seconds, 3),
        mean_view_fill=round(view_fill_fraction(overlay.engine), 4),
        transport=transport_mode,
    )


def run_paper_scale(
    scale: Optional[Scale] = None, seed: int = 42
) -> PaperScaleReport:
    """Paper-scale wall-time benchmark: 1K/10K-node overlays under
    sequential vs batched chain verification.

    ``full`` runs the paper's two sizes — 1000 nodes for 50 cycles and
    the repo's headline 10 000-node full-cycle run — once per
    verification mode; ``default`` runs the 1K shape; ``smoke`` a
    seconds-budget miniature.  Both modes run the same seed, so any
    behavioural divergence (there must be none) would show up as a
    different final view fill.
    """
    scale = resolve_scale(scale)
    shapes = pick(
        scale,
        [(60, 5)],
        [(1000, 50)],
        [(1000, 50), (10000, 5)],
    )
    rows = []
    for nodes, cycles in shapes:
        for mode in ("sequential", "batched"):
            rows.append(
                measure_paper_scale(
                    nodes, cycles, seed=seed, verification=mode
                )
            )
    return PaperScaleReport(scale=scale.value, seed=seed, rows=tuple(rows))


def render_paper_scale(report: PaperScaleReport) -> str:
    return report.render()


# ----------------------------------------------------------------------
# scale stress scenario
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StressReport:
    """Outcome of one :func:`run_scale_stress` run.

    ``cycles_per_second`` is the headline number: the ROADMAP's north
    star is paper-scale (1K–10K node) runs, and this scenario is the
    treadmill that proves the simulation core keeps up while churn and
    a hub attack are both active.
    """

    scale: str
    nodes: int
    cycles: int
    malicious: int
    crashed: int
    joined: int
    elapsed_seconds: float
    cycles_per_second: float
    final_population: int
    mean_view_fill: float
    blacklisted_fraction: float

    def render(self) -> str:
        lines = [
            f"scale stress [{self.scale}]: {self.nodes} nodes, "
            f"{self.cycles} cycles, {self.malicious} attackers",
            f"  churn: {self.crashed} crashed, {self.joined} joined "
            f"-> {self.final_population} alive",
            f"  wall clock: {self.elapsed_seconds:.2f}s "
            f"({self.cycles_per_second:.1f} cycles/s)",
            f"  mean view fill: {self.mean_view_fill:.3f}",
            f"  attackers blacklisted: {self.blacklisted_fraction:.2f}",
        ]
        return "\n".join(lines)


def run_scale_stress(scale: Optional[Scale] = None, seed: int = 7) -> StressReport:
    """Churn + hub attack at scale: the perf-trajectory stress scenario.

    A SecureCyclon overlay (2K nodes at ``REPRO_SCALE=full``, scaled
    down for the default and smoke presets) runs three phases: a clean
    warm-up, a hub-attack phase with 10% malicious nodes active, and a
    churn phase where a slice of honest nodes crashes and fresh joiners
    bootstrap in via the §V-A non-swappable join while the attack keeps
    running.  Returns wall-clock and health metrics; used by the
    benchmark harness to keep the paper-scale path honest.
    """
    # Imported lazily: scale.py is a leaf module read by every figure
    # harness, and the scenario machinery would make it a heavy import.
    from repro.bootstrap import bootstrap_joiner
    from repro.core.config import SecureCyclonConfig
    from repro.core.node import SecureCyclonNode
    from repro.experiments.scenarios import build_secure_overlay
    from repro.metrics.links import view_fill_fraction

    import time

    scale = resolve_scale(scale)
    n = pick(scale, 40, 400, 2000)
    warmup = pick(scale, 3, 5, 10)
    attack_cycles = pick(scale, 3, 8, 20)
    churn_cycles = pick(scale, 3, 7, 20)
    churn_fraction = 0.05
    malicious = max(2, n // 10)

    config = SecureCyclonConfig(view_length=20, swap_length=3)
    overlay = build_secure_overlay(
        n=n,
        config=config,
        malicious=malicious,
        attack_start=warmup,
        seed=seed,
    )
    engine = overlay.engine

    started = time.perf_counter()
    overlay.run(warmup + attack_cycles)

    # Churn slice: crash 5% of the honest population, then bootstrap
    # the same number of fresh joiners from live donors (§V-A join).
    churn_rng = engine.rng_hub.stream("scale-stress-churn")
    honest = sorted(engine.legit_ids)
    crashed = churn_rng.sample(honest, max(1, int(len(honest) * churn_fraction)))
    for node_id in crashed:
        engine.remove_node(node_id)

    donors = [
        node
        for node in engine.nodes.values()
        if isinstance(node, SecureCyclonNode) and not node.is_malicious
    ]
    joined = 0
    for _ in range(len(crashed)):
        keypair = engine.registry.new_keypair(churn_rng)
        address = engine.network.reserve_address(keypair.public)
        joiner = SecureCyclonNode(
            keypair=keypair,
            address=address,
            config=config,
            clock=engine.clock,
            registry=engine.registry,
            rng=engine.rng_hub.stream(f"joiner-{joined}"),
            trace=engine.trace,
        )
        joiner.bind_network(engine.network)
        engine.add_node(joiner)  # binds the shared verification plan
        bootstrap_joiner(joiner, donors, links=3, rng=churn_rng)
        joined += 1

    overlay.run(churn_cycles)
    elapsed = time.perf_counter() - started

    cycles = warmup + attack_cycles + churn_cycles
    malicious_alive = engine.malicious_ids
    blacklisted_votes = [
        sum(
            1
            for mid in malicious_alive
            if node.blacklist.is_blacklisted(mid)
        )
        / max(1, len(malicious_alive))
        for node in engine.nodes.values()
        if isinstance(node, SecureCyclonNode) and not node.is_malicious
    ]
    return StressReport(
        scale=scale.value,
        nodes=n,
        cycles=cycles,
        malicious=malicious,
        crashed=len(crashed),
        joined=joined,
        elapsed_seconds=elapsed,
        cycles_per_second=cycles / elapsed if elapsed > 0 else float("inf"),
        final_population=len(engine.nodes),
        mean_view_fill=view_fill_fraction(engine),
        blacklisted_fraction=(
            sum(blacklisted_votes) / len(blacklisted_votes)
            if blacklisted_votes
            else 0.0
        ),
    )
