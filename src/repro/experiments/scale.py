"""Experiment scale presets.

The paper's evaluation runs 1K and 10K-node overlays for up to 500
cycles.  Pure-Python simulation reproduces those shapes at a fraction
of the size in a fraction of the time, so three presets exist:

* ``smoke``   — seconds; used by the test suite;
* ``default`` — minutes; used by the benchmark harness in CI;
* ``full``    — the paper's parameters; set ``REPRO_SCALE=full``.

Every figure module reads the preset through :func:`resolve_scale`, so
``REPRO_SCALE`` uniformly rescales the whole harness.
"""

from __future__ import annotations

import enum
import os
from typing import Optional

ENV_VAR = "REPRO_SCALE"


class Scale(enum.Enum):
    """How big an experiment run should be."""

    SMOKE = "smoke"
    DEFAULT = "default"
    FULL = "full"


def resolve_scale(scale: Optional[Scale] = None) -> Scale:
    """Explicit argument wins; otherwise the ``REPRO_SCALE`` env var;
    otherwise :data:`Scale.DEFAULT`."""
    if scale is not None:
        return scale
    raw = os.environ.get(ENV_VAR, "").strip().lower()
    if not raw:
        return Scale.DEFAULT
    try:
        return Scale(raw)
    except ValueError:
        valid = ", ".join(member.value for member in Scale)
        raise ValueError(
            f"invalid {ENV_VAR}={raw!r}; expected one of: {valid}"
        ) from None


def pick(scale: Scale, smoke, default, full):
    """Select a per-preset value."""
    if scale is Scale.SMOKE:
        return smoke
    if scale is Scale.FULL:
        return full
    return default
