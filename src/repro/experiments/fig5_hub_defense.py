"""Fig 5 — SecureCyclon defends against the hub attack.

Top row: the same minimal attack as Fig 3 (ℓ malicious nodes) against
SecureCyclon — the malicious-link fraction spikes briefly after the
attack starts, then collapses as violators are proven and blacklisted.

Bottom row: the extreme scenario with 40 % of all nodes malicious.
High swap lengths can leave a residue of eclipsed nodes (legitimate
nodes whose every link is malicious, unreachable by proof floods);
the experiment reports that fraction too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import SecureCyclonConfig
from repro.experiments.plotting import chart_panel
from repro.experiments.report import format_table, series_table
from repro.experiments.runner import run_with_probes
from repro.experiments.scale import Scale, pick, resolve_scale
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.graphstats import eclipsed_fraction
from repro.metrics.links import (
    blacklisted_malicious_fraction,
    malicious_link_fraction,
)
from repro.metrics.series import Series


@dataclass
class Fig5Panel:
    """One panel: a population/attack size with a curve per swap length."""

    label: str
    nodes: int
    view_length: int
    malicious: int
    attack_start: int
    series: List[Series]
    final_eclipsed: Dict[int, float]  # swap length -> eclipsed fraction
    final_blacklist_progress: Dict[int, float]


def run_fig5(
    scale: Optional[Scale] = None,
    seed: int = 42,
    extreme: bool = True,
) -> List[Fig5Panel]:
    """Run the Fig 5 experiment.

    ``extreme=False`` skips the 40 %-malicious bottom row (used by the
    quick benchmarks).
    """
    scale = resolve_scale(scale)
    minimal_specs = pick(
        scale,
        smoke=[(120, 12, 12)],
        default=[(300, 20, 20)],
        full=[(1000, 20, 20), (10000, 50, 50)],
    )
    extreme_specs = pick(
        scale,
        smoke=[(120, 12, 48)],
        default=[(300, 20, 120)],
        full=[(1000, 20, 400), (10000, 50, 4000)],
    )
    swap_lengths = pick(scale, (3,), (3, 5, 8, 10), (3, 5, 8, 10))
    attack_start = pick(scale, 20, 50, 50)
    cycles = pick(scale, 50, 100, 100)
    every = pick(scale, 2, 2, 2)

    specs = list(minimal_specs)
    if extreme:
        specs.extend(extreme_specs)

    panels = []
    for nodes, view_length, malicious in specs:
        series_list = []
        eclipsed: Dict[int, float] = {}
        progress: Dict[int, float] = {}
        for swap_length in swap_lengths:
            overlay = build_secure_overlay(
                n=nodes,
                config=SecureCyclonConfig(
                    view_length=view_length, swap_length=swap_length
                ),
                malicious=malicious,
                attack_start=attack_start,
                seed=seed,
            )
            result = run_with_probes(
                overlay,
                cycles,
                {"malicious_links": malicious_link_fraction},
                every=every,
            )
            series = result["malicious_links"]
            series.label = f"swap length {swap_length}"
            series_list.append(series)
            eclipsed[swap_length] = eclipsed_fraction(overlay.engine)
            progress[swap_length] = blacklisted_malicious_fraction(
                overlay.engine
            )
        panels.append(
            Fig5Panel(
                label=(
                    f"nodes:{nodes}, view:{view_length}, "
                    f"malicious nodes:{malicious}"
                ),
                nodes=nodes,
                view_length=view_length,
                malicious=malicious,
                attack_start=attack_start,
                series=series_list,
                final_eclipsed=eclipsed,
                final_blacklist_progress=progress,
            )
        )
    return panels


def render(panels: List[Fig5Panel]) -> str:
    blocks = []
    for panel in panels:
        blocks.append(
            series_table(
                f"Fig 5 — links to malicious nodes (%) under the hub "
                f"attack, SecureCyclon ({panel.label}, attack at cycle "
                f"{panel.attack_start})",
                panel.series,
            )
        )
        rows = [
            (
                s,
                panel.final_eclipsed[s] * 100.0,
                panel.final_blacklist_progress[s] * 100.0,
            )
            for s in sorted(panel.final_eclipsed)
        ]
        blocks.append(
            format_table(
                ["swap length", "eclipsed nodes (%)", "blacklist progress (%)"],
                rows,
            )
        )
        blocks.append(
            chart_panel(
                f"[chart] {panel.label}",
                panel.series,
                x_label="time (cycles)",
                y_label="mal %",
                y_max=100.0,
            )
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry point
    print(render(run_fig5()))


if __name__ == "__main__":  # pragma: no cover
    main()
