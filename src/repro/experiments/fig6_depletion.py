"""Fig 6 — the link-depletion attack and the tit-for-tat defence.

Malicious nodes respond to gossip with nothing (an "empty view"),
draining legitimate views of swappable descriptors.  The paper plots
the fraction of non-swappable links over time, for 2 % and 50 %
malicious populations, with tit-for-tat disabled (left column) and
enabled (right column).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.adversary.depletion import DepletionAttacker
from repro.core.config import SecureCyclonConfig
from repro.experiments.plotting import chart_panel
from repro.experiments.report import series_table
from repro.experiments.runner import run_with_probes
from repro.experiments.scale import Scale, pick, resolve_scale
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.links import non_swappable_fraction
from repro.metrics.series import Series


@dataclass
class Fig6Panel:
    """One panel: a malicious share × tit-for-tat setting."""

    label: str
    nodes: int
    view_length: int
    malicious: int
    tit_for_tat: bool
    attack_start: int
    series: List[Series]


def run_fig6(
    scale: Optional[Scale] = None, seed: int = 42
) -> List[Fig6Panel]:
    """Run the Fig 6 experiment at the given scale."""
    scale = resolve_scale(scale)
    nodes, view_length = pick(
        scale, (150, 15), (300, 20), (1000, 20)
    )
    malicious_shares = pick(scale, (0.5,), (0.02, 0.5), (0.02, 0.5))
    swap_lengths = pick(scale, (5,), (3, 5, 10), (3, 5, 8, 10))
    attack_start = pick(scale, 20, 50, 50)
    cycles = pick(scale, 50, 100, 100)
    every = pick(scale, 2, 2, 2)

    panels = []
    for share in malicious_shares:
        malicious = max(1, round(nodes * share))
        for tit_for_tat in (False, True):
            series_list = []
            for swap_length in swap_lengths:
                overlay = build_secure_overlay(
                    n=nodes,
                    config=SecureCyclonConfig(
                        view_length=view_length,
                        swap_length=swap_length,
                        tit_for_tat=tit_for_tat,
                    ),
                    malicious=malicious,
                    attack_start=attack_start,
                    seed=seed,
                    attacker_cls=DepletionAttacker,
                )
                result = run_with_probes(
                    overlay,
                    cycles,
                    {"non_swappable": non_swappable_fraction},
                    every=every,
                )
                series = result["non_swappable"]
                series.label = f"swap length {swap_length}"
                series_list.append(series)
            panels.append(
                Fig6Panel(
                    label=(
                        f"nodes:{nodes}, view:{view_length}, malicious "
                        f"nodes:{malicious} ({share:.0%}), tit-for-tat: "
                        f"{'enabled' if tit_for_tat else 'disabled'}"
                    ),
                    nodes=nodes,
                    view_length=view_length,
                    malicious=malicious,
                    tit_for_tat=tit_for_tat,
                    attack_start=attack_start,
                    series=series_list,
                )
            )
    return panels


def render(panels: List[Fig6Panel]) -> str:
    blocks = []
    for panel in panels:
        blocks.append(
            series_table(
                f"Fig 6 — non-swappable links (%) under the "
                f"link-depletion attack ({panel.label}, attack at cycle "
                f"{panel.attack_start})",
                panel.series,
            )
        )
        blocks.append(
            chart_panel(
                f"[chart] {panel.label}",
                panel.series,
                x_label="time (cycles)",
                y_label="ns %",
                y_max=100.0,
            )
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry point
    print(render(run_fig6()))


if __name__ == "__main__":  # pragma: no cover
    main()
