"""Experiment harness: one module per paper figure/table.

Every module exposes a ``run_*`` function returning plain data (lists
of :class:`~repro.metrics.series.Series` or rows) plus a ``main()``
that prints the same rows/series the paper reports.  The benchmark
suite under ``benchmarks/`` wraps these functions one-to-one.

Scales: experiments accept a :class:`~repro.experiments.scale.Scale`
("smoke", "default", or "full"); see DESIGN.md §5 for the mapping to
the paper's parameters.
"""

from repro.experiments.scale import Scale, resolve_scale
from repro.experiments.scenarios import (
    build_cyclon_overlay,
    build_secure_overlay,
)
from repro.experiments.runner import run_with_probes

__all__ = [
    "Scale",
    "resolve_scale",
    "build_cyclon_overlay",
    "build_secure_overlay",
    "run_with_probes",
]
