"""Fig 7 — clone-detection ratio vs the age at duplication.

Cloning attackers double-spend descriptors at targeted ages; the
legitimate swarm runs its §IV-B checks with enforcement disabled (so
attackers survive their first offence and keep producing events), and
the harness reports the fraction of duplications that were provably
detected, per age bucket, for several redemption-cache sizes and
malicious population shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.adversary.cloning import CloningAttacker
from repro.core.config import SecureCyclonConfig
from repro.experiments.report import format_table
from repro.experiments.scale import Scale, pick, resolve_scale
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.detection import (
    detected_identities,
    detection_ratio_by_age,
    overall_detection_ratio,
)


@dataclass
class Fig7Curve:
    """One curve: detection ratio per age for one cache size."""

    cache_cycles: int
    rows: List[Tuple[int, float, int]]  # (age, ratio, events)
    overall: float


@dataclass
class Fig7Panel:
    """One panel: a malicious share with one curve per cache size."""

    label: str
    malicious_share: float
    curves: List[Fig7Curve]


def run_fig7(
    scale: Optional[Scale] = None, seed: int = 42
) -> List[Fig7Panel]:
    """Run the Fig 7 experiment at the given scale."""
    scale = resolve_scale(scale)
    nodes, view_length = pick(scale, (150, 15), (300, 20), (1000, 20))
    malicious_shares = pick(scale, (0.2,), (0.05, 0.2, 0.5), (0.05, 0.2, 0.5))
    cache_sizes = pick(scale, (0, 5), (0, 2, 5, 10), (0, 2, 5, 10))
    cycles = pick(scale, 60, 90, 150)
    attack_start = pick(scale, 10, 10, 10)
    age_low, age_high = 2, 20
    ages = range(age_low, age_high + 1, 2)

    panels = []
    for share in malicious_shares:
        malicious = max(1, round(nodes * share))
        curves = []
        for cache_cycles in cache_sizes:
            overlay = build_secure_overlay(
                n=nodes,
                config=SecureCyclonConfig(
                    view_length=view_length,
                    swap_length=3,
                    redemption_cache_cycles=cache_cycles,
                    blacklist_enabled=False,
                ),
                malicious=malicious,
                attack_start=attack_start,
                seed=seed,
                attacker_cls=CloningAttacker,
                attacker_kwargs={"age_range": (age_low, age_high)},
            )
            overlay.run(cycles)
            events = [
                event
                for node in overlay.malicious_nodes
                for event in node.clone_events
            ]
            detected = detected_identities(overlay.engine.trace)
            curves.append(
                Fig7Curve(
                    cache_cycles=cache_cycles,
                    rows=detection_ratio_by_age(events, detected, ages),
                    overall=overall_detection_ratio(events, detected),
                )
            )
        panels.append(
            Fig7Panel(
                label=(
                    f"nodes:{nodes}, view:{view_length}, malicious "
                    f"nodes:{share:.0%}"
                ),
                malicious_share=share,
                curves=curves,
            )
        )
    return panels


def render(panels: List[Fig7Panel]) -> str:
    blocks = []
    for panel in panels:
        headers = ["age when duplicated"] + [
            (
                "no redemption cache"
                if curve.cache_cycles == 0
                else f"cache {curve.cache_cycles} cycles"
            )
            for curve in panel.curves
        ]
        ages = [age for age, _, _ in panel.curves[0].rows]
        rows = []
        for index, age in enumerate(ages):
            row = [age]
            for curve in panel.curves:
                _, ratio, count = curve.rows[index]
                row.append("-" if count == 0 else ratio * 100.0)
            rows.append(row)
        rows.append(
            ["overall"] + [curve.overall * 100.0 for curve in panel.curves]
        )
        blocks.append(
            f"Fig 7 — detected duplicates (%) ({panel.label})\n"
            + format_table(headers, rows, precision=1)
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry point
    print(render(run_fig7()))


if __name__ == "__main__":  # pragma: no cover
    main()
