"""Running scenarios while sampling probes into series."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.experiments.scenarios import Overlay
from repro.metrics.series import Series
from repro.sim.observers import SeriesObserver


def run_with_probes(
    overlay: Overlay,
    cycles: int,
    probes: Dict[str, Callable[[Any], float]],
    every: int = 1,
) -> Dict[str, Series]:
    """Run ``overlay`` for ``cycles``, sampling ``probes`` every
    ``every`` cycles; returns one :class:`Series` per probe."""
    observer = SeriesObserver(probes, every=every)
    overlay.engine.add_observer(observer)
    overlay.run(cycles)
    result: Dict[str, Series] = {}
    for name in probes:
        series = Series(label=name)
        for cycle, value in observer.series[name]:
            series.append(float(cycle), value)
        result[name] = series
    return result
