"""Running scenarios while sampling probes into series."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.experiments.scenarios import Overlay, Runtime
from repro.metrics.series import Series
from repro.sim.observers import SeriesObserver
from repro.sim.scheduler import make_scheduler


def run_with_probes(
    overlay: Overlay,
    cycles: int,
    probes: Dict[str, Callable[[Any], float]],
    every: int = 1,
    runtime: Optional[Runtime] = None,
) -> Dict[str, Series]:
    """Run ``overlay`` for ``cycles``, sampling ``probes`` every
    ``every`` cycles; returns one :class:`Series` per probe.

    ``runtime`` optionally swaps the overlay's scheduler before the run
    — the same knob the scenario builders take, for callers that built
    the overlay elsewhere.  Probes sample at cycle boundaries under
    both runtimes, so the resulting series are directly comparable.
    """
    from repro.sim import shardcoord

    if shardcoord.active_context() is not None:
        return shardcoord.run_with_probes_sharded(
            overlay, cycles, probes, every=every, runtime=runtime
        )
    if runtime is not None:
        overlay.engine.use_scheduler(make_scheduler(runtime))
    observer = SeriesObserver(probes, every=every)
    overlay.engine.add_observer(observer)
    overlay.run(cycles)
    result: Dict[str, Series] = {}
    for name in probes:
        series = Series(label=name)
        for cycle, value in observer.series[name]:
            series.append(float(cycle), value)
        result[name] = series
    return result
