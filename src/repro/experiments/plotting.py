"""ASCII line charts for experiment series.

The benchmark harness archives its results as plain text; tables (see
:mod:`repro.experiments.report`) carry the exact numbers, and the
charts produced here show the *shape* — the thing the paper's figures
are really about — without any plotting dependency.

A chart is a character grid: y is scaled into a fixed number of rows,
x into a fixed number of columns, and each series paints its points
with its own glyph.  Overlapping points show the glyph of the series
listed last.  Axis labels carry the data ranges so the chart is
self-contained when pasted into EXPERIMENTS.md or a results file.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.metrics.series import Series

#: Glyphs assigned to series in order; cycled if there are more series.
GLYPHS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, steps: int) -> int:
    """Map ``value`` in [lo, hi] onto an integer cell in [0, steps-1]."""
    if hi <= lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(steps - 1, max(0, round(position * (steps - 1))))


def ascii_chart(
    series_list: Sequence[Series],
    width: int = 72,
    height: int = 16,
    title: Optional[str] = None,
    x_label: str = "cycle",
    y_label: str = "%",
    y_scale: float = 100.0,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Render ``series_list`` as one ASCII chart.

    ``y_scale`` multiplies every y value before plotting (the probes
    return fractions while the paper's axes are percentages).  ``y_min``
    and ``y_max`` pin the y range; left to ``None`` they are taken from
    the data, with a zero floor so percentage plots read naturally.
    """
    populated = [series for series in series_list if series.points]
    if not populated:
        return f"{title or 'chart'}\n(no data)"

    xs = [x for series in populated for x in series.xs]
    ys = [y * y_scale for series in populated for y in series.ys]
    x_lo, x_hi = min(xs), max(xs)
    lo = 0.0 if y_min is None else y_min
    hi = max(ys) if y_max is None else y_max
    if hi <= lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, series in enumerate(populated):
        glyph = GLYPHS[index % len(GLYPHS)]
        for x, y in series.points:
            column = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y * y_scale, lo, hi, height)
            grid[row][column] = glyph

    top_label = f"{hi:g}"
    bottom_label = f"{lo:g}"
    margin = max(len(top_label), len(bottom_label), len(y_label)) + 1
    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin)
        elif row_index == height // 2:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|" + "".join(row))
    axis = " " * margin + "+" + "-" * width
    lines.append(axis)
    x_left = f"{x_lo:g}"
    x_right = f"{x_hi:g}"
    caption = (
        " " * (margin + 1)
        + x_left
        + x_label.center(width - len(x_left) - len(x_right))
        + x_right
    )
    lines.append(caption)
    legend = "  ".join(
        f"{GLYPHS[index % len(GLYPHS)]}={series.label}"
        for index, series in enumerate(populated)
    )
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)


def chart_panel(
    title: str,
    series_list: Sequence[Series],
    **kwargs,
) -> str:
    """An :func:`ascii_chart` preceded by a blank separator line.

    Convenience wrapper used by figure renderers that stack a table and
    its chart in one results file.
    """
    return "\n" + ascii_chart(series_list, title=title, **kwargs)
