"""Extension experiment — SecureCyclon off the lock-step path.

The paper's evaluation (and Figs 2/3/5) runs on the PeerNet/PeerSim
cycle model: instantaneous messages, perfectly synchronous periods.
This sweep re-runs the two headline shapes under the event-driven
runtime with increasingly hostile timing — rising per-link latency
(heavy-tailed lognormal legs), desynchronised gossip periods (uniform
timer jitter), and a finite dialogue timeout that converts slow round
trips into §V-A partial failures:

* a fig2-style panel: the indegree distribution of an honest Cyclon
  overlay must stay concentrated around the configured outdegree;
* a fig5-style panel: a SecureCyclon overlay under the hub attack must
  still collapse the malicious-link fraction after the attack starts,
  because violation proofs do not depend on synchrony.

Expected shape: both guarantees degrade gracefully — higher latency
costs some exchanges (timeouts) and therefore convergence speed, but
neither the indegree concentration nor the blacklisting defence relies
on the lock-step schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import SecureCyclonConfig
from repro.cyclon.config import CyclonConfig
from repro.experiments.plotting import chart_panel
from repro.experiments.report import format_table, series_table
from repro.experiments.runner import run_with_probes
from repro.experiments.scale import Scale, pick, resolve_scale
from repro.experiments.scenarios import (
    build_cyclon_overlay,
    build_secure_overlay,
)
from repro.metrics.degree import indegree_statistics
from repro.metrics.links import (
    blacklisted_malicious_fraction,
    malicious_link_fraction,
)
from repro.metrics.series import Series
from repro.sim.latency import LognormalLatency
from repro.sim.scheduler import EventScheduler, PeriodJitter


@dataclass
class LatencyRow:
    """One latency level's outcome across both panels."""

    label: str
    latency_ratio: float  # median leg latency / gossip period
    jitter_spread: float
    indegree_mean: float
    indegree_stddev: float
    view_length: int
    timeouts: int
    final_malicious: float
    blacklist_progress: float


@dataclass
class LatencySweep:
    """The full sweep: summary rows plus the fig5-style series."""

    nodes: int
    cycles: int
    attack_start: int
    rows: List[LatencyRow]
    takeover_series: List[Series]


def _event_scheduler(
    latency_ratio: float, jitter_spread: float, period_s: float
) -> EventScheduler:
    """The sweep's runtime for one level (fresh scheduler per overlay)."""
    latency = (
        LognormalLatency(median_s=latency_ratio * period_s, sigma=0.5)
        if latency_ratio > 0
        else None
    )
    jitter = (
        PeriodJitter(mode="uniform", spread=jitter_spread)
        if jitter_spread > 0
        else PeriodJitter()
    )
    # Half a period of patience: an exchange that cannot finish within
    # it is cut short exactly like a §V-A loss.
    return EventScheduler(
        latency=latency, jitter=jitter, timeout_s=period_s / 2
    )


def run_latency_sweep(
    scale: Optional[Scale] = None, seed: int = 42
) -> LatencySweep:
    """Run the latency/jitter sweep at the given scale."""
    scale = resolve_scale(scale)
    nodes, view_length = pick(scale, (60, 8), (1000, 20), (1000, 20))
    cycles = pick(scale, 24, 60, 100)
    attack_start = pick(scale, 8, 20, 30)
    malicious = max(2, nodes // 25)
    every = 2
    levels = pick(
        scale,
        [(0.0, 0.0), (0.1, 0.2)],
        [(0.0, 0.0), (0.02, 0.1), (0.1, 0.2), (0.3, 0.3)],
        [(0.0, 0.0), (0.02, 0.1), (0.1, 0.2), (0.3, 0.3), (0.45, 0.3)],
    )
    period_s = 10.0

    rows: List[LatencyRow] = []
    takeover_series: List[Series] = []
    for latency_ratio, jitter_spread in levels:
        label = f"lat {latency_ratio:.0%}, jit {jitter_spread:.0%}"

        # Fig2-style panel: honest Cyclon indegree concentration.
        honest = build_cyclon_overlay(
            n=nodes,
            config=CyclonConfig(view_length=view_length, swap_length=3),
            seed=seed,
            runtime=_event_scheduler(latency_ratio, jitter_spread, period_s),
        )
        honest.run(cycles)
        stats = indegree_statistics(honest.engine)
        timeouts = honest.engine.trace.count("cyclon.exchange_timeout")

        # Fig5-style panel: hub attack against SecureCyclon.
        attacked = build_secure_overlay(
            n=nodes,
            config=SecureCyclonConfig(view_length=view_length, swap_length=3),
            malicious=malicious,
            attack_start=attack_start,
            seed=seed,
            runtime=_event_scheduler(latency_ratio, jitter_spread, period_s),
        )
        result = run_with_probes(
            attacked,
            cycles,
            {"malicious_links": malicious_link_fraction},
            every=every,
        )
        series = result["malicious_links"]
        series.label = label
        takeover_series.append(series)

        rows.append(
            LatencyRow(
                label=label,
                latency_ratio=latency_ratio,
                jitter_spread=jitter_spread,
                indegree_mean=stats["mean"],
                indegree_stddev=stats["stddev"],
                view_length=view_length,
                timeouts=timeouts,
                final_malicious=series.ys[-1] if series.ys else 0.0,
                blacklist_progress=blacklisted_malicious_fraction(
                    attacked.engine
                ),
            )
        )
    return LatencySweep(
        nodes=nodes,
        cycles=cycles,
        attack_start=attack_start,
        rows=rows,
        takeover_series=takeover_series,
    )


def render(sweep: LatencySweep) -> str:
    """Summary table plus the fig5-style takeover series and chart."""
    blocks = [
        format_table(
            [
                "latency/period",
                "jitter",
                "indegree mean",
                "indegree stddev",
                "outdegree",
                "timeouts",
                "final malicious links",
                "blacklist progress",
            ],
            [
                (
                    f"{row.latency_ratio:.0%}",
                    f"{row.jitter_spread:.0%}",
                    row.indegree_mean,
                    row.indegree_stddev,
                    row.view_length,
                    row.timeouts,
                    row.final_malicious,
                    row.blacklist_progress,
                )
                for row in sweep.rows
            ],
        )
    ]
    blocks.append(
        series_table(
            f"Hub attack under latency (event runtime, {sweep.nodes} nodes, "
            f"attack at cycle {sweep.attack_start}) — "
            "% of legitimate links pointing at attackers",
            sweep.takeover_series,
        )
    )
    blocks.append(
        chart_panel(
            "[chart] malicious-link fraction vs cycle",
            sweep.takeover_series,
        )
    )
    header = (
        "Latency sweep — SecureCyclon guarantees off the lock-step path\n"
        f"({sweep.nodes} nodes, {sweep.cycles} cycles, lognormal legs, "
        "uniform timer jitter, timeout = period/2)\n"
    )
    return header + "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry point
    print(render(run_latency_sweep()))


if __name__ == "__main__":  # pragma: no cover
    main()
