"""Extension experiment — message loss and non-atomic exchanges (§V-B).

The paper's tit-for-tat mechanism is motivated by *adversarial*
defection, but the same §V-A case-2 asymmetry arises from plain
network loss: a reply dropped after the request was processed leaves
ownership transferred one way only.  This sweep injects symmetric
message loss at increasing rates into an all-honest SecureCyclon
overlay — with and without tit-for-tat — and measures what the loss
costs: view fill, non-swappable repairs, and connectivity.

Expected shape: health degrades gracefully with the loss rate and the
overlay never fragments.  Tit-for-tat trades exposure for fairness
under *random* loss: its 2s round trips give a dialogue more chances
to be cut short (lower fill than the bulk swap), but each cut strands
at most one descriptor, so the non-swappable share stays at or below
the bulk-swap variant.  Legacy Cyclon is the baseline (it retains sent
descriptors on loss, so it only suffers stale links, not repairs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import SecureCyclonConfig
from repro.cyclon.config import CyclonConfig
from repro.experiments.report import format_table
from repro.experiments.scale import Scale, pick, resolve_scale
from repro.experiments.scenarios import (
    build_cyclon_overlay,
    build_secure_overlay,
)
from repro.metrics.graphstats import largest_component_fraction
from repro.metrics.links import non_swappable_fraction, view_fill_fraction
from repro.sim.channel import DropPolicy
from repro.sim.engine import SimConfig


@dataclass
class LossRow:
    """One (loss rate × variant) measurement."""

    variant: str
    loss_rate: float
    final_fill: float
    final_component: float
    final_non_swappable: float


def _measure(
    variant: str,
    loss_rate: float,
    nodes: int,
    view_length: int,
    cycles: int,
    seed: int,
) -> LossRow:
    sim_config = SimConfig(
        seed=seed,
        drop_policy=DropPolicy(request_loss=loss_rate, reply_loss=loss_rate),
    )
    if variant == "cyclon":
        overlay = build_cyclon_overlay(
            n=nodes,
            config=CyclonConfig(view_length=view_length, swap_length=3),
            seed=seed,
            sim_config=sim_config,
        )
    else:
        overlay = build_secure_overlay(
            n=nodes,
            config=SecureCyclonConfig(
                view_length=view_length,
                swap_length=3,
                tit_for_tat=(variant == "secure+tft"),
            ),
            seed=seed,
            sim_config=sim_config,
        )
    overlay.run(cycles)
    non_swappable = (
        0.0 if variant == "cyclon" else non_swappable_fraction(overlay.engine)
    )
    return LossRow(
        variant=variant,
        loss_rate=loss_rate,
        final_fill=view_fill_fraction(overlay.engine),
        final_component=largest_component_fraction(
            overlay.engine, legit_only=False
        ),
        final_non_swappable=non_swappable,
    )


def run_loss_sweep(
    scale: Optional[Scale] = None, seed: int = 42
) -> List[LossRow]:
    """Sweep loss rates across the three protocol variants."""
    scale = resolve_scale(scale)
    nodes, view_length = pick(scale, (100, 10), (250, 15), (1000, 20))
    cycles = pick(scale, 30, 60, 150)
    loss_rates = pick(
        scale, (0.0, 0.1), (0.0, 0.05, 0.1, 0.2), (0.0, 0.05, 0.1, 0.2, 0.4)
    )
    rows = []
    for loss_rate in loss_rates:
        for variant in ("cyclon", "secure", "secure+tft"):
            rows.append(
                _measure(variant, loss_rate, nodes, view_length, cycles, seed)
            )
    return rows


def render(rows: List[LossRow]) -> str:
    """One table, loss rate × variant."""
    return (
        "Message-loss sweep — overlay health after convergence under "
        "symmetric loss\n"
        + format_table(
            [
                "loss rate",
                "variant",
                "view fill",
                "largest component",
                "non-swappable",
            ],
            [
                (
                    f"{row.loss_rate:.0%}",
                    row.variant,
                    row.final_fill,
                    row.final_component,
                    row.final_non_swappable,
                )
                for row in rows
            ],
        )
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(render(run_loss_sweep()))


if __name__ == "__main__":  # pragma: no cover
    main()
