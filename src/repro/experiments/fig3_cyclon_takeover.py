"""Fig 3 — the hub attack takes over an unprotected Cyclon overlay.

A malicious group of exactly ℓ nodes behaves correctly until cycle 50,
then floods fake views of malicious descriptors.  The paper shows the
fraction of legitimate links pointing at malicious nodes racing to
100 %.  One curve per swap length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cyclon.config import CyclonConfig
from repro.experiments.plotting import chart_panel
from repro.experiments.report import series_table
from repro.experiments.runner import run_with_probes
from repro.experiments.scale import Scale, pick, resolve_scale
from repro.experiments.scenarios import build_cyclon_overlay
from repro.metrics.links import malicious_link_fraction
from repro.metrics.series import Series


@dataclass
class Fig3Panel:
    """One panel: a network size with one curve per swap length."""

    label: str
    nodes: int
    view_length: int
    malicious: int
    attack_start: int
    series: List[Series]


def run_fig3(
    scale: Optional[Scale] = None, seed: int = 42
) -> List[Fig3Panel]:
    """Run the Fig 3 experiment at the given scale."""
    scale = resolve_scale(scale)
    specs = pick(
        scale,
        smoke=[(150, 15, 15)],
        default=[(1000, 20, 20), (2000, 50, 50)],
        full=[(1000, 20, 20), (10000, 50, 50)],
    )
    swap_lengths = pick(scale, (3, 10), (3, 5, 8, 10), (3, 5, 8, 10))
    attack_start = pick(scale, 20, 50, 50)
    cycles = pick(scale, 80, 200, 500)
    every = pick(scale, 5, 5, 10)

    panels = []
    for nodes, view_length, malicious in specs:
        series_list = []
        for swap_length in swap_lengths:
            overlay = build_cyclon_overlay(
                n=nodes,
                config=CyclonConfig(
                    view_length=view_length, swap_length=swap_length
                ),
                malicious=malicious,
                attack_start=attack_start,
                seed=seed,
            )
            result = run_with_probes(
                overlay,
                cycles,
                {"malicious_links": malicious_link_fraction},
                every=every,
            )
            series = result["malicious_links"]
            series.label = f"swap length {swap_length}"
            series_list.append(series)
        panels.append(
            Fig3Panel(
                label=(
                    f"nodes:{nodes}, view:{view_length}, "
                    f"malicious nodes:{malicious}"
                ),
                nodes=nodes,
                view_length=view_length,
                malicious=malicious,
                attack_start=attack_start,
                series=series_list,
            )
        )
    return panels


def render(panels: List[Fig3Panel]) -> str:
    blocks = []
    for panel in panels:
        blocks.append(
            series_table(
                f"Fig 3 — links to malicious nodes (%) under the hub "
                f"attack, legacy Cyclon ({panel.label}, attack at cycle "
                f"{panel.attack_start})",
                panel.series,
            )
        )
        blocks.append(
            chart_panel(
                f"[chart] {panel.label}",
                panel.series,
                x_label="time (cycles)",
                y_label="mal %",
                y_max=100.0,
            )
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry point
    print(render(run_fig3()))


if __name__ == "__main__":  # pragma: no cover
    main()
