"""Extension experiment — the §III violation matrix.

Section III enumerates the protocol violations an attacker can build
on: frequency violations, partner-selection violations, and view
violations (with descriptor cloning as their enabling primitive, and
token replay as the degenerate no-fork case).  This experiment runs
one small SecureCyclon overlay per violation type and reports the
outcome in a single table:

=================  =========================================
violation          expected outcome under SecureCyclon
=================  =========================================
frequency          provable → attacker blacklisted
cloning            provable → attacker blacklisted
partner selection  deterministically rejected, zero yield
replay             deterministically rejected, zero yield
=================  =========================================

It is the executable form of the paper's §IV claim that every avenue
of over-representation is either *provable* (and punished) or
*impossible* (and rejected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.adversary.cloning import CloningAttacker
from repro.adversary.frequency import FrequencyAttacker
from repro.adversary.partner import SecurePartnerViolationAttacker
from repro.adversary.replay import ReplayAttacker
from repro.core.config import SecureCyclonConfig
from repro.experiments.report import format_table
from repro.experiments.scale import Scale, pick, resolve_scale
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.links import blacklisted_malicious_fraction


@dataclass
class ViolationOutcome:
    """One row of the matrix."""

    violation: str
    attempts: int
    yielded: int  # exchanges/acceptances the attacker actually gained
    blacklisted_fraction: float

    @property
    def punished(self) -> bool:
        return self.blacklisted_fraction > 0.99

    @property
    def rejected(self) -> bool:
        return self.yielded == 0


def _build(scale: Scale, seed: int, attacker_cls, attacker_kwargs=None):
    nodes, view_length = pick(scale, (100, 10), (200, 15), (1000, 20))
    malicious = max(2, nodes // 20)
    attack_start = pick(scale, 8, 12, 50)
    cycles = pick(scale, 40, 60, 150)
    overlay = build_secure_overlay(
        n=nodes,
        config=SecureCyclonConfig(view_length=view_length, swap_length=3),
        malicious=malicious,
        attack_start=attack_start,
        seed=seed,
        attacker_cls=attacker_cls,
        attacker_kwargs=attacker_kwargs or {},
    )
    overlay.run(cycles)
    return overlay


def run_violations(
    scale: Optional[Scale] = None, seed: int = 42
) -> List[ViolationOutcome]:
    """Run all four violation scenarios; one outcome row each."""
    scale = resolve_scale(scale)
    outcomes = []

    overlay = _build(scale, seed, FrequencyAttacker, {"burst": 3})
    attempts = sum(
        node.burst for node in overlay.malicious_nodes
    )  # descriptors minted per attacking cycle
    outcomes.append(
        ViolationOutcome(
            violation="frequency (over-minting)",
            attempts=attempts,
            yielded=0,
            blacklisted_fraction=blacklisted_malicious_fraction(
                overlay.engine
            ),
        )
    )

    overlay = _build(scale, seed, CloningAttacker, {"age_range": (2, 8)})
    clone_count = sum(
        len(node.clone_events) for node in overlay.malicious_nodes
    )
    outcomes.append(
        ViolationOutcome(
            violation="view (descriptor cloning)",
            attempts=clone_count,
            yielded=0,
            blacklisted_fraction=blacklisted_malicious_fraction(
                overlay.engine
            ),
        )
    )

    overlay = _build(scale, seed, SecurePartnerViolationAttacker)
    attempts = sum(
        node.rejections + node.accepted for node in overlay.malicious_nodes
    )
    yielded = sum(node.accepted for node in overlay.malicious_nodes)
    outcomes.append(
        ViolationOutcome(
            violation="partner selection",
            attempts=attempts,
            yielded=yielded,
            blacklisted_fraction=blacklisted_malicious_fraction(
                overlay.engine
            ),
        )
    )

    overlay = _build(scale, seed, ReplayAttacker)
    attempts = sum(
        node.replays_attempted for node in overlay.malicious_nodes
    )
    yielded = sum(node.replays_accepted for node in overlay.malicious_nodes)
    outcomes.append(
        ViolationOutcome(
            violation="token replay",
            attempts=attempts,
            yielded=yielded,
            blacklisted_fraction=blacklisted_malicious_fraction(
                overlay.engine
            ),
        )
    )
    return outcomes


def render(outcomes: List[ViolationOutcome]) -> str:
    """The violation matrix as one table."""
    rows = []
    for outcome in outcomes:
        if outcome.punished:
            verdict = "provable -> party blacklisted"
        elif outcome.rejected:
            verdict = "rejected -> zero yield"
        else:
            verdict = "PARTIAL"
        rows.append(
            (
                outcome.violation,
                outcome.attempts,
                outcome.yielded,
                outcome.blacklisted_fraction * 100,
                verdict,
            )
        )
    return (
        "Violation matrix — every §III avenue, outcome under SecureCyclon\n"
        + format_table(
            [
                "violation",
                "attempts",
                "yield",
                "attackers blacklisted (%)",
                "outcome",
            ],
            rows,
        )
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(render(run_violations()))


if __name__ == "__main__":  # pragma: no cover
    main()
