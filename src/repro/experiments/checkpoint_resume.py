"""Extension experiment — the checkpoint/resume bit-exactness contract.

The ops plane (:mod:`repro.ops`) promises that a run which checkpoints
at a cycle boundary and resumes in a *freshly built* engine continues
bit-for-bit as if never interrupted: every RNG stream is
``setstate()``-restored, the clock, views, sample caches, blacklists,
redemption caches, adversary state and network counters are overlaid,
and the attached observers adopt the pre-checkpoint series.

This experiment measures the contract directly under an active hub
attack (the hardest state to carry: coordinator pools, minted
descriptors, growing blacklists):

1. run the overlay unbroken for C cycles, recording the standard
   probe series;
2. rebuild the identical overlay, run C/2 cycles, checkpoint, rebuild
   again from scratch, resume from the file, run the remaining cycles;
3. compare the resumed run's series against the unbroken run's —
   sample by sample, exact equality, no tolerance — and the final
   per-node view/blacklist state.

Every row must read ``exact``; the table also reports the checkpoint's
size and record census so regressions in the format show up here.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.config import SecureCyclonConfig
from repro.experiments.report import format_table
from repro.experiments.scale import Scale, pick, resolve_scale
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.collector import standard_probes
from repro.ops.checkpoint import inspect_checkpoint
from repro.sim.observers import SeriesObserver


@dataclass
class ProbeComparison:
    """One probe series, resumed run vs unbroken run."""

    name: str
    samples: int
    exact: bool
    max_abs_diff: float


@dataclass
class CheckpointResumeResult:
    """The contract check's outcome plus checkpoint-format vitals."""

    nodes: int
    malicious: int
    cycles: int
    checkpoint_cycle: int
    file_bytes: int
    record_census: Dict[str, int]
    rng_streams: int
    probes: List[ProbeComparison]
    final_state_exact: bool


def _build(nodes: int, malicious: int, attack_start: int, seed: int):
    overlay = build_secure_overlay(
        n=nodes,
        config=SecureCyclonConfig(view_length=8, swap_length=3),
        malicious=malicious,
        attack_start=attack_start,
        seed=seed,
    )
    observer = SeriesObserver(standard_probes())
    overlay.engine.add_observer(observer)
    return overlay, observer


def _final_state(overlay) -> Dict:
    return {
        node_id: (
            tuple(
                (entry.descriptor, entry.non_swappable)
                for entry in node.view._entries
            ),
            node.blacklist.proofs_tuple(),
        )
        for node_id, node in overlay.engine.nodes.items()
    }


def run_checkpoint_resume(
    scale: Optional[Scale] = None, seed: int = 42
) -> CheckpointResumeResult:
    """Run the checkpoint/resume equivalence check at the given scale."""
    scale = resolve_scale(scale)
    nodes = pick(scale, 60, 300, 1000)
    cycles = pick(scale, 12, 40, 50)
    attack_start = pick(scale, 3, 10, 10)
    malicious = max(2, nodes // 10)
    half = cycles // 2

    # Unbroken reference run.
    unbroken, unbroken_obs = _build(nodes, malicious, attack_start, seed)
    unbroken.run(cycles)

    # Run to the midpoint, checkpoint, then resume into a fresh build.
    first, _ = _build(nodes, malicious, attack_start, seed)
    first.run(half)
    with tempfile.TemporaryDirectory(prefix="repro-ckpt-") as tmp:
        path = Path(tmp) / "mid.ckpt"
        first.engine.checkpoint(path)
        file_bytes = path.stat().st_size
        summary = inspect_checkpoint(path)
        resumed, resumed_obs = _build(nodes, malicious, attack_start, seed)
        resumed.engine.resume(path)
        resumed.run(cycles - half)

    comparisons: List[ProbeComparison] = []
    for name, reference in unbroken_obs.series.items():
        candidate = resumed_obs.series.get(name, [])
        diffs = [
            abs(a[1] - b[1]) for a, b in zip(reference, candidate)
        ]
        comparisons.append(
            ProbeComparison(
                name=name,
                samples=len(reference),
                exact=reference == candidate,
                max_abs_diff=max(diffs) if diffs else 0.0,
            )
        )
    return CheckpointResumeResult(
        nodes=nodes,
        malicious=malicious,
        cycles=cycles,
        checkpoint_cycle=half,
        file_bytes=file_bytes,
        record_census=summary["records"],
        rng_streams=len(summary["rng_streams"]),
        probes=comparisons,
        final_state_exact=_final_state(unbroken) == _final_state(resumed),
    )


def render(result: CheckpointResumeResult) -> str:
    """The per-probe equivalence table plus checkpoint vitals."""
    rows: List[Tuple] = [
        (
            comparison.name,
            comparison.samples,
            "exact" if comparison.exact else "DIVERGED",
            comparison.max_abs_diff,
        )
        for comparison in sorted(result.probes, key=lambda c: c.name)
    ]
    rows.append(
        (
            "final node state",
            result.nodes,
            "exact" if result.final_state_exact else "DIVERGED",
            0.0,
        )
    )
    table = format_table(
        ["series", "samples", "resumed vs unbroken", "max |diff|"], rows
    )
    census = ", ".join(
        f"{name}×{count}"
        for name, count in sorted(result.record_census.items())
    )
    header = (
        "Checkpoint/resume — bit-exact continuation from a mid-run "
        "state file\n"
        f"({result.nodes} nodes, {result.malicious} hub attackers, "
        f"checkpoint at cycle {result.checkpoint_cycle} of "
        f"{result.cycles}; resumed into a freshly built engine)\n\n"
        f"checkpoint: {result.file_bytes} bytes, "
        f"{result.rng_streams} RNG streams, {census}\n"
    )
    return header + "\n" + table


def main() -> None:  # pragma: no cover - CLI entry point
    print(render(run_checkpoint_resume()))


if __name__ == "__main__":  # pragma: no cover
    main()
