"""§VI-A — the network-cost table.

The paper budgets: 368 bits of node info per descriptor, 512 bits per
ownership transfer, ~6 transfers per descriptor on average (2s with
s = 3), hence ~430 bytes per descriptor; with ℓ + r = 25 descriptors
shipped per gossip direction, roughly 10.5 KB per direction per
exchange.

This experiment reproduces the analytic table and validates it against
a live run: mean observed transfer counts, mean descriptor size, and
measured bytes per dialogue direction.

Two live columns exist since the transport redesign: the *budgeted*
run prices every message with the paper's bit budget
(:func:`repro.core.wire.payload_bytes`), while the *wire* run replays
the same seed under ``transport="wire"`` — every dialogue leg framed
through the binary codec — so its per-direction numbers are the actual
serialised frame sizes on the simulated wire, not an estimate.  The
two runs produce bit-identical overlays (the codec is lossless and
consumes no RNG), which is what makes the columns comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import SecureCyclonConfig
from repro.core.codec import encoded_message_size
from repro.core.exchange import GossipOpen
from repro.core.wire import (
    HOP_BITS,
    NODE_INFO_BITS,
    descriptor_bits,
    encoded_descriptor_size,
    payload_bytes,
)
from repro.experiments.report import format_table
from repro.experiments.scale import Scale, pick, resolve_scale
from repro.experiments.scenarios import build_secure_overlay
from repro.sim.engine import SimConfig


@dataclass
class NetCostResult:
    """Analytic budget next to measured values from a live overlay."""

    view_length: int
    swap_length: int
    redemption_cache: int
    analytic_rows: List[Tuple[str, float]]
    measured_rows: List[Tuple[str, float]]
    wire_rows: List[Tuple[str, float]]


def analytic_budget(
    view_length: int = 20, swap_length: int = 3, redemption_cache: int = 5
) -> List[Tuple[str, float]]:
    """The paper's back-of-the-envelope §VI-A numbers."""
    transfers = 2 * swap_length  # descriptor lifetime average (paper)
    descriptor_bits_value = NODE_INFO_BITS + HOP_BITS * transfers
    descriptors_per_direction = view_length + redemption_cache
    per_direction_bytes = descriptors_per_direction * descriptor_bits_value / 8
    return [
        ("node info (bits)", float(NODE_INFO_BITS)),
        ("per transfer (bits)", float(HOP_BITS)),
        ("assumed transfers per descriptor", float(transfers)),
        ("descriptor size (bits)", float(descriptor_bits_value)),
        ("descriptor size (bytes)", descriptor_bits_value / 8),
        ("descriptors per direction", float(descriptors_per_direction)),
        ("per direction per gossip (KB)", per_direction_bytes / 1024),
    ]


def run_netcost(
    scale: Optional[Scale] = None, seed: int = 42
) -> NetCostResult:
    """Measure wire traffic on a live SecureCyclon overlay."""
    scale = resolve_scale(scale)
    nodes = pick(scale, 120, 300, 1000)
    cycles = pick(scale, 25, 50, 100)
    view_length, swap_length, redemption_cache = 20, 3, 5

    config = SecureCyclonConfig(
        view_length=view_length,
        swap_length=swap_length,
        redemption_cache_cycles=redemption_cache,
    )
    # transport="object" is pinned: this run's job is the *budgeted*
    # column, and an ambient REPRO_TRANSPORT=wire (or --transport wire)
    # would otherwise flip it to measured frames, duplicating the wire
    # table below and destroying the budget-vs-wire comparison.
    overlay = build_secure_overlay(
        n=nodes,
        config=config,
        seed=seed,
        sim_config=SimConfig(
            seed=seed, payload_sizer=payload_bytes, transport="object"
        ),
    )
    overlay.run(cycles)

    network = overlay.engine.network
    dialogues = max(1, network.dialogues_opened)
    forward_kb = network.dialogue_bytes_forward / dialogues / 1024
    backward_kb = network.dialogue_bytes_backward / dialogues / 1024

    # Sample live descriptors for transfer counts and sizes.
    transfer_counts = []
    sizes = []
    encoded_sizes = []
    for node in overlay.engine.legit_nodes():
        for entry in node.view:
            transfer_counts.append(entry.descriptor.transfer_count)
            sizes.append(descriptor_bits(entry.descriptor))
            encoded_sizes.append(encoded_descriptor_size(entry.descriptor))
    mean_transfers = (
        sum(transfer_counts) / len(transfer_counts) if transfer_counts else 0.0
    )
    mean_size_bytes = (sum(sizes) / len(sizes) / 8) if sizes else 0.0
    mean_encoded_bytes = (
        sum(encoded_sizes) / len(encoded_sizes) if encoded_sizes else 0.0
    )

    # A representative serialised opening: one node's next GossipOpen,
    # framed through the binary codec (measured, not budgeted).
    sample_node = overlay.engine.legit_nodes()[0]
    sample_entry = sample_node.view.oldest()
    open_frame_kb = 0.0
    if sample_entry is not None:
        opening = GossipOpen(
            redemption=sample_entry.descriptor.redeem(sample_node.keypair),
            non_swappable=False,
            samples=sample_node._samples_payload(),
            proofs=sample_node.blacklist.proofs_tuple(),
        )
        open_frame_kb = encoded_message_size(opening) / 1024

    measured_rows = [
        ("mean transfers per live descriptor", mean_transfers),
        ("mean descriptor size (bytes)", mean_size_bytes),
        ("mean serialised descriptor (bytes, framed)", mean_encoded_bytes),
        ("serialised GossipOpen frame (KB)", open_frame_kb),
        ("measured initiator->partner per gossip (KB)", forward_kb),
        ("measured partner->initiator per gossip (KB)", backward_kb),
    ]

    # Same seed, wire transport: every leg actually serialised, so the
    # byte counters hold real frame sizes instead of the paper budget.
    wire_overlay = build_secure_overlay(
        n=nodes,
        config=config,
        seed=seed,
        sim_config=SimConfig(seed=seed, transport="wire"),
    )
    wire_overlay.run(cycles)
    wire_network = wire_overlay.engine.network
    wire_dialogues = max(1, wire_network.dialogues_opened)
    wire_rows = [
        (
            "wire initiator->partner per gossip (KB)",
            wire_network.dialogue_bytes_forward / wire_dialogues / 1024,
        ),
        (
            "wire partner->initiator per gossip (KB)",
            wire_network.dialogue_bytes_backward / wire_dialogues / 1024,
        ),
        (
            "wire proof-flood traffic, whole run (KB)",
            wire_network.push_bytes / 1024,
        ),
    ]
    return NetCostResult(
        view_length=view_length,
        swap_length=swap_length,
        redemption_cache=redemption_cache,
        analytic_rows=analytic_budget(
            view_length, swap_length, redemption_cache
        ),
        measured_rows=measured_rows,
        wire_rows=wire_rows,
    )


def render(result: NetCostResult) -> str:
    header = (
        f"§VI-A — network costs (view {result.view_length}, swap "
        f"{result.swap_length}, redemption cache {result.redemption_cache})"
    )
    analytic = format_table(
        ["analytic quantity (paper budget)", "value"], result.analytic_rows
    )
    measured = format_table(
        ["measured quantity (live overlay)", "value"], result.measured_rows
    )
    wire = format_table(
        ["wire-transport quantity (same seed, measured frames)", "value"],
        result.wire_rows,
    )
    return f"{header}\n{analytic}\n\n{measured}\n\n{wire}"


def main() -> None:  # pragma: no cover - CLI entry point
    print(render(run_netcost()))


if __name__ == "__main__":  # pragma: no cover
    main()
