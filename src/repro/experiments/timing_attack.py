"""Extension experiment — attack timing as a weapon (event runtime).

The paper's attack model (§II-C) grants adversaries every protocol
freedom, and the event runtime added one the cycle model cannot
express: *when* a message leaves its sender.  This experiment runs the
timing-adversary suite (:mod:`repro.adversary.timing`) against a
SecureCyclon overlay under realistic latency and a dialogue timeout,
and compares it with the strongest content-side rule-abiding strategy
(the stealth bias of the ``stealth`` experiment):

* ``stealth``      — content bias, honest timing: the baseline;
* ``stall``        — replies held just *under* the victims' timeout:
                     every dialogue succeeds but burns nearly a full
                     timeout budget (watch the waiting-time column);
* ``stall-edge``   — the same attacker at the boundary (negative
                     margin): every dialogue becomes the §V-A case-2
                     spent-descriptor asymmetry;
* ``induce``       — colleagues answered fast, honest nodes never:
                     link depletion by silence;
* ``induce+retry`` — the same attack with the honest side's
                     :class:`~repro.sim.retry.RetryPolicy` switched to
                     ``immediate``: a timed-out opening re-redeems the
                     next oldest entry, recovering most of the lost
                     gossip opportunities.

Expected shape: the timing attackers are never blacklisted (their
content is protocol-legal — like the stealth bias, they live on the
rule-abiding side of the paper's guarantee), yet ``stall-edge`` and
``induce`` visibly depress honest view fill while ``stall`` quietly
multiplies the time victims spend waiting.  Retrying claws back most
of the depletion at the price of extra redeemed tokens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

from repro.adversary.stealth import StealthBiasAttacker
from repro.adversary.timing import StallAttacker, TimeoutInducer
from repro.core.config import SecureCyclonConfig
from repro.experiments.plotting import chart_panel
from repro.experiments.report import format_table, series_table
from repro.experiments.runner import run_with_probes
from repro.experiments.scale import Scale, pick, resolve_scale
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.links import (
    blacklisted_malicious_fraction,
    malicious_link_fraction,
    view_fill_fraction,
)
from repro.metrics.series import Series
from repro.sim.latency import LognormalLatency
from repro.sim.retry import RetryPolicy
from repro.sim.scheduler import EventScheduler, PeriodJitter


@dataclass
class TimingRow:
    """One attacker mode's outcome."""

    label: str
    view_fill_final: float
    view_fill_min: float  # post-attack minimum: the depletion dip
    malicious_final: float
    open_timeouts: int
    round_timeouts: int
    retries: int
    waiting_hours: float  # virtual time initiators spent on round trips
    blacklisted: float


@dataclass
class TimingAttackResult:
    """The full comparison: summary rows plus view-fill series."""

    nodes: int
    cycles: int
    attack_start: int
    malicious: int
    timeout_s: float
    rows: List[TimingRow]
    fill_series: List[Series]


#: label -> (attacker class, attacker kwargs, honest retry policy)
#:
#: The ``stall`` margin must absorb the *request* leg too — the victim
#: times the whole round trip, and an attacker only controls its own
#: reply — so it is sized to the latency model's tail (p99 of the
#: lognormal legs) and the mode burns ~70% of each timeout budget
#: while staying (almost always) inside the deadline.  ``stall-edge``
#: deliberately crosses it on every dialogue instead.
_MODES: List[Tuple[str, Type, Dict, RetryPolicy]] = [
    ("stealth", StealthBiasAttacker, {}, RetryPolicy()),
    ("stall", StallAttacker, {"margin_s": 1.5}, RetryPolicy()),
    ("stall-edge", StallAttacker, {"margin_s": -0.01}, RetryPolicy()),
    ("induce", TimeoutInducer, {}, RetryPolicy()),
    (
        "induce+retry",
        TimeoutInducer,
        {},
        RetryPolicy(mode="immediate", max_retries=2),
    ),
]


def _event_runtime(period_s: float) -> EventScheduler:
    """The comparison's runtime: mild latency, jitter, period/2 patience."""
    return EventScheduler(
        latency=LognormalLatency(median_s=0.05 * period_s, sigma=0.5),
        jitter=PeriodJitter(mode="uniform", spread=0.1),
        timeout_s=period_s / 2,
    )


def run_timing_attack(
    scale: Optional[Scale] = None, seed: int = 42
) -> TimingAttackResult:
    """Run the timing-adversary comparison at the given scale."""
    scale = resolve_scale(scale)
    nodes, view_length = pick(scale, (40, 8), (300, 20), (1000, 20))
    cycles = pick(scale, 12, 40, 50)
    attack_start = pick(scale, 4, 12, 15)
    malicious = max(2, nodes // 10)
    every = 2
    period_s = 10.0

    rows: List[TimingRow] = []
    fill_series: List[Series] = []
    for label, attacker_cls, attacker_kwargs, retry in _MODES:
        config = SecureCyclonConfig(
            view_length=view_length, swap_length=3, retry=retry
        )
        overlay = build_secure_overlay(
            n=nodes,
            config=config,
            malicious=malicious,
            attack_start=attack_start,
            seed=seed,
            attacker_cls=attacker_cls,
            attacker_kwargs=attacker_kwargs,
            runtime=_event_runtime(period_s),
        )
        result = run_with_probes(
            overlay,
            cycles,
            {
                "view_fill": view_fill_fraction,
                "malicious_links": malicious_link_fraction,
            },
            every=every,
        )
        series = result["view_fill"]
        series.label = label
        fill_series.append(series)
        engine = overlay.engine
        post_attack = [
            y for x, y in zip(series.xs, series.ys) if x >= attack_start
        ]
        rows.append(
            TimingRow(
                label=label,
                view_fill_final=series.ys[-1] if series.ys else 0.0,
                view_fill_min=min(post_attack) if post_attack else 0.0,
                malicious_final=(
                    result["malicious_links"].ys[-1]
                    if result["malicious_links"].ys
                    else 0.0
                ),
                open_timeouts=engine.trace.count("secure.open_timeout"),
                round_timeouts=engine.trace.count("secure.round_timeout"),
                retries=engine.trace.count("secure.retry_immediate"),
                waiting_hours=engine.network.dialogue_seconds / 3600.0,
                blacklisted=blacklisted_malicious_fraction(engine),
            )
        )
    return TimingAttackResult(
        nodes=nodes,
        cycles=cycles,
        attack_start=attack_start,
        malicious=malicious,
        timeout_s=period_s / 2,
        rows=rows,
        fill_series=fill_series,
    )


def render(result: TimingAttackResult) -> str:
    """Summary table plus the honest view-fill series and chart."""
    blocks = [
        format_table(
            [
                "mode",
                "final view fill",
                "min fill post-attack (%)",
                "final malicious links",
                "open timeouts",
                "round timeouts",
                "retries",
                "waiting (virtual h)",
                "blacklisted",
            ],
            [
                (
                    row.label,
                    row.view_fill_final,
                    100.0 * row.view_fill_min,
                    row.malicious_final,
                    row.open_timeouts,
                    row.round_timeouts,
                    row.retries,
                    row.waiting_hours,
                    row.blacklisted,
                )
                for row in result.rows
            ],
        )
    ]
    blocks.append(
        series_table(
            f"Honest view fill under timing attacks (event runtime, "
            f"{result.nodes} nodes, {result.malicious} attackers from "
            f"cycle {result.attack_start}, timeout {result.timeout_s:.0f}s)",
            result.fill_series,
        )
    )
    blocks.append(
        chart_panel(
            "[chart] honest view fill vs cycle",
            result.fill_series,
            x_label="time (cycles)",
            y_label="fill",
        )
    )
    header = (
        "Timing attacks — stall, boundary stall, and induced timeouts vs "
        "the stealth baseline\n"
        f"({result.nodes} nodes, {result.cycles} cycles, lognormal legs, "
        "uniform jitter, timeout = period/2; timing attackers are "
        "content-honest and never blacklistable)\n"
    )
    return header + "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry point
    print(render(run_timing_attack()))


if __name__ == "__main__":  # pragma: no cover
    main()
