"""Fig 2 — indegree distribution of converged Cyclon overlays.

The paper shows that every node's indegree clusters tightly around the
configured outdegree (view length ℓ), for 1K nodes with ℓ=20 and 10K
nodes with ℓ=50.  This experiment runs an honest overlay to
convergence and reports the indegree histogram plus summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cyclon.config import CyclonConfig
from repro.experiments.report import format_table, histogram_table
from repro.experiments.scale import Scale, pick, resolve_scale
from repro.experiments.scenarios import build_cyclon_overlay
from repro.metrics.degree import indegree_histogram, indegree_statistics


@dataclass
class Fig2Panel:
    """One histogram panel of Fig 2."""

    label: str
    nodes: int
    view_length: int
    histogram: List[Tuple[int, int]]
    statistics: Dict[str, float]


def run_fig2(
    scale: Optional[Scale] = None, seed: int = 42
) -> List[Fig2Panel]:
    """Run the Fig 2 experiment at the given scale."""
    scale = resolve_scale(scale)
    specs = pick(
        scale,
        smoke=[(150, 10)],
        default=[(1000, 20), (2000, 50)],
        full=[(1000, 20), (10000, 50)],
    )
    cycles = pick(scale, 40, 100, 200)

    panels = []
    for nodes, view_length in specs:
        overlay = build_cyclon_overlay(
            n=nodes,
            config=CyclonConfig(view_length=view_length, swap_length=3),
            seed=seed,
        )
        overlay.run(cycles)
        panels.append(
            Fig2Panel(
                label=f"nodes:{nodes}, view:{view_length}",
                nodes=nodes,
                view_length=view_length,
                histogram=indegree_histogram(overlay.engine),
                statistics=indegree_statistics(overlay.engine),
            )
        )
    return panels


def render(panels: List[Fig2Panel]) -> str:
    """Print the panels the way the paper's Fig 2 reports them."""
    blocks = []
    for panel in panels:
        blocks.append(
            histogram_table(
                f"Fig 2 — indegree distribution ({panel.label})",
                panel.histogram,
                x_label="indegree",
                y_label="nodes",
            )
        )
        stats = panel.statistics
        blocks.append(
            format_table(
                ["metric", "value"],
                [
                    ("mean indegree", stats["mean"]),
                    ("stddev", stats["stddev"]),
                    ("min", stats["min"]),
                    ("max", stats["max"]),
                    ("configured outdegree", float(panel.view_length)),
                ],
            )
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry point
    print(render(run_fig2()))


if __name__ == "__main__":  # pragma: no cover
    main()
