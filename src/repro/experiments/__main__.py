"""Command-line entry point: ``python -m repro.experiments <figure>``.

Runs one (or all) of the paper's experiments and prints the rendered
tables.  The scale is taken from ``--scale`` or the ``REPRO_SCALE``
environment variable.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

from repro.sim.transport import ENV_TRANSPORT, TRANSPORT_MODES

from repro.experiments import (
    checkpoint_resume,
    churn_recovery,
    eclipse_experiment,
    latency_sweep,
    loss_sweep,
    stealth_experiment,
    timing_attack,
    violations_matrix,
    wire_faults,
    fig2_indegree,
    fig3_cyclon_takeover,
    fig5_hub_defense,
    fig6_depletion,
    fig7_redemption,
    netcost_table,
)
from repro.experiments import scale as scale_benchmark
from repro.experiments import scale_sharded as scale_sharded_benchmark
from repro.experiments.scale import Scale

EXPERIMENTS = {
    "scale": (
        scale_benchmark.run_paper_scale,
        scale_benchmark.render_paper_scale,
    ),
    "scale_sharded": (
        scale_sharded_benchmark.run_scale_sharded,
        scale_sharded_benchmark.render,
    ),
    "fig2": (fig2_indegree.run_fig2, fig2_indegree.render),
    "fig3": (fig3_cyclon_takeover.run_fig3, fig3_cyclon_takeover.render),
    "fig5": (fig5_hub_defense.run_fig5, fig5_hub_defense.render),
    "fig6": (fig6_depletion.run_fig6, fig6_depletion.render),
    "fig7": (fig7_redemption.run_fig7, fig7_redemption.render),
    "netcost": (netcost_table.run_netcost, netcost_table.render),
    "eclipse": (eclipse_experiment.run_eclipse, eclipse_experiment.render),
    "stealth": (stealth_experiment.run_stealth, stealth_experiment.render),
    "violations": (violations_matrix.run_violations, violations_matrix.render),
    "churn": (churn_recovery.run_churn_recovery, churn_recovery.render),
    "loss": (loss_sweep.run_loss_sweep, loss_sweep.render),
    "latency": (latency_sweep.run_latency_sweep, latency_sweep.render),
    "timing_attack": (timing_attack.run_timing_attack, timing_attack.render),
    "wire_faults": (wire_faults.run_wire_faults, wire_faults.render),
    "checkpoint_resume": (
        checkpoint_resume.run_checkpoint_resume,
        checkpoint_resume.render,
    ),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the SecureCyclon paper's figures/tables.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="which experiment to run ('list' prints the catalogue)",
    )
    parser.add_argument(
        "--scale",
        choices=[scale.value for scale in Scale],
        default=None,
        help="override REPRO_SCALE (smoke/default/full)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="simulation master seed"
    )
    parser.add_argument(
        "--transport",
        choices=list(TRANSPORT_MODES),
        default=None,
        help="override REPRO_TRANSPORT (object/wire): wire mode frames "
        "every message through the binary codec and reports measured "
        "traffic; outputs are bit-for-bit identical either way",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help="also write each experiment's rendered output to this "
        "directory as <name>.txt",
    )
    split = parser.add_mutually_exclusive_group()
    split.add_argument(
        "--checkpoint",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="checkpoint every engine run half-way into DIR "
        "(run-<k>.ckpt per run call), then keep running — output is "
        "bit-identical to a run without the flag",
    )
    split.add_argument(
        "--resume",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="resume every engine run from the matching run-<k>.ckpt "
        "in DIR (written by a previous --checkpoint invocation of the "
        "same experiment) and execute only the remaining cycles",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            run, _ = EXPERIMENTS[name]
            summary = (run.__doc__ or "").strip().splitlines()
            print(f"{name:<12} {summary[0] if summary else ''}")
        return 0

    # The knob resolves through the environment at config-use time, so
    # exporting it here uniformly flips every overlay the selected
    # experiments build — the same mechanism REPRO_TRANSPORT uses.
    # Restored afterwards: main() is also called in-process (tests,
    # notebooks), and the flag must not leak into later runs.
    previous_transport = os.environ.get(ENV_TRANSPORT)
    if args.transport is not None:
        os.environ[ENV_TRANSPORT] = args.transport
    try:
        scale = Scale(args.scale) if args.scale else None
        names = (
            sorted(EXPERIMENTS) if args.experiment == "all"
            else [args.experiment]
        )
        # --checkpoint/--resume intercept every Engine.run the selected
        # experiments make (repro.ops.checkpoint.split_runs); without
        # either flag the null context leaves the runs untouched.
        if args.checkpoint is not None or args.resume is not None:
            from repro.ops.checkpoint import split_runs

            directory = args.checkpoint or args.resume
            mode = "checkpoint" if args.checkpoint is not None else "resume"
            split_context = split_runs(directory, mode)
        else:
            from contextlib import nullcontext

            split_context = nullcontext()
        with split_context:
            for name in names:
                run, render = EXPERIMENTS[name]
                started = time.time()
                result = run(scale=scale, seed=args.seed)
                text = render(result)
                print(text)
                if args.output is not None:
                    args.output.mkdir(parents=True, exist_ok=True)
                    (args.output / f"{name}.txt").write_text(
                        text + "\n", encoding="utf-8"
                    )
                print(f"\n[{name} finished in {time.time() - started:.1f}s]\n")
    finally:
        if args.transport is not None:
            if previous_transport is None:
                os.environ.pop(ENV_TRANSPORT, None)
            else:
                os.environ[ENV_TRANSPORT] = previous_transport
    return 0


if __name__ == "__main__":
    sys.exit(main())
