"""Plain-text rendering of experiment results.

The paper's figures are line plots and histograms; the harness prints
the same data as aligned text tables (one row per x value, one column
per series), which is what lands in ``EXPERIMENTS.md`` and the bench
output.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.metrics.series import Series


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], precision: int = 2
) -> str:
    """Align ``rows`` under ``headers``; floats rendered at ``precision``."""

    def render(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    out = [line(list(headers)), line(["-" * width for width in widths])]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def series_table(
    title: str,
    series_list: List[Series],
    x_label: str = "cycle",
    y_scale: float = 100.0,
    precision: int = 2,
) -> str:
    """Render several series sharing an x axis as one table.

    ``y_scale`` defaults to 100 because the paper's y-axes are almost
    all percentages while the probes return fractions.
    """
    xs: List[float] = sorted({x for series in series_list for x in series.xs})
    headers = [x_label] + [series.label for series in series_list]
    by_series = [dict(series.points) for series in series_list]
    rows = []
    for x in xs:
        row: List = [int(x) if float(x).is_integer() else x]
        for points in by_series:
            value = points.get(x)
            row.append("-" if value is None else value * y_scale)
        rows.append(row)
    body = format_table(headers, rows, precision=precision)
    return f"{title}\n{body}"


def histogram_table(
    title: str, pairs: Sequence[Tuple[int, int]], x_label: str, y_label: str
) -> str:
    """Render histogram pairs with a proportional bar column."""
    if not pairs:
        return f"{title}\n(empty)"
    peak = max(count for _, count in pairs)
    rows = []
    for value, count in pairs:
        bar = "#" * max(1, round(30 * count / peak)) if count else ""
        rows.append((value, count, bar))
    body = format_table([x_label, y_label, ""], rows)
    return f"{title}\n{body}"
