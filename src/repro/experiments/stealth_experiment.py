"""Extension experiment — the residual power of a rule-abiding adversary.

The paper's guarantee is about *provable violations*: forging, cloning
and over-minting are detected and punished.  The strongest strategy
left to an adversary is a stealth bias (see
:class:`~repro.adversary.stealth.StealthBiasAttacker`): preferentially
forward colleagues' descriptors, never violate, never be blacklisted.

This experiment quantifies that residue.  For a range of malicious
population shares it runs (a) the stealth-bias party and (b) the
violating hub party of Fig 5, on the same SecureCyclon overlay, and
reports the peak and settled malicious-link fractions.  Expected
shape: the violators spike and then collapse to ~0 (they are purged);
the stealth party is *never* purged but stays pinned near a small
multiple of its token supply — over-representation is eliminated, not
merely bounded, exactly the paper's headline claim restated for
non-violating adversaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.adversary.stealth import StealthBiasAttacker
from repro.core.config import SecureCyclonConfig
from repro.experiments.plotting import chart_panel
from repro.experiments.report import format_table, series_table
from repro.experiments.runner import run_with_probes
from repro.experiments.scale import Scale, pick, resolve_scale
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.links import malicious_link_fraction
from repro.metrics.series import Series


@dataclass
class StealthResult:
    """One malicious-share setting: stealth vs violating attackers."""

    label: str
    nodes: int
    view_length: int
    malicious: int
    attack_start: int
    stealth_series: Series
    hub_series: Series

    @property
    def stealth_peak(self) -> float:
        return self.stealth_series.max_y()

    @property
    def stealth_settled(self) -> float:
        tail_start = self.stealth_series.xs[-1] - 10
        return self.stealth_series.window_mean(
            tail_start, self.stealth_series.xs[-1]
        )

    @property
    def hub_settled(self) -> float:
        tail_start = self.hub_series.xs[-1] - 10
        return self.hub_series.window_mean(tail_start, self.hub_series.xs[-1])


def run_stealth(
    scale: Optional[Scale] = None, seed: int = 42
) -> List[StealthResult]:
    """Run the stealth-vs-violating comparison at the given scale."""
    scale = resolve_scale(scale)
    nodes, view_length = pick(scale, (120, 12), (300, 20), (1000, 20))
    shares = pick(scale, (0.1,), (0.05, 0.1, 0.2), (0.05, 0.1, 0.2, 0.4))
    attack_start = pick(scale, 10, 30, 50)
    cycles = pick(scale, 40, 90, 150)
    every = 2

    results = []
    for share in shares:
        malicious = max(1, round(nodes * share))
        series_by_mode = {}
        for mode, attacker_cls in (
            ("stealth", StealthBiasAttacker),
            ("hub", None),  # scenario default = SecureHubAttacker
        ):
            kwargs = dict(
                n=nodes,
                config=SecureCyclonConfig(
                    view_length=view_length, swap_length=3
                ),
                malicious=malicious,
                attack_start=attack_start,
                seed=seed,
            )
            if attacker_cls is not None:
                kwargs["attacker_cls"] = attacker_cls
            overlay = build_secure_overlay(**kwargs)
            series = run_with_probes(
                overlay,
                cycles,
                {"malicious_links": malicious_link_fraction},
                every=every,
            )["malicious_links"]
            series.label = mode
            series_by_mode[mode] = series
        results.append(
            StealthResult(
                label=(
                    f"nodes:{nodes}, view:{view_length}, "
                    f"malicious:{malicious} ({share:.0%})"
                ),
                nodes=nodes,
                view_length=view_length,
                malicious=malicious,
                attack_start=attack_start,
                stealth_series=series_by_mode["stealth"],
                hub_series=series_by_mode["hub"],
            )
        )
    return results


def render(results: List[StealthResult]) -> str:
    """Results file: per-share series, summary table, charts."""
    blocks = []
    for result in results:
        blocks.append(
            series_table(
                f"Stealth bias vs violating hub attack — links to "
                f"malicious nodes (%) ({result.label}, attack at cycle "
                f"{result.attack_start})",
                [result.stealth_series, result.hub_series],
            )
        )
        blocks.append(
            chart_panel(
                f"[chart] {result.label}",
                [result.stealth_series, result.hub_series],
                x_label="time (cycles)",
                y_label="mal %",
                y_max=100.0,
            )
        )
    blocks.append(
        format_table(
            [
                "malicious share",
                "stealth peak (%)",
                "stealth settled (%)",
                "hub settled (%)",
            ],
            [
                (
                    f"{result.malicious / result.nodes:.0%}",
                    result.stealth_peak * 100,
                    result.stealth_settled * 100,
                    result.hub_settled * 100,
                )
                for result in results
            ],
        )
    )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry point
    print(render(run_stealth()))


if __name__ == "__main__":  # pragma: no cover
    main()
