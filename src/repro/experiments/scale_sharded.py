"""``scale_sharded`` — throughput and determinism of the sharded engine.

Two questions, one table:

* **Throughput** — free-running mode: N worker processes each drive
  their partition with intra-shard messages on the in-process
  transport and every cross-shard dialogue leg and push framed through
  ``encode_frames`` over sockets.  The per-cycle wall time is directly
  comparable to the ``scale`` experiment's single-process rows (same
  overlay shape, same seed); ``BENCH_core.json`` records it next to
  them.

* **Determinism** — deterministic mode: the same shape runs once
  in-process and once sharded, and the final per-node views must match
  **bit-for-bit** (the contract ``tests/sim/test_shard_equivalence.py``
  enforces against the committed figure goldens; the row here is the
  cheap always-on sanity check of the same property at scale).

Single-core caveat: on a 1-CPU host (this repo's reference container)
free-running sharding cannot win by parallelism — what the headline
row shows instead is that a *distributed* deployment, paying real
serialisation on every cross-shard message, still beats the
single-process all-wire configuration, because consistent hashing
keeps most traffic on the in-process fast path.  See docs/SHARDING.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.experiments.scale import Scale, pick, resolve_scale


@dataclass(frozen=True)
class ShardedScaleRow:
    """One (shape, shard count, mode) measurement."""

    nodes: int
    cycles: int
    shards: int
    mode: str
    build_seconds: float
    run_seconds: float
    per_cycle_ms: float
    cycles_per_second: float
    mean_view_fill: float
    dialogues_opened: int
    deterministic_match: Optional[bool] = None


@dataclass(frozen=True)
class ShardedScaleReport:
    """Outcome of one :func:`run_scale_sharded` sweep."""

    scale: str
    seed: int
    rows: Tuple[ShardedScaleRow, ...]

    def render(self) -> str:
        lines = [
            f"sharded scale [{self.scale}] seed {self.seed}",
            f"{'nodes':>7}  {'cycles':>6}  {'shards':>6}  {'mode':>13}  "
            f"{'build s':>8}  {'run s':>8}  {'ms/cycle':>9}  "
            f"{'cycles/s':>8}  {'view fill':>9}  {'bit-exact':>9}",
        ]
        for row in self.rows:
            match = (
                "-"
                if row.deterministic_match is None
                else ("yes" if row.deterministic_match else "NO")
            )
            lines.append(
                f"{row.nodes:>7}  {row.cycles:>6}  {row.shards:>6}  "
                f"{row.mode:>13}  {row.build_seconds:>8.2f}  "
                f"{row.run_seconds:>8.2f}  {row.per_cycle_ms:>9.1f}  "
                f"{row.cycles_per_second:>8.2f}  "
                f"{row.mean_view_fill:>9.3f}  {match:>9}"
            )
        return "\n".join(lines)


def _build_overlay(nodes: int, seed: int):
    from repro.core.config import SecureCyclonConfig
    from repro.experiments.scenarios import build_secure_overlay
    from repro.sim.engine import SimConfig

    return build_secure_overlay(
        n=nodes,
        # Batched verification, same as the `scale` experiment's
        # headline rows: the per-shard digest memo answers repeat
        # sightings of wire-decoded cross-shard chains with one probe.
        config=SecureCyclonConfig(
            view_length=20, swap_length=3, verification="batched"
        ),
        seed=seed,
        sim_config=SimConfig(seed=seed, trace=False),
    )


def _view_fingerprint(engine) -> dict:
    return {
        node_id: tuple(
            (entry.creator, entry.timestamp, entry.non_swappable)
            for entry in node.view
        )
        for node_id, node in engine.nodes.items()
    }


def measure_sharded(
    nodes: int,
    cycles: int,
    shards: int,
    mode: str = "free",
    seed: int = 42,
    deadline_s: float = 600.0,
    check_determinism: bool = False,
) -> ShardedScaleRow:
    """Build one overlay and run it across ``shards`` worker processes.

    With ``check_determinism`` (deterministic mode only) a second,
    identically-seeded overlay runs in-process and the final views are
    compared bit-for-bit.
    """
    from repro.metrics.links import view_fill_fraction
    from repro.sim.shardcoord import ShardedSession

    import gc
    import time

    # Same collection barrier as measure_paper_scale: the previous
    # measurement's garbage must not bill this one.
    gc.collect()
    build_started = time.perf_counter()
    overlay = _build_overlay(nodes, seed)
    build_seconds = time.perf_counter() - build_started

    session = ShardedSession(
        overlay, shards, mode=mode, deadline_s=deadline_s
    )
    session.start()
    run_started = time.perf_counter()
    session.run_cycles(cycles)
    counters = session.finish()
    run_seconds = time.perf_counter() - run_started

    deterministic_match: Optional[bool] = None
    if check_determinism and mode == "deterministic":
        reference = _build_overlay(nodes, seed)
        reference.run(cycles)
        deterministic_match = _view_fingerprint(
            overlay.engine
        ) == _view_fingerprint(reference.engine)

    return ShardedScaleRow(
        nodes=nodes,
        cycles=cycles,
        shards=shards,
        mode=mode,
        build_seconds=round(build_seconds, 3),
        run_seconds=round(run_seconds, 3),
        per_cycle_ms=round(run_seconds / cycles * 1e3, 2),
        cycles_per_second=round(cycles / run_seconds, 3),
        mean_view_fill=round(view_fill_fraction(overlay.engine), 4),
        dialogues_opened=counters["dialogues_opened"],
        deterministic_match=deterministic_match,
    )


def run_scale_sharded(
    scale: Optional[Scale] = None, seed: int = 42
) -> ShardedScaleReport:
    """Sharded-engine scale benchmark: free-running throughput rows
    plus one deterministic bit-exactness sanity row per preset."""
    scale = resolve_scale(scale)
    free_shapes = pick(
        scale,
        [(60, 5, 2)],
        [(1000, 50, 2), (1000, 50, 4)],
        [(1000, 50, 2), (1000, 50, 4), (10000, 3, 2)],
    )
    det_shape = pick(scale, (40, 4, 2), (200, 10, 2), (200, 10, 4))

    rows = []
    for nodes, cycles, shards in free_shapes:
        rows.append(
            measure_sharded(nodes, cycles, shards, mode="free", seed=seed)
        )
    nodes, cycles, shards = det_shape
    rows.append(
        measure_sharded(
            nodes,
            cycles,
            shards,
            mode="deterministic",
            seed=seed,
            check_determinism=True,
        )
    )
    return ShardedScaleReport(scale=scale.value, seed=seed, rows=tuple(rows))


def render(report: ShardedScaleReport) -> str:
    return report.render()


def main() -> None:  # pragma: no cover - CLI entry point
    print(render(run_scale_sharded()))


if __name__ == "__main__":  # pragma: no cover
    main()
