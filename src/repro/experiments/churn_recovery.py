"""Extension experiment — self-healing under churn (§I, §V-A).

The paper's evaluation runs static memberships, but both protocols'
raison d'être is surviving churn: Cyclon's random-graph overlays
"remain connected even in the face of high node churn or catastrophic
failures" (§I), and all of §V-A exists to repair views after losses.
This experiment exercises exactly that, for legacy Cyclon and
SecureCyclon side by side:

* **catastrophic failure** — a fraction of all nodes crashes in one
  cycle; we track connectivity and view fill as the survivors heal;
* **continuous churn** — Bernoulli joins and leaves every cycle
  (joiners use the §V-A non-swappable bootstrap), measuring the
  steady-state health of a perpetually changing membership.

Expected shape: the largest component never fragments (random-graph
robustness), view fill dips by roughly the crash fraction and recovers
within a few view-lengths' worth of cycles, and SecureCyclon matches
legacy Cyclon's healing speed — the security layer does not tax
self-healing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.bootstrap import bootstrap_joiner
from repro.core.config import SecureCyclonConfig
from repro.core.node import SecureCyclonNode
from repro.cyclon.config import CyclonConfig
from repro.experiments.plotting import chart_panel
from repro.experiments.report import format_table, series_table
from repro.experiments.runner import run_with_probes
from repro.experiments.scale import Scale, pick, resolve_scale
from repro.experiments.scenarios import (
    Overlay,
    build_cyclon_overlay,
    build_secure_overlay,
)
from repro.metrics.graphstats import largest_component_fraction
from repro.metrics.links import non_swappable_fraction, view_fill_fraction
from repro.metrics.series import Series


@dataclass
class CrashPanel:
    """One protocol × crash-fraction run."""

    protocol: str
    crash_fraction: float
    crash_cycle: int
    fill_series: Series
    component_series: Series

    @property
    def recovery_cycles(self) -> float:
        """Cycles from the crash until view fill is back above 95 %."""
        for cycle, value in self.fill_series.points:
            if cycle > self.crash_cycle and value >= 0.95:
                return float(cycle - self.crash_cycle)
        return float("inf")

    @property
    def min_component(self) -> float:
        """Worst-case largest-component fraction after the crash."""
        return min(
            value
            for cycle, value in self.component_series.points
            if cycle >= self.crash_cycle
        )


@dataclass
class ChurnPanel:
    """Continuous-churn steady state for one protocol."""

    protocol: str
    join_rate: float
    leave_rate: float
    final_fill: float
    final_component: float
    final_non_swappable: float
    population_delta: int


@dataclass
class ChurnRecoveryResult:
    """Everything the render needs."""

    nodes: int
    view_length: int
    crash_panels: List[CrashPanel]
    churn_panels: List[ChurnPanel]


def _secure_config(view_length: int) -> SecureCyclonConfig:
    return SecureCyclonConfig(view_length=view_length, swap_length=3)


def _cyclon_config(view_length: int) -> CyclonConfig:
    return CyclonConfig(view_length=view_length, swap_length=3)


def _build(protocol: str, n: int, view_length: int, seed: int) -> Overlay:
    if protocol == "secure":
        return build_secure_overlay(
            n=n, config=_secure_config(view_length), seed=seed
        )
    return build_cyclon_overlay(
        n=n, config=_cyclon_config(view_length), seed=seed
    )


def _crash_run(
    protocol: str,
    nodes: int,
    view_length: int,
    crash_fraction: float,
    warmup: int,
    aftermath: int,
    seed: int,
) -> CrashPanel:
    overlay = _build(protocol, nodes, view_length, seed)
    overlay.run(warmup)

    victims = overlay.engine.alive_ids()
    crash_count = round(len(victims) * crash_fraction)
    rng = overlay.engine.rng_hub.stream("crash-selection")
    for victim in rng.sample(victims, crash_count):
        overlay.engine.remove_node(victim)

    series = run_with_probes(
        overlay,
        aftermath,
        {
            "fill": view_fill_fraction,
            "component": lambda engine: largest_component_fraction(
                engine, legit_only=False
            ),
        },
        every=1,
    )
    fill = series["fill"]
    fill.label = f"{protocol} fill"
    component = series["component"]
    component.label = f"{protocol} component"
    return CrashPanel(
        protocol=protocol,
        crash_fraction=crash_fraction,
        crash_cycle=warmup,
        fill_series=fill,
        component_series=component,
    )


def _join_one(overlay: Overlay, name: str, view_length: int) -> None:
    engine = overlay.engine
    keypair = engine.registry.new_keypair(engine.rng_hub.stream(f"kp-{name}"))
    node = SecureCyclonNode(
        keypair=keypair,
        address=engine.network.reserve_address(keypair.public),
        config=_secure_config(view_length),
        clock=engine.clock,
        registry=engine.registry,
        rng=engine.rng_hub.stream(f"rng-{name}"),
        trace=engine.trace,
    )
    node.bind_network(engine.network)
    bootstrap_joiner(
        node,
        engine.legit_nodes(),
        links=max(3, view_length // 4),
        rng=engine.rng_hub.stream(f"boot-{name}"),
    )
    engine.add_node(node)


def _churn_run(
    nodes: int,
    view_length: int,
    join_rate: float,
    leave_rate: float,
    cycles: int,
    seed: int,
) -> ChurnPanel:
    """Continuous churn on SecureCyclon with §V-A joins.

    Joins/leaves are driven between engine cycles so the run keeps the
    deterministic engine untouched; rates are events per cycle.
    """
    overlay = build_secure_overlay(
        n=nodes, config=_secure_config(view_length), seed=seed
    )
    overlay.run(10)  # converge first
    rng = overlay.engine.rng_hub.stream("churn-driver")
    joined = 0
    left = 0
    for cycle in range(cycles):
        if rng.random() < join_rate:
            _join_one(overlay, f"joiner-{cycle}", view_length)
            joined += 1
        if rng.random() < leave_rate:
            alive = overlay.engine.alive_ids()
            if len(alive) > nodes // 2:
                overlay.engine.remove_node(rng.choice(alive))
                left += 1
        overlay.run(1)
    return ChurnPanel(
        protocol="secure",
        join_rate=join_rate,
        leave_rate=leave_rate,
        final_fill=view_fill_fraction(overlay.engine),
        final_component=largest_component_fraction(
            overlay.engine, legit_only=False
        ),
        final_non_swappable=non_swappable_fraction(overlay.engine),
        population_delta=joined - left,
    )


def run_churn_recovery(
    scale: Optional[Scale] = None, seed: int = 42
) -> ChurnRecoveryResult:
    """Run the crash panels and the continuous-churn panel."""
    scale = resolve_scale(scale)
    nodes, view_length = pick(scale, (100, 10), (250, 15), (1000, 20))
    crash_fractions = pick(scale, (0.3,), (0.1, 0.3, 0.5), (0.1, 0.3, 0.5, 0.7))
    warmup = pick(scale, 10, 20, 50)
    aftermath = pick(scale, 30, 50, 100)
    churn_cycles = pick(scale, 30, 60, 150)

    crash_panels = []
    for crash_fraction in crash_fractions:
        for protocol in ("cyclon", "secure"):
            crash_panels.append(
                _crash_run(
                    protocol,
                    nodes,
                    view_length,
                    crash_fraction,
                    warmup,
                    aftermath,
                    seed,
                )
            )

    churn_rates = pick(
        scale, ((0.5, 0.5),), ((0.5, 0.5), (1.0, 1.0)), ((0.5, 0.5), (1.0, 1.0))
    )
    churn_panels = [
        _churn_run(nodes, view_length, join_rate, leave_rate, churn_cycles, seed)
        for join_rate, leave_rate in churn_rates
    ]
    return ChurnRecoveryResult(
        nodes=nodes,
        view_length=view_length,
        crash_panels=crash_panels,
        churn_panels=churn_panels,
    )


def render(result: ChurnRecoveryResult) -> str:
    """Results file: recovery table, fill charts, churn steady state."""
    blocks = [
        "Churn recovery — catastrophic failure "
        f"(nodes:{result.nodes}, view:{result.view_length})\n"
        + format_table(
            [
                "protocol",
                "crash fraction",
                "recovery (cycles to 95% fill)",
                "min component after crash",
            ],
            [
                (
                    panel.protocol,
                    f"{panel.crash_fraction:.0%}",
                    panel.recovery_cycles,
                    panel.min_component,
                )
                for panel in result.crash_panels
            ],
        )
    ]
    worst = max(
        result.crash_panels, key=lambda panel: panel.crash_fraction
    ).crash_fraction
    worst_panels = [
        panel
        for panel in result.crash_panels
        if panel.crash_fraction == worst
    ]
    blocks.append(
        chart_panel(
            f"[chart] view fill after a {worst:.0%} crash",
            [panel.fill_series for panel in worst_panels],
            x_label="time (cycles)",
            y_label="fill %",
            y_max=100.0,
        )
    )
    blocks.append(
        "Continuous churn — SecureCyclon steady state (§V-A joins)\n"
        + format_table(
            [
                "join rate",
                "leave rate",
                "final fill",
                "final component",
                "non-swappable",
                "population delta",
            ],
            [
                (
                    panel.join_rate,
                    panel.leave_rate,
                    panel.final_fill,
                    panel.final_component,
                    panel.final_non_swappable,
                    panel.population_delta,
                )
                for panel in result.churn_panels
            ],
        )
    )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry point
    print(render(run_churn_recovery()))


if __name__ == "__main__":  # pragma: no cover
    main()
