"""Seed sweeps: the same experiment across independent runs.

Every figure harness is deterministic per seed; this module runs a
scenario across several seeds and aggregates, giving the error-bar
view the paper's single-run plots omit.  Used by the seed-sensitivity
bench and available from the public API for any custom study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.metrics.series import Series, mean


@dataclass
class ScalarSweep:
    """Aggregate of one scalar outcome across seeds."""

    name: str
    values: List[float]

    @property
    def mean(self) -> float:
        return mean(self.values)

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        center = self.mean
        return math.sqrt(
            sum((value - center) ** 2 for value in self.values)
            / (len(self.values) - 1)
        )

    @property
    def min(self) -> float:
        return min(self.values)

    @property
    def max(self) -> float:
        return max(self.values)

    def row(self) -> tuple:
        """(name, mean, std, min, max) — one table row."""
        return (self.name, self.mean, self.std, self.min, self.max)


def sweep_scalars(
    run: Callable[[int], Dict[str, float]], seeds: Sequence[int]
) -> List[ScalarSweep]:
    """Run ``run(seed)`` per seed; aggregate its named scalar outputs.

    Every run must return the same set of keys.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    collected: Dict[str, List[float]] = {}
    expected_keys = None
    for seed in seeds:
        outcome = run(seed)
        if expected_keys is None:
            expected_keys = set(outcome)
        elif set(outcome) != expected_keys:
            raise ValueError(
                f"seed {seed} returned keys {sorted(outcome)}, expected "
                f"{sorted(expected_keys)}"
            )
        for name, value in outcome.items():
            collected.setdefault(name, []).append(float(value))
    return [
        ScalarSweep(name=name, values=values)
        for name, values in sorted(collected.items())
    ]


def aggregate_series(
    runs: Sequence[Series], label: str = "mean"
) -> Dict[str, Series]:
    """Pointwise mean/min/max envelope over same-shaped series.

    All runs must sample the same x values (true for fixed-``every``
    probes).  Returns ``{"mean": ..., "min": ..., "max": ...}``.
    """
    if not runs:
        raise ValueError("need at least one series")
    xs = runs[0].xs
    for series in runs[1:]:
        if series.xs != xs:
            raise ValueError("series sample different x values")
    out = {
        "mean": Series(label=label),
        "min": Series(label=f"{label} (min)"),
        "max": Series(label=f"{label} (max)"),
    }
    for index, x in enumerate(xs):
        column = [series.ys[index] for series in runs]
        out["mean"].append(x, mean(column))
        out["min"].append(x, min(column))
        out["max"].append(x, max(column))
    return out
