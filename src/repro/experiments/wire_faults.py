"""Extension experiment — wire faults vs graceful degradation.

The paper's attack model (§II-C) lets a Byzantine peer put arbitrary
bytes on the wire, but its defence machinery (violation proofs,
blacklisting — §III/§IV) only bites on *valid* messages with hostile
semantics: garbage frames carry nothing a proof could name.  This
experiment measures the complementary defence plane added for exactly
that gap — receive boundaries that degrade undecodable frames to drops
(:class:`~repro.sim.channel.MessageUndecodable`), a per-peer health
ledger (:mod:`repro.sim.peerhealth`) that scores decode failures and
quarantines persistently-faulty senders, and a decoder size ceiling
(:data:`~repro.core.codec.MAX_FRAME_BYTES`) that rejects volumetric
frames with one length check.

Modes (wire transport, cycle runtime, health ledger installed):

* ``baseline``      — no attackers: the floor every defence must not
                      disturb (and the amplification meter reads 0);
* ``malformed-25/50/100`` — a rising-severity sweep of
                      :class:`~repro.adversary.wire.MalformedFrameAttacker`:
                      10% of nodes bit-flip 25%/50%/100% of their
                      outgoing frames;
* ``truncate``      — frames cut short at a random byte boundary;
* ``replay``        — frames replaced with stale previously-seen ones:
                      these *decode*, so the codec plane stays quiet
                      and the protocol's redemption discipline does the
                      rejecting;
* ``inflate``       — frames padded past the decoder's ceiling: the
                      pure-volume attack the amplification budget is
                      about.

Expected shape: honest view fill survives every mode (the engine never
crashes — a malformed frame costs its *sender* a dialogue, not the
receiver a cycle), quarantine engages within a few cycles of attack
start for every byte-mangling mode, and the DoS-amplification column —
honest bytes paid per adversary byte sent — stays bounded and *falls*
as severity rises, because heavier fault rates just get attackers
quarantined faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.adversary.wire import (
    FrameInflationAttacker,
    FrameReplayAttacker,
    MalformedFrameAttacker,
    TruncationAttacker,
)
from repro.core.config import SecureCyclonConfig
from repro.experiments.plotting import chart_panel
from repro.experiments.report import format_table, series_table
from repro.experiments.runner import run_with_probes
from repro.experiments.scale import Scale, pick, resolve_scale
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.links import view_fill_fraction
from repro.metrics.series import Series
from repro.sim.engine import SimConfig
from repro.sim.peerhealth import OFFENCE_OVERSIZE, HealthPolicy


@dataclass
class WireFaultRow:
    """One fault mode's outcome."""

    label: str
    view_fill_final: float
    view_fill_min: float  # post-attack minimum across honest probes
    undecodable: int
    oversize: int
    quarantined_attackers: float  # fraction of attackers ever quarantined
    first_quarantine: Optional[int]  # cycle, None if never engaged
    refusals: int  # dialogues/pushes refused on quarantined links
    amplification: float  # honest bytes paid per adversary byte sent


@dataclass
class WireFaultsResult:
    """The full sweep: summary rows plus honest view-fill series."""

    nodes: int
    cycles: int
    attack_start: int
    malicious: int
    rows: List[WireFaultRow]
    fill_series: List[Series]


#: label -> (attacker class or None for the attacker-free baseline,
#: per-frame fault severity).
_MODES: List[Tuple[str, Optional[Type], float]] = [
    ("baseline", None, 0.0),
    ("malformed-25", MalformedFrameAttacker, 0.25),
    ("malformed-50", MalformedFrameAttacker, 0.50),
    ("malformed-100", MalformedFrameAttacker, 1.00),
    ("truncate", TruncationAttacker, 1.00),
    ("replay", FrameReplayAttacker, 1.00),
    ("inflate", FrameInflationAttacker, 1.00),
]


def run_wire_faults(
    scale: Optional[Scale] = None, seed: int = 42
) -> WireFaultsResult:
    """Run the wire-fault sweep at the given scale."""
    scale = resolve_scale(scale)
    nodes, view_length = pick(scale, (60, 8), (300, 20), (1000, 20))
    cycles = pick(scale, 12, 40, 50)
    attack_start = pick(scale, 3, 10, 10)
    malicious = max(2, nodes // 10)
    every = 2

    rows: List[WireFaultRow] = []
    fill_series: List[Series] = []
    for label, attacker_cls, severity in _MODES:
        config = SecureCyclonConfig(
            view_length=view_length, swap_length=3, transport="wire"
        )
        mode_malicious = malicious if attacker_cls is not None else 0
        attacker_kwargs: Dict[str, Any] = (
            {"severity": severity} if attacker_cls is not None else {}
        )
        overlay = build_secure_overlay(
            n=nodes,
            config=config,
            malicious=mode_malicious,
            attack_start=attack_start,
            seed=seed,
            **(
                {"attacker_cls": attacker_cls} if attacker_cls is not None else {}
            ),
            attacker_kwargs=attacker_kwargs,
            sim_config=SimConfig(
                seed=seed, peer_health=HealthPolicy(), transport="wire"
            ),
        )
        engine = overlay.engine
        ledger = engine.network.peer_health
        ledger.bind_adversary(engine.malicious_ids)
        result = run_with_probes(
            overlay, cycles, {"view_fill": view_fill_fraction}, every=every
        )
        series = result["view_fill"]
        series.label = label
        fill_series.append(series)
        post_attack = [
            y for x, y in zip(series.xs, series.ys) if x >= attack_start
        ]
        attacker_ids = engine.malicious_ids
        ever_quarantined = set(ledger.quarantined_at) & attacker_ids
        rows.append(
            WireFaultRow(
                label=label,
                view_fill_final=series.ys[-1] if series.ys else 0.0,
                view_fill_min=min(post_attack) if post_attack else 0.0,
                undecodable=engine.network.undecodable_frames,
                oversize=ledger.offence_total(OFFENCE_OVERSIZE),
                quarantined_attackers=(
                    len(ever_quarantined) / len(attacker_ids)
                    if attacker_ids
                    else 0.0
                ),
                first_quarantine=(
                    min(ledger.quarantined_at.values())
                    if ledger.quarantined_at
                    else None
                ),
                refusals=engine.network.quarantine_refusals,
                amplification=ledger.amplification(),
            )
        )
    return WireFaultsResult(
        nodes=nodes,
        cycles=cycles,
        attack_start=attack_start,
        malicious=malicious,
        rows=rows,
        fill_series=fill_series,
    )


def render(result: WireFaultsResult) -> str:
    """Summary table plus the honest view-fill series and chart."""
    blocks = [
        format_table(
            [
                "mode",
                "final view fill",
                "min fill post-attack (%)",
                "undecodable frames",
                "oversize",
                "attackers quarantined",
                "first quarantine (cycle)",
                "refused links",
                "DoS amplification (x)",
            ],
            [
                (
                    row.label,
                    row.view_fill_final,
                    100.0 * row.view_fill_min,
                    row.undecodable,
                    row.oversize,
                    row.quarantined_attackers,
                    (
                        row.first_quarantine
                        if row.first_quarantine is not None
                        else "-"
                    ),
                    row.refusals,
                    row.amplification,
                )
                for row in result.rows
            ],
        )
    ]
    blocks.append(
        series_table(
            f"Honest view fill under wire faults (wire transport, "
            f"{result.nodes} nodes, {result.malicious} attackers from "
            f"cycle {result.attack_start}, health ledger on)",
            result.fill_series,
        )
    )
    blocks.append(
        chart_panel(
            "[chart] honest view fill vs cycle",
            result.fill_series,
            x_label="time (cycles)",
            y_label="fill",
        )
    )
    header = (
        "Wire faults — malformed, truncated, replayed, and inflated "
        "frames vs per-peer health quarantine\n"
        f"({result.nodes} nodes, {result.cycles} cycles, wire transport; "
        "undecodable frames degrade to drops, persistent offenders are "
        "quarantined, and the DoS column prices honest bytes paid per "
        "adversary byte sent)\n"
    )
    return header + "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry point
    print(render(run_wire_faults()))


if __name__ == "__main__":  # pragma: no cover
    main()
