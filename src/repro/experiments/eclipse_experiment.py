"""Extension experiment — targeted eclipse pressure (paper §III-B/C).

Not a paper figure: the paper *discusses* eclipse attacks and their
orthogonality to hub attacks (§III-C) but does not evaluate a targeted
campaign.  This experiment closes that gap: a malicious party aims all
of its admission tickets at one victim and we measure how much of the
victim's view it manages to own over time, per swap length, and how
fast the clone-based pressure gets the party blacklisted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.adversary.eclipse import EclipseAttacker, eclipse_pressure
from repro.core.config import SecureCyclonConfig
from repro.experiments.plotting import chart_panel
from repro.experiments.report import format_table, series_table
from repro.experiments.runner import run_with_probes
from repro.experiments.scale import Scale, pick, resolve_scale
from repro.experiments.scenarios import build_secure_overlay
from repro.metrics.links import blacklisted_malicious_fraction
from repro.metrics.series import Series


@dataclass
class EclipseResult:
    """One campaign: pressure series plus summary numbers."""

    label: str
    swap_length: int
    series: Series
    peak_pressure: float
    final_pressure: float
    ever_fully_eclipsed: bool
    blacklist_progress: float


def run_eclipse(
    scale: Optional[Scale] = None, seed: int = 42
) -> List[EclipseResult]:
    """Run the targeted-eclipse campaign at the given scale."""
    scale = resolve_scale(scale)
    nodes, view_length, malicious = pick(
        scale, (100, 10, 10), (250, 15, 25), (1000, 20, 100)
    )
    swap_lengths = pick(scale, (3,), (3, 5, 10), (3, 5, 8, 10))
    attack_start = pick(scale, 10, 15, 50)
    cycles = pick(scale, 40, 80, 150)

    results = []
    for swap_length in swap_lengths:
        overlay = build_secure_overlay(
            n=nodes,
            config=SecureCyclonConfig(
                view_length=view_length, swap_length=swap_length
            ),
            malicious=malicious,
            attack_start=attack_start,
            seed=seed,
            attacker_cls=EclipseAttacker,
        )
        # Target: the first legitimate node (stable under the seed).
        target = sorted(overlay.engine.legit_ids)[0]
        overlay.coordinator.eclipse_target = target

        probes = {
            "pressure": lambda engine, t=target: eclipse_pressure(engine, t)
        }
        series = run_with_probes(overlay, cycles, probes, every=1)["pressure"]
        series.label = f"swap length {swap_length}"
        results.append(
            EclipseResult(
                label=(
                    f"nodes:{nodes}, view:{view_length}, "
                    f"attackers:{malicious}"
                ),
                swap_length=swap_length,
                series=series,
                peak_pressure=series.max_y(),
                final_pressure=series.final_y(),
                ever_fully_eclipsed=any(y >= 1.0 for y in series.ys),
                blacklist_progress=blacklisted_malicious_fraction(
                    overlay.engine
                ),
            )
        )
    return results


def render(results: List[EclipseResult]) -> str:
    blocks = [
        series_table(
            f"Eclipse campaign — attacker share of the target's view (%) "
            f"({results[0].label})",
            [result.series for result in results],
        ),
        format_table(
            [
                "swap length",
                "peak pressure (%)",
                "final (%)",
                "fully eclipsed",
                "attackers blacklisted (%)",
            ],
            [
                (
                    result.swap_length,
                    result.peak_pressure * 100,
                    result.final_pressure * 100,
                    "yes" if result.ever_fully_eclipsed else "no",
                    result.blacklist_progress * 100,
                )
                for result in results
            ],
        ),
        chart_panel(
            f"[chart] {results[0].label}",
            [result.series for result in results],
            x_label="time (cycles)",
            y_label="view %",
            y_max=100.0,
        ),
    ]
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry point
    print(render(run_eclipse()))


if __name__ == "__main__":  # pragma: no cover
    main()
