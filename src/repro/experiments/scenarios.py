"""Scenario builders: assemble a populated, bootstrapped engine.

These are the only places that wire together the simulator, the
protocols, the adversary and the bootstrap — experiments and tests
build on top of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Type, Union

from repro.adversary.coordinator import MaliciousCoordinator
from repro.adversary.hub import CyclonHubAttacker, SecureHubAttacker
from repro.bootstrap import bootstrap_cyclon, bootstrap_secure
from repro.core.config import SecureCyclonConfig
from repro.core.node import SecureCyclonNode
from repro.cyclon.config import CyclonConfig
from repro.cyclon.node import CyclonNode
from repro.sim.clock import DriftedClock, DriftPlan
from repro.sim.engine import Engine, SimConfig
from repro.sim.scheduler import EventScheduler, Scheduler, make_scheduler
from repro.sim.transport import FaultInjector

#: What the ``runtime=`` knob accepts: a runtime name ("cycle"/"event")
#: or a pre-configured :class:`~repro.sim.scheduler.Scheduler`.
Runtime = Union[str, Scheduler]


@dataclass
class Overlay:
    """A built scenario: the engine plus adversary bookkeeping."""

    engine: Engine
    coordinator: Optional[MaliciousCoordinator] = None
    malicious_nodes: List[Any] = field(default_factory=list)

    @property
    def nodes(self) -> Dict[Any, Any]:
        return self.engine.nodes

    def run(self, cycles: int) -> None:
        from repro.sim import shardcoord

        if shardcoord.active_context() is not None:
            shardcoord.run_overlay_sharded(self, cycles)
            return
        self.engine.run(cycles)


def _sim_config_with_transport(
    sim_config: Optional[SimConfig], protocol_config: Any, seed: int
) -> SimConfig:
    """Merge the protocol config's ``transport=`` knob into the sim config.

    An explicit ``SimConfig.transport`` wins; otherwise the protocol
    config decides (which itself falls back to the ``REPRO_TRANSPORT``
    environment variable, then to object passing) — so one knob on
    either config flips the whole overlay, and the env override flips
    whole harnesses.
    """
    sim_config = sim_config or SimConfig(seed=seed)
    if sim_config.transport is None:
        sim_config = replace(
            sim_config, transport=protocol_config.effective_transport()
        )
    return sim_config


def _choose_malicious(node_ids: List[Any], count: int, rng) -> set:
    if count <= 0:
        return set()
    if count > len(node_ids):
        raise ValueError(
            f"cannot make {count} of {len(node_ids)} nodes malicious"
        )
    return set(rng.sample(node_ids, count))


def build_cyclon_overlay(
    n: int,
    config: Optional[CyclonConfig] = None,
    malicious: int = 0,
    attack_start: int = 0,
    seed: int = 42,
    attacker_cls: Type[CyclonHubAttacker] = CyclonHubAttacker,
    sim_config: Optional[SimConfig] = None,
    runtime: Runtime = "cycle",
) -> Overlay:
    """A bootstrapped legacy-Cyclon overlay, optionally with attackers."""
    config = config or CyclonConfig()
    engine = Engine(
        _sim_config_with_transport(sim_config, config, seed),
        scheduler=make_scheduler(runtime),
    )
    coordinator = MaliciousCoordinator(
        attack_start_cycle=attack_start,
        rng=engine.rng_hub.stream("adversary"),
    )

    key_rng = engine.rng_hub.stream("keys")
    keypairs = [engine.registry.new_keypair(key_rng) for _ in range(n)]
    node_ids = [keypair.public for keypair in keypairs]
    malicious_ids = _choose_malicious(
        node_ids, malicious, engine.rng_hub.stream("malicious-choice")
    )

    malicious_nodes = []
    for index, keypair in enumerate(keypairs):
        node_id = keypair.public
        address = engine.network.reserve_address(node_id)
        rng = engine.rng_hub.stream(f"node-{index}")
        if node_id in malicious_ids:
            node = attacker_cls(
                node_id,
                address,
                config,
                rng,
                trace=engine.trace,
                coordinator=coordinator,
            )
            coordinator.register_member(keypair, address)
            malicious_nodes.append(node)
        else:
            node = CyclonNode(node_id, address, config, rng, trace=engine.trace)
        engine.add_node(node)

    coordinator.note_legit_population(
        [node_id for node_id in node_ids if node_id not in malicious_ids]
    )
    bootstrap_cyclon(
        engine.nodes, config.view_length, engine.rng_hub.stream("bootstrap")
    )
    return Overlay(
        engine=engine, coordinator=coordinator, malicious_nodes=malicious_nodes
    )


def build_secure_overlay(
    n: int,
    config: Optional[SecureCyclonConfig] = None,
    malicious: int = 0,
    attack_start: int = 0,
    seed: int = 42,
    attacker_cls: Type[SecureCyclonNode] = SecureHubAttacker,
    attacker_kwargs: Optional[Dict[str, Any]] = None,
    sim_config: Optional[SimConfig] = None,
    runtime: Runtime = "cycle",
    drift: Optional[DriftPlan] = None,
) -> Overlay:
    """A bootstrapped SecureCyclon overlay, optionally with attackers.

    ``drift`` gives every node an independent
    :class:`~repro.sim.clock.ClockDrift` drawn from the plan; nodes
    then mint and verify timestamps through their own skewed clock.
    Attackers that carry a ``timing_strategy``
    (:class:`~repro.adversary.timing.TimingAttacker` subclasses) are
    automatically registered with the event scheduler's link timing —
    they require ``runtime`` to be an
    :class:`~repro.sim.scheduler.EventScheduler` to have any effect.
    Attackers that carry a ``fault_plan``
    (:class:`~repro.adversary.wire.WireFaultAttacker` subclasses) are
    likewise auto-registered with the network's
    :class:`~repro.sim.transport.FaultInjector` — byte-level faults
    require the wire transport to have any effect.
    """
    config = config or SecureCyclonConfig()
    scheduler = make_scheduler(runtime)
    engine = Engine(
        _sim_config_with_transport(sim_config, config, seed),
        scheduler=scheduler,
    )
    coordinator = MaliciousCoordinator(
        attack_start_cycle=attack_start,
        rng=engine.rng_hub.stream("adversary"),
    )
    attacker_kwargs = dict(attacker_kwargs or {})

    key_rng = engine.rng_hub.stream("keys")
    keypairs = [engine.registry.new_keypair(key_rng) for _ in range(n)]
    node_ids = [keypair.public for keypair in keypairs]
    malicious_ids = _choose_malicious(
        node_ids, malicious, engine.rng_hub.stream("malicious-choice")
    )
    drift_rng = (
        engine.rng_hub.stream("clock-drift") if drift is not None else None
    )

    malicious_nodes = []
    for index, keypair in enumerate(keypairs):
        node_id = keypair.public
        address = engine.network.reserve_address(node_id)
        rng = engine.rng_hub.stream(f"node-{index}")
        clock = engine.clock
        if drift_rng is not None:
            clock = DriftedClock(engine.clock, drift.draw(drift_rng))
        common = dict(
            keypair=keypair,
            address=address,
            config=config,
            clock=clock,
            registry=engine.registry,
            rng=rng,
            trace=engine.trace,
        )
        if node_id in malicious_ids:
            node = attacker_cls(
                coordinator=coordinator, **common, **attacker_kwargs
            )
            coordinator.register_member(keypair, address)
            malicious_nodes.append(node)
        else:
            node = SecureCyclonNode(**common)
        node.bind_network(engine.network)
        engine.add_node(node)

    if isinstance(scheduler, EventScheduler):
        for node in malicious_nodes:
            strategy = getattr(node, "timing_strategy", None)
            if strategy is not None:
                scheduler.register_timing_strategy(node.node_id, strategy)

    # Wire-fault attackers carry a FaultPlan; register each with the
    # network's fault injector (created lazily on first need, drawing
    # from its own dedicated RNG stream), gated on the attack schedule
    # so frames are only mangled while the attack is on.
    injector = None
    for node in malicious_nodes:
        plan = getattr(node, "fault_plan", None)
        if plan is None:
            continue
        if injector is None:
            injector = engine.network.fault_injector
            if injector is None:
                injector = FaultInjector(
                    rng=engine.rng_hub.stream("wire-faults")
                )
                engine.network.use_fault_injector(injector)
        injector.register_plan(node.node_id, plan, active=node._attacking)

    coordinator.note_legit_population(
        [node_id for node_id in node_ids if node_id not in malicious_ids]
    )
    bootstrap_secure(
        engine.nodes, config.view_length, engine.rng_hub.stream("bootstrap")
    )
    return Overlay(
        engine=engine, coordinator=coordinator, malicious_nodes=malicious_nodes
    )
