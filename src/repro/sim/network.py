"""The simulated routed network.

The paper's system model (§II-A) assumes a routed infrastructure where
any node can contact any other, provided it knows the target's network
address.  :class:`Network` models exactly that: a directory from node ID
to a live protocol object, dialogues via :class:`~repro.sim.channel.Channel`,
one-way pushes (used for proof flooding), and global traffic accounting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, Iterator, Optional

from repro.errors import (
    CodecError,
    FrameOversizeError,
    PeerQuarantined,
    PeerUnreachable,
)
from repro.sim.channel import BurstState, Channel, DropPolicy
from repro.sim.transport import DROPPED, ObjectTransport, Transport

#: Internal sentinel for a push frame the receive boundary swallowed
#: (undecodable or quarantined sender) — never handed to a node.
_SWALLOWED = object()


@dataclass(frozen=True, order=True)
class NetworkAddress:
    """An IPv4-address-and-port stand-in (32 + 16 bits on the wire)."""

    host: int
    port: int

    def __post_init__(self) -> None:
        if not 0 <= self.host < 2**32:
            raise ValueError("host must fit in 32 bits")
        if not 0 <= self.port < 2**16:
            raise ValueError("port must fit in 16 bits")

    @property
    def bits(self) -> int:
        """Wire size of an address in bits, per the paper's accounting."""
        return 32 + 16

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        octets = [(self.host >> shift) & 0xFF for shift in (24, 16, 8, 0)]
        return f"{'.'.join(map(str, octets))}:{self.port}"


class Network:
    """Directory of live nodes plus the channel factory between them."""

    def __init__(
        self,
        rng,
        drop_policy: Optional[DropPolicy] = None,
        sizer: Optional[Callable[[Any], int]] = None,
        transport: Optional[Transport] = None,
        fault_injector: Optional[Any] = None,
        health: Optional[Any] = None,
    ) -> None:
        self._rng = rng
        self._drop_policy = drop_policy or DropPolicy()
        # Burst state exists only when the policy asks for correlated
        # loss; channels and pushes then share it so drops cluster
        # network-wide.  ``None`` keeps the classic uncorrelated path.
        self._burst_state = (
            BurstState(self._drop_policy)
            if self._drop_policy.burst_length > 0
            else None
        )
        # Event-runtime hooks, both installed by the scheduler: a
        # LinkTiming that prices dialogue legs and enforces timeouts,
        # and an event transport that carries one-way pushes through
        # the event queue (delayed, possibly reordered) instead of
        # delivering them synchronously.
        self._timing = None
        self._event_transport = None
        # How payloads cross the wire (repro.sim.transport): object
        # passing by default; WireTransport re-frames every message
        # through the codec and switches accounting to measured bytes.
        self._msg_transport = transport or ObjectTransport()
        # Wire-plane robustness hooks, both optional and inert when
        # absent: a FaultInjector (repro.sim.transport) mutating frames
        # in flight, and a PeerHealthLedger (repro.sim.peerhealth)
        # scoring senders and quarantining persistently-faulty links.
        self._faults = fault_injector
        self._health = health
        self._sizer = sizer
        self._nodes: Dict[Any, Any] = {}
        self._addresses: Dict[Any, NetworkAddress] = {}
        self._next_host = 1
        self.dialogues_opened = 0
        self.pushes_sent = 0
        self.push_bytes = 0
        self.dialogue_bytes_forward = 0  # initiator -> partner
        self.dialogue_bytes_backward = 0  # partner -> initiator
        # Virtual seconds initiators spent waiting on round trips
        # (event runtime only) — the stall attack's damage surface.
        self.dialogue_seconds = 0.0
        # Receive-boundary degradation counters: frames that arrived
        # but failed to decode (converted to MessageDropped-family
        # outcomes, never crashes), and frames/dialogues refused
        # because a quarantined peer was on one end.
        self.undecodable_frames = 0
        self.quarantine_refusals = 0
        # One-way deliveries are queued and drained iteratively: a
        # receive_push handler that re-floods (proof dissemination is a
        # BFS over the overlay) must not recurse through the network,
        # or a large overlay overflows the interpreter stack.
        self._push_queue: "deque" = deque()
        self._draining = False
        # One-entry encode memo for pushes: a proof flood pushes the
        # *same* payload object to every neighbor back to back, and in
        # wire mode each push would otherwise re-serialise an identical
        # frame ~view_length times.  Keyed by object identity and the
        # live transport, so a swapped transport or a new payload can
        # never be served stale bytes.
        self._push_encode_memo: Optional[tuple] = None

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def reserve_address(self, node_id: Any) -> NetworkAddress:
        """Assign (or look up) the address for ``node_id``.

        Nodes need their address *before* they can mint descriptors of
        themselves, so address assignment is separate from attachment.
        """
        address = self._addresses.get(node_id)
        if address is None:
            address = NetworkAddress(host=self._next_host, port=9000)
            self._next_host += 1
            self._addresses[node_id] = address
        return address

    def attach(self, node_id: Any, node: Any) -> NetworkAddress:
        """Register ``node`` under ``node_id`` and assign it an address.

        Re-attaching a node that left earlier keeps its old address —
        real nodes keep their IP across restarts often enough that
        experiments should be able to model both.
        """
        self._nodes[node_id] = node
        return self.reserve_address(node_id)

    def detach(self, node_id: Any) -> None:
        """Remove ``node_id`` from the directory (node left or failed)."""
        self._nodes.pop(node_id, None)

    def is_alive(self, node_id: Any) -> bool:
        return node_id in self._nodes

    def node(self, node_id: Any) -> Any:
        """The live protocol object for ``node_id``.

        Raises :class:`PeerUnreachable` for dead or unknown nodes.
        """
        node = self._nodes.get(node_id)
        if node is None:
            raise PeerUnreachable(f"node {node_id!r} is not reachable")
        return node

    def address_of(self, node_id: Any) -> NetworkAddress:
        address = self._addresses.get(node_id)
        if address is None:
            raise PeerUnreachable(f"node {node_id!r} has no address")
        return address

    def alive_ids(self) -> Iterator[Any]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # runtime wiring (event scheduler)
    # ------------------------------------------------------------------

    def set_link_timing(self, timing: Optional[Any]) -> None:
        """Install (or clear, with ``None``) per-leg latency pricing."""
        self._timing = timing

    def use_event_transport(self, event_transport: Optional[Any]) -> None:
        """Route one-way pushes through ``event_transport.schedule_push``.

        The event scheduler installs itself here so pushes ride the
        event queue; passing ``None`` restores the synchronous drain
        used by the cycle runtime.  Distinct from the *message*
        transport (:meth:`use_message_transport`), which decides how a
        payload is represented in flight, not when it arrives.
        """
        self._event_transport = event_transport

    def use_message_transport(self, transport: Transport) -> None:
        """Install the payload representation for every future message.

        Swap between runs, not mid-dialogue: channels capture the
        transport at :meth:`connect` time.
        """
        self._msg_transport = transport

    @property
    def message_transport(self) -> Transport:
        """The transport payloads currently cross the network with."""
        return self._msg_transport

    def use_fault_injector(self, injector: Optional[Any]) -> None:
        """Install (or clear, with ``None``) the wire fault injector.

        The injector (:class:`~repro.sim.transport.FaultInjector`) sees
        every dialogue leg and push after encoding and may corrupt,
        truncate, replay, inflate, or drop the frame.  It draws from its
        own dedicated RNG stream, so an installed-but-inert injector
        leaves the protocol and network RNG sequences untouched.
        """
        self._faults = injector

    @property
    def fault_injector(self) -> Optional[Any]:
        return self._faults

    def use_peer_health(self, ledger: Optional[Any]) -> None:
        """Install (or clear, with ``None``) the per-peer health ledger.

        Once installed, every receive boundary scores decode failures,
        oversize frames, and reply timeouts against the sending peer,
        and :meth:`connect` refuses dialogues touching quarantined
        peers (:class:`~repro.errors.PeerQuarantined`).
        """
        self._health = ledger

    @property
    def peer_health(self) -> Optional[Any]:
        return self._health

    def health_tick(self, cycle: int) -> None:
        """Cycle-boundary hook: decay health scores, release quarantines.

        Both schedulers call this once per protocol cycle; a no-op when
        no ledger is installed.  Also ticks the message transport's
        codec cycle (when the transport has one — the wire transport's
        encode memos and intern tables are cycle-scoped; see
        :mod:`repro.core.codec_batch`).
        """
        if self._health is not None:
            self._health.tick(cycle)
        begin_cycle = getattr(self._msg_transport, "begin_cycle", None)
        if begin_cycle is not None:
            begin_cycle(cycle)

    def call_later(self, delay_s: float, callback: Callable[[], None]) -> bool:
        """Defer ``callback()`` by ``delay_s`` of virtual time.

        The protocol-side door to the event queue: retry backoff
        (see :class:`~repro.sim.retry.RetryPolicy`) schedules its
        re-attempt through here.  Returns ``True`` when the deferral
        was scheduled; ``False`` under the cycle runtime, where no
        event queue exists — callers must then either act immediately
        or not at all (for retries this cannot matter: the cycle
        runtime has no timeouts, so nothing ever asks to retry).
        """
        if self._event_transport is None:
            return False
        self._event_transport.call_later(delay_s, callback)
        return True

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------

    def connect(self, initiator_id: Any, partner_id: Any) -> Channel:
        """Open a dialogue from ``initiator_id`` to ``partner_id``.

        Raises :class:`PeerUnreachable` if the partner is dead, or its
        :class:`~repro.errors.PeerQuarantined` subclass when either
        endpoint is under quarantine (the healthy side refuses to spend
        a dialogue on a peer whose frames keep failing to decode); the
        returned channel may still drop individual messages according to
        the network's drop policy.
        """
        health = self._health
        if health is not None and (
            health.is_quarantined(initiator_id)
            or health.is_quarantined(partner_id)
        ):
            self.quarantine_refusals += 1
            raise PeerQuarantined(
                f"dialogue {initiator_id!r} -> {partner_id!r} refused: "
                "endpoint quarantined"
            )
        partner = self.node(partner_id)
        self.dialogues_opened += 1
        # functools.partial instead of a closure: one Python frame less
        # on every message delivery.
        deliver = partial(partner.receive, initiator_id)

        return Channel(
            initiator_id=initiator_id,
            partner_id=partner_id,
            deliver=deliver,
            rng=self._rng,
            policy=self._drop_policy,
            sizer=self._sizer,
            stats=self,
            timing=self._timing,
            burst_state=self._burst_state,
            transport=self._msg_transport,
            faults=self._faults,
            health=self._health,
        )

    def record_dialogue_traffic(self, sent: int = 0, received: int = 0) -> None:
        """Accumulate per-direction dialogue traffic (network-cost table)."""
        self.dialogue_bytes_forward += sent
        self.dialogue_bytes_backward += received

    def record_dialogue_time(self, seconds: float) -> None:
        """Accumulate virtual waiting time across all dialogues."""
        self.dialogue_seconds += seconds

    def record_undecodable(self) -> None:
        """A dialogue frame failed to decode (channel receive boundary)."""
        self.undecodable_frames += 1

    def push(self, sender_id: Any, target_id: Any, payload: Any) -> bool:
        """Deliver a one-way message (no reply expected).

        Returns ``True`` if the message was accepted for delivery,
        ``False`` if the target was unreachable or the message was
        dropped.  Used for proof flooding, where senders neither wait
        for acknowledgements nor retry: retries are a *dialogue*
        concept (:class:`~repro.sim.retry.RetryPolicy` re-initiates
        timed-out exchange openings), while a push is fire-and-forget
        on every runtime — a lost push is lost for good, and no layer
        of the stack re-sends it (asserted by
        ``tests/sim/test_push_semantics.py``).  Deliveries triggered
        from inside a ``receive_push`` handler are queued and drained
        iteratively (breadth-first), so network-wide floods cannot
        overflow the call stack.

        The message transport encodes the payload once here (wire mode:
        the sender pays serialisation and the *measured* frame size is
        billed even when the network then loses the frame) and decodes
        it at delivery time, so receivers of a wire-mode flood get
        fresh objects exactly like dialogue partners do.
        """
        if target_id not in self._nodes:
            return False
        self.pushes_sent += 1
        transport = self._msg_transport
        memo = self._push_encode_memo
        if memo is not None and memo[0] is payload and memo[1] is transport:
            wire = memo[2]
        else:
            wire = transport.encode(payload)
            self._push_encode_memo = (payload, transport, wire)
        # Faults mutate the frame per-push (after the memo — the memo
        # caches the honest encoding, never an injected mutation).
        fault_dropped = False
        if self._faults is not None:
            shaped = self._faults.apply(wire, sender_id, target_id, "push")
            if shaped is DROPPED:
                fault_dropped = True
            else:
                wire = shaped
        size = transport.wire_size(wire)
        if size is None and self._sizer is not None:
            size = self._sizer(payload)
        if size is not None:
            self.push_bytes += size
            if self._health is not None:
                self._health.note_sent(sender_id, target_id, size)
        loss = self._drop_policy.request_loss
        burst = self._burst_state
        if burst is not None:
            loss = burst.effective(loss)
        # The loss draw always happens, even for fault-dropped frames:
        # the network RNG stream must consume exactly one draw per push
        # regardless of the injector's verdict.
        if self._rng.random() < loss:
            if burst is not None:
                burst.on_drop()
            return False
        if fault_dropped:
            return False
        if self._event_transport is not None:
            # Event runtime: the push rides the event queue with its own
            # sampled delay, so floods spread over virtual time and may
            # arrive reordered relative to their sends.  The queued
            # payload pairs the on-wire form with the transport that
            # produced it; deliver_push decodes with that same
            # transport, so frames in flight across a (between-runs)
            # transport swap still decode with their encoder's inverse.
            self._event_transport.schedule_push(
                sender_id, target_id, (transport, wire)
            )
            return True
        self._push_queue.append((sender_id, target_id, transport, wire))
        if self._draining:
            return True
        self._draining = True
        try:
            while self._push_queue:
                src, dst, codec, msg = self._push_queue.popleft()
                node = self._nodes.get(dst)
                if node is not None:
                    message = self._decode_push(src, codec, msg)
                    if message is not _SWALLOWED:
                        node.receive_push(src, message)
        finally:
            self._draining = False
        return True

    def deliver_push(self, sender_id: Any, target_id: Any, payload: Any) -> None:
        """Hand an event-delayed push to its (still alive) target.

        Called by the event scheduler when a push's delivery time comes
        up; ``payload`` is the ``(transport, frame)`` pair queued by
        :meth:`push` and is decoded here, at the receiver, with the
        transport that encoded it.  A handler that re-floods goes back
        through :meth:`push`, which re-enqueues on the event transport
        — no recursion, mirroring the iterative drain of the
        synchronous path.  A target that died while the push was in
        flight silently swallows it; like every push, the message is
        not retried (see :meth:`push`).
        """
        node = self._nodes.get(target_id)
        if node is not None:
            transport, wire = payload
            message = self._decode_push(sender_id, transport, wire)
            if message is not _SWALLOWED:
                node.receive_push(sender_id, message)

    def _decode_push(self, src: Any, transport: Any, wire: Any) -> Any:
        """Decode a push frame at the receive boundary.

        Returns the decoded message, or the ``_SWALLOWED`` sentinel when
        the frame must not reach the node: the sender is quarantined
        (refused before any decode work is spent on it), or the bytes
        fail to decode (counted, scored against the sender, and dropped
        — a garbage push degrades to a lost push, never a crash).
        """
        health = self._health
        if health is not None:
            if health.is_quarantined(src):
                self.quarantine_refusals += 1
                return _SWALLOWED
            scanned = transport.wire_size(wire)
            if scanned is not None:
                health.note_scanned(src, scanned)
        try:
            return transport.decode(wire)
        except FrameOversizeError:
            self.undecodable_frames += 1
            if health is not None:
                health.record_oversize(src)
            return _SWALLOWED
        except CodecError:
            self.undecodable_frames += 1
            if health is not None:
                health.record_decode_failure(src)
            return _SWALLOWED
