"""Shard-side machinery for the multi-process engine.

One sharded run splits an overlay's nodes across N worker processes
(:class:`ShardPlan`, consistent node-id hashing).  Each worker owns a
full replica of the built engine — under the fork backend it inherits
the parent's memory copy-on-write, under the thread backend it gets an
identically-seeded rebuild — but *runs* only its own partition.  The
network directory entries of every foreign node are replaced with
:class:`RemoteNode` proxies, so intra-shard messages stay on the
engine's in-process transport while cross-shard dialogue legs and
pushes travel as length-prefixed :meth:`BatchEncoder.encode_frames`
buffers over ``socket.socketpair`` links, decoded by a
:class:`FastDecoder` on the receiving shard.

Two execution modes, driven by the coordinator
(:mod:`repro.sim.shardcoord`):

* **deterministic** — every worker independently replicates the
  ``activation-order`` stream (identical shuffles over the identical
  full node list, zero coordination), and activations execute
  one-at-a-time globally via a token walked along the shuffled
  permutation.  Together with the single-writer rule for adversary
  state (all malicious nodes pinned to shard 0) this makes an N-shard
  run bit-for-bit identical to the single-process engine — the
  contract docs/SHARDING.md spells out and
  ``tests/sim/test_shard_equivalence.py`` enforces against the
  committed fig2/3/5/6/7 goldens.

* **free-running** — each worker begins and runs its own partition
  without intra-cycle coordination (cycles stay aligned so descriptor
  timestamps never jump ahead of a slower shard's clock by more than
  one period, which would read as §IV-B frequency forgery), serving
  cross-shard traffic between activations.  Throughput-oriented; no
  bit-exactness promise.

Every blocking wait pumps the inbox: while a worker waits for a reply,
token, or acknowledgement it keeps serving inbound requests and
pushes.  The active call graph of a deterministic cycle is a chain, so
re-entrant serving is what resolves A⇄B waits — there is no message a
blocked worker can wait on whose producer is not itself able to make
progress (see docs/SHARDING.md, "Why the pump loop cannot deadlock").
"""

from __future__ import annotations

import hashlib
import pickle
import selectors
import struct
from bisect import bisect_right
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ShardFailure, ShardRemoteError

# ----------------------------------------------------------------------
# envelope opcodes (one byte on the wire)
# ----------------------------------------------------------------------

# control plane (coordinator <-> worker)
OP_HELLO = 1        # worker -> parent: replica ready
OP_BEGIN = 2        # parent -> worker: (cycle,) begin-phase of one cycle
OP_BEGIN_DONE = 3   # worker -> parent: (cycle,)
OP_CYCLE_DONE = 4   # last-owner worker -> parent: (cycle,)
OP_END_CYCLE = 5    # parent -> worker: (cycle, want_snapshot)
OP_END_DONE = 6     # worker -> parent: (cycle,)
OP_SNAPSHOT = 7     # worker -> parent: (cycle, {node_id: state})
OP_FREE = 8         # parent -> worker: (cycle,) free-running cycle
OP_FREE_DONE = 9    # worker -> parent: (cycle,)
OP_FINISH = 10      # parent -> worker: ()
OP_FINAL = 11       # worker -> parent: (final_state,)
OP_SHUTDOWN = 12    # parent -> worker: ()
OP_ERROR = 13       # worker -> parent: (type_name, message, traceback)
OP_CHECKPOINT = 14  # parent -> worker: (path,) save engine state to path
OP_CHECKPOINT_DONE = 15  # worker -> parent: (shard_index,)
OP_RESTORE = 16     # parent -> worker: (path,) overlay saved state
OP_RESTORE_DONE = 17     # worker -> parent: (shard_index,)

# data plane (worker <-> worker; TOKEN may also come from the parent)
OP_TOKEN = 20       # (cycle, position)
OP_REQ = 21         # (src_shard, seq, sender_id, target_id, frames)
OP_REP = 22         # (seq, kind, payload)  kind in {"frames", "none", "raise"}
OP_PUSH = 23        # (src_shard, seq, sender_id, target_id, frames)
OP_PUSH_ACK = 24    # (seq,)

_HEADER = struct.Struct(">BI")

#: Commands a worker's top-level serve loop dispatches on.  Everything
#: else is either served inline (REQ/PUSH) or parked in the pending
#: queue until a wait asks for it (REP/PUSH_ACK raced by other traffic).
_SERVE_OPS = frozenset(
    (OP_BEGIN, OP_TOKEN, OP_END_CYCLE, OP_FREE, OP_FINISH, OP_SHUTDOWN,
     OP_CHECKPOINT, OP_RESTORE)
)

#: Test hook: a positive value makes every worker sleep this long at
#: each BEGIN/FREE command.  Monkeypatched (pre-fork, so children
#: inherit it) by the crash-robustness tests to exercise the
#: coordinator's silent-shard deadline without a real hang.
_TEST_STALL_S = 0.0


class FrameChannel:
    """One buffered envelope endpoint over a stream socket.

    Envelopes are ``u8 opcode + u32 length + body``; bodies are pickled
    tuples (node ids, cycle numbers, snapshot state) whose message
    payloads — the protocol bytes themselves — are embedded
    ``encode_frames`` buffers, so the codec owns the data plane and
    pickle only carries shard bookkeeping.
    """

    __slots__ = ("sock", "_buf")

    def __init__(self, sock: Any) -> None:
        self.sock = sock
        self._buf = bytearray()

    def fileno(self) -> int:
        return self.sock.fileno()

    def send(self, op: int, body: Any = ()) -> None:
        payload = pickle.dumps(body, protocol=pickle.HIGHEST_PROTOCOL)
        self.sock.sendall(_HEADER.pack(op, len(payload)) + payload)

    def feed(self) -> bool:
        """Read whatever the socket has; ``False`` on a closed peer."""
        chunk = self.sock.recv(1 << 16)
        if not chunk:
            return False
        self._buf += chunk
        return True

    def pop(self) -> Optional[Tuple[int, Any]]:
        """Parse one complete envelope out of the buffer, if present."""
        buf = self._buf
        if len(buf) < _HEADER.size:
            return None
        op, length = _HEADER.unpack_from(buf)
        end = _HEADER.size + length
        if len(buf) < end:
            return None
        body = pickle.loads(bytes(buf[_HEADER.size:end]))
        del buf[:end]
        return op, body

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------


def _key_bytes(node_id: Any) -> bytes:
    """A stable byte key for any node id the simulator uses."""
    digest = getattr(node_id, "digest", None)
    if isinstance(digest, bytes):
        return digest
    if isinstance(node_id, bytes):
        return node_id
    if isinstance(node_id, str):
        return node_id.encode("utf-8")
    if isinstance(node_id, int):
        return node_id.to_bytes((node_id.bit_length() + 8) // 8, "big", signed=True)
    raise ShardFailure(
        f"cannot derive a stable shard key from node id {node_id!r}"
    )


def _ring_point(data: bytes) -> int:
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


class ShardPlan:
    """Consistent node-id hashing over ``shards`` workers.

    Each shard owns ``vnodes`` points on a 64-bit hash ring; a node id
    maps to the shard owning the first ring point at or after the id's
    own hash.  Three properties the Hypothesis suite pins:

    * **total** — every id maps to exactly one shard in ``range(shards)``;
    * **stable** — an id's shard depends only on the id and the ring,
      never on what other ids exist (joins/leaves move nobody);
    * **monotone** — growing the ring from N to N+1 shards only moves
      ids *to* the new shard, never between old ones.

    ``pinned`` overrides the ring for specific ids.  The coordinator
    pins every malicious node to shard 0: the adversary's
    :class:`~repro.adversary.coordinator.MaliciousCoordinator` is
    shared mutable state, and the single-writer rule keeps its fork
    replicas from diverging (docs/SHARDING.md, "RNG-splitting rules").
    """

    def __init__(
        self,
        shards: int,
        vnodes: int = 128,
        pinned: Optional[Dict[Any, int]] = None,
    ) -> None:
        if shards < 1:
            raise ShardFailure("a shard plan needs at least one shard")
        if vnodes < 1:
            raise ShardFailure("a shard plan needs at least one vnode")
        self.shards = shards
        self.vnodes = vnodes
        self.pinned = dict(pinned or {})
        for node_id, shard in self.pinned.items():
            if not 0 <= shard < shards:
                raise ShardFailure(
                    f"pin of {node_id!r} to shard {shard} is out of range"
                )
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for vnode in range(vnodes):
                label = f"shard-{shard}/vnode-{vnode}".encode("ascii")
                points.append((_ring_point(label), shard))
        points.sort()
        self._ring_keys = [point for point, _ in points]
        self._ring_shards = [shard for _, shard in points]

    def with_pinned(self, pinned: Dict[Any, int]) -> "ShardPlan":
        merged = dict(self.pinned)
        merged.update(pinned)
        return ShardPlan(self.shards, vnodes=self.vnodes, pinned=merged)

    def shard_of(self, node_id: Any) -> int:
        override = self.pinned.get(node_id)
        if override is not None:
            return override
        if self.shards == 1:
            return 0
        point = _ring_point(_key_bytes(node_id))
        index = bisect_right(self._ring_keys, point)
        if index == len(self._ring_keys):
            index = 0
        return self._ring_shards[index]

    def partition(self, node_ids: Iterable[Any]) -> List[List[Any]]:
        """Split ``node_ids`` into one list per shard (order-preserving)."""
        parts: List[List[Any]] = [[] for _ in range(self.shards)]
        for node_id in node_ids:
            parts[self.shard_of(node_id)].append(node_id)
        return parts


# ----------------------------------------------------------------------
# remote peers
# ----------------------------------------------------------------------


class RemoteNode:
    """Directory stand-in for a node that lives on another shard.

    Installed into the worker's :class:`~repro.sim.network.Network`
    under the foreign node's id, so the unchanged ``connect``/``push``
    machinery delivers to it like to any local node.  ``receive``
    relays the dialogue leg to the owning shard and blocks (pumping)
    for the reply; ``receive_push`` relays and blocks for the
    acknowledgement, so by the time a push "lands" its remote effects
    — including any cascaded re-floods — have settled, preserving the
    deterministic mode's activation atomicity.
    """

    __slots__ = ("node_id", "_worker", "_shard")

    def __init__(self, node_id: Any, worker: "ShardWorker", shard: int) -> None:
        self.node_id = node_id
        self._worker = worker
        self._shard = shard

    def receive(self, sender_id: Any, payload: Any) -> Any:
        return self._worker.remote_request(
            self._shard, sender_id, self.node_id, payload
        )

    def receive_push(self, sender_id: Any, payload: Any) -> None:
        self._worker.remote_push(
            self._shard, sender_id, self.node_id, payload
        )


# ----------------------------------------------------------------------
# the worker
# ----------------------------------------------------------------------


class ShardWorker:
    """One shard: a full engine replica driving its own partition.

    Construction patches the replica's network directory (foreign ids
    become :class:`RemoteNode` proxies) but deliberately leaves
    ``engine.nodes`` untouched: the full node table is what lets every
    worker replicate the global activation shuffle, and under the fork
    backend not touching foreign node objects keeps their pages shared
    copy-on-write with the parent.
    """

    def __init__(
        self,
        engine: Any,
        index: int,
        plan: ShardPlan,
        control: FrameChannel,
        peers: Dict[int, FrameChannel],
    ) -> None:
        # Local import: codec_batch is the wire layer, and shard.py
        # must stay importable in environments that only use the plan.
        from repro.core.codec_batch import BatchEncoder, FastDecoder, InternTable

        self.engine = engine
        self.index = index
        self.plan = plan
        self.control = control
        self.peers = peers
        intern = InternTable()
        self._enc = BatchEncoder(intern)
        self._dec = FastDecoder(intern)
        self._seq = 0
        self._pending: List[Tuple[int, Any]] = []
        self._inbox: List[Tuple[int, Any]] = []
        self._selector = selectors.DefaultSelector()
        self._selector.register(control, selectors.EVENT_READ, control)
        for channel in peers.values():
            self._selector.register(channel, selectors.EVENT_READ, channel)
        # Ownership of the full id space, fixed at session start (no
        # churn in sharded runs — the coordinator refuses schedules).
        self._owner = {
            node_id: plan.shard_of(node_id)
            for node_id in engine._alive_list
        }
        self.local_ids = [
            node_id
            for node_id in engine._alive_list
            if self._owner[node_id] == index
        ]
        self._trace_base = len(engine.trace)
        self._run_order: List[Any] = []
        self._install_proxies()
        # Cyclon's extension codec registers its frame codes on import;
        # a shard serving a legacy-Cyclon overlay needs them even when
        # nothing else imported the module in this process yet.
        import repro.cyclon.codec  # noqa: F401

    def _install_proxies(self) -> None:
        network = self.engine.network
        for node_id, shard in self._owner.items():
            if shard != self.index:
                network.attach(node_id, RemoteNode(node_id, self, shard))

    # ------------------------------------------------------------------
    # serve loop
    # ------------------------------------------------------------------

    def serve(self) -> None:
        """Run the worker until the coordinator says SHUTDOWN."""
        try:
            self.control.send(OP_HELLO, (self.index,))
            with self.engine._tuned_gc():
                while True:
                    op, body = self._wait(lambda o, b: o in _SERVE_OPS)
                    if op == OP_BEGIN:
                        self._begin_cycle(body[0])
                    elif op == OP_TOKEN:
                        self._on_token(body[0], body[1])
                    elif op == OP_END_CYCLE:
                        self._end_cycle(body[0], body[1])
                    elif op == OP_FREE:
                        self._free_cycle(body[0])
                    elif op == OP_FINISH:
                        self.control.send(OP_FINAL, (self._final_state(),))
                    elif op == OP_CHECKPOINT:
                        self._checkpoint(body[0])
                    elif op == OP_RESTORE:
                        self._restore(body[0])
                    elif op == OP_SHUTDOWN:
                        return
        except BaseException as exc:  # noqa: BLE001 - relayed to parent
            import traceback

            try:
                self.control.send(
                    OP_ERROR,
                    (type(exc).__name__, str(exc), traceback.format_exc()),
                )
            except OSError:
                pass
            raise

    # -- deterministic mode --------------------------------------------

    def _begin_cycle(self, cycle: int) -> None:
        if _TEST_STALL_S > 0.0:
            import time

            time.sleep(_TEST_STALL_S)
        engine = self.engine
        if engine._churn.events_at(cycle):
            raise ShardFailure("sharded runs do not support churn schedules")
        plan = engine._verification_plan
        if plan is not None:
            plan.begin_cycle(cycle)
        # Replicate CycleScheduler._run_one_cycle's RNG consumption
        # exactly: two shuffles of the full alive list per cycle, from
        # the same buffer state, on every shard.
        order = engine._order_buffer
        order[:] = engine._alive_list
        order_rng = engine._order_rng
        order_rng.shuffle(order)
        owner = self._owner
        me = self.index
        nodes = engine.nodes
        for node_id in order:
            if owner[node_id] == me:
                nodes[node_id].begin_cycle(cycle)
        order_rng.shuffle(order)
        self._run_order = list(order)
        self.control.send(OP_BEGIN_DONE, (cycle,))

    def _on_token(self, cycle: int, position: int) -> None:
        """Run the consecutive stretch of activations this shard owns."""
        order = self._run_order
        owner = self._owner
        me = self.index
        nodes = self.engine.nodes
        network = self.engine.network
        total = len(order)
        q = position
        while q < total and owner[order[q]] == me:
            nodes[order[q]].run_cycle(network)
            q += 1
        if q >= total:
            self.control.send(OP_CYCLE_DONE, (cycle,))
        else:
            self.peers[owner[order[q]]].send(OP_TOKEN, (cycle, q))

    def _end_cycle(self, cycle: int, want_snapshot: bool) -> None:
        engine = self.engine
        for observer in engine._observers:
            observer.on_cycle_end(engine, cycle)
        engine.network.health_tick(cycle)
        engine.clock.advance()
        # New cycle scope for the shard codec's memos, mirroring what
        # Network.health_tick just did for the in-process transport.
        self._enc.begin_cycle(cycle + 1)
        self._dec.intern.begin_cycle(cycle + 1)
        if want_snapshot:
            self.control.send(OP_SNAPSHOT, (cycle, self._snapshot()))
        else:
            self.control.send(OP_END_DONE, (cycle,))

    # -- free-running mode ---------------------------------------------

    def _free_cycle(self, cycle: int) -> None:
        """Begin + run the local partition without global serialisation."""
        if _TEST_STALL_S > 0.0:
            import time

            time.sleep(_TEST_STALL_S)
        engine = self.engine
        if engine._churn.events_at(cycle):
            raise ShardFailure("sharded runs do not support churn schedules")
        plan = engine._verification_plan
        if plan is not None:
            plan.begin_cycle(cycle)
        order = list(self.local_ids)
        order_rng = engine._order_rng
        order_rng.shuffle(order)
        nodes = engine.nodes
        for node_id in order:
            nodes[node_id].begin_cycle(cycle)
        order_rng.shuffle(order)
        network = engine.network
        for node_id in order:
            nodes[node_id].run_cycle(network)
            # Keep cross-shard latency bounded: serve whatever arrived
            # while this activation computed before starting the next.
            self._pump()
        self.control.send(OP_FREE_DONE, (cycle,))

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------

    def remote_request(
        self, shard: int, sender_id: Any, target_id: Any, payload: Any
    ) -> Any:
        self._seq += 1
        seq = self._seq
        self.peers[shard].send(
            OP_REQ,
            (self.index, seq, sender_id, target_id,
             self._enc.encode_frames((payload,))),
        )
        _, body = self._wait(
            lambda o, b: o == OP_REP and b[0] == seq
        )
        _, kind, result = body
        if kind == "frames":
            return self._dec.decode_frames(result)[0]
        if kind == "none":
            return None
        type_name, message = result
        raise ShardRemoteError(
            f"{type_name} on shard {shard} while handling a dialogue "
            f"for {target_id!r}: {message}"
        )

    def remote_push(
        self, shard: int, sender_id: Any, target_id: Any, payload: Any
    ) -> None:
        self._seq += 1
        seq = self._seq
        self.peers[shard].send(
            OP_PUSH,
            (self.index, seq, sender_id, target_id,
             self._enc.encode_frames((payload,))),
        )
        self._wait(lambda o, b: o == OP_PUSH_ACK and b[0] == seq)

    def _serve_request(self, body: Tuple) -> None:
        src, seq, sender_id, target_id, frames = body
        payload = self._dec.decode_frames(frames)[0]
        channel = self.peers[src]
        try:
            reply = self.engine.nodes[target_id].receive(sender_id, payload)
        except Exception as exc:  # noqa: BLE001 - relayed to the caller
            channel.send(
                OP_REP, (seq, "raise", (type(exc).__name__, str(exc)))
            )
            return
        if reply is None:
            channel.send(OP_REP, (seq, "none", None))
        else:
            channel.send(
                OP_REP, (seq, "frames", self._enc.encode_frames((reply,)))
            )

    def _serve_push(self, body: Tuple) -> None:
        src, seq, sender_id, target_id, frames = body
        payload = self._dec.decode_frames(frames)[0]
        # Delivered directly (the sending shard's network already did
        # the loss draw and accounting); a handler that re-floods goes
        # through *this* shard's network and its own proxies.
        self.engine.nodes[target_id].receive_push(sender_id, payload)
        self.peers[src].send(OP_PUSH_ACK, (seq,))

    # ------------------------------------------------------------------
    # inbox
    # ------------------------------------------------------------------

    def _wait(self, want) -> Tuple[int, Any]:
        """Block until an envelope matching ``want(op, body)`` arrives.

        Everything else that arrives meanwhile is either served inline
        (requests, pushes — possibly recursively, which is what lets
        two mutually-waiting shards resolve each other) or parked in
        the pending queue for an outer wait to claim.
        """
        pending = self._pending
        while True:
            # Rescan before every blocking read, not just on entry: a
            # served request can nest an inner wait, and the inner wait
            # may read *this* wait's envelope and park it — blocking
            # again without looking at the parked queue would then wait
            # forever for bytes that already arrived.
            for i, (op, body) in enumerate(pending):
                if want(op, body):
                    del pending[i]
                    return op, body
            op, body = self._next_envelope(block=True)
            if want(op, body):
                return op, body
            if op == OP_REQ:
                self._serve_request(body)
            elif op == OP_PUSH:
                self._serve_push(body)
            elif op == OP_SHUTDOWN:
                raise ShardFailure(
                    f"shard {self.index}: coordinator shut the run down "
                    "mid-wait"
                )
            else:
                pending.append((op, body))

    def _pump(self) -> None:
        """Serve everything already readable, without blocking."""
        while True:
            envelope = self._next_envelope(block=False)
            if envelope is None:
                return
            op, body = envelope
            if op == OP_REQ:
                self._serve_request(body)
            elif op == OP_PUSH:
                self._serve_push(body)
            else:
                self._pending.append((op, body))

    def _next_envelope(self, block: bool) -> Optional[Tuple[int, Any]]:
        if self._inbox:
            return self._inbox.pop(0)
        while True:
            progressed = False
            for key, _ in self._selector.select(timeout=None if block else 0):
                channel: FrameChannel = key.data
                try:
                    alive = channel.feed()
                except OSError:
                    alive = False
                if not alive:
                    if channel is self.control:
                        raise ShardFailure(
                            f"shard {self.index}: control link closed "
                            "unexpectedly"
                        )
                    # A peer closing its end is how a clean shutdown
                    # looks from a sibling that has not yet read its own
                    # SHUTDOWN — stop watching that link.  A peer dying
                    # *mid-cycle* surfaces at the coordinator (control
                    # EOF / dead process), which tears everyone down.
                    self._selector.unregister(channel)
                    channel.close()
                    continue
                progressed = True
                while True:
                    envelope = channel.pop()
                    if envelope is None:
                        break
                    self._inbox.append(envelope)
            if self._inbox:
                return self._inbox.pop(0)
            if not block and not progressed:
                return None

    # ------------------------------------------------------------------
    # checkpoint / restore (coordinator-driven, at cycle boundaries)
    # ------------------------------------------------------------------

    def _checkpoint(self, path: str) -> None:
        """Save this replica's full engine state to ``path``.

        The replica holds every node (foreign ones just never ran
        here), so each shard's checkpoint is a complete engine
        checkpoint of which only the local partition's state is
        meaningful — restore pairs each file with the same shard.
        """
        from repro.ops.checkpoint import save_checkpoint

        save_checkpoint(self.engine, path)
        self.control.send(OP_CHECKPOINT_DONE, (self.index,))

    def _restore(self, path: str) -> None:
        """Overlay the state saved at ``path`` onto this replica."""
        from repro.ops.checkpoint import restore_checkpoint

        restore_checkpoint(self.engine, path)
        # Saved counters describe a whole engine; final_state() must
        # keep reporting only what happened *on this shard* afterwards.
        self._trace_base = len(self.engine.trace)
        self._enc.begin_cycle(self.engine.clock.cycle)
        self._dec.intern.begin_cycle(self.engine.clock.cycle)
        self.control.send(OP_RESTORE_DONE, (self.index,))

    # ------------------------------------------------------------------
    # state shipping
    # ------------------------------------------------------------------

    def _snapshot(self) -> Dict[Any, Dict[str, Any]]:
        """Per-local-node state the parent mirrors for metric probes."""
        out: Dict[Any, Dict[str, Any]] = {}
        nodes = self.engine.nodes
        for node_id in self.local_ids:
            node = nodes[node_id]
            state: Dict[str, Any] = {"view": node.view}
            blacklist = getattr(node, "blacklist", None)
            if blacklist is not None:
                state["blacklist"] = blacklist
            clone_events = getattr(node, "clone_events", None)
            if clone_events is not None:
                state["clone_events"] = clone_events
            out[node_id] = state
        return out

    def _final_state(self) -> Dict[str, Any]:
        engine = self.engine
        return {
            "nodes": self._snapshot(),
            "trace": list(engine.trace)[self._trace_base:],
            "counters": {
                "dialogues_opened": engine.network.dialogues_opened,
                "pushes_sent": engine.network.pushes_sent,
                "dialogue_bytes_forward": engine.network.dialogue_bytes_forward,
                "dialogue_bytes_backward": engine.network.dialogue_bytes_backward,
                "push_bytes": engine.network.push_bytes,
            },
        }
