"""Retry policies for timed-out gossip dialogues.

Under the event-driven runtime a dialogue can die by *timing*: the
round trip exceeds the initiator's patience and raises
:class:`~repro.sim.channel.MessageTimeout`.  The §V-A accounting makes
the failed attempt safe (the redeemed descriptor is spent, nothing else
is exposed), but the initiator still lost its gossip opportunity for
the period.  A :class:`RetryPolicy` decides what it does next:

``none``
    Give up for this activation — the paper's behaviour, and the
    default everywhere.
``immediate``
    Re-initiate right away, up to ``max_retries`` times, each attempt
    redeeming the *next* oldest view entry.  The timed-out redemption
    is never re-sent: it was recorded spent the moment it was signed,
    so a retry that reused it would be rejected (and, worse, a
    delivered-but-unanswered one would be a provable replay).
``backoff``
    Schedule the re-attempt ``backoff_s`` seconds of virtual time
    later through the event queue (doubling on consecutive timeouts),
    so a congested partner is not hammered at the very instant it is
    slow.  Requires the event runtime; under the cycle runtime there
    are no timeouts, so the policy is inert there by construction.

Retries apply only to dialogues that died *before* they were
established (the opening round trip).  A timeout in a later transfer
round is never retried: the initiator has already minted its one fresh
descriptor for the cycle, and re-entering the exchange path would mint
a second — a §IV-B frequency violation an honest node must not risk.
That restriction is what makes the no-double-spend and no-double-mint
guarantees of retrying provable (see ``tests/core/test_retry_policy.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ConfigError

RETRY_MODES = ("none", "immediate", "backoff")


@dataclass(frozen=True)
class RetryPolicy:
    """What an initiator does after a dialogue opening times out."""

    mode: str = "none"
    max_retries: int = 1
    backoff_s: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in RETRY_MODES:
            raise ConfigError(
                f"unknown retry mode {self.mode!r}; expected one of "
                f"{', '.join(RETRY_MODES)}"
            )
        if self.max_retries < 0:
            raise ConfigError("max_retries must be non-negative")
        if self.backoff_s <= 0:
            raise ConfigError("backoff_s must be positive")

    @property
    def retries(self) -> int:
        """Retry attempts this policy grants (0 when mode is ``none``)."""
        return 0 if self.mode == "none" else self.max_retries

    @property
    def immediate_attempts(self) -> int:
        """Total same-instant attempts an activation may make.

        ``immediate`` grants its retries in the same activation;
        ``none`` and ``backoff`` make exactly one attempt now (backoff
        defers its retries through the event queue instead).
        """
        return 1 + (self.max_retries if self.mode == "immediate" else 0)


def drive_attempts(
    policy: RetryPolicy,
    attempt: Callable[[], bool],
    network: Any,
    node_id: Any,
    emit: Callable[..., None],
    prefix: str,
    pre_fire: Optional[Callable[[], bool]] = None,
) -> None:
    """Run one activation's dialogue attempts under ``policy``.

    The one retry driver both protocol nodes share (SecureCyclon and
    legacy Cyclon differ only in their trace ``prefix`` and in the
    secure node's ``pre_fire`` mint guard).  ``attempt()`` makes one
    full exchange attempt and returns True iff it died of a retryable
    timeout.  Immediate retries loop here and now; backoff retries are
    deferred through ``network.call_later`` with doubling delays, and
    each deferred attempt re-checks liveness and ``pre_fire`` at fire
    time (the node may have been churned out, or — for SecureCyclon —
    its next regular activation may have minted in the meantime, and
    retrying then would risk the very §IV-B frequency violation the
    guard exists to prevent).

    Emitted trace events (all under ``prefix``): ``retry_immediate``,
    ``retry_scheduled``, ``retry_backoff``, ``retry_rate_limited``.
    """
    for index in range(policy.immediate_attempts):
        if index:
            emit(f"{prefix}.retry_immediate", attempt=index)
        if not attempt():
            return
    if policy.mode == "backoff" and policy.max_retries > 0:
        _schedule_backoff(
            policy.backoff_s,
            policy.max_retries,
            attempt,
            network,
            node_id,
            emit,
            prefix,
            pre_fire,
        )


def _schedule_backoff(
    delay_s: float,
    retries_left: int,
    attempt: Callable[[], bool],
    network: Any,
    node_id: Any,
    emit: Callable[..., None],
    prefix: str,
    pre_fire: Optional[Callable[[], bool]],
) -> None:
    def fire() -> None:
        if not network.is_alive(node_id):
            return
        if pre_fire is not None and not pre_fire():
            emit(f"{prefix}.retry_rate_limited")
            return
        emit(f"{prefix}.retry_backoff", delay_s=delay_s)
        if attempt() and retries_left > 1:
            _schedule_backoff(
                delay_s * 2,
                retries_left - 1,
                attempt,
                network,
                node_id,
                emit,
                prefix,
                pre_fire,
            )

    if network.call_later(delay_s, fire):
        emit(f"{prefix}.retry_scheduled", delay_s=delay_s)
