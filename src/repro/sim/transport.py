"""Pluggable message transports: how payloads cross the simulated wire.

The paper's system model (§II-A) is a routed network moving *bytes*;
historically the simulator moved *references* — the sender's Python
objects were handed straight to the receiver.  That is fast, but it
silently memoises work (a receiver holding the exact object the sender
verified skips re-verification through per-object caches) and it can
never catch a serialisation bug.  This module makes the choice explicit:

* :class:`ObjectTransport` — the classic in-process semantics,
  bit-for-bit identical to the historical behaviour: payloads pass by
  reference, sizes come from the budgeted ``payload_sizer`` when one is
  configured.
* :class:`WireTransport` — wire fidelity: every dialogue leg and every
  one-way push is framed through :mod:`repro.core.codec`, so each
  receiver decodes **fresh objects from real bytes**, and all traffic
  accounting switches from budgeted to *measured* frame sizes.  The
  codec is lossless and consumes no randomness, so seeded runs produce
  byte-identical outputs under both transports (golden-guarded); what
  changes is the *work*: shared-object identity no longer short-circuits
  verification, which is the regime where batched verification
  (``verification=batched``) pays off network-wide.

Selection mirrors the ``verification=`` knob: both protocol configs
carry ``transport=`` (``"object"``/``"wire"``/``None``), ``None``
resolves through the ``REPRO_TRANSPORT`` environment variable, and the
default stays ``object``.  :func:`make_transport` turns the resolved
mode (or an already-built :class:`Transport`) into an instance for
:class:`~repro.sim.network.Network`.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ConfigError

#: Accepted values of the ``transport=`` knob.
TRANSPORT_MODES = ("object", "wire")

#: Environment override for the knob, mirroring ``REPRO_VERIFICATION``:
#: a config whose ``transport`` is ``None`` resolves through this
#: variable, so the whole harness (and the golden equivalence guard)
#: can flip transports without touching any call site.
ENV_TRANSPORT = "REPRO_TRANSPORT"


def resolve_transport(mode: Optional[str]) -> str:
    """Resolve a ``transport=`` knob value to a concrete mode.

    An explicit value wins; otherwise the ``REPRO_TRANSPORT``
    environment variable; otherwise ``"object"`` — the default must
    stay the in-process semantics so existing runs are untouched
    unless a run opts in.
    """
    if mode is not None:
        return mode
    raw = os.environ.get(ENV_TRANSPORT, "").strip().lower()
    if not raw:
        return TRANSPORT_MODES[0]
    if raw not in TRANSPORT_MODES:
        valid = ", ".join(TRANSPORT_MODES)
        raise ConfigError(
            f"invalid {ENV_TRANSPORT}={raw!r}; expected one of: {valid}"
        )
    return raw


def validate_transport(mode: Optional[str]) -> None:
    """Config-time validation shared by both protocol configs."""
    if mode is not None and mode not in TRANSPORT_MODES:
        valid = ", ".join(TRANSPORT_MODES)
        raise ConfigError(
            f"transport must be one of: {valid} (or None); got {mode!r}"
        )


class Transport:
    """How a payload crosses one leg of the simulated network.

    The contract is three hooks, called by :class:`~repro.sim.channel.
    Channel` for both dialogue legs and by :class:`~repro.sim.network.
    Network` for one-way pushes:

    * :meth:`encode` turns the sender's payload into its on-wire form;
    * :meth:`decode` rebuilds the receiver-side payload from that form;
    * :meth:`wire_size` prices the on-wire form in bytes, or returns
      ``None`` to defer to the budgeted ``payload_sizer`` (object mode).

    Transports must be deterministic and consume no randomness: the
    simulator's seeded RNG streams are required to be transport-
    independent so the golden figure series stay bit-for-bit identical
    across modes.
    """

    name = "abstract"

    def encode(self, payload: Any) -> Any:
        raise NotImplementedError

    def decode(self, wire: Any) -> Any:
        raise NotImplementedError

    def wire_size(self, wire: Any) -> Optional[int]:
        raise NotImplementedError


class ObjectTransport(Transport):
    """Shared-object message passing (the historical semantics).

    Payloads cross the network by reference: the receiver gets the
    sender's object, object-identity fast paths stay hot, and traffic
    accounting uses the budgeted sizer (when configured) exactly as
    before the transport abstraction existed.
    """

    name = "object"

    def encode(self, payload: Any) -> Any:
        return payload

    def decode(self, wire: Any) -> Any:
        return wire

    def wire_size(self, wire: Any) -> Optional[int]:
        return None


class WireTransport(Transport):
    """Byte-accurate message passing through :mod:`repro.core.codec`.

    Every payload is framed to bytes at the sender and decoded into
    fresh objects at the receiver, so nothing downstream can depend on
    object identity — the state a real deployment is always in.  Sizes
    are the *measured* frame lengths.  Messages the framing layer does
    not know raise :class:`~repro.errors.CodecError` at the sender;
    protocols outside the SecureCyclon/legacy-Cyclon dialogue register
    their messages via :func:`repro.core.codec.register_message_codec`
    before opting into wire mode.
    """

    name = "wire"

    def __init__(self) -> None:
        # Deferred import: the codec lives in the protocol layer, which
        # transitively imports repro.sim; binding at construction time
        # keeps this module import-light and cycle-free.
        from repro.core.codec import decode_message, encode_message
        from repro.core.codec_batch import (
            BatchEncoder,
            FastDecoder,
            InternTable,
        )

        # Reference codec, kept addressable for tests and subclasses
        # that want the unmemoised per-frame path.
        self._encode = encode_message
        self._decode = decode_message
        # Fast path (repro.core.codec_batch): byte-identical frames,
        # cycle-scoped encode memos and a shared atom intern table.
        # Frames stay ``bytes`` — never memoryview — because the
        # FaultInjector's byte faults apply only to real byte frames.
        self.intern = InternTable()
        self.encoder = BatchEncoder(self.intern)
        self.decoder = FastDecoder(self.intern)

    def encode(self, payload: Any) -> bytes:
        return self.encoder.encode(payload)

    def decode(self, wire: bytes) -> Any:
        return self.decoder.decode(wire)

    def wire_size(self, wire: bytes) -> int:
        return len(wire)

    def begin_cycle(self, cycle: int) -> None:
        """Start a codec cycle: drop the previous cycle's memos.

        Called once per cycle from ``Network.health_tick`` (both
        schedulers tick it); idempotent per cycle number.  Harnesses
        that never tick cycles are still safe — every memo is
        size-capped and content- or identity-addressed, so clearing
        late affects memory, never bytes.
        """
        self.encoder.begin_cycle(cycle)
        self.intern.begin_cycle(cycle)


#: Sentinel returned by :meth:`FaultInjector.apply` when the frame is
#: silently dropped in transit (distinct from any legal payload,
#: including ``None`` replies).
DROPPED = object()

#: The fault decision kinds, in the order the injector draws them.
FAULT_KINDS = ("drop", "replay", "truncate", "corrupt", "inflate")


@dataclass(frozen=True)
class FaultPlan:
    """Per-frame fault probabilities for one sender (or a whole network).

    Mirrors :class:`~repro.sim.latency.LinkTiming`'s timing strategies,
    but for frame *content*: each probability is the chance that the
    corresponding mutation hits a frame on its way out.  At most one
    fault applies per frame, drawn in :data:`FAULT_KINDS` order.

    * ``drop``     — the frame vanishes in transit (works under any
      transport; the only fault that does).
    * ``replay``   — the frame is replaced by a previously-seen frame
      (stale but well-formed bytes: decodes fine, then fails protocol
      validation — e.g. an already-redeemed ``GossipOpen``).
    * ``truncate`` — the frame is cut at a random byte.
    * ``corrupt``  — up to ``max_bit_flips`` random bits are flipped.
    * ``inflate``  — ``inflate_bytes`` of padding are appended; sized
      past the decoder's frame ceiling this triggers the cheap
      :class:`~repro.errors.FrameOversizeError` rejection.

    The byte-level faults (everything but ``drop``) require the frame
    to actually *be* bytes — i.e. the wire transport; under object
    passing there is nothing to flip and they no-op.
    """

    drop: float = 0.0
    replay: float = 0.0
    truncate: float = 0.0
    corrupt: float = 0.0
    inflate: float = 0.0
    max_bit_flips: int = 8
    inflate_bytes: int = 1 << 16

    def __post_init__(self) -> None:
        for name in FAULT_KINDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(
                    f"{name} must be a probability, got {value}"
                )
        if self.max_bit_flips < 1:
            raise ConfigError("max_bit_flips must be positive")
        if self.inflate_bytes < 1:
            raise ConfigError("inflate_bytes must be positive")

    @property
    def inert(self) -> bool:
        """True when no fault can ever fire (zero probabilities)."""
        return not any(getattr(self, name) for name in FAULT_KINDS)


class FaultInjector:
    """Mutates frames in flight, per sender, from a dedicated RNG stream.

    The wire-plane analogue of the :class:`~repro.sim.latency.
    LinkTiming` timing-strategy hook: installed on the
    :class:`~repro.sim.network.Network` (``use_fault_injector``), it is
    consulted by :class:`~repro.sim.channel.Channel` for both dialogue
    legs and by ``Network.push`` for one-way pushes.  ``plan`` applies
    network-wide (link noise); :meth:`register_plan` overrides it for
    one sender (a wire attacker corrupting only frames *it* sends),
    optionally gated on an ``active`` callable (the coordinator's
    attack schedule).

    Determinism discipline: all fault decisions draw from ``rng`` — a
    dedicated stream (``"wire-faults"``) — and a frame whose resolved
    plan is absent or inert consumes **zero** randomness, so installing
    the injector with faults disabled leaves every protocol RNG stream,
    and therefore every golden series, bit-for-bit unchanged.
    """

    def __init__(
        self,
        rng,
        plan: Optional[FaultPlan] = None,
        history: int = 64,
    ) -> None:
        self.rng = rng
        self.plan = plan
        self._plans: Dict[
            Any, Tuple[FaultPlan, Optional[Callable[[], bool]]]
        ] = {}
        # Previously-seen frames, the replay fault's ammunition.  Only
        # byte frames are remembered; bounded so a long run cannot hoard
        # the whole traffic history.
        self._seen: "deque[bytes]" = deque(maxlen=history)
        self.injected = {kind: 0 for kind in FAULT_KINDS}

    def register_plan(
        self,
        sender_id: Any,
        plan: FaultPlan,
        active: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Bind ``plan`` to frames sent by ``sender_id``.

        ``active`` (e.g. a coordinator schedule check) gates the plan:
        while it returns ``False`` the sender's frames pass untouched —
        and consume no fault randomness, exactly like an unregistered
        sender.
        """
        self._plans[sender_id] = (plan, active)

    def plan_for(self, src: Any) -> Optional[FaultPlan]:
        """The plan governing frames sent by ``src`` right now."""
        entry = self._plans.get(src)
        if entry is not None:
            plan, active = entry
            if active is None or active():
                return plan
            return None
        return self.plan

    def apply(self, wire: Any, src: Any, dst: Any, leg: str) -> Any:
        """Pass one outgoing frame through the fault plane.

        Returns the (possibly mutated) frame, or :data:`DROPPED` when
        the frame is silently lost.  ``leg`` is one of the
        :mod:`~repro.sim.latency` leg labels (``request``/``reply``/
        ``push``) — recorded per fault for accounting.
        """
        del dst, leg
        is_bytes = isinstance(wire, (bytes, bytearray))
        if is_bytes:
            self._seen.append(bytes(wire))
        plan = self.plan_for(src)
        if plan is None or plan.inert:
            return wire
        rng = self.rng
        if plan.drop and rng.random() < plan.drop:
            self.injected["drop"] += 1
            return DROPPED
        if not is_bytes:
            # Object passing: there are no bytes to mutate.  The drop
            # fault above is the only one that survives the transport.
            return wire
        if plan.replay and rng.random() < plan.replay and len(self._seen) > 1:
            # Exclude the frame itself (appended above): replaying the
            # frame just sent would be a no-op, not a fault.
            stale = self.rng.choice(tuple(self._seen)[:-1])
            self.injected["replay"] += 1
            return stale
        if plan.truncate and rng.random() < plan.truncate and len(wire) > 1:
            self.injected["truncate"] += 1
            return bytes(wire)[: rng.randrange(1, len(wire))]
        if plan.corrupt and rng.random() < plan.corrupt:
            self.injected["corrupt"] += 1
            mutated = bytearray(wire)
            for _ in range(rng.randint(1, plan.max_bit_flips)):
                mutated[rng.randrange(len(mutated))] ^= 1 << rng.randrange(8)
            return bytes(mutated)
        if plan.inflate and rng.random() < plan.inflate:
            self.injected["inflate"] += 1
            # Zero padding, not random bytes: the decoder rejects on
            # *size*, so the content is irrelevant and the simulator
            # need not pay to generate garbage.
            return bytes(wire) + b"\x00" * plan.inflate_bytes
        return wire

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())


def make_transport(transport: Any = None) -> Transport:
    """Resolve a ``transport=`` knob into a transport instance.

    ``transport`` is a mode name (``"object"``/``"wire"``), ``None``
    (resolved through ``REPRO_TRANSPORT``, default object), or an
    already-built :class:`Transport` (returned as-is).
    """
    if isinstance(transport, Transport):
        return transport
    validate_transport(transport)
    mode = resolve_transport(transport)
    if mode == "wire":
        return WireTransport()
    return ObjectTransport()
