"""Pluggable message transports: how payloads cross the simulated wire.

The paper's system model (§II-A) is a routed network moving *bytes*;
historically the simulator moved *references* — the sender's Python
objects were handed straight to the receiver.  That is fast, but it
silently memoises work (a receiver holding the exact object the sender
verified skips re-verification through per-object caches) and it can
never catch a serialisation bug.  This module makes the choice explicit:

* :class:`ObjectTransport` — the classic in-process semantics,
  bit-for-bit identical to the historical behaviour: payloads pass by
  reference, sizes come from the budgeted ``payload_sizer`` when one is
  configured.
* :class:`WireTransport` — wire fidelity: every dialogue leg and every
  one-way push is framed through :mod:`repro.core.codec`, so each
  receiver decodes **fresh objects from real bytes**, and all traffic
  accounting switches from budgeted to *measured* frame sizes.  The
  codec is lossless and consumes no randomness, so seeded runs produce
  byte-identical outputs under both transports (golden-guarded); what
  changes is the *work*: shared-object identity no longer short-circuits
  verification, which is the regime where batched verification
  (``verification=batched``) pays off network-wide.

Selection mirrors the ``verification=`` knob: both protocol configs
carry ``transport=`` (``"object"``/``"wire"``/``None``), ``None``
resolves through the ``REPRO_TRANSPORT`` environment variable, and the
default stays ``object``.  :func:`make_transport` turns the resolved
mode (or an already-built :class:`Transport`) into an instance for
:class:`~repro.sim.network.Network`.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from repro.errors import ConfigError

#: Accepted values of the ``transport=`` knob.
TRANSPORT_MODES = ("object", "wire")

#: Environment override for the knob, mirroring ``REPRO_VERIFICATION``:
#: a config whose ``transport`` is ``None`` resolves through this
#: variable, so the whole harness (and the golden equivalence guard)
#: can flip transports without touching any call site.
ENV_TRANSPORT = "REPRO_TRANSPORT"


def resolve_transport(mode: Optional[str]) -> str:
    """Resolve a ``transport=`` knob value to a concrete mode.

    An explicit value wins; otherwise the ``REPRO_TRANSPORT``
    environment variable; otherwise ``"object"`` — the default must
    stay the in-process semantics so existing runs are untouched
    unless a run opts in.
    """
    if mode is not None:
        return mode
    raw = os.environ.get(ENV_TRANSPORT, "").strip().lower()
    if not raw:
        return TRANSPORT_MODES[0]
    if raw not in TRANSPORT_MODES:
        valid = ", ".join(TRANSPORT_MODES)
        raise ConfigError(
            f"invalid {ENV_TRANSPORT}={raw!r}; expected one of: {valid}"
        )
    return raw


def validate_transport(mode: Optional[str]) -> None:
    """Config-time validation shared by both protocol configs."""
    if mode is not None and mode not in TRANSPORT_MODES:
        valid = ", ".join(TRANSPORT_MODES)
        raise ConfigError(
            f"transport must be one of: {valid} (or None); got {mode!r}"
        )


class Transport:
    """How a payload crosses one leg of the simulated network.

    The contract is three hooks, called by :class:`~repro.sim.channel.
    Channel` for both dialogue legs and by :class:`~repro.sim.network.
    Network` for one-way pushes:

    * :meth:`encode` turns the sender's payload into its on-wire form;
    * :meth:`decode` rebuilds the receiver-side payload from that form;
    * :meth:`wire_size` prices the on-wire form in bytes, or returns
      ``None`` to defer to the budgeted ``payload_sizer`` (object mode).

    Transports must be deterministic and consume no randomness: the
    simulator's seeded RNG streams are required to be transport-
    independent so the golden figure series stay bit-for-bit identical
    across modes.
    """

    name = "abstract"

    def encode(self, payload: Any) -> Any:
        raise NotImplementedError

    def decode(self, wire: Any) -> Any:
        raise NotImplementedError

    def wire_size(self, wire: Any) -> Optional[int]:
        raise NotImplementedError


class ObjectTransport(Transport):
    """Shared-object message passing (the historical semantics).

    Payloads cross the network by reference: the receiver gets the
    sender's object, object-identity fast paths stay hot, and traffic
    accounting uses the budgeted sizer (when configured) exactly as
    before the transport abstraction existed.
    """

    name = "object"

    def encode(self, payload: Any) -> Any:
        return payload

    def decode(self, wire: Any) -> Any:
        return wire

    def wire_size(self, wire: Any) -> Optional[int]:
        return None


class WireTransport(Transport):
    """Byte-accurate message passing through :mod:`repro.core.codec`.

    Every payload is framed to bytes at the sender and decoded into
    fresh objects at the receiver, so nothing downstream can depend on
    object identity — the state a real deployment is always in.  Sizes
    are the *measured* frame lengths.  Messages the framing layer does
    not know raise :class:`~repro.errors.CodecError` at the sender;
    protocols outside the SecureCyclon/legacy-Cyclon dialogue register
    their messages via :func:`repro.core.codec.register_message_codec`
    before opting into wire mode.
    """

    name = "wire"

    def __init__(self) -> None:
        # Deferred import: the codec lives in the protocol layer, which
        # transitively imports repro.sim; binding at construction time
        # keeps this module import-light and cycle-free.
        from repro.core.codec import decode_message, encode_message

        self._encode = encode_message
        self._decode = decode_message

    def encode(self, payload: Any) -> bytes:
        return self._encode(payload)

    def decode(self, wire: bytes) -> Any:
        return self._decode(wire)

    def wire_size(self, wire: bytes) -> int:
        return len(wire)


def make_transport(transport: Any = None) -> Transport:
    """Resolve a ``transport=`` knob into a transport instance.

    ``transport`` is a mode name (``"object"``/``"wire"``), ``None``
    (resolved through ``REPRO_TRANSPORT``, default object), or an
    already-built :class:`Transport` (returned as-is).
    """
    if isinstance(transport, Transport):
        return transport
    validate_transport(transport)
    mode = resolve_transport(transport)
    if mode == "wire":
        return WireTransport()
    return ObjectTransport()
