"""Structured event tracing.

Protocol code emits :class:`TraceEvent` records for the moments the
evaluation cares about — violations discovered, proofs flooded, nodes
blacklisted, exchanges aborted — and tests/experiments filter the trace
instead of monkey-patching internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One traced occurrence.

    ``kind`` is a short string key (e.g. ``"violation.cloning"``);
    ``detail`` carries event-specific fields.
    """

    cycle: int
    kind: str
    node: Any = None
    detail: Dict[str, Any] = field(default_factory=dict)


class EventTrace:
    """Append-only list of :class:`TraceEvent` with query helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[TraceEvent] = []

    def emit(
        self,
        cycle: int,
        kind: str,
        node: Any = None,
        **detail: Any,
    ) -> None:
        """Record an event (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        self._events.append(
            TraceEvent(cycle=cycle, kind=kind, node=node, detail=detail)
        )

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All events whose kind equals or starts with ``kind``."""
        return [
            event
            for event in self._events
            if event.kind == kind or event.kind.startswith(kind + ".")
        ]

    def first(self, kind: str) -> Optional[TraceEvent]:
        events = self.of_kind(kind)
        return events[0] if events else None

    def count(self, kind: str) -> int:
        return len(self.of_kind(kind))

    def clear(self) -> None:
        self._events.clear()
