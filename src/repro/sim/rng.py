"""Deterministic randomness management.

A simulation draws randomness for many independent purposes: key
generation, per-node protocol choices, adversary choices, channel drops,
churn.  Seeding them all from one shared ``random.Random`` would make a
change in one consumer perturb every other, so :class:`RngHub` derives an
independent, stable stream per named purpose from a single master seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngHub:
    """Derives independent named RNG streams from one master seed.

    Streams are created lazily and memoised: ``hub.stream("churn")``
    always returns the same ``random.Random`` instance, whose seed
    depends only on the master seed and the name.
    """

    def __init__(self, master_seed: int) -> None:
        if not isinstance(master_seed, int):
            raise TypeError("master_seed must be an int")
        self._master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """The RNG stream dedicated to ``name``."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(
            f"{self._master_seed}:{name}".encode("utf-8")
        ).digest()
        rng = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = rng
        return rng

    def stream_states(self) -> Dict[str, tuple]:
        """``getstate()`` of every stream created so far, by name.

        The snapshot half of checkpointing (:mod:`repro.ops.checkpoint`):
        the dict captures each Mersenne Twister's full internal state,
        so a resumed run continues every stream exactly where the
        checkpointed run left it.  Insertion (creation) order is
        preserved, which keeps checkpoint files deterministic.
        """
        return {name: rng.getstate() for name, rng in self._streams.items()}

    def restore_stream_states(self, states: Dict[str, tuple]) -> None:
        """Install saved ``getstate()`` tuples, creating streams lazily.

        Streams absent from ``states`` are left untouched: they were
        never drawn from before the checkpoint, so their derived seed
        (which depends only on the master seed and name) already puts
        them in the right state.
        """
        for name, state in states.items():
            self.stream(name).setstate(state)

    def spawn(self, name: str) -> "RngHub":
        """A child hub whose streams are independent of this hub's."""
        digest = hashlib.sha256(
            f"{self._master_seed}/hub/{name}".encode("utf-8")
        ).digest()
        return RngHub(int.from_bytes(digest[:8], "big"))
