"""Cycle-driven peer-to-peer simulation substrate.

This package is the Python equivalent of the PeerNet/PeerSim environment
the paper used for its evaluation (§VI).  It follows the same
cycle-driven model:

* time advances in *cycles*; each alive node initiates at most one gossip
  exchange per cycle (paper §II-A);
* within a cycle, nodes are activated in a random order drawn from a
  deterministic, seeded RNG;
* an exchange is a synchronous dialogue over a :class:`~repro.sim.channel.Channel`
  whose individual messages may be dropped to model lossy networks and
  unresponsive peers;
* observers sample the global state at the end of every cycle — this is
  how the paper's figures are produced.

Nothing in this package knows about Cyclon or SecureCyclon; protocol
logic lives in :mod:`repro.cyclon` and :mod:`repro.core` and plugs in via
the :class:`~repro.sim.engine.ProtocolNode` interface.
"""

from repro.sim.clock import SimClock
from repro.sim.channel import Channel, DropPolicy
from repro.sim.engine import Engine, ProtocolNode, SimConfig
from repro.sim.network import Network, NetworkAddress
from repro.sim.observers import Observer, SeriesObserver
from repro.sim.rng import RngHub
from repro.sim.churn import ChurnSchedule, ChurnEvent
from repro.sim.trace import EventTrace, TraceEvent

__all__ = [
    "SimClock",
    "Channel",
    "DropPolicy",
    "Engine",
    "ProtocolNode",
    "SimConfig",
    "Network",
    "NetworkAddress",
    "Observer",
    "SeriesObserver",
    "RngHub",
    "ChurnSchedule",
    "ChurnEvent",
    "EventTrace",
    "TraceEvent",
]
