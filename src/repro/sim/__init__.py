"""Peer-to-peer simulation substrate with pluggable runtimes.

This package is the Python equivalent of the PeerNet/PeerSim environment
the paper used for its evaluation (§VI), generalised over *time*.  One
:class:`~repro.sim.engine.Engine` owns the universe (nodes, network,
clock, trace, observers); a :class:`~repro.sim.scheduler.Scheduler`
decides how it advances:

* :class:`~repro.sim.scheduler.CycleScheduler` (default) — the paper's
  lock-step model: time advances in *cycles*; each alive node initiates
  at most one gossip exchange per cycle (§II-A), in a random order drawn
  from a deterministic, seeded RNG;
* :class:`~repro.sim.scheduler.EventScheduler` — a latency-aware event
  queue: per-node activation timers (with optional period jitter),
  per-link message delays from a :class:`~repro.sim.latency.LatencyModel`,
  dialogue timeouts, and delayed (possibly reordered) one-way pushes.

An exchange is a synchronous dialogue over a
:class:`~repro.sim.channel.Channel` whose individual messages may be
dropped — or, under the event runtime, arrive too late — to model lossy
networks and unresponsive peers.  Observers sample the global state at
the end of every cycle (both runtimes) and, under the event runtime, at
wall-clock instants between cycle boundaries.

Nothing in this package knows about Cyclon or SecureCyclon; protocol
logic lives in :mod:`repro.cyclon` and :mod:`repro.core` and plugs in via
the :class:`~repro.sim.engine.ProtocolNode` interface.
"""

from repro.sim.clock import SimClock
from repro.sim.channel import Channel, DropPolicy, MessageDropped, MessageTimeout
from repro.sim.engine import Engine, ProtocolNode, SimConfig
from repro.sim.latency import (
    ConstantLatency,
    LatencyModel,
    LinkTiming,
    LognormalLatency,
    TwoClusterLatency,
    UniformLatency,
)
from repro.sim.network import Network, NetworkAddress
from repro.sim.observers import Observer, SeriesObserver, TimedSeriesObserver
from repro.sim.rng import RngHub
from repro.sim.churn import ChurnSchedule, ChurnEvent, TimedChurnEvent
from repro.sim.scheduler import (
    CycleScheduler,
    EventScheduler,
    PeriodJitter,
    Scheduler,
    make_scheduler,
)
from repro.sim.trace import EventTrace, TraceEvent
from repro.sim.transport import (
    ObjectTransport,
    Transport,
    WireTransport,
    make_transport,
)

__all__ = [
    "SimClock",
    "Channel",
    "DropPolicy",
    "MessageDropped",
    "MessageTimeout",
    "Engine",
    "ProtocolNode",
    "SimConfig",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LognormalLatency",
    "TwoClusterLatency",
    "LinkTiming",
    "Network",
    "NetworkAddress",
    "Observer",
    "SeriesObserver",
    "TimedSeriesObserver",
    "RngHub",
    "ChurnSchedule",
    "ChurnEvent",
    "TimedChurnEvent",
    "Scheduler",
    "CycleScheduler",
    "EventScheduler",
    "PeriodJitter",
    "make_scheduler",
    "EventTrace",
    "TraceEvent",
    "Transport",
    "ObjectTransport",
    "WireTransport",
    "make_transport",
]
