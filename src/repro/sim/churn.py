"""Churn schedules: joins, graceful leaves, and crashes over time.

The paper's headline experiments run on a static membership, but Cyclon's
defining property is robustness under churn, and §V-A of the paper is
entirely about repairing views after losses.  :class:`ChurnSchedule`
drives those scenarios: it maps cycles to membership events the engine
executes at the start of the cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional


JOIN = "join"
LEAVE = "leave"
CRASH = "crash"

_VALID_ACTIONS = (JOIN, LEAVE, CRASH)


@dataclass(frozen=True)
class TimedChurnEvent:
    """One membership change pinned to a wall-clock instant.

    The event runtime executes these at ``time_s`` regardless of cycle
    boundaries — a node can crash mid-gossip-period, which is exactly
    the desynchronised failure mode the cycle model cannot express.
    The cycle runtime ignores timed events (its clock never visits the
    instants between boundaries).
    """

    time_s: float
    action: str
    node_id: Any = None

    def __post_init__(self) -> None:
        if self.action not in _VALID_ACTIONS:
            raise ValueError(
                f"action must be one of {_VALID_ACTIONS}, got {self.action!r}"
            )
        if self.time_s < 0:
            raise ValueError("time must be non-negative")


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change.

    ``action`` is one of ``join`` (a brand-new node enters), ``leave``
    (a node departs and is removed from the directory), or ``crash``
    (same effect as leave in a fail-stop model; kept distinct so traces
    can tell them apart).  ``node_id`` may be ``None`` for joins, in
    which case the engine creates a fresh node.
    """

    cycle: int
    action: str
    node_id: Any = None

    def __post_init__(self) -> None:
        if self.action not in _VALID_ACTIONS:
            raise ValueError(
                f"action must be one of {_VALID_ACTIONS}, got {self.action!r}"
            )
        if self.cycle < 0:
            raise ValueError("cycle must be non-negative")


class ChurnSchedule:
    """An ordered collection of churn events indexed by cycle."""

    def __init__(self, events: Optional[Iterable[ChurnEvent]] = None) -> None:
        self._by_cycle: Dict[int, List[ChurnEvent]] = {}
        self._timed: List[TimedChurnEvent] = []
        for event in events or ():
            self.add(event)

    def add(self, event: ChurnEvent) -> None:
        self._by_cycle.setdefault(event.cycle, []).append(event)

    def add_timed(self, event: TimedChurnEvent) -> None:
        self._timed.append(event)

    def join(self, cycle: int, node_id: Any = None) -> "ChurnSchedule":
        """Fluent helper: schedule a join at ``cycle``."""
        self.add(ChurnEvent(cycle=cycle, action=JOIN, node_id=node_id))
        return self

    def leave(self, cycle: int, node_id: Any) -> "ChurnSchedule":
        """Fluent helper: schedule a graceful leave at ``cycle``."""
        self.add(ChurnEvent(cycle=cycle, action=LEAVE, node_id=node_id))
        return self

    def crash(self, cycle: int, node_id: Any) -> "ChurnSchedule":
        """Fluent helper: schedule a crash at ``cycle``."""
        self.add(ChurnEvent(cycle=cycle, action=CRASH, node_id=node_id))
        return self

    def join_at(self, time_s: float, node_id: Any = None) -> "ChurnSchedule":
        """Fluent helper: schedule a join at wall-clock ``time_s``."""
        self.add_timed(TimedChurnEvent(time_s=time_s, action=JOIN, node_id=node_id))
        return self

    def leave_at(self, time_s: float, node_id: Any) -> "ChurnSchedule":
        """Fluent helper: schedule a graceful leave at ``time_s``."""
        self.add_timed(
            TimedChurnEvent(time_s=time_s, action=LEAVE, node_id=node_id)
        )
        return self

    def crash_at(self, time_s: float, node_id: Any) -> "ChurnSchedule":
        """Fluent helper: schedule a crash at wall-clock ``time_s``."""
        self.add_timed(
            TimedChurnEvent(time_s=time_s, action=CRASH, node_id=node_id)
        )
        return self

    def events_at(self, cycle: int) -> List[ChurnEvent]:
        """Events scheduled for ``cycle`` (possibly empty)."""
        return list(self._by_cycle.get(cycle, ()))

    def timed_events_between(
        self, start_s: float, end_s: float
    ) -> List[TimedChurnEvent]:
        """Timed events with ``start_s <= time_s < end_s``, time order."""
        matched = [
            event for event in self._timed if start_s <= event.time_s < end_s
        ]
        matched.sort(key=lambda event: event.time_s)
        return matched

    def __len__(self) -> int:
        return len(self._timed) + sum(
            len(events) for events in self._by_cycle.values()
        )

    @staticmethod
    def random_churn(
        rng,
        cycles: int,
        join_rate: float,
        leave_rate: float,
        candidate_ids: Iterable[Any],
    ) -> "ChurnSchedule":
        """Build a schedule with Bernoulli joins/leaves per cycle.

        ``join_rate``/``leave_rate`` are expected events per cycle;
        leaves pick uniformly from ``candidate_ids``.
        """
        schedule = ChurnSchedule()
        candidates = list(candidate_ids)
        for cycle in range(cycles):
            if rng.random() < join_rate:
                schedule.join(cycle)
            if candidates and rng.random() < leave_rate:
                schedule.leave(cycle, rng.choice(candidates))
        return schedule
